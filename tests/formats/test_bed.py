"""BED format tests."""

import io

import pytest

from repro.formats.bed import (
    merge_overlapping,
    parse_bed,
    read_bed,
    subtract_records,
    write_bed,
)
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord
from repro.sim.targets import TargetInterval, TargetPanel


class TestParse:
    def test_basic_three_columns(self):
        targets = parse_bed(["chr1\t100\t200", "chr2\t0\t50"])
        assert targets == [
            TargetInterval("chr1", 100, 200),
            TargetInterval("chr2", 0, 50),
        ]

    def test_comments_and_headers_skipped(self):
        targets = parse_bed(["# comment", "track name=x", "chr1\t1\t2", ""])
        assert len(targets) == 1

    def test_extra_columns_ignored(self):
        (t,) = parse_bed(["chr1\t10\t20\texon1\t960\t+"])
        assert t == TargetInterval("chr1", 10, 20)

    @pytest.mark.parametrize("bad", ["chr1\t10", "chr1\tx\t20", "chr1\t20\t10"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_bed([bad])

    def test_file_roundtrip(self, tmp_path):
        panel = TargetPanel(
            "exons",
            [TargetInterval("chr1", 5, 50), TargetInterval("chr1", 100, 160)],
        )
        path = str(tmp_path / "targets.bed")
        write_bed(panel, path)
        loaded = read_bed(path, name="exons")
        assert loaded.targets == panel.targets
        assert loaded.name == "exons"

    def test_write_to_stream_without_names(self):
        panel = TargetPanel("p", [TargetInterval("c", 0, 5)])
        buf = io.StringIO()
        write_bed(panel, buf, names=False)
        assert buf.getvalue() == "c\t0\t5\n"


class TestMerge:
    def test_overlapping_merged(self):
        merged = merge_overlapping(
            [
                TargetInterval("c", 0, 10),
                TargetInterval("c", 5, 20),
                TargetInterval("c", 30, 40),
            ]
        )
        assert merged == [TargetInterval("c", 0, 20), TargetInterval("c", 30, 40)]

    def test_adjacent_merged(self):
        merged = merge_overlapping(
            [TargetInterval("c", 0, 10), TargetInterval("c", 10, 20)]
        )
        assert merged == [TargetInterval("c", 0, 20)]

    def test_contigs_kept_apart(self):
        merged = merge_overlapping(
            [TargetInterval("a", 0, 10), TargetInterval("b", 0, 10)]
        )
        assert len(merged) == 2


class TestSubtractRecords:
    def rec(self, pos, rname="chr1"):
        return SamRecord(
            "r", 0, rname, pos, 60, Cigar.parse("50M"), "*", -1, 0, "A" * 50, "I" * 50
        )

    def test_split_on_off_target(self):
        panel = TargetPanel("p", [TargetInterval("chr1", 100, 200)])
        on, off = subtract_records([self.rec(120), self.rec(500)], panel)
        assert len(on) == 1 and on[0].pos == 120
        assert len(off) == 1 and off[0].pos == 500

    def test_padding_widens_targets(self):
        panel = TargetPanel("p", [TargetInterval("chr1", 100, 200)])
        read = self.rec(210)  # just past the target
        _, off = subtract_records([read], panel, padding=0)
        on, _ = subtract_records([read], panel, padding=50)
        assert off == [read]
        assert on == [read]

    def test_unmapped_always_off(self):
        from repro.formats import flags as F

        unmapped = SamRecord("u", F.UNMAPPED, "*", -1, 0, Cigar(()), "*", -1, 0, "A", "I")
        panel = TargetPanel("p", [TargetInterval("chr1", 0, 10**6)])
        on, off = subtract_records([unmapped], panel)
        assert on == [] and off == [unmapped]

    def test_capture_efficiency_of_targeted_sim(self, reference):
        """TargetedReadSimulator output must be overwhelmingly on-target."""
        from repro.align.pairing import PairedEndAligner
        from repro.sim import ReadSimConfig, TargetedReadSimulator, generate_targets, plant_variants

        truth = plant_variants(reference, seed=91)
        panel = generate_targets(reference, 0.05, 300, seed=92)
        pairs = TargetedReadSimulator(
            truth.donor, panel, ReadSimConfig(coverage=4.0, seed=93)
        ).simulate()
        aligner = PairedEndAligner(reference)
        records = []
        for pair in pairs[:60]:
            r1, r2 = aligner.align_pair(pair)
            records.extend((r1, r2))
        on, off = subtract_records(records, panel, padding=400)
        assert len(on) / max(1, len(on) + len(off)) > 0.85

import io

import pytest
from hypothesis import given, strategies as st

from repro.formats.fastq import (
    FastqPair,
    FastqRecord,
    pair_reads,
    parse_fastq,
    write_fastq,
)

seq_st = st.text(alphabet="ACGTN", min_size=1, max_size=150)


class TestRecord:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "III")

    def test_phred_scores(self):
        rec = FastqRecord("r", "AC", "!J")
        assert rec.phred_scores == [0, 41]

    def test_len(self):
        assert len(FastqRecord("r", "ACGT", "IIII")) == 4


class TestParse:
    def test_basic(self):
        lines = ["@read1 desc", "ACGT", "+", "IIII"]
        (rec,) = list(parse_fastq(lines))
        assert rec.name == "read1"  # description stripped
        assert rec.sequence == "ACGT"
        assert rec.quality == "IIII"

    def test_multiple_records(self):
        lines = ["@a", "AC", "+", "II", "@b", "GT", "+", "JJ"]
        recs = list(parse_fastq(lines))
        assert [r.name for r in recs] == ["a", "b"]

    def test_truncated_record(self):
        with pytest.raises(ValueError, match="truncated"):
            list(parse_fastq(["@a", "AC"]))

    def test_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            list(parse_fastq(["read", "AC", "+", "II"]))

    def test_bad_separator(self):
        with pytest.raises(ValueError, match="separator"):
            list(parse_fastq(["@a", "AC", "x", "II"]))

    def test_blank_lines_skipped(self):
        recs = list(parse_fastq(["", "@a", "AC", "+", "II", ""]))
        assert len(recs) == 1


class TestWrite:
    def test_roundtrip_via_stream(self):
        recs = [FastqRecord("a", "ACGT", "IIII"), FastqRecord("b", "GG", "JJ")]
        buf = io.StringIO()
        write_fastq(recs, buf)
        parsed = list(parse_fastq(buf.getvalue().splitlines()))
        assert parsed == recs

    def test_roundtrip_via_file(self, tmp_path):
        from repro.formats.fastq import read_fastq

        recs = [FastqRecord("a", "ACGTN", "IIII!")]
        path = str(tmp_path / "x.fastq")
        write_fastq(recs, path)
        assert read_fastq(path) == recs


class TestPairing:
    def test_positional_pairing(self):
        r1 = [FastqRecord("x/1", "AC", "II")]
        r2 = [FastqRecord("x/2", "GT", "JJ")]
        (pair,) = list(pair_reads(r1, r2))
        assert pair.name == "x/1"
        assert pair.read1.sequence == "AC"
        assert pair.read2.sequence == "GT"

    def test_mismatched_names_rejected(self):
        r1 = [FastqRecord("x/1", "AC", "II")]
        r2 = [FastqRecord("y/2", "GT", "JJ")]
        with pytest.raises(ValueError, match="out of sync"):
            list(pair_reads(r1, r2))

    def test_unequal_lengths_rejected(self):
        r1 = [FastqRecord("x/1", "AC", "II"), FastqRecord("z/1", "AC", "II")]
        r2 = [FastqRecord("x/2", "GT", "JJ")]
        with pytest.raises(ValueError, match="different read counts"):
            list(pair_reads(r1, r2))

    def test_pair_iterates_mates(self):
        pair = FastqPair(FastqRecord("a", "A", "I"), FastqRecord("a", "C", "I"))
        assert [r.sequence for r in pair] == ["A", "C"]


@given(
    st.lists(
        st.builds(
            lambda name, seq: FastqRecord(
                name, seq, "I" * len(seq)
            ),
            st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters=" \t"), min_size=1, max_size=20),
            seq_st,
        ),
        max_size=10,
    )
)
def test_write_parse_roundtrip(records):
    buf = io.StringIO()
    write_fastq(records, buf)
    assert list(parse_fastq(buf.getvalue().splitlines())) == records

import pytest
from hypothesis import given, strategies as st

from repro.formats.cigar import Cigar, CigarOp, VALID_OPS


class TestParse:
    def test_simple(self):
        c = Cigar.parse("76M")
        assert len(c) == 1
        assert c.ops[0] == CigarOp(76, "M")

    def test_multi_op(self):
        c = Cigar.parse("10S30M2D36M4H")
        assert [str(op) for op in c] == ["10S", "30M", "2D", "36M", "4H"]

    def test_star_is_empty(self):
        assert not Cigar.parse("*")
        assert str(Cigar.parse("*")) == "*"

    @pytest.mark.parametrize("bad", ["M", "10", "10Q", "3M4", "-3M", "1.5M"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError):
            Cigar.parse(bad)

    def test_zero_length_op_rejected(self):
        with pytest.raises(ValueError):
            CigarOp(0, "M")

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            CigarOp(5, "Z")


class TestLengths:
    def test_query_length_counts_m_i_s(self):
        c = Cigar.parse("5S10M3I2D10M")
        assert c.query_length() == 5 + 10 + 3 + 10

    def test_reference_length_counts_m_d_n(self):
        c = Cigar.parse("5S10M3I2D10M")
        assert c.reference_length() == 10 + 2 + 10

    def test_hard_clips_consume_nothing(self):
        c = Cigar.parse("5H10M5H")
        assert c.query_length() == 10
        assert c.reference_length() == 10


class TestClips:
    def test_leading_and_trailing(self):
        c = Cigar.parse("3H2S10M4S")
        assert c.leading_clip() == 5
        assert c.trailing_clip() == 4

    def test_unclipped_start(self):
        c = Cigar.parse("5S95M")
        assert c.unclipped_start(100) == 95

    def test_unclipped_end(self):
        c = Cigar.parse("95M5S")
        assert c.unclipped_end(100) == 100 + 95 + 5


class TestWalk:
    def test_walk_simple_match(self):
        c = Cigar.parse("3M")
        steps = list(c.walk(10))
        assert steps == [(10, 0, "M"), (11, 1, "M"), (12, 2, "M")]

    def test_walk_insertion_has_no_ref(self):
        c = Cigar.parse("1M1I1M")
        steps = list(c.walk(5))
        assert steps[1] == (None, 1, "I")
        assert steps[2] == (6, 2, "M")

    def test_walk_deletion_has_no_query(self):
        c = Cigar.parse("1M1D1M")
        steps = list(c.walk(5))
        assert steps[1] == (6, None, "D")
        assert steps[2] == (7, 1, "M")


class TestNormalize:
    def test_merges_adjacent_runs(self):
        c = Cigar.from_pairs([(2, "M"), (3, "M"), (1, "I"), (4, "M")])
        assert str(c.normalized()) == "5M1I4M"

    def test_roundtrip_string(self):
        text = "5S10M2I3D20M1S"
        assert str(Cigar.parse(text)) == text


@given(
    st.lists(
        st.tuples(st.integers(1, 200), st.sampled_from(sorted(VALID_OPS))),
        min_size=1,
        max_size=12,
    )
)
def test_parse_str_roundtrip(pairs):
    c = Cigar.from_pairs(pairs)
    assert Cigar.parse(str(c)) == c


@given(
    st.lists(
        st.tuples(st.integers(1, 100), st.sampled_from("MIDS")),
        min_size=1,
        max_size=10,
    )
)
def test_walk_counts_match_lengths(pairs):
    c = Cigar.from_pairs(pairs)
    steps = list(c.walk(0))
    query_steps = sum(1 for _, q, _ in steps if q is not None)
    ref_steps = sum(1 for r, _, _ in steps if r is not None)
    assert query_steps == c.query_length()
    assert ref_steps == c.reference_length()

import io

import pytest

from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import (
    SamHeader,
    SamRecord,
    UNMAPPED_POS,
    coordinate_key,
    read_sam,
    write_sam,
)


def make_record(**kwargs) -> SamRecord:
    defaults = dict(
        qname="read1",
        flag=0,
        rname="chr1",
        pos=99,
        mapq=60,
        cigar=Cigar.parse("4M"),
        rnext="*",
        pnext=UNMAPPED_POS,
        tlen=0,
        seq="ACGT",
        qual="IIII",
    )
    defaults.update(kwargs)
    return SamRecord(**defaults)


class TestFlags:
    def test_flag_accessors(self):
        rec = make_record(flag=F.PAIRED | F.REVERSE | F.FIRST_IN_PAIR)
        assert rec.is_paired and rec.is_reverse and rec.is_first_in_pair
        assert not rec.is_duplicate and not rec.is_unmapped

    def test_set_and_clear_duplicate(self):
        rec = make_record()
        rec.set_duplicate(True)
        assert rec.is_duplicate
        rec.set_duplicate(False)
        assert not rec.is_duplicate

    def test_flag_validity_helper(self):
        assert F.is_valid(F.PAIRED | F.DUPLICATE)
        assert not F.is_valid(1 << 13)

    def test_describe(self):
        names = F.describe(F.PAIRED | F.UNMAPPED)
        assert names == ["paired", "unmapped"]


class TestCoordinates:
    def test_end_uses_reference_length(self):
        rec = make_record(cigar=Cigar.parse("2M1D2M"), seq="ACGT", qual="IIII")
        assert rec.end == 99 + 5

    def test_unclipped_start_end(self):
        rec = make_record(cigar=Cigar.parse("1S3M"), seq="ACGT", qual="IIII")
        assert rec.unclipped_start() == 98
        assert rec.unclipped_end() == 99 + 3

    def test_sum_of_base_qualities_threshold(self):
        rec = make_record(qual="!!JJ")  # 0, 0, 41, 41
        assert rec.sum_of_base_qualities(threshold=15) == 82


class TestTextRoundTrip:
    def test_line_roundtrip(self):
        rec = make_record(tags={"NM": 2, "AS": 37, "RG": "grp1"})
        parsed = SamRecord.from_line(rec.to_line())
        assert parsed == rec

    def test_one_based_conversion(self):
        rec = make_record(pos=0)
        assert "\t1\t" in rec.to_line()

    def test_unmapped_pos_zero_in_text(self):
        rec = make_record(flag=F.UNMAPPED, pos=UNMAPPED_POS, rname="*", cigar=Cigar(()))
        fields = rec.to_line().split("\t")
        assert fields[3] == "0"
        assert SamRecord.from_line(rec.to_line()).pos == UNMAPPED_POS

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            SamRecord.from_line("too\tfew\tfields")

    def test_file_roundtrip(self, tmp_path):
        header = SamHeader.unsorted([("chr1", 1000)])
        records = [make_record(), make_record(qname="r2", pos=5)]
        path = str(tmp_path / "x.sam")
        write_sam(header, records, path)
        header2, records2 = read_sam(path)
        assert header2 == header
        assert records2 == records


class TestHeader:
    def test_lines_roundtrip(self):
        header = SamHeader(contigs=(("chr1", 100), ("chr2", 50)), sort_order="coordinate")
        assert SamHeader.from_lines(header.to_lines()) == header

    def test_contig_lookup(self):
        header = SamHeader.unsorted([("chr1", 100), ("chr2", 50)])
        assert header.contig_index("chr2") == 1
        assert header.contig_length("chr1") == 100
        with pytest.raises(KeyError):
            header.contig_index("chrX")

    def test_sorted_by_coordinate(self):
        header = SamHeader.unsorted([("chr1", 100)])
        assert header.sorted_by_coordinate().sort_order == "coordinate"


class TestCoordinateKey:
    def test_orders_by_contig_then_pos(self):
        header = SamHeader.unsorted([("chr1", 100), ("chr2", 100)])
        key = coordinate_key(header)
        a = make_record(rname="chr1", pos=50)
        b = make_record(rname="chr2", pos=1)
        c = make_record(rname="chr1", pos=10)
        assert sorted([a, b, c], key=key) == [c, a, b]

    def test_unmapped_sorts_last(self):
        header = SamHeader.unsorted([("chr1", 100)])
        key = coordinate_key(header)
        mapped = make_record()
        unmapped = make_record(
            flag=F.UNMAPPED, rname="*", pos=UNMAPPED_POS, cigar=Cigar(())
        )
        assert sorted([unmapped, mapped], key=key) == [mapped, unmapped]


class TestCopy:
    def test_copy_is_deep_for_tags(self):
        rec = make_record(tags={"NM": 1})
        dup = rec.copy()
        dup.tags["NM"] = 99
        assert rec.tags["NM"] == 1

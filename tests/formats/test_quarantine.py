"""Corrupt-input policies: fail / drop / quarantine across the parsers."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.files import load_fastq_pair_lazy
from repro.formats.fastq import pair_reads, parse_fastq, read_fastq
from repro.formats.quarantine import (
    MAX_RAW_CHARS,
    QuarantineSink,
    check_policy,
    route_malformed,
)
from repro.formats.sam import iter_sam_lines
from repro.formats.vcf import parse_vcf_lines

GOOD_QUAD = ["@r1", "ACGT", "+", "IIII"]
BAD_SEPARATOR = ["@r2", "ACGT", "x", "IIII"]
LENGTH_MISMATCH = ["@r3", "ACGTACGT", "+", "II"]
TAIL_QUAD = ["@r4", "TTTT", "+", "IIII"]


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown malformed policy"):
            check_policy("ignore")
        with pytest.raises(ValueError, match="unknown malformed policy"):
            list(parse_fastq(GOOD_QUAD, malformed="ignore"))


class TestFastqPolicies:
    def test_fail_raises_original_messages(self):
        with pytest.raises(ValueError, match="malformed FASTQ separator line"):
            list(parse_fastq(GOOD_QUAD + BAD_SEPARATOR))
        with pytest.raises(ValueError, match="malformed FASTQ header line"):
            list(parse_fastq(["not-a-header", *GOOD_QUAD]))
        with pytest.raises(ValueError, match="truncated FASTQ record"):
            list(parse_fastq(["@only-header"]))
        with pytest.raises(ValueError, match="length mismatch"):
            list(parse_fastq(LENGTH_MISMATCH))

    def test_drop_skips_and_resyncs(self):
        lines = GOOD_QUAD + BAD_SEPARATOR + LENGTH_MISMATCH + TAIL_QUAD
        records = list(parse_fastq(lines, malformed="drop"))
        assert [r.name for r in records] == ["r1", "r4"]

    def test_quarantine_routes_to_sink(self):
        sink = QuarantineSink()
        lines = GOOD_QUAD + BAD_SEPARATOR + LENGTH_MISMATCH + TAIL_QUAD
        records = list(parse_fastq(lines, malformed="quarantine", sink=sink))
        assert [r.name for r in records] == ["r1", "r4"]
        assert sink.counts == {"fastq": 2}
        reasons = {s.reason for s in sink.samples}
        assert any("separator" in r for r in reasons)
        assert any("length mismatch" in r for r in reasons)

    def test_pair_reads_out_of_sync(self):
        r1 = list(parse_fastq(["@a/1", "AC", "+", "II", "@b/1", "AC", "+", "II"]))
        r2 = list(parse_fastq(["@a/2", "AC", "+", "II", "@x/2", "AC", "+", "II"]))
        with pytest.raises(ValueError, match="out of sync"):
            list(pair_reads(r1, r2))
        sink = QuarantineSink()
        pairs = list(pair_reads(r1, r2, malformed="quarantine", sink=sink))
        assert [p.name for p in pairs] == ["a/1"]
        assert sink.counts == {"fastq": 1}

    def test_pair_reads_unequal_lengths(self):
        r1 = list(parse_fastq(GOOD_QUAD + TAIL_QUAD))
        r2 = list(parse_fastq(["@r1", "AC", "+", "II"]))
        with pytest.raises(ValueError, match="different read counts"):
            list(pair_reads(r1, r2))
        sink = QuarantineSink()
        pairs = list(pair_reads(r1, r2, malformed="quarantine", sink=sink))
        assert len(pairs) == 1
        assert sink.total == 1  # the unmatched tail read

    def test_read_fastq_policy(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("\n".join(GOOD_QUAD + BAD_SEPARATOR + TAIL_QUAD) + "\n")
        with pytest.raises(ValueError):
            read_fastq(str(path))
        assert len(read_fastq(str(path), malformed="drop")) == 2


class TestSamPolicies:
    GOOD = "r1\t0\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\tIIII"
    SHORT = "r2\t0\tchr1"
    BAD_MAPQ = "r3\t0\tchr1\t10\t300\t4M\t*\t0\t0\tACGT\tIIII"
    BAD_FLAG = "r4\t99999\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\tIIII"

    def test_fail_raises(self):
        with pytest.raises(ValueError, match="malformed SAM line"):
            list(iter_sam_lines([self.GOOD, self.SHORT]))
        with pytest.raises(ValueError, match="MAPQ out of range"):
            list(iter_sam_lines([self.BAD_MAPQ]))
        with pytest.raises(ValueError, match="flag out of range"):
            list(iter_sam_lines([self.BAD_FLAG]))

    def test_drop_and_quarantine(self):
        lines = [self.GOOD, self.SHORT, self.BAD_MAPQ, self.BAD_FLAG]
        kept = list(iter_sam_lines(lines, malformed="drop"))
        assert [r.qname for r in kept] == ["r1"]
        sink = QuarantineSink()
        kept = list(iter_sam_lines(lines, malformed="quarantine", sink=sink))
        assert [r.qname for r in kept] == ["r1"]
        assert sink.counts == {"sam": 3}


class TestVcfPolicies:
    GOOD = "chr1\t11\t.\tA\tG\t50\tPASS\t.\tGT\t0/1"
    SHORT = "chr1\t12"
    BAD_POS = "chr1\txyz\t.\tA\tG\t50\tPASS\t.\tGT\t0/1"

    def test_fail_raises(self):
        with pytest.raises(ValueError):
            list(parse_vcf_lines([self.GOOD, self.SHORT]))

    def test_drop_and_quarantine(self):
        lines = [self.GOOD, self.SHORT, self.BAD_POS]
        assert len(list(parse_vcf_lines(lines, malformed="drop"))) == 1
        sink = QuarantineSink()
        kept = list(parse_vcf_lines(lines, malformed="quarantine", sink=sink))
        assert len(kept) == 1
        assert sink.counts == {"vcf": 2}


class TestQuarantineSink:
    def test_counts_samples_and_summary(self):
        sink = QuarantineSink(max_samples=2)
        sink.add("fastq", "raw1", "bad")
        sink.add("fastq", "raw2", "bad")
        sink.add("sam", "raw3", "bad")  # over the sample cap, still counted
        assert sink.total == 3
        assert sink.counts == {"fastq": 2, "sam": 1}
        assert len(sink.samples) == 2
        assert sink.summary() == "quarantine: 3 record(s) (fastq=2, sam=1)"
        assert QuarantineSink().summary() == "quarantine: empty"

    def test_raw_text_truncated(self):
        sink = QuarantineSink()
        sink.add("fastq", "x" * (MAX_RAW_CHARS + 100), "huge")
        assert len(sink.samples[0].raw) == MAX_RAW_CHARS

    def test_merge(self):
        a, b = QuarantineSink(), QuarantineSink()
        a.add("fastq", "r", "bad")
        b.add("fastq", "r", "bad")
        b.add("vcf", "r", "bad")
        a.merge(b)
        assert a.counts == {"fastq": 2, "vcf": 1}
        assert len(a.samples) == 3

    def test_pickle_round_trip(self):
        sink = QuarantineSink()
        sink.add("fastq", "raw", "bad")
        clone = pickle.loads(pickle.dumps(sink))
        clone.add("fastq", "raw2", "bad")  # lock was re-created
        assert clone.counts == {"fastq": 2}

    def test_route_malformed_none_sink_is_noop(self):
        route_malformed(None, "fastq", "raw", "bad")  # drop policy: no sink

    def test_write_report(self, tmp_path):
        sink = QuarantineSink()
        sink.add("fastq", "@broken", "separator")
        report = tmp_path / "report.txt"
        sink.write_report(str(report))
        text = report.read_text()
        assert "quarantine: 1 record(s)" in text
        assert "@broken" in text


class TestLoaderIntegration:
    def test_lazy_pair_loader_quarantines_bad_quads(self, ctx, tmp_path):
        p1, p2 = tmp_path / "s_1.fastq", tmp_path / "s_2.fastq"
        p1.write_text(
            "\n".join(
                ["@a/1", "ACGT", "+", "IIII"]
                + ["@b/1", "ACGT", "x", "IIII"]  # bad separator
                + ["@c/1", "ACGT", "+", "IIII"]
            )
            + "\n"
        )
        p2.write_text(
            "\n".join(
                ["@a/2", "ACGT", "+", "IIII"]
                + ["@b/2", "ACGT", "+", "IIII"]
                + ["@c/2", "ACGT", "+", "IIII"]
            )
            + "\n"
        )
        from repro.engine.faults import TaskFailedError

        with pytest.raises(TaskFailedError) as excinfo:
            load_fastq_pair_lazy(ctx, str(p1), str(p2)).collect()
        assert isinstance(excinfo.value.cause, ValueError)
        rdd = load_fastq_pair_lazy(
            ctx, str(p1), str(p2), malformed="quarantine"
        )
        pairs = rdd.collect()
        # b's bad quad is quarantined; b/2 loses its mate and is dropped.
        assert [p.name for p in pairs] == ["a/1", "c/1"]
        assert ctx.quarantine.total >= 1
        assert "fastq" in ctx.quarantine.counts


class TestQuarantineDegradation:
    """Sink write failures degrade to counting-only — never kill the run."""

    def make_degrading_sink(self, after: int = 1):
        from repro.chaos import ChaosInjector, ChaosPlan, ChaosRule
        from repro.obs.events import EventBus

        bus = EventBus()
        seen: list[dict] = []
        bus.subscribe(seen.append)
        injector = ChaosInjector(
            ChaosPlan(
                seed=1,
                rules=[
                    ChaosRule(site="quarantine.sink", fault="enospc", nth=after)
                ],
            ),
            events=bus,
        )
        return QuarantineSink(events=bus, chaos=injector), seen

    def test_degrades_to_counting_only_and_publishes_once(self):
        sink, seen = self.make_degrading_sink(after=2)
        sink.add("fastq", "@ok", "separator")
        assert not sink.degraded and len(sink.samples) == 1
        # Second add hits the injected ENOSPC on the retention path.
        sink.add("fastq", "@boom", "separator")
        assert sink.degraded
        assert len(sink.samples) == 1  # the failed sample was not kept
        sink.add("vcf", "bad-line", "column count")
        # Counting never stops; samples stay frozen.
        assert sink.counts == {"fastq": 2, "vcf": 1}
        assert len(sink.samples) == 1
        degraded_events = [e for e in seen if e["kind"] == "quarantine.degraded"]
        assert len(degraded_events) == 1
        assert "chaos enospc" in degraded_events[0]["reason"]
        # Every record still published its quarantine.record event.
        assert sum(1 for e in seen if e["kind"] == "quarantine.record") == 3

    def test_write_report_failure_degrades(self, tmp_path):
        from repro.obs.events import EventBus

        bus = EventBus()
        seen: list[dict] = []
        bus.subscribe(seen.append)
        sink = QuarantineSink(events=bus)
        sink.add("sam", "bad\trecord", "field count")
        sink.write_report(str(tmp_path / "no_such_dir" / "report.txt"))
        assert sink.degraded
        assert any(e["kind"] == "quarantine.degraded" for e in seen)
        # Counting continues after the failed report.
        sink.add("sam", "another", "field count")
        assert sink.counts == {"sam": 2}

import pytest

from repro.formats.vcf import (
    VcfHeader,
    VcfRecord,
    build_known_sites_index,
    read_vcf,
    sort_records,
    write_vcf,
)


class TestRecord:
    def test_classification(self):
        snv = VcfRecord("c", 10, "A", "G")
        ins = VcfRecord("c", 10, "A", "ATT")
        dele = VcfRecord("c", 10, "ATT", "A")
        assert snv.is_snv and not snv.is_indel
        assert ins.is_insertion and ins.is_indel
        assert dele.is_deletion and dele.is_indel

    def test_end_spans_ref_allele(self):
        assert VcfRecord("c", 10, "ATT", "A").end == 13
        assert VcfRecord("c", 10, "A", "G").end == 11

    def test_empty_alleles_rejected(self):
        with pytest.raises(ValueError):
            VcfRecord("c", 1, "", "A")
        with pytest.raises(ValueError):
            VcfRecord("c", 1, "A", "")

    def test_key(self):
        rec = VcfRecord("c", 5, "A", "T")
        assert rec.key() == ("c", 5, "A", "T")


class TestTextRoundTrip:
    def test_line_roundtrip(self):
        rec = VcfRecord(
            "chr1",
            41,
            "A",
            "ATG",
            qual=55.5,
            genotype="0/1",
            depth=12,
            info={"DP": 12, "AF": 0.5},
        )
        parsed = VcfRecord.from_line(rec.to_line())
        assert parsed.key() == rec.key()
        assert parsed.genotype == "0/1"
        assert parsed.depth == 12
        assert parsed.info["DP"] == 12
        assert parsed.info["AF"] == 0.5

    def test_one_based_coordinates_in_text(self):
        rec = VcfRecord("chr1", 0, "A", "G")
        assert rec.to_line().split("\t")[1] == "1"

    def test_flag_info_entries(self):
        rec = VcfRecord.from_line("c\t5\t.\tA\tG\t10.0\tPASS\tVALIDATED\tGT:DP\t1/1:3")
        assert rec.info["VALIDATED"] is True

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            VcfRecord.from_line("a\tb\tc")

    def test_file_roundtrip(self, tmp_path):
        header = VcfHeader((("chr1", 1000),), sample="NA12878")
        records = [VcfRecord("chr1", 5, "A", "G", qual=30.0, genotype="1/1", depth=7)]
        path = str(tmp_path / "x.vcf")
        write_vcf(header, records, path)
        header2, records2 = read_vcf(path)
        assert header2.sample == "NA12878"
        assert header2.contigs == (("chr1", 1000),)
        assert records2[0].key() == records[0].key()


class TestSorting:
    def test_sort_by_contig_order_then_pos(self):
        records = [
            VcfRecord("chr2", 1, "A", "G"),
            VcfRecord("chr1", 9, "A", "G"),
            VcfRecord("chr1", 2, "A", "G"),
        ]
        out = sort_records(records, ["chr1", "chr2"])
        assert [(r.contig, r.pos) for r in out] == [("chr1", 2), ("chr1", 9), ("chr2", 1)]


class TestKnownSitesIndex:
    def test_snv_masks_single_position(self):
        index = build_known_sites_index([VcfRecord("c", 7, "A", "G")])
        assert index == {"c": {7}}

    def test_deletion_masks_span(self):
        index = build_known_sites_index([VcfRecord("c", 7, "ATT", "A")])
        assert index["c"] == {7, 8, 9}

    def test_multiple_contigs(self):
        index = build_known_sites_index(
            [VcfRecord("a", 1, "A", "G"), VcfRecord("b", 2, "C", "T")]
        )
        assert set(index) == {"a", "b"}

import io

import pytest

from repro.formats.fasta import Contig, Reference, parse_fasta, read_fasta, write_fasta


class TestContig:
    def test_invalid_bases_rejected(self):
        with pytest.raises(ValueError, match="invalid bases"):
            Contig("c", b"ACGU")

    def test_fetch_clips_to_bounds(self):
        c = Contig("c", b"ACGTACGT")
        assert c.fetch(-5, 3) == "ACG"
        assert c.fetch(6, 100) == "GT"

    def test_len(self):
        assert len(Contig("c", b"ACGT")) == 4


class TestReference:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Reference([Contig("c", b"A"), Contig("c", b"C")])

    def test_lookup_and_contains(self):
        ref = Reference([Contig("a", b"ACGT"), Contig("b", b"GG")])
        assert "a" in ref and "x" not in ref
        assert ref["b"].sequence == b"GG"
        assert ref.contig_names == ["a", "b"]
        assert ref.total_length() == 6

    def test_contig_lengths_pairs(self):
        ref = Reference([Contig("a", b"ACGT")])
        assert ref.contig_lengths() == [("a", 4)]


class TestParsing:
    def test_parse_multi_contig(self):
        lines = [">chr1 desc", "ACGT", "ACGT", ">chr2", "GGG"]
        contigs = list(parse_fasta(lines))
        assert contigs[0].name == "chr1"
        assert contigs[0].sequence == b"ACGTACGT"
        assert contigs[1].sequence == b"GGG"

    def test_lowercase_uppercased(self):
        (c,) = list(parse_fasta([">x", "acgt"]))
        assert c.sequence == b"ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError):
            list(parse_fasta(["ACGT", ">x"]))

    def test_file_roundtrip(self, tmp_path):
        ref = Reference([Contig("chr1", b"ACGT" * 50), Contig("chr2", b"NNNACGT")])
        path = str(tmp_path / "ref.fa")
        write_fasta(ref, path, width=13)
        assert read_fasta(path) == ref

    def test_write_wraps_lines(self):
        ref = Reference([Contig("c", b"A" * 100)])
        buf = io.StringIO()
        write_fasta(ref, buf, width=30)
        body_lines = [l for l in buf.getvalue().splitlines() if not l.startswith(">")]
        assert all(len(l) <= 30 for l in body_lines)
        assert sum(len(l) for l in body_lines) == 100

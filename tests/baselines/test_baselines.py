"""Runnable baseline reference implementations."""

import os

import pytest

from repro.baselines.adam import AdamLikePipeline, ColumnarBatch
from repro.baselines.churchill import ChurchillPipeline, static_region_split
from repro.baselines.diskpipeline import DiskPipeline
from repro.baselines.gatk import GatkLikePipeline
from repro.baselines.persona import (
    AGD_CHUNK_RECORDS,
    PersonaLikePipeline,
)
from repro.formats.fastq import write_fastq


class TestStaticRegionSplit:
    def test_covers_genome_exactly_once(self, reference):
        regions = static_region_split(reference, 8)
        for contig in reference.contigs:
            covered = sorted(
                (r.start, r.end) for r in regions if r.contig == contig.name
            )
            assert covered[0][0] == 0
            assert covered[-1][1] == len(contig)
            for (s1, e1), (s2, e2) in zip(covered, covered[1:]):
                assert e1 == s2  # contiguous, no overlap

    def test_region_count_roughly_requested(self, reference):
        regions = static_region_split(reference, 10)
        assert 8 <= len(regions) <= 14

    def test_invalid_count(self, reference):
        with pytest.raises(ValueError):
            static_region_split(reference, 0)


class TestChurchillPipeline:
    def test_calls_variants_per_region(self, reference, known_sites, truth, aligned_records):
        pipeline = ChurchillPipeline(reference, known_sites, num_regions=6)
        calls, work = pipeline.run([r.copy() for r in aligned_records])
        truth_keys = truth.truth_keys()
        assert sum(1 for c in calls if c.key() in truth_keys) >= 1
        assert sum(w.num_reads for w in work) >= len(
            [r for r in aligned_records if not r.is_unmapped]
        )

    def test_hotspot_creates_load_imbalance(self, reference, known_sites, aligned_records):
        # The simulated hot-spot makes one static region much heavier —
        # the exact failure mode §4.4's dynamic repartitioning removes.
        pipeline = ChurchillPipeline(reference, known_sites, num_regions=12)
        _, work = pipeline.run([r.copy() for r in aligned_records])
        assert ChurchillPipeline.load_imbalance(work) > 1.5


class TestAdamLike:
    def test_columnar_roundtrip(self, aligned_records):
        batch = ColumnarBatch.from_records(aligned_records[:20])
        out = batch.to_records()
        assert [(r.qname, r.pos, str(r.cigar)) for r in out] == [
            (r.qname, r.pos, str(r.cigar)) for r in aligned_records[:20]
        ]

    def test_markdup_agrees_with_reference_algorithm(
        self, ctx, reference, known_sites, aligned_records
    ):
        from repro.cleaner.duplicates import mark_duplicates

        adam = AdamLikePipeline(ctx, reference, known_sites, partition_length=4_000)
        rdd = ctx.parallelize([r.copy() for r in aligned_records], 3)
        out = adam.mark_duplicates(rdd).collect()
        assert len(out) == len([r for r in aligned_records if not r.is_unmapped])

    def test_tool_boundaries_add_stages(self, ctx, reference, known_sites, aligned_records):
        adam = AdamLikePipeline(ctx, reference, known_sites, partition_length=4_000)
        rdd = ctx.parallelize([r.copy() for r in aligned_records], 3)
        adam.mark_duplicates(rdd).collect()
        one_tool_stages = ctx.metrics.job().stage_count
        adam.bqsr(adam.mark_duplicates(rdd)).collect()
        assert ctx.metrics.job().stage_count > one_tool_stages

    def test_bqsr_changes_qualities(self, ctx, reference, known_sites, aligned_records):
        adam = AdamLikePipeline(ctx, reference, known_sites, partition_length=4_000)
        rdd = ctx.parallelize([r.copy() for r in aligned_records], 3)
        out = adam.bqsr(rdd).collect()
        before = {r.qname: r.qual for r in aligned_records}
        assert any(before.get(r.qname) != r.qual for r in out)


class TestGatkLike:
    def test_tools_spill_to_disk(self, reference, known_sites, aligned_records, tmp_path):
        gatk = GatkLikePipeline(reference, known_sites, workdir=str(tmp_path))
        path = gatk.write_input([r.copy() for r in aligned_records])
        path = gatk.mark_duplicates(path)
        path = gatk.bqsr(path)
        assert os.path.exists(path)
        assert len(gatk.runs) == 2
        assert gatk.total_spill_bytes() > 0
        # Every tool boundary paid a full file read + write.
        for run in gatk.runs:
            assert run.bytes_read > 0 and run.bytes_written > 0

    def test_markdup_output_matches_reference(self, reference, known_sites, aligned_records, tmp_path):
        from repro.cleaner.duplicates import mark_duplicates
        from repro.cleaner.sort import coordinate_sort
        from repro.formats.sam import SamHeader, read_sam

        gatk = GatkLikePipeline(reference, known_sites, workdir=str(tmp_path))
        path = gatk.mark_duplicates(gatk.write_input([r.copy() for r in aligned_records]))
        _, out = read_sam(path)
        expected = coordinate_sort(
            [r.copy() for r in aligned_records],
            SamHeader.unsorted(reference.contig_lengths()),
        )
        mark_duplicates(expected)
        assert {(r.qname, r.flag) for r in out} == {
            (r.qname, r.flag) for r in expected
        }


class TestPersonaLike:
    def test_agd_chunking(self, reference, read_pairs):
        persona = PersonaLikePipeline(reference)
        reads = [p.read1 for p in read_pairs[:2_005 // 2]]
        chunks = persona.import_to_agd(reads)
        assert sum(len(c.names) for c in chunks) == len(reads)
        assert all(len(c.names) <= AGD_CHUNK_RECORDS for c in chunks)

    def test_single_end_alignment_via_snap(self, reference, read_pairs):
        persona = PersonaLikePipeline(reference)
        reads = [p.read1 for p in read_pairs[:40]]
        records = persona.run(reads)
        assert len(records) == 40
        mapped = [r for r in records if not r.is_unmapped]
        assert len(mapped) >= 30

    def test_conversion_stats_accumulated(self, reference, read_pairs):
        persona = PersonaLikePipeline(reference)
        persona.run([p.read1 for p in read_pairs[:20]])
        stats = persona.stats
        assert stats.input_bytes > 0 and stats.output_bytes > 0
        assert stats.modelled_import_seconds > 0
        assert stats.modelled_export_seconds > 0

    def test_effective_throughput_penalized_by_conversion(self, reference, read_pairs):
        persona = PersonaLikePipeline(reference)
        reads = [p.read1 for p in read_pairs[:30]]
        persona.run(reads)
        bases = sum(len(r) for r in reads)
        raw, effective = persona.effective_throughput(bases, align_seconds=1e-6)
        assert effective < raw


class TestDiskPipeline:
    def test_end_to_end_with_real_files(
        self, reference, known_sites, truth, read_pairs, tmp_path
    ):
        subset = read_pairs[:80]
        fq1, fq2 = str(tmp_path / "r1.fastq"), str(tmp_path / "r2.fastq")
        write_fastq([p.read1 for p in subset], fq1)
        write_fastq([p.read2 for p in subset], fq2)
        pipeline = DiskPipeline(reference, known_sites, workdir=str(tmp_path / "wd"))
        result = pipeline.run(fq1, fq2)
        assert os.path.exists(result.vcf_path)
        assert len(result.timings) == 5
        assert all(t.io_seconds >= 0 for t in result.timings)
        assert 0.0 < result.io_fraction < 1.0
        # Intermediate SAM files really exist on disk (the paper's Table 1
        # bottleneck: every stage boundary is a file).
        sams = [f for f in os.listdir(tmp_path / "wd") if f.endswith(".sam")]
        assert len(sams) == 4

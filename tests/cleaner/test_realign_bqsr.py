"""Indel realignment and BQSR tests."""

import numpy as np
import pytest

from repro.cleaner.bqsr import (
    RecalibrationTable,
    apply_recalibration,
    build_recalibration_table,
    quality_calibration_error,
)
from repro.cleaner.realign import (
    RealignmentInterval,
    find_realignment_intervals,
    merge_intervals,
    realign_reads,
)
from repro.cleaner.sort import coordinate_sort, is_coordinate_sorted, records_overlapping
from repro.formats.cigar import Cigar
from repro.formats.fasta import Contig, Reference
from repro.formats.sam import SamHeader, SamRecord
from repro.formats.vcf import VcfRecord


def rec(qname, pos, cigar, seq, qual=None, rname="chr1", flag=0):
    return SamRecord(
        qname=qname, flag=flag, rname=rname, pos=pos, mapq=60,
        cigar=Cigar.parse(cigar), rnext="*", pnext=-1, tlen=0,
        seq=seq, qual=qual or ("I" * len(seq)),
    )


class TestSortHelpers:
    def test_coordinate_sort_and_check(self, sam_header):
        a = rec("a", 100, "4M", "ACGT")
        b = rec("b", 50, "4M", "ACGT")
        out = coordinate_sort([a, b], sam_header)
        assert [r.pos for r in out] == [50, 100]
        assert is_coordinate_sorted(out, sam_header)
        assert not is_coordinate_sorted([a, b], sam_header)

    def test_records_overlapping(self):
        a = rec("a", 10, "10M", "A" * 10)
        b = rec("b", 50, "10M", "A" * 10)
        assert records_overlapping([a, b], "chr1", 15, 55) == [a, b]
        assert records_overlapping([a, b], "chr1", 20, 50) == []
        assert records_overlapping([a, b], "chr2", 0, 100) == []


class TestIntervalDetection:
    def test_indel_cigar_creates_interval(self):
        r = rec("a", 100, "20M2D20M", "A" * 40)
        (iv,) = find_realignment_intervals([r])
        assert iv.contig == "chr1"
        assert iv.start <= 120 <= iv.end

    def test_clean_reads_create_no_intervals(self):
        assert find_realignment_intervals([rec("a", 0, "40M", "A" * 40)]) == []

    def test_nearby_intervals_merge(self):
        ivs = [
            RealignmentInterval("c", 10, 30),
            RealignmentInterval("c", 25, 45),
            RealignmentInterval("c", 100, 120),
        ]
        merged = merge_intervals(ivs)
        assert merged == [
            RealignmentInterval("c", 10, 45),
            RealignmentInterval("c", 100, 120),
        ]

    def test_duplicates_excluded(self):
        r = rec("a", 100, "20M2D20M", "A" * 40)
        r.set_duplicate(True)
        assert find_realignment_intervals([r]) == []


class TestRealignment:
    @pytest.fixture()
    def deletion_scene(self):
        """A reference and reads around a 4-base deletion in the donor."""
        rng = np.random.default_rng(17)
        seq = "".join(rng.choice(list("ACGT"), size=400))
        reference = Reference([Contig("chr1", seq.encode())])
        del_at = 200  # donor lacks reference[200:204]
        donor = seq[:del_at] + seq[del_at + 4 :]
        return reference, donor, del_at

    def test_misaligned_read_is_shifted_to_consensus(self, deletion_scene):
        reference, donor, del_at = deletion_scene
        # One "good" read carries the deletion in its CIGAR (as a perfect
        # aligner would); several bad reads were placed without the gap.
        good_start = del_at - 30
        good_seq = donor[good_start : good_start + 60]
        good = rec("good", good_start, "30M4D30M", good_seq)
        bad_reads = []
        for i, offset in enumerate((25, 20, 15)):
            start = del_at - offset
            seq = donor[start : start + 50]
            bad_reads.append(rec(f"bad{i}", start, "50M", seq))
        records = [good] + bad_reads
        intervals = find_realignment_intervals(records)
        assert intervals
        realigned = realign_reads(records, reference, intervals)
        assert realigned >= 1
        assert any("D" in str(r.cigar) for r in bad_reads)

    def test_consistent_reads_untouched(self, deletion_scene):
        reference, donor, del_at = deletion_scene
        far_start = 10
        seq = donor[far_start : far_start + 50]  # before the deletion
        r1 = rec("r1", far_start, "50M", seq)
        r2 = rec("r2", far_start + 3, "50M", donor[far_start + 3 : far_start + 53])
        realign_reads([r1, r2], reference, find_realignment_intervals([r1, r2]))
        assert str(r1.cigar) == "50M"


class TestBqsr:
    def _mini_scene(self, n_reads=80, miscalib=8):
        """Reads whose real error rate is worse than reported quality."""
        rng = np.random.default_rng(23)
        seq = "".join(rng.choice(list("ACGT"), size=2_000))
        reference = Reference([Contig("chr1", seq.encode())])
        records = []
        reported_q = 35
        true_q = reported_q - miscalib  # actual error rate is higher
        p_err = 10 ** (-true_q / 10)
        for i in range(n_reads):
            start = int(rng.integers(0, 1_900))
            bases = list(seq[start : start + 100])
            for j in range(100):
                if rng.random() < p_err:
                    bases[j] = "ACGT"[(("ACGT".index(bases[j])) + 1) % 4]
            records.append(
                rec(f"r{i}", start, "100M", "".join(bases), qual=chr(reported_q + 33) * 100)
            )
        return reference, records

    def test_table_counts_mismatches(self):
        reference, records = self._mini_scene()
        table = build_recalibration_table(records, reference, [])
        assert table.total_observations > 0
        assert table.total_errors > 0

    def test_known_sites_masked(self):
        reference, records = self._mini_scene()
        # Masking every position removes all observations.
        known = [
            VcfRecord("chr1", p, "A", "G") for p in range(0, 2_000)
        ]
        table = build_recalibration_table(records, reference, known)
        assert table.total_observations == 0

    def test_duplicates_excluded_from_counting(self):
        reference, records = self._mini_scene(n_reads=10)
        for r in records:
            r.set_duplicate(True)
        table = build_recalibration_table(records, reference, [])
        assert table.total_observations == 0

    def test_recalibration_moves_quality_toward_empirical(self):
        reference, records = self._mini_scene(miscalib=8)
        table = build_recalibration_table(records, reference, [])
        changed = apply_recalibration(records, table)
        assert changed > 0
        # Reported quality was 35 but the empirical rate implies ~25 (the
        # simulated miscalibration plus smoothing): new scores must drop
        # into that neighbourhood rather than stay at 35.
        mean_q = np.mean([q for r in records for q in r.phred_scores])
        assert 21 <= mean_q <= 31

    def test_calibration_error_shrinks(self):
        reference, records = self._mini_scene(miscalib=8)
        before = quality_calibration_error(records, reference, [])
        table = build_recalibration_table(records, reference, [])
        apply_recalibration(records, table)
        after = quality_calibration_error(records, reference, [])
        assert after < before

    def test_table_merge_is_additive(self):
        reference, records = self._mini_scene()
        full = build_recalibration_table(records, reference, [])
        half1 = build_recalibration_table(records[:40], reference, [])
        half2 = build_recalibration_table(records[40:], reference, [])
        merged = half1.merge(half2)
        assert merged.total_observations == full.total_observations
        assert merged.total_errors == full.total_errors
        assert merged.by_quality == full.by_quality

    def test_empty_table_is_identity(self):
        table = RecalibrationTable()
        assert table.recalibrate(30, 5, "AC") == 30

"""SamIndex / CoordinateIndex tests, cross-checked against linear scans."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cleaner.index import CoordinateIndex, SamIndex
from repro.cleaner.sort import coordinate_sort, records_overlapping
from repro.formats.cigar import Cigar
from repro.formats.sam import SamHeader, SamRecord
from repro.formats import flags as F


def rec(name, pos, length=100, rname="chr1", flag=0):
    return SamRecord(
        qname=name, flag=flag, rname=rname, pos=pos, mapq=60,
        cigar=Cigar.parse(f"{length}M"), rnext="*", pnext=-1, tlen=0,
        seq="A" * length, qual="I" * length,
    )


@pytest.fixture(scope="module")
def records():
    rng = np.random.default_rng(81)
    out = []
    for i in range(300):
        contig = "chr1" if rng.random() < 0.7 else "chr2"
        out.append(rec(f"r{i}", int(rng.integers(0, 20_000)), rname=contig))
    out.append(
        SamRecord("u", F.UNMAPPED, "*", -1, 0, Cigar(()), "*", -1, 0, "A", "I")
    )
    return out


class TestSamIndex:
    def test_matches_linear_scan(self, records):
        index = SamIndex.build(records)
        rng = np.random.default_rng(82)
        for _ in range(40):
            start = int(rng.integers(0, 20_000))
            end = start + int(rng.integers(1, 3_000))
            expected = records_overlapping(records, "chr1", start, end)
            got = index.query("chr1", start, end)
            assert got == expected

    def test_query_spanning_bins(self, records):
        index = SamIndex.build(records, bin_width=128)
        wide = index.query("chr1", 0, 20_100)
        expected = records_overlapping(records, "chr1", 0, 20_100)
        assert wide == expected

    def test_empty_interval(self, records):
        index = SamIndex.build(records)
        assert index.query("chr1", 100, 100) == []

    def test_unknown_contig(self, records):
        index = SamIndex.build(records)
        assert index.query("chrX", 0, 1_000) == []

    def test_unmapped_excluded(self, records):
        index = SamIndex.build(records)
        all_hits = index.query("chr1", 0, 10**6) + index.query("chr2", 0, 10**6)
        assert all(not r.is_unmapped for r in all_hits)

    def test_depth_counts_non_duplicates(self):
        a, b, c = rec("a", 100), rec("b", 120), rec("c", 150)
        b.set_duplicate(True)
        index = SamIndex.build([a, b, c])
        assert index.depth_at("chr1", 160) == 2  # a (100-200) + c; b is dup

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            SamIndex.build([], bin_width=0)


class TestCoordinateIndex:
    def test_offsets_are_lower_bounds(self, records):
        header = SamHeader.unsorted([("chr1", 30_000), ("chr2", 30_000)])
        ordered = coordinate_sort(records, header)
        index = CoordinateIndex.build(ordered, stride=16)
        rng = np.random.default_rng(83)
        for _ in range(30):
            pos = int(rng.integers(0, 20_000))
            offset = index.first_offset_at_or_after("chr1", pos)
            assert offset is not None
            # Everything before the returned offset on chr1 starts <= pos.
            for r in ordered[:offset]:
                if r.rname == "chr1" and not r.is_unmapped:
                    assert r.pos <= pos

    def test_unknown_contig_none(self, records):
        header = SamHeader.unsorted([("chr1", 30_000), ("chr2", 30_000)])
        index = CoordinateIndex.build(coordinate_sort(records, header))
        assert index.first_offset_at_or_after("chrX", 0) is None

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            CoordinateIndex.build([], stride=0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 5_000), st.integers(10, 300)), max_size=60),
    st.integers(0, 5_000),
    st.integers(1, 2_000),
)
def test_index_query_property(placements, start, span):
    records = [rec(f"p{i}", pos, length) for i, (pos, length) in enumerate(placements)]
    index = SamIndex.build(records, bin_width=256)
    end = start + span
    assert index.query("chr1", start, end) == records_overlapping(
        records, "chr1", start, end
    )

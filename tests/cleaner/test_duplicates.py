import pytest

from repro.cleaner.duplicates import mark_duplicates, remove_duplicates
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord


def rec(qname, pos, flag=0, qual="JJJJ", rname="chr1", cigar="4M", seq="ACGT"):
    return SamRecord(
        qname=qname, flag=flag, rname=rname, pos=pos, mapq=60,
        cigar=Cigar.parse(cigar), rnext="*", pnext=-1, tlen=0, seq=seq, qual=qual,
    )


class TestFragments:
    def test_same_position_same_strand_marked(self):
        a = rec("a", 100, qual="JJJJ")
        b = rec("b", 100, qual="!!!!")
        records, stats = mark_duplicates([a, b])
        assert not a.is_duplicate  # higher quality survives
        assert b.is_duplicate
        assert stats.duplicates_marked == 1

    def test_different_positions_not_marked(self):
        a, b = rec("a", 100), rec("b", 200)
        _, stats = mark_duplicates([a, b])
        assert stats.duplicates_marked == 0

    def test_opposite_strands_not_duplicates(self):
        a = rec("a", 100)
        b = rec("b", 97, flag=F.REVERSE)  # same span, other strand
        mark_duplicates([a, b])
        assert not a.is_duplicate and not b.is_duplicate

    def test_soft_clip_does_not_hide_duplicate(self):
        # Unclipped 5' positions coincide: 100 vs (101 - 1S).
        a = rec("a", 100, cigar="4M")
        b = rec("b", 101, cigar="1S3M", qual="!!!!")
        mark_duplicates([a, b])
        assert b.is_duplicate

    def test_reverse_strand_uses_unclipped_end(self):
        # Same 3'-end (5' of the reverse read): pos 100 + 4M == pos 98 + 6M.
        a = rec("a", 100, flag=F.REVERSE, cigar="4M")
        b = rec(
            "b", 98, flag=F.REVERSE, cigar="6M", seq="ACGTAC", qual="!!!!!!"
        )
        mark_duplicates([a, b])
        assert b.is_duplicate

    def test_triplicate_keeps_only_best(self):
        group = [rec("a", 50, qual="JJJJ"), rec("b", 50, qual="IIII"), rec("c", 50, qual="!!!!")]
        _, stats = mark_duplicates(group)
        assert stats.duplicates_marked == 2
        assert not group[0].is_duplicate


class TestPairs:
    def make_pair(self, name, start, mate_start, qual="JJJJ"):
        r1 = rec(f"{name}/1", start, flag=F.PAIRED | F.FIRST_IN_PAIR, qual=qual)
        r2 = rec(
            f"{name}/2",
            mate_start,
            flag=F.PAIRED | F.SECOND_IN_PAIR | F.REVERSE,
            qual=qual,
        )
        return [r1, r2]

    def test_pair_duplicates_marked_together(self):
        p1 = self.make_pair("x", 100, 300, qual="JJJJ")
        p2 = self.make_pair("y", 100, 300, qual="!!!!")
        _, stats = mark_duplicates(p1 + p2)
        assert all(r.is_duplicate for r in p2)
        assert not any(r.is_duplicate for r in p1)
        assert stats.duplicates_marked == 2

    def test_pairs_with_different_mate_positions_distinct(self):
        p1 = self.make_pair("x", 100, 300)
        p2 = self.make_pair("y", 100, 400)
        _, stats = mark_duplicates(p1 + p2)
        assert stats.duplicates_marked == 0

    def test_pair_not_confused_with_fragment(self):
        pair = self.make_pair("x", 100, 300)
        frag = rec("z", 100)
        mark_duplicates(pair + [frag])
        assert not frag.is_duplicate


class TestExclusions:
    def test_unmapped_ignored(self):
        u = rec("u", -1, flag=F.UNMAPPED, rname="*", cigar="*", seq="ACGT")
        _, stats = mark_duplicates([u])
        assert stats.examined == 0

    def test_secondary_ignored(self):
        s = rec("s", 100, flag=F.SECONDARY)
        a = rec("a", 100)
        mark_duplicates([s, a])
        assert not s.is_duplicate

    def test_rerun_clears_previous_flags(self):
        a = rec("a", 100)
        a.set_duplicate(True)
        mark_duplicates([a])
        assert not a.is_duplicate


class TestHelpers:
    def test_remove_duplicates(self):
        a, b = rec("a", 1, qual="JJJJ"), rec("b", 1, qual="!!!!")
        mark_duplicates([a, b])
        assert remove_duplicates([a, b]) == [a]

    def test_simulated_duplicate_rate_detected(self, aligned_records):
        records = [r.copy() for r in aligned_records]
        _, stats = mark_duplicates(records)
        # The simulator plants ~8% duplicate fragments; the marker must
        # find a similar share (alignment noise allows a band).
        assert 0.02 <= stats.duplicate_fraction <= 0.25

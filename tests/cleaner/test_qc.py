"""QC metrics tests (flagstat / depth / insert size)."""

import numpy as np
import pytest

from repro.cleaner.qc import (
    FlagStat,
    coverage_summary,
    depth_profile,
    flagstat,
    insert_size_metrics,
)
from repro.formats import flags as F
from repro.formats.cigar import Cigar
from repro.formats.sam import SamRecord


def rec(name, pos, flag=0, length=100, rname="chr1", tlen=0):
    return SamRecord(
        qname=name, flag=flag, rname=rname, pos=pos, mapq=60,
        cigar=Cigar.parse(f"{length}M") if pos >= 0 else Cigar(()),
        rnext="*", pnext=-1, tlen=tlen,
        seq="A" * length if pos >= 0 else "A",
        qual="I" * length if pos >= 0 else "I",
    )


class TestFlagstat:
    def test_counts_each_category(self):
        records = [
            rec("a", 100, flag=F.PAIRED | F.PROPER_PAIR),
            rec("b", 200, flag=F.PAIRED | F.REVERSE),
            rec("c", 300, flag=F.DUPLICATE),
            rec("d", -1, flag=F.UNMAPPED),
            rec("e", 400, flag=F.SECONDARY),
        ]
        stats = flagstat(records)
        assert stats.total == 5
        assert stats.mapped == 4
        assert stats.paired == 2
        assert stats.proper_pairs == 1
        assert stats.duplicates == 1
        assert stats.secondary == 1
        assert stats.reverse == 1

    def test_fractions(self):
        stats = flagstat([rec("a", 1), rec("b", -1, flag=F.UNMAPPED)])
        assert stats.mapped_fraction == 0.5

    def test_merge_additive(self):
        a = flagstat([rec("a", 1)])
        b = flagstat([rec("b", 2), rec("c", -1, flag=F.UNMAPPED)])
        merged = a.merge(b)
        assert merged.total == 3 and merged.mapped == 2

    def test_report_text(self):
        text = flagstat([rec("a", 1)]).report()
        assert "1 in total" in text and "mapped" in text

    def test_empty(self):
        assert flagstat([]).mapped_fraction == 0.0

    def test_real_aligned_records(self, aligned_records):
        stats = flagstat(aligned_records)
        assert stats.total == len(aligned_records)
        assert stats.mapped_fraction > 0.9
        assert stats.paired == stats.total  # everything is paired-end


class TestDepth:
    def test_profile_counts_overlaps(self):
        records = [rec("a", 10, length=20), rec("b", 20, length=20)]
        depth = depth_profile(records, "chr1", 0, 50)
        assert depth[5] == 0
        assert depth[15] == 1
        assert depth[25] == 2
        assert depth[45] == 0

    def test_duplicates_excluded_by_default(self):
        dup = rec("d", 10, flag=F.DUPLICATE, length=20)
        assert depth_profile([dup], "chr1", 0, 40).max() == 0
        assert depth_profile([dup], "chr1", 0, 40, include_duplicates=True).max() == 1

    def test_other_contig_ignored(self):
        assert depth_profile([rec("a", 5, rname="chr2")], "chr1", 0, 50).max() == 0

    def test_empty_interval(self):
        assert depth_profile([], "chr1", 10, 10).size == 0

    def test_coverage_summary(self):
        records = [rec(f"r{i}", i * 10, length=50) for i in range(10)]
        summary = coverage_summary(records, "chr1", 200)
        assert summary["mean_depth"] > 0
        assert 0 < summary["breadth"] <= 1.0


class TestInsertSize:
    def test_statistics_from_proper_pairs(self):
        records = [
            rec("a", 100, flag=F.PAIRED | F.PROPER_PAIR, tlen=300),
            rec("a2", 380, flag=F.PAIRED | F.PROPER_PAIR, tlen=-300),
            rec("b", 200, flag=F.PAIRED | F.PROPER_PAIR, tlen=320),
        ]
        metrics = insert_size_metrics(records)
        assert metrics.count == 2  # negative TLEN mate not double-counted
        assert metrics.mean == pytest.approx(310.0)
        assert metrics.min == 300 and metrics.max == 320

    def test_histogram_binning(self):
        records = [
            rec(f"r{i}", 0, flag=F.PAIRED | F.PROPER_PAIR, tlen=t)
            for i, t in enumerate((300, 301, 324, 326))
        ]
        metrics = insert_size_metrics(records, bin_width=25)
        assert metrics.histogram == {300: 3, 325: 1}

    def test_empty(self):
        assert insert_size_metrics([]).count == 0

    def test_simulated_inserts_match_config(self, aligned_records):
        """The simulator draws inserts ~N(300, 30); the metric must see it."""
        metrics = insert_size_metrics(aligned_records)
        assert metrics.count > 20
        assert 260 <= metrics.mean <= 340

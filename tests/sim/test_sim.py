"""Tests of the synthetic data substrate."""

import numpy as np
import pytest

from repro.sim import (
    ILLUMINA_HISEQ,
    ILLUMINA_OLD,
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)
from repro.sim.qualities import error_probability
from repro.sim.reads import Hotspot, expected_duplicate_rate
from repro.sim.reference import gc_fraction


class TestReference:
    def test_deterministic(self):
        a = generate_reference([5_000], seed=1)
        b = generate_reference([5_000], seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_reference([5_000], seed=1)
        b = generate_reference([5_000], seed=2)
        assert a != b

    def test_gc_content_respected(self):
        for target in (0.3, 0.5, 0.65):
            ref = generate_reference([200_000], gc_content=target, seed=3)
            assert abs(gc_fraction(ref) - target) < 0.02

    def test_named_contigs(self):
        ref = generate_reference({"alpha": 100, "beta": 200}, seed=0)
        assert ref.contig_names == ["alpha", "beta"]

    def test_n_runs_planted(self):
        ref = generate_reference([50_000], n_run_rate=0.001, n_run_length=30, seed=4)
        assert b"N" * 30 in ref.contigs[0].sequence

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_reference([100], gc_content=1.5)
        with pytest.raises(ValueError):
            generate_reference([0])


class TestVariants:
    def test_truth_records_match_donor(self, reference, truth):
        """Planted SNVs must actually appear in the donor sequence."""
        for rec in truth.records:
            if not rec.is_snv:
                continue
            ref_base = reference.fetch(rec.contig, rec.pos, rec.pos + 1)
            assert ref_base == rec.ref

    def test_donor_length_shifts_match_indels(self, reference, truth):
        for contig in reference.contigs:
            ins = sum(
                len(r.alt) - len(r.ref)
                for r in truth.records
                if r.contig == contig.name and r.is_insertion
            )
            dels = sum(
                len(r.ref) - len(r.alt)
                for r in truth.records
                if r.contig == contig.name and r.is_deletion
            )
            assert len(truth.donor[contig.name]) == len(contig) + ins - dels

    def test_donor_to_ref_identity_without_indels(self):
        ref = generate_reference([5_000], seed=5)
        truth = plant_variants(ref, snp_rate=0.01, indel_rate=0.0, seed=6)
        assert truth.donor_to_ref("chr1", 1234) == 1234

    def test_donor_to_ref_shifts_after_deletion(self):
        ref = generate_reference([5_000], seed=7)
        truth = plant_variants(ref, snp_rate=0.0, indel_rate=0.002, seed=8)
        deletions = [r for r in truth.records if r.is_deletion]
        if not deletions:
            pytest.skip("no deletion planted at this seed")
        d = deletions[0]
        shift = len(d.ref) - len(d.alt)
        donor_pos = d.pos + 50  # donor coordinate past the deletion
        # All earlier variants also shift; just verify monotone consistency.
        assert truth.donor_to_ref("chr1", donor_pos) >= donor_pos

    def test_known_sites_overlap_fraction(self, truth, reference):
        known = generate_known_sites(truth, reference, overlap_fraction=1.0, extra_sites=0, seed=9)
        truth_keys = truth.truth_keys()
        assert all(
            (r.contig, r.pos, r.ref, r.alt) in truth_keys for r in known
        )
        assert len(known) == len(truth_keys)

    def test_known_sites_extra_entries(self, truth, reference):
        known = generate_known_sites(truth, reference, overlap_fraction=0.0, extra_sites=50, seed=10)
        assert 0 < len(known) <= 50
        assert all(r.id_.startswith("rs") for r in known)


class TestQualities:
    def test_sample_length_and_range(self):
        rng = np.random.default_rng(0)
        qual = ILLUMINA_HISEQ.sample(120, rng)
        assert len(qual) == 120
        scores = [ord(c) - 33 for c in qual]
        assert min(scores) >= ILLUMINA_HISEQ.min_score
        assert max(scores) <= ILLUMINA_HISEQ.max_score

    def test_three_prime_decay(self):
        quals = ILLUMINA_OLD.sample_many(300, 100, seed=1)
        starts = np.mean([[ord(c) - 33 for c in q[:20]] for q in quals])
        ends = np.mean([[ord(c) - 33 for c in q[-20:]] for q in quals])
        assert starts > ends  # the familiar quality drop-off

    def test_old_profile_is_noisier(self):
        from repro.compression.stats import delta_histogram, concentration

        new = ILLUMINA_HISEQ.sample_many(100, 100, seed=2)
        old = ILLUMINA_OLD.sample_many(100, 100, seed=2)
        assert concentration(delta_histogram(new), 2) > concentration(
            delta_histogram(old), 2
        )

    def test_error_probability(self):
        assert error_probability(10) == pytest.approx(0.1)
        assert error_probability(30) == pytest.approx(0.001)


class TestReads:
    def test_pair_geometry(self, truth):
        config = ReadSimConfig(coverage=2.0, read_length=80, seed=11)
        pairs = ReadSimulator(truth.donor, config).simulate()
        assert pairs
        for pair in pairs[:20]:
            assert len(pair.read1) == 80 and len(pair.read2) == 80

    def test_coverage_scales_pair_count(self, truth):
        low = ReadSimulator(truth.donor, ReadSimConfig(coverage=2.0, seed=12)).simulate()
        high = ReadSimulator(truth.donor, ReadSimConfig(coverage=8.0, seed=12)).simulate()
        assert 2.5 < len(high) / len(low) < 5.5

    def test_duplicates_marked_in_names(self, truth):
        config = ReadSimConfig(coverage=6.0, duplicate_fraction=0.3, seed=13)
        pairs = ReadSimulator(truth.donor, config).simulate()
        dups = [p for p in pairs if "_dup" in p.name]
        frac = len(dups) / len(pairs)
        expected = expected_duplicate_rate(config)
        assert abs(frac - expected) < 0.08

    def test_hotspot_oversampled(self, truth):
        hotspot = Hotspot("chr1", 3_000, 3_500, multiplier=10.0)
        config = ReadSimConfig(coverage=4.0, seed=14, hotspots=[hotspot])
        pairs = ReadSimulator(truth.donor, config).simulate()
        in_spot = sum(
            1
            for p in pairs
            if p.name.startswith("sim_chr1_") and 2_800 <= int(p.name.split("_")[2]) < 3_500
        )
        genome = truth.donor.total_length()
        span = 700
        uniform_expectation = len(pairs) * span / genome
        assert in_spot > 3 * uniform_expectation

    def test_error_rate_tracks_quality(self, truth):
        """Low-quality profiles must produce more sequencing errors."""
        donor = truth.donor
        clean_cfg = ReadSimConfig(coverage=3.0, seed=15, quality_profile=ILLUMINA_HISEQ)
        noisy_cfg = ReadSimConfig(coverage=3.0, seed=15, quality_profile=ILLUMINA_OLD)

        def error_count(pairs):
            errors = 0
            checked = 0
            for p in pairs[:150]:
                parts = p.name.split("_")
                contig, start = parts[1], int(parts[2])
                expected = donor.fetch(contig, start, start + len(p.read1))
                errors += sum(1 for a, b in zip(p.read1.sequence, expected) if a != b)
                checked += 1
            return errors

        assert error_count(
            ReadSimulator(donor, noisy_cfg).simulate()
        ) > error_count(ReadSimulator(donor, clean_cfg).simulate())

    def test_deterministic(self, truth):
        a = ReadSimulator(truth.donor, ReadSimConfig(coverage=2.0, seed=16)).simulate()
        b = ReadSimulator(truth.donor, ReadSimConfig(coverage=2.0, seed=16)).simulate()
        assert [p.name for p in a] == [p.name for p in b]
        assert all(x.read1.sequence == y.read1.sequence for x, y in zip(a, b))

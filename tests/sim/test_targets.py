"""Targeted capture (WES / gene panel) simulation tests."""

import pytest

from repro.sim import (
    ReadSimConfig,
    TargetedReadSimulator,
    exome_panel,
    gene_panel,
    generate_reference,
    generate_targets,
    plant_variants,
)


@pytest.fixture(scope="module")
def big_reference():
    return generate_reference([60_000, 40_000], seed=61)


class TestPanelDesign:
    def test_fraction_respected(self, big_reference):
        panel = generate_targets(big_reference, 0.05, 300, seed=1)
        assert panel.covered_fraction(big_reference) == pytest.approx(0.05, abs=0.02)

    def test_targets_sorted_and_disjoint(self, big_reference):
        panel = generate_targets(big_reference, 0.03, 200, seed=2)
        by_contig: dict = {}
        for t in panel.targets:
            by_contig.setdefault(t.contig, []).append(t)
        for targets in by_contig.values():
            for a, b in zip(targets, targets[1:]):
                assert a.start <= b.start
                assert a.end <= b.start  # disjoint

    def test_exome_vs_panel_scale(self, big_reference):
        wes = exome_panel(big_reference, seed=3)
        panel = gene_panel(big_reference, seed=3)
        assert wes.total_span() > 5 * panel.total_span()
        assert len(wes.targets) > len(panel.targets)

    def test_contains(self, big_reference):
        panel = generate_targets(big_reference, 0.02, 300, seed=4)
        target = panel.targets[0]
        assert panel.contains(target.contig, target.start)
        assert panel.contains(target.contig, target.start - 50, padding=100)

    def test_invalid_fraction(self, big_reference):
        with pytest.raises(ValueError):
            generate_targets(big_reference, 0.0, 100)


class TestTargetedReads:
    @pytest.fixture(scope="class")
    def scene(self, big_reference):
        truth = plant_variants(big_reference, seed=62)
        panel = generate_targets(big_reference, 0.03, 400, seed=63)
        sim = TargetedReadSimulator(
            truth.donor,
            panel,
            ReadSimConfig(coverage=6.0, seed=64),
            off_target_rate=0.02,
        )
        return panel, sim.simulate()

    def test_reads_concentrate_on_targets(self, scene):
        panel, pairs = scene
        on_target = sum(
            1
            for p in pairs
            if panel.contains(p.name.split("_")[1], int(p.name.split("_")[2]), padding=500)
        )
        assert on_target / len(pairs) > 0.9

    def test_far_fewer_reads_than_wgs(self, big_reference, scene):
        from repro.sim import ReadSimulator

        panel, pairs = scene
        truth = plant_variants(big_reference, seed=62)
        wgs = ReadSimulator(truth.donor, ReadSimConfig(coverage=6.0, seed=64)).simulate()
        assert len(pairs) < 0.3 * len(wgs)

    def test_deterministic(self, big_reference):
        truth = plant_variants(big_reference, seed=62)
        panel = generate_targets(big_reference, 0.02, 300, seed=65)
        mk = lambda: TargetedReadSimulator(
            truth.donor, panel, ReadSimConfig(coverage=4.0, seed=66)
        ).simulate()
        assert [p.name for p in mk()] == [p.name for p in mk()]


class TestWorkloadPresets:
    def test_three_workloads_scale_correctly(self):
        from repro.cluster.costmodel import DEFAULT_COST_MODEL
        from repro.cluster.simulator import ClusterSimulator
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.workloads import WORKLOAD_PRESETS, workload_stages

        sim = ClusterSimulator(ClusterSpec.with_cores(256))
        spans = {
            w: sim.run_job(workload_stages(w, DEFAULT_COST_MODEL)).makespan
            for w in WORKLOAD_PRESETS
        }
        assert spans["WGS"] > spans["WES"] > spans["GenePanel"]

    def test_unknown_workload_rejected(self):
        from repro.cluster.costmodel import DEFAULT_COST_MODEL
        from repro.cluster.workloads import workload_stages

        with pytest.raises(ValueError, match="unknown workload"):
            workload_stages("RNAseq", DEFAULT_COST_MODEL)

    def test_gc_and_blocked_fractions_ordering(self):
        """The paper's Fig. 12 dump: WGS has the largest GC share and the
        smallest shuffle-disk share; GenePanel the reverse (fixed costs
        weigh more as data shrinks)."""
        from repro.cluster.blocked_time import blocked_time_analysis
        from repro.cluster.costmodel import DEFAULT_COST_MODEL
        from repro.cluster.simulator import ClusterSimulator
        from repro.cluster.topology import ClusterSpec
        from repro.cluster.workloads import WORKLOAD_PRESETS, workload_stages

        cores = 512
        sim = ClusterSimulator(ClusterSpec.with_cores(cores))
        improvements = {}
        for workload in WORKLOAD_PRESETS:
            result = sim.run_job(workload_stages(workload, DEFAULT_COST_MODEL))
            report = blocked_time_analysis(result, cores)
            improvements[workload] = report.disk_improvement
        # Every workload is CPU-bound (the paper's common conclusion).
        assert all(v < 0.10 for v in improvements.values())

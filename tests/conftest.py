"""Shared fixtures: a small deterministic genome, reads, and contexts.

The fixtures are deliberately tiny (a few tens of kilobases, hundreds of
reads) so the whole suite runs in minutes while still exercising every
code path: planted SNPs and indels, duplicates, paired-end orientation,
coverage hot-spots.
"""

from __future__ import annotations

import pytest

from repro.engine.context import EngineConfig, GPFContext
from repro.formats.sam import SamHeader
from repro.sim import (
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)
from repro.sim.reads import Hotspot


@pytest.fixture(scope="session")
def reference():
    return generate_reference([12_000, 6_000], seed=3)


@pytest.fixture(scope="session")
def truth(reference):
    return plant_variants(reference, snp_rate=0.002, indel_rate=0.0003, seed=4)


@pytest.fixture(scope="session")
def known_sites(truth, reference):
    return generate_known_sites(truth, reference, seed=5)


@pytest.fixture(scope="session")
def read_pairs(truth):
    config = ReadSimConfig(
        coverage=6.0,
        seed=9,
        duplicate_fraction=0.08,
        hotspots=[Hotspot("chr1", 2_000, 2_600, multiplier=8.0)],
    )
    return ReadSimulator(truth.donor, config).simulate()


@pytest.fixture(scope="session")
def aligned_records(reference, read_pairs):
    """Paired-end alignments of a coherent subset, coordinate sorted.

    The subset keeps whole duplicate groups together (copies share the
    fragment stem of their read name) and covers the chr1 hot-spot, so
    duplicate-marking and load-imbalance tests see the planted artifacts.
    """
    from repro.align.pairing import PairedEndAligner
    from repro.cleaner.sort import coordinate_sort

    def frag_key(pair):
        parts = pair.name.split("_")
        return (parts[1], int(parts[2]))

    subset = [p for p in read_pairs if frag_key(p) < ("chr1", 5_000)]
    subset.sort(key=lambda p: p.name)
    aligner = PairedEndAligner(reference)
    records = []
    for pair in subset:
        r1, r2 = aligner.align_pair(pair)
        records.extend((r1, r2))
    header = SamHeader.unsorted(reference.contig_lengths())
    return coordinate_sort(records, header)


@pytest.fixture(scope="session")
def sam_header(reference):
    return SamHeader.unsorted(reference.contig_lengths())


@pytest.fixture()
def ctx(tmp_path):
    context = GPFContext(
        EngineConfig(default_parallelism=3, spill_dir=str(tmp_path / "spill"))
    )
    yield context
    context.stop()

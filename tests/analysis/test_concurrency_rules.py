"""Seeded-bug fixtures for the GPF3xx self-analysis rules.

Each rule gets a *bad* fixture that must fire (true positive) and a
*correct twin* that must stay quiet (no false positive), plus the
suppression-comment escape hatch where the rule supports one.
"""

from __future__ import annotations

import textwrap

from repro.analysis.concurrency import (
    parse_suppressions,
    scan_concurrency_source,
)
from repro.analysis.diagnostics import Severity


def codes(source: str) -> list[str]:
    return [d.code for d in scan_concurrency_source(textwrap.dedent(source))]


# -- GPF301: unlocked access to a guarded attribute --------------------------
GPF301_BAD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0

        def inc(self):
            with self._lock:
                self._n += 1

        def peek(self):
            return self._n
"""

GPF301_GOOD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0

        def inc(self):
            with self._lock:
                self._n += 1

        def peek(self):
            with self._lock:
                return self._n
"""


class TestGPF301:
    def test_unlocked_read_fires(self):
        assert "GPF301" in codes(GPF301_BAD)

    def test_locked_twin_is_quiet(self):
        assert codes(GPF301_GOOD) == []

    def test_suppression_comment(self):
        suppressed = GPF301_BAD.replace(
            "return self._n",
            "return self._n  # gpf: unlocked-ok(racy peek is fine)",
        )
        assert codes(suppressed) == []

    def test_message_names_attribute_and_lock(self):
        diags = scan_concurrency_source(textwrap.dedent(GPF301_BAD))
        (diag,) = diags
        assert "self._n" in diag.message and "self._lock" in diag.message
        assert diag.line and diag.fingerprint
        assert diag.severity is Severity.WARNING

    def test_module_alias_import_still_counts_as_lock(self):
        aliased = GPF301_BAD.replace(
            "import threading", "import threading as _t"
        ).replace("threading.Lock()", "_t.Lock()")
        assert "GPF301" in codes(aliased)

    def test_from_import_alias_still_counts_as_lock(self):
        aliased = GPF301_BAD.replace(
            "import threading", "from threading import Lock as _L"
        ).replace("threading.Lock()", "_L()")
        assert "GPF301" in codes(aliased)

    def test_helper_called_under_lock_not_flagged(self):
        # _bump touches _n with no `with` of its own, but its only call
        # site holds the lock — the fixpoint must see that.
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def inc(self):
                    with self._lock:
                        self._bump()

                def _bump(self):
                    self._n += 1
        """
        assert codes(source) == []

    def test_init_writes_exempt(self):
        # __init__ publishing the object is the handoff point; writes
        # there are pre-sharing and must not fire.
        assert "GPF301" not in codes(GPF301_GOOD)

    def test_condition_aliases_wrapped_lock(self):
        # Condition(self._lock) IS self._lock; accesses under the
        # condition are accesses under the lock.
        source = """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._done = threading.Condition(self._lock)
                    self._value = None

                def set(self, v):
                    with self._lock:
                        self._value = v

                def get(self):
                    with self._done:
                        return self._value
        """
        assert codes(source) == []


# -- GPF302: lock-order cycles ------------------------------------------------
GPF302_BAD = """
    import threading

    class Pair:
        def __init__(self):
            self.x = threading.Lock()
            self.y = threading.Lock()

        def forward(self):
            with self.x:
                with self.y:
                    pass

        def backward(self):
            with self.y:
                with self.x:
                    pass
"""

GPF302_GOOD = """
    import threading

    class Pair:
        def __init__(self):
            self.x = threading.Lock()
            self.y = threading.Lock()

        def forward(self):
            with self.x:
                with self.y:
                    pass

        def also_forward(self):
            with self.x:
                with self.y:
                    pass
"""


class TestGPF302:
    def test_inverted_nesting_fires(self):
        found = codes(GPF302_BAD)
        assert "GPF302" in found

    def test_consistent_order_is_quiet(self):
        assert codes(GPF302_GOOD) == []

    def test_cycle_is_error_severity(self):
        diags = scan_concurrency_source(textwrap.dedent(GPF302_BAD))
        cycle = [d for d in diags if d.code == "GPF302"]
        assert cycle and all(d.severity is Severity.ERROR for d in cycle)

    def test_cross_class_cycle_via_method_call(self):
        # A holds A.l and calls into B (which takes B.k); B holds B.k
        # and calls back into A (which takes A.l): a deadlock two
        # single-class analyses would each miss.
        source = """
            import threading

            class A:
                def __init__(self):
                    self.l = threading.Lock()
                    self.b = B()

                def m(self):
                    with self.l:
                        self.b.n()

                def locked(self):
                    with self.l:
                        pass

            class B:
                def __init__(self):
                    self.k = threading.Lock()
                    self.a = A()

                def n(self):
                    with self.k:
                        pass

                def back(self):
                    with self.k:
                        self.a.locked()
        """
        assert "GPF302" in codes(source)


# -- GPF303: blocking call under a lock ---------------------------------------
GPF303_BAD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._data = {}

        def save(self, path, value):
            with self._lock:
                self._data[path] = value
                with open(path, "w") as fh:
                    fh.write(str(value))
"""

GPF303_GOOD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._data = {}

        def save(self, path, value):
            with self._lock:
                self._data[path] = value
            with open(path, "w") as fh:
                fh.write(str(value))
"""


class TestGPF303:
    def test_io_under_lock_fires(self):
        assert "GPF303" in codes(GPF303_BAD)

    def test_io_after_release_is_quiet(self):
        assert codes(GPF303_GOOD) == []

    def test_suppression_comment(self):
        suppressed = GPF303_BAD.replace(
            'with open(path, "w") as fh:',
            'with open(path, "w") as fh:  # gpf: lock-io-ok(ordering beats latency here)',
        )
        assert codes(suppressed) == []

    def test_wait_on_held_condition_is_quiet(self):
        # The JobQueue idiom: Condition.wait() releases the lock it
        # wraps, so waiting on the condition you hold never stalls
        # other threads — it must not fire.
        source = """
            import threading

            class Q:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []

                def push(self, item):
                    with self._cond:
                        self._items.append(item)
                        self._cond.notify()

                def pop(self):
                    with self._cond:
                        while not self._items:
                            self._cond.wait()
                        return self._items.pop()
        """
        assert codes(source) == []

    def test_publish_under_lock_fires(self):
        source = """
            import threading

            class Noisy:
                def __init__(self, bus):
                    self._lock = threading.Lock()
                    self._bus = bus
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1
                        self._bus.publish("bump", n=self._count)
        """
        assert "GPF303" in codes(source)


# -- GPF304: durability protocol ----------------------------------------------
GPF304_BAD = """
    import os

    def publish(path, data):
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(data)
        os.replace(tmp, path)
"""

GPF304_GOOD = """
    import os

    def fsync_directory(path):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def publish(path, data):
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(os.path.dirname(path))
"""


class TestGPF304:
    def test_unsynced_rename_fires(self):
        assert "GPF304" in codes(GPF304_BAD)

    def test_full_protocol_is_quiet(self):
        assert codes(GPF304_GOOD) == []

    def test_suppression_comment(self):
        suppressed = GPF304_BAD.replace(
            "os.replace(tmp, path)",
            "os.replace(tmp, path)  # gpf: durability-ok(scratch file)",
        )
        assert codes(suppressed) == []

    def test_pure_move_of_existing_file_is_quiet(self):
        # Renaming a file this function never wrote is not the
        # tmp-write-publish protocol; no fsync obligation here.
        source = """
            import os

            def archive(path, dest):
                os.replace(path, dest)
        """
        assert codes(source) == []


# -- GPF305: wall-clock deadlines ---------------------------------------------
GPF305_BAD = """
    import time

    def wait_until(timeout):
        deadline = time.time() + timeout
        while time.time() < deadline:
            pass
"""

GPF305_GOOD = """
    import time

    def wait_until(timeout):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pass
"""


class TestGPF305:
    def test_wall_clock_deadline_fires(self):
        assert "GPF305" in codes(GPF305_BAD)

    def test_monotonic_twin_is_quiet(self):
        assert codes(GPF305_GOOD) == []

    def test_suppression_comment(self):
        suppressed = GPF305_BAD.replace(
            "deadline = time.time() + timeout",
            "deadline = time.time() + timeout  # gpf: wallclock-ok(test)",
        ).replace(
            "while time.time() < deadline:",
            "while time.time() < deadline:  # gpf: wallclock-ok(test)",
        )
        assert codes(suppressed) == []

    def test_bare_timestamp_is_quiet(self):
        # time.time() as a plain timestamp (no deadline arithmetic) is
        # exactly what wall clocks are for.
        source = """
            import time

            def stamp(record):
                record["created_at"] = time.time()
                return record
        """
        assert codes(source) == []


# -- suppression parsing -------------------------------------------------------
class TestSuppressions:
    def test_parse_tags_to_codes(self):
        source = (
            "x = 1  # gpf: unlocked-ok(reason one)\n"
            "y = 2  # gpf: wallclock-ok(reason two)\n"
            "z = 3  # not a suppression\n"
        )
        got = parse_suppressions(source)
        assert got == {1: {"GPF301"}, 2: {"GPF305"}}

    def test_unknown_tag_ignored(self):
        assert parse_suppressions("x = 1  # gpf: bogus-ok(nope)\n") == {}

    def test_previous_line_suppresses(self):
        suppressed = GPF301_BAD.replace(
            "def peek(self):",
            "def peek(self):\n            # gpf: unlocked-ok(peek races by design)",
        )
        assert codes(suppressed) == []

"""gpfcheck closure analyzer (GPF2xx): nondeterminism, captured-state
mutation, large captures, and RDD-lineage walking."""

import random

import numpy as np
import pytest

from repro.analysis import analyze_closure, check_rdd_lineage, lint_plan
from repro.analysis.closures import (
    approx_size,
    find_captured_mutations,
    find_nondeterministic_calls,
    iter_lineage_functions,
)
from repro.core.bundles import SAMBundle
from repro.core.process import Process
from repro.core.resource import Resource
from repro.engine.broadcast import Broadcast


def codes(diags):
    return sorted({d.code for d in diags})


class TestNondeterminism:
    def test_unseeded_random_flagged(self):
        def task(x):
            return x + random.random()

        assert codes(analyze_closure(task)) == ["GPF201"]

    def test_unseeded_numpy_random_flagged(self):
        def task(part):
            return [np.random.randint(10) for _ in part]

        assert "GPF201" in codes(analyze_closure(task))

    def test_time_flagged(self):
        import time

        def task(x):
            return (x, time.time())

        assert "GPF201" in codes(analyze_closure(task))

    def test_seeded_default_rng_clean(self):
        def task(part):
            rng = np.random.default_rng(42)
            return [rng.random() for _ in part]

        assert analyze_closure(task) == []

    def test_random_seed_call_suppresses(self):
        def task(part):
            random.seed(7)
            return [random.random() for _ in part]

        assert analyze_closure(task) == []

    def test_lambda_flagged(self):
        task = lambda x: x * random.random()  # noqa: E731
        assert "GPF201" in codes(analyze_closure(task))

    def test_pure_function_clean(self):
        def task(x):
            return x * 2 + 1

        assert analyze_closure(task) == []


class TestCapturedMutation:
    def test_global_dict_mutation_flagged(self):
        hits = find_captured_mutations(_parse_func("def f(x):\n    counts[x] = 1\n"))
        assert hits and hits[0][0] == "counts"

    def test_freevar_append_flagged(self):
        captured = []

        def task(x):
            captured.append(x)
            return x

        assert codes(analyze_closure(task)) == ["GPF202"]

    def test_freevar_augassign_via_subscript_flagged(self):
        counts = {}

        def task(x):
            counts[x] = counts.get(x, 0) + 1
            return x

        assert codes(analyze_closure(task)) == ["GPF202"]

    def test_local_accumulator_clean(self):
        def task(part):
            acc = {}
            for x in part:
                acc[x] = acc.get(x, 0) + 1
            return list(acc.items())

        assert analyze_closure(task) == []

    def test_nested_function_locals_not_flagged(self):
        def task(part):
            def helper(items):
                inner = []
                inner.append(1)
                return items

            return helper(part)

        assert analyze_closure(task) == []

    def test_read_only_capture_clean(self):
        lookup = {1: "a"}

        def task(x):
            return lookup.get(x)

        assert analyze_closure(task) == []


class TestBigCaptures:
    def test_large_dict_capture_flagged(self):
        big = {i: "x" * 64 for i in range(5_000)}

        def task(x):
            return big.get(x)

        diags = analyze_closure(task, big_capture_bytes=64 * 1024)
        assert codes(diags) == ["GPF203"]
        assert "broadcast" in diags[0].fix_hint

    def test_broadcast_handle_is_fine(self):
        shared = Broadcast({i: "x" * 64 for i in range(5_000)})

        def task(x):
            return shared.value.get(x)

        assert analyze_closure(task, big_capture_bytes=64 * 1024) == []

    def test_small_capture_is_fine(self):
        small = {1: "a", 2: "b"}

        def task(x):
            return small.get(x)

        assert analyze_closure(task) == []

    def test_approx_size_scales_with_content(self):
        small = approx_size(["x" * 10] * 4)
        large = approx_size(["x" * 10] * 4_000)
        assert large > small * 100


class TestLineageWalking:
    def test_user_function_found_through_engine_wrapper(self, ctx):
        rdd = ctx.parallelize([1, 2, 3], 2).map(lambda x: x + random.random())
        diags = check_rdd_lineage(rdd)
        assert "GPF201" in codes(diags)

    def test_clean_lineage_has_no_diagnostics(self, ctx):
        rdd = (
            ctx.parallelize(range(10), 2)
            .map(lambda x: x * 2)
            .filter(lambda x: x > 4)
        )
        assert check_rdd_lineage(rdd) == []

    def test_lineage_spans_shuffles(self, ctx):
        rdd = (
            ctx.parallelize(range(10), 2)
            .key_by(lambda x: x % 2)
            .reduce_by_key(lambda a, b: a + b)
            .map_partitions(lambda part: [(k, v + random.random()) for k, v in part])
        )
        assert "GPF201" in codes(check_rdd_lineage(rdd))

    def test_iter_lineage_dedupe_safe_on_diamond(self, ctx):
        base = ctx.parallelize(range(4), 2).map(lambda x: x)
        union = base.map(lambda x: -x).union(base.map(lambda x: x + 1))
        names = [name for name, _ in iter_lineage_functions(union)]
        assert names  # walks both branches without blowing up


class TestPlanLevelClosureLint:
    def test_defined_input_rdd_is_linted(self, ctx):
        class Consume(Process):
            def execute(self, _ctx):
                self.outputs[0].define(1)

        rdd = ctx.parallelize([1, 2], 2).map(lambda x: x + random.random())
        bundle = SAMBundle("sam")
        bundle.define(rdd)
        out = Resource("out")
        report = lint_plan([Consume("c", [bundle], [out])], returned=[out])
        assert "GPF201" in report.codes()

    def test_closure_layer_can_be_disabled(self, ctx):
        from repro.analysis import LintOptions

        class Consume(Process):
            def execute(self, _ctx):
                self.outputs[0].define(1)

        rdd = ctx.parallelize([1, 2], 2).map(lambda x: x + random.random())
        bundle = SAMBundle("sam")
        bundle.define(rdd)
        out = Resource("out")
        report = lint_plan(
            [Consume("c", [bundle], [out])],
            returned=[out],
            options=LintOptions(check_closures=False),
        )
        assert "GPF201" not in report.codes()


def _parse_func(source: str):
    import ast

    tree = ast.parse(source)
    return tree.body[0]

"""GPF401: task closures that materialize lazily-decoded partitions."""

import ast

from repro.analysis.closures import (
    analyze_closure,
    find_partition_materializations,
)


def _func_node(source: str) -> ast.AST:
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            return node
    raise AssertionError("no function in source")


class TestAstCheck:
    def test_list_of_partition_param_flagged(self):
        node = _func_node(
            "def run(split, part):\n"
            "    records = list(part)\n"
            "    return records\n"
        )
        hits = find_partition_materializations(node)
        assert [desc for desc, _ in hits] == ["list(part)"]

    def test_tuple_of_partition_param_flagged(self):
        node = _func_node("def run(part):\n    return tuple(part)\n")
        assert find_partition_materializations(node)

    def test_materialize_call_flagged(self):
        node = _func_node(
            "def run(split, part):\n    return part.materialize()\n"
        )
        hits = find_partition_materializations(node)
        assert [desc for desc, _ in hits] == ["part.materialize()"]

    def test_lambda_flagged(self):
        node = _func_node("f = lambda part: list(part)\n")
        assert find_partition_materializations(node)

    def test_iterating_is_clean(self):
        node = _func_node(
            "def run(split, part):\n"
            "    return [x for x in part if x]\n"
        )
        assert find_partition_materializations(node) == []

    def test_list_of_local_is_clean(self):
        node = _func_node(
            "def run(split, part):\n"
            "    out = (x for x in part)\n"
            "    return list(out)\n"
        )
        assert find_partition_materializations(node) == []

    def test_list_of_method_result_is_clean(self):
        node = _func_node(
            "def run(split, acc):\n    return list(acc.items())\n"
        )
        assert find_partition_materializations(node) == []

    def test_nested_function_scope_not_confused(self):
        # The nested def's parameter is its own; materializing it is
        # still a hit (it is a .materialize-free list(param) in a nested
        # scope whose params the outer walk does not track).
        node = _func_node(
            "def run(split, part):\n"
            "    def inner(x):\n"
            "        return x\n"
            "    return [inner(r) for r in part]\n"
        )
        assert find_partition_materializations(node) == []


class TestAnalyzeClosure:
    def test_live_closure_flagged(self):
        def run(split, part):
            return list(part)

        diags = analyze_closure(run, where="stage:run")
        assert [d.code for d in diags] == ["GPF401"]
        assert "list(part)" in diags[0].message

    def test_materialize_flagged(self):
        def run(split, part):
            return part.materialize()

        assert [d.code for d in analyze_closure(run)] == ["GPF401"]

    def test_streaming_closure_clean(self):
        def run(split, part):
            out = []
            for record in part:
                out.append(record)
            return out

        assert analyze_closure(run) == []


class TestSourceScan:
    def test_scan_source_flags_materializing_closure(self, tmp_path):
        bad = tmp_path / "bad_plan.py"
        bad.write_text(
            "def build(ctx):\n"
            "    def run(split, part):\n"
            "        return list(part)\n"
            "    return ctx.parallelize(range(10), 2)"
            ".map_partitions_with_index(run)\n"
        )
        from repro.analysis import scan_source

        diags = scan_source(bad)
        assert [d.code for d in diags] == ["GPF401"]
        assert "list(part)" in diags[0].message

    def test_scan_source_clean_streaming_closure(self, tmp_path):
        good = tmp_path / "good_plan.py"
        good.write_text(
            "def build(ctx):\n"
            "    return ctx.parallelize(range(10), 2)"
            ".map_partitions(lambda part: [x for x in part])\n"
        )
        from repro.analysis import scan_source

        assert scan_source(good) == []


class TestPipelineBaselineStaysEmpty:
    def test_wgs_lineage_has_no_gpf401(self, ctx, reference, known_sites, read_pairs):
        from repro.wgs import build_wgs_pipeline

        handles = build_wgs_pipeline(
            ctx, reference, ctx.parallelize(read_pairs[:4], 2), known_sites
        )
        report = handles.pipeline.lint()
        assert not any(d.code == "GPF401" for d in report.diagnostics), (
            report.render()
        )

"""gpfcheck optimizer cross-check (GPF1xx): Fig. 7 fusion accounting."""

from repro.analysis import run_optimizer_checks
from repro.core.bundles import PartitionInfoBundle
from repro.core.optimizer import find_partition_chains
from repro.core.process import Process
from repro.core.resource import Resource


class FakePartitionProcess(Process):
    """A partition Process stub with a controllable PartitionInfo bundle."""

    def __init__(self, name, info_bundle, inputs, outputs):
        super().__init__(name, inputs=[info_bundle, *inputs], outputs=outputs)
        self.partition_info_bundle = info_bundle

    @property
    def is_partition_process(self) -> bool:
        return True

    def execute(self, ctx):
        for outp in self.outputs:
            outp.define(1)


class PlainProcess(Process):
    def __init__(self, name, inputs, outputs):
        super().__init__(name, inputs=inputs, outputs=outputs)

    def execute(self, ctx):
        for outp in self.outputs:
            outp.define(1)


def codes(diags):
    return sorted({d.code for d in diags})


def chain_of_three(info):
    a_in, ab, bc, c_out = (Resource(n) for n in ("a_in", "ab", "bc", "c_out"))
    plan = [
        FakePartitionProcess("A", info, [a_in], [ab]),
        FakePartitionProcess("B", info, [ab], [bc]),
        FakePartitionProcess("C", info, [bc], [c_out]),
    ]
    return plan, (a_in, ab, bc, c_out)


class TestFusedChainInfo:
    def test_clean_chain_reports_gpf103_only(self):
        info = PartitionInfoBundle.undefined("info")
        plan, _ = chain_of_three(info)
        diags = run_optimizer_checks(plan)
        assert codes(diags) == ["GPF103"]
        [diag] = diags
        assert "A -> B -> C" in diag.message
        assert "2 redundant bundle build(s)" in diag.message
        # Sanity: the optimizer agrees this is one chain.
        assert len(find_partition_chains(plan)) == 1


class TestMismatchedPartitionInfo:
    def test_different_info_bundles_break_fusion(self):
        info1 = PartitionInfoBundle.undefined("info1")
        info2 = PartitionInfoBundle.undefined("info2")
        a_in, ab, b_out = Resource("a_in"), Resource("ab"), Resource("b_out")
        plan = [
            FakePartitionProcess("A", info1, [a_in], [ab]),
            FakePartitionProcess("B", info2, [ab], [b_out]),
        ]
        diags = run_optimizer_checks(plan)
        assert "GPF101" in codes(diags)
        [diag] = [d for d in diags if d.code == "GPF101"]
        assert "PartitionInfo" in diag.message
        assert find_partition_chains(plan) == []


class TestSideConsumer:
    def test_side_consumer_breaks_the_chain(self):
        info = PartitionInfoBundle.undefined("info")
        a_in, ab, b_out = Resource("a_in"), Resource("ab"), Resource("b_out")
        side_out = Resource("side_out")
        plan = [
            FakePartitionProcess("A", info, [a_in], [ab]),
            FakePartitionProcess("B", info, [ab], [b_out]),
            PlainProcess("Side", [ab], [side_out]),
        ]
        diags = run_optimizer_checks(plan)
        assert "GPF102" in codes(diags)
        [diag] = [d for d in diags if d.code == "GPF102"]
        assert "Side" in diag.message
        assert find_partition_chains(plan) == []


class TestNonPartitionPlansAreQuiet:
    def test_plain_chain_no_diagnostics(self):
        a, b, c = Resource("a"), Resource("b"), Resource("c")
        plan = [PlainProcess("p1", [a], [b]), PlainProcess("p2", [b], [c])]
        assert run_optimizer_checks(plan) == []

    def test_empty_plan(self):
        assert run_optimizer_checks([]) == []

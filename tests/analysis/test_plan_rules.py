"""gpfcheck plan rules (GPF0xx) over the Process DAG."""

import pytest

from repro.analysis import CODES, Diagnostic, Severity, lint_plan
from repro.analysis.plan_rules import PlanContext, run_plan_rules
from repro.core.bundles import SAMBundle, VCFBundle
from repro.core.pipeline import Pipeline, PipelineLintError
from repro.core.process import Process, ProcessState
from repro.core.resource import Resource


class Passthrough(Process):
    def __init__(self, name, inputs, outputs, **kwargs):
        super().__init__(name, inputs=inputs, outputs=outputs, **kwargs)

    def execute(self, ctx):
        for outp in self.outputs:
            outp.define(1)


class TestDiagnosticModel:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic(code="GPF999", severity=Severity.ERROR, message="x")

    def test_render_mentions_code_and_location(self):
        diag = Diagnostic(
            code="GPF002",
            severity=Severity.ERROR,
            message="boom",
            process="p",
            resource="r",
            fix_hint="wire it",
        )
        text = diag.render()
        assert "GPF002" in text and "process=p" in text and "wire it" in text

    def test_report_orders_worst_first(self):
        report = lint_plan(
            [Passthrough("p", [Resource("missing")], [Resource("out")])]
        )
        rendered = report.sorted()
        assert rendered[0].severity is Severity.ERROR

    def test_every_emitted_code_is_registered(self):
        # The registry is the public contract; rules may only emit from it.
        assert all(code.startswith("GPF") for code in CODES)


class TestCycleRule:
    def test_two_process_cycle(self):
        a, b = Resource("a"), Resource("b")
        plan = [Passthrough("p1", [a], [b]), Passthrough("p2", [b], [a])]
        report = lint_plan(plan)
        assert "GPF001" in report.codes()
        assert report.has_errors

    def test_self_feeding_process_is_a_cycle(self):
        s = Resource("s")
        report = lint_plan([Passthrough("selfy", [s], [s])])
        assert "GPF001" in report.codes()


class TestDanglingInputRule:
    def test_undefined_unproduced_input(self):
        report = lint_plan(
            [Passthrough("p", [Resource("ghost")], [Resource("out")])],
        )
        [diag] = report.by_code("GPF002")
        assert diag.resource == "ghost" and diag.severity is Severity.ERROR

    def test_defined_input_is_fine(self):
        inp = Resource("inp")
        inp.define(1)
        out = Resource("out")
        report = lint_plan([Passthrough("p", [inp], [out])], returned=[out])
        assert "GPF002" not in report.codes()

    def test_produced_input_is_fine(self):
        inp = Resource("inp")
        inp.define(1)
        mid, out = Resource("mid"), Resource("out")
        plan = [
            Passthrough("first", [inp], [mid]),
            Passthrough("second", [mid], [out]),
        ]
        report = lint_plan(plan, returned=[out])
        assert "GPF002" not in report.codes()


class TestProducerRules:
    def test_multiple_producers(self):
        shared = Resource("shared")
        plan = [
            Passthrough("p1", [], [shared]),
            Passthrough("p2", [], [shared]),
        ]
        report = lint_plan(plan, returned=[shared])
        [diag] = report.by_code("GPF003")
        assert "p1" in diag.message and "p2" in diag.message

    def test_double_definition(self):
        already = Resource("already")
        already.define(42)
        report = lint_plan(
            [Passthrough("p", [], [already])], returned=[already]
        )
        assert "GPF008" in report.codes()


class TestDeadOutputRule:
    def test_unconsumed_output_warns(self):
        inp = Resource("inp")
        inp.define(1)
        report = lint_plan([Passthrough("p", [inp], [Resource("dead")])])
        [diag] = report.by_code("GPF004")
        assert diag.severity is Severity.WARNING

    def test_returned_output_is_fine(self):
        inp = Resource("inp")
        inp.define(1)
        out = Resource("out")
        report = lint_plan([Passthrough("p", [inp], [out])], returned=[out])
        assert "GPF004" not in report.codes()


class TestDisconnectedRule:
    def test_two_islands_warn(self):
        a, c = Resource("a"), Resource("c")
        a.define(1)
        c.define(1)
        out1, out2 = Resource("o1"), Resource("o2")
        plan = [
            Passthrough("x", [a], [out1]),
            Passthrough("y", [c], [out2]),
        ]
        report = lint_plan(plan, returned=[out1, out2])
        [diag] = report.by_code("GPF005")
        assert "2 disconnected" in diag.message


class TestBundleTypeRule:
    def test_sam_into_declared_vcf_slot(self):
        sam = SAMBundle.undefined("sam")
        producer = Passthrough("prod", [], [sam], output_types=[SAMBundle])
        consumer = Passthrough(
            "cons", [sam], [], input_types=[VCFBundle]
        )
        report = lint_plan([producer, consumer])
        [diag] = report.by_code("GPF006")
        assert diag.process == "cons"
        assert "VCFBundle" in diag.message and "SAMBundle" in diag.message
        assert "prod" in diag.message  # names the producer

    def test_matching_types_pass(self):
        sam = SAMBundle.undefined("sam")
        plan = [
            Passthrough("prod", [], [sam], output_types=[SAMBundle]),
            Passthrough("cons", [sam], [], input_types=[SAMBundle]),
        ]
        assert "GPF006" not in lint_plan(plan).codes()

    def test_none_entries_mean_any(self):
        sam = SAMBundle.undefined("sam")
        plan = [
            Passthrough("prod", [], [sam], output_types=[None]),
            Passthrough("cons", [sam], [], input_types=[None]),
        ]
        assert "GPF006" not in lint_plan(plan).codes()

    def test_mismatched_spec_length_rejected(self):
        with pytest.raises(ValueError, match="input_types has"):
            Passthrough(
                "bad", [Resource("r")], [], input_types=[SAMBundle, VCFBundle]
            )


class TestStateRule:
    def test_executed_process_flagged(self, ctx):
        inp, out = Resource("i"), Resource("o")
        inp.define(1)
        process = Passthrough("p", [inp], [out])
        process.run(ctx)
        assert process.state is ProcessState.END
        report = lint_plan([process], returned=[out])
        assert "GPF007" in report.codes()

    def test_reset_clears_the_flag(self, ctx):
        inp, out = Resource("i"), Resource("o")
        inp.define(1)
        process = Passthrough("p", [inp], [out])
        process.run(ctx)
        process.reset()
        report = lint_plan([process], returned=[out])
        assert "GPF007" not in report.codes()


class TestPipelineIntegration:
    def test_lint_method_and_mark_returned(self, ctx):
        a = Resource("a")
        a.define(0)
        out = Resource("out")
        pipeline = Pipeline("p", ctx)
        pipeline.add_process(Passthrough("only", [a], [out]))
        assert "GPF004" in pipeline.lint().codes()
        pipeline.mark_returned(out)
        assert "GPF004" not in pipeline.lint().codes()

    def test_strict_run_refuses_errors(self, ctx):
        pipeline = Pipeline("bad", ctx)
        pipeline.add_process(
            Passthrough("p", [Resource("ghost")], [Resource("out")])
        )
        with pytest.raises(PipelineLintError) as excinfo:
            pipeline.run(strict=True)
        assert "GPF002" in excinfo.value.report.codes()
        assert pipeline.executed == []  # nothing committed

    def test_strict_run_executes_clean_plan(self, ctx):
        a, out = Resource("a"), Resource("out")
        a.define(1)
        pipeline = Pipeline("ok", ctx)
        pipeline.add_process(Passthrough("p", [a], [out]))
        pipeline.mark_returned(out)
        pipeline.run(strict=True)
        assert out.value == 1

    def test_strict_rerun_without_reset_refused(self, ctx):
        a, out = Resource("a"), Resource("out")
        a.define(1)
        pipeline = Pipeline("ok", ctx)
        pipeline.add_process(Passthrough("p", [a], [out]))
        pipeline.mark_returned(out)
        pipeline.run(strict=True)
        with pytest.raises(PipelineLintError) as excinfo:
            pipeline.run(strict=True)
        assert "GPF007" in excinfo.value.report.codes()
        pipeline.reset()
        pipeline.run(strict=True)
        assert out.value == 1


class TestPlanContext:
    def test_indexes(self):
        inp, out = Resource("i"), Resource("o")
        inp.define(1)
        process = Passthrough("p", [inp], [out])
        plan_ctx = PlanContext.build([process])
        assert plan_ctx.producers[id(out)] == [process]
        assert plan_ctx.consumers[id(inp)] == [process]

    def test_run_plan_rules_on_empty_plan(self):
        assert run_plan_rules([]) == []


class TestWgsPlanClean:
    def test_wgs_plan_zero_errors_and_warnings(
        self, ctx, reference, known_sites, read_pairs
    ):
        from repro.wgs import build_wgs_pipeline

        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(read_pairs[:5], 2),
            known_sites,
        )
        report = handles.pipeline.lint()
        assert not report.has_errors, report.render()
        assert not report.warnings, report.render()
        # The IR -> BQSR -> HC chain must be reported as fusable.
        [info] = report.by_code("GPF103")
        assert "IndelRealign" in info.message
        assert "HaplotypeCaller" in info.message

    def test_cohort_plan_zero_errors(self, ctx, reference, known_sites, read_pairs):
        from repro.wgs import build_cohort_pipeline

        handles = build_cohort_pipeline(
            ctx,
            reference,
            [ctx.parallelize(read_pairs[:4], 2), ctx.parallelize(read_pairs[4:8], 2)],
            known_sites,
        )
        report = handles.pipeline.lint()
        assert not report.has_errors, report.render()

"""The runtime lock-order watchdog: proxies, refcounts, cycles."""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import lockwatch


@pytest.fixture
def watch():
    """Installed, empty watch; always uninstalled afterwards."""
    lockwatch.reset()
    lockwatch.install()
    try:
        yield lockwatch
    finally:
        lockwatch.uninstall()
        lockwatch.reset()


class Holder:
    def __init__(self):
        self.lock = threading.Lock()


class RHolder:
    def __init__(self):
        self.lock = threading.RLock()


class TestProxyBehavior:
    def test_lock_still_locks(self, watch):
        h = Holder()
        with h.lock:
            assert h.lock.locked()
        assert not h.lock.locked()

    def test_rlock_is_reentrant(self, watch):
        h = RHolder()
        with h.lock:
            with h.lock:
                pass  # would deadlock if the proxy broke reentrancy

    def test_condition_over_watched_plain_lock(self, watch):
        cond = threading.Condition(threading.Lock())
        with cond:
            assert not cond.wait(0.01)

    def test_condition_over_watched_rlock(self, watch):
        cond = threading.Condition(threading.RLock())
        with cond:
            assert not cond.wait(0.01)

    def test_acquire_release_counted(self, watch):
        h = Holder()
        for _ in range(3):
            with h.lock:
                pass
        (entry,) = watch.report()["locks"]
        assert entry["acquires"] == 3

    def test_uninstall_restores_factories(self):
        before = threading.Lock
        lockwatch.install()
        assert threading.Lock is not before
        lockwatch.uninstall()
        assert threading.Lock is before

    def test_watched_lock_survives_uninstall(self):
        lockwatch.install()
        h = Holder()
        lockwatch.uninstall()
        with h.lock:  # proxy still works, just no longer required
            pass


class TestRefcount:
    def test_nested_install_keeps_patch(self):
        original = threading.Lock
        lockwatch.install()
        lockwatch.install()
        lockwatch.uninstall()
        assert threading.Lock is not original  # one ref still live
        lockwatch.uninstall()
        assert threading.Lock is original

    def test_extra_uninstall_is_harmless(self):
        lockwatch.uninstall()
        assert not lockwatch.installed()

    def test_watching_context_manager(self):
        assert not lockwatch.installed()
        with lockwatch.watching():
            assert lockwatch.installed()
        assert not lockwatch.installed()


class TestGraph:
    def test_inverted_order_records_cycle(self, watch):
        a, b = Holder(), RHolder()

        def forward():
            for _ in range(20):
                with a.lock:
                    with b.lock:
                        pass

        def backward():
            for _ in range(20):
                with b.lock:
                    with a.lock:
                        pass

        # Sequential on purpose: the *order* is wrong even when the
        # threads happen not to interleave — that is the watchdog's
        # whole advantage over an actual deadlock repro.
        t1 = threading.Thread(target=forward)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward)
        t2.start()
        t2.join()

        report = watch.report()
        assert report["cycles"], report
        assert len(report["edges"]) == 2

    def test_consistent_order_has_no_cycle(self, watch):
        a, b = Holder(), RHolder()
        for _ in range(20):
            with a.lock:
                with b.lock:
                    pass
        report = watch.report()
        assert report["cycles"] == []
        assert len(report["edges"]) == 1

    def test_two_instances_same_site_are_self_edge_not_cycle(self, watch):
        outer, inner = Holder(), Holder()  # identical creation site class
        with outer.lock:
            with inner.lock:
                pass
        report = watch.report()
        assert report["cycles"] == []
        assert report["self_edges"], report

    def test_reentrant_rlock_records_nothing(self, watch):
        h = RHolder()
        with h.lock:
            with h.lock:
                pass
        report = watch.report()
        assert report["edges"] == [] and report["self_edges"] == []

    def test_reset_clears_graph(self, watch):
        a, b = Holder(), RHolder()
        with a.lock:
            with b.lock:
                pass
        assert watch.report()["edges"]
        watch.reset()
        assert watch.report() == {
            "locks": [],
            "edges": [],
            "self_edges": [],
            "cycles": [],
        }

    def test_dump_report_writes_json(self, watch, tmp_path):
        a, b = Holder(), RHolder()
        with a.lock:
            with b.lock:
                pass
        path = tmp_path / "lock_graph.json"
        data = lockwatch.dump_report(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == data
        assert on_disk["edges"] and on_disk["cycles"] == []

"""Lint gate over the shipped plans: every examples/*.py AND
benchmarks/*.py source-scans clean, and the plans the examples build
pass gpfcheck with zero errors."""

from pathlib import Path

import pytest

from repro.analysis import Severity, scan_directory, scan_source

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))
BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
BENCHMARK_FILES = sorted(BENCHMARKS_DIR.glob("*.py"))


class TestSourceScan:
    def test_examples_directory_found(self):
        assert EXAMPLE_FILES, f"no examples under {EXAMPLES_DIR}"

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.name for p in EXAMPLE_FILES]
    )
    def test_example_scans_clean(self, path):
        diags = scan_source(path)
        rendered = "\n".join(d.render() for d in diags)
        assert not diags, f"{path.name} has closure findings:\n{rendered}"

    def test_scan_directory_covers_every_example(self):
        results = scan_directory(EXAMPLES_DIR)
        assert set(results) == {p.name for p in EXAMPLE_FILES}

    def test_benchmarks_directory_found(self):
        assert BENCHMARK_FILES, f"no benchmarks under {BENCHMARKS_DIR}"

    @pytest.mark.parametrize(
        "path", BENCHMARK_FILES, ids=[p.name for p in BENCHMARK_FILES]
    )
    def test_benchmark_scans_clean(self, path):
        # Benchmarks ship closures to RDD tasks just like examples do;
        # an unseeded RNG or wall-clock read inside one would make the
        # published numbers non-reproducible (GPF201/GPF204).
        diags = scan_source(path)
        rendered = "\n".join(d.render() for d in diags)
        assert not diags, f"{path.name} has closure findings:\n{rendered}"

    def test_scan_directory_covers_every_benchmark(self):
        results = scan_directory(BENCHMARKS_DIR)
        assert set(results) == {p.name for p in BENCHMARK_FILES}

    def test_scan_catches_planted_nondeterminism(self, tmp_path):
        bad = tmp_path / "bad_plan.py"
        bad.write_text(
            "import random\n"
            "def build(ctx):\n"
            "    return ctx.parallelize(range(10), 2)"
            ".map(lambda x: x + random.random())\n"
        )
        diags = scan_source(bad)
        assert [d.code for d in diags] == ["GPF201"]

    def test_scan_catches_planted_mutation(self, tmp_path):
        bad = tmp_path / "bad_mut.py"
        bad.write_text(
            "seen = []\n"
            "def build(ctx):\n"
            "    rdd = ctx.parallelize(range(10), 2)\n"
            "    def track(x):\n"
            "        seen.append(x)\n"
            "        return x\n"
            "    return rdd.map(track)\n"
        )
        diags = scan_source(bad)
        assert [d.code for d in diags] == ["GPF202"]

    def test_scan_resolves_named_module_functions(self, tmp_path):
        bad = tmp_path / "bad_named.py"
        bad.write_text(
            "import random\n"
            "def jitter(x):\n"
            "    return x + random.random()\n"
            "def build(ctx):\n"
            "    return ctx.parallelize(range(10), 2).map(jitter)\n"
        )
        assert [d.code for d in scan_source(bad)] == ["GPF201"]

    def test_unparseable_file_reported(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def build(:\n")
        [diag] = scan_source(bad)
        assert diag.severity is Severity.ERROR


class TestExamplePlansLintClean:
    """Build the plans the examples build (tiny data) and lint them."""

    def test_wgs_files_plan(self, ctx, reference, known_sites, tmp_path):
        # wgs_from_files.py / gpf run: lazy file RDD into the WGS plan.
        from repro.engine.files import load_fastq_pair_lazy
        from repro.formats.fasta import write_fasta
        from repro.formats.fastq import write_fastq
        from repro.sim import ReadSimConfig, ReadSimulator, plant_variants
        from repro.wgs import build_wgs_pipeline

        truth = plant_variants(reference, snp_rate=0.002, indel_rate=0.0, seed=7)
        pairs = ReadSimulator(
            truth.donor, ReadSimConfig(coverage=1.0, seed=8)
        ).simulate()[:10]
        fq1 = str(tmp_path / "r1.fastq")
        fq2 = str(tmp_path / "r2.fastq")
        write_fastq([p.read1 for p in pairs], fq1)
        write_fastq([p.read2 for p in pairs], fq2)
        write_fasta(reference, str(tmp_path / "ref.fa"))

        rdd = load_fastq_pair_lazy(ctx, fq1, fq2, 2)
        handles = build_wgs_pipeline(ctx, reference, rdd, known_sites)
        report = handles.pipeline.lint()
        assert not report.has_errors, report.render()
        assert not report.warnings, report.render()

    def test_gvcf_plan(self, ctx, reference, known_sites, read_pairs):
        # cohort_joint_calling.py's per-sample gVCF variant of the plan.
        from repro.wgs import build_wgs_pipeline

        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(read_pairs[:5], 2),
            known_sites,
            use_gvcf=True,
        )
        report = handles.pipeline.lint()
        assert not report.has_errors, report.render()

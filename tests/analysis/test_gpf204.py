"""GPF204: RDD closures capturing unseeded RNGs or reading the wall clock.

Recomputation-under-retry only replays identically when every draw and
timestamp in a task is derived from stable task identity; GPF204 flags
the captures/calls that break that.
"""

import random

import numpy as np

from repro.analysis import analyze_closure
from repro.analysis.closures import find_unseeded_rng_and_clock
from repro.analysis.diagnostics import CODES
from repro.analysis.source_scan import scan_source


def codes(diags):
    return sorted({d.code for d in diags})


def _parse(source):
    import ast

    return ast.parse(source)


class TestCapturedRngInstances:
    def test_captured_stdlib_random_flagged(self):
        rng = random.Random(3)  # seeded, but its draw state still mutates

        def task(x):
            return x + rng.random()

        diags = analyze_closure(task)
        assert "GPF204" in codes(diags)
        assert any("live RNG instance" in d.message for d in diags)

    def test_captured_numpy_generator_flagged(self):
        rng = np.random.default_rng(42)

        def task(x):
            return x + rng.random()

        assert "GPF204" in codes(analyze_closure(task))

    def test_captured_legacy_randomstate_flagged(self):
        rng = np.random.RandomState(7)

        def task(x):
            return x + rng.rand()

        assert "GPF204" in codes(analyze_closure(task))

    def test_plain_captures_clean(self):
        offset = 10

        def task(x):
            return x + offset

        assert analyze_closure(task) == []


class TestUnseededConstructionAst:
    def test_argless_random_flagged(self):
        hits = find_unseeded_rng_and_clock(
            _parse("def f(x):\n    rng = random.Random()\n    return rng.random()\n")
        )
        assert len(hits) == 1 and "Random" in hits[0][0]

    def test_argless_default_rng_flagged(self):
        hits = find_unseeded_rng_and_clock(
            _parse("def f(p):\n    rng = np.random.default_rng()\n    return rng\n")
        )
        assert len(hits) == 1

    def test_seeded_constructions_clean(self):
        source = (
            "def f(p, split):\n"
            "    a = random.Random(7)\n"
            "    b = np.random.default_rng((7, split))\n"
            "    c = np.random.RandomState(seed=1)\n"
            "    return a, b, c\n"
        )
        assert find_unseeded_rng_and_clock(_parse(source)) == []

    def test_wall_clock_reads_flagged(self):
        source = (
            "def f(x):\n"
            "    a = datetime.now()\n"
            "    b = datetime.datetime.utcnow()\n"
            "    c = date.today()\n"
            "    return a, b, c\n"
        )
        hits = find_unseeded_rng_and_clock(_parse(source))
        assert len(hits) == 3

    def test_unrelated_now_attribute_clean(self):
        # .now() on a non-datetime root is someone else's API.
        source = "def f(x):\n    return clock_service.now()\n"
        assert find_unseeded_rng_and_clock(_parse(source)) == []

    def test_closure_diagnostic_carries_fix_hint(self):
        def task(part):
            rng = random.Random()
            return [x + rng.random() for x in part]

        hits = [d for d in analyze_closure(task) if d.code == "GPF204"]
        assert hits and hits[0].fix_hint


class TestSourceScan:
    def test_lambda_with_wall_clock_flagged(self, tmp_path):
        path = tmp_path / "plan.py"
        path.write_text(
            "from datetime import datetime\n"
            "out = rdd.map(lambda x: (x, datetime.now()))\n"
        )
        diags = scan_source(path)
        assert "GPF204" in codes(diags)

    def test_named_function_with_unseeded_rng_flagged(self, tmp_path):
        path = tmp_path / "plan.py"
        path.write_text(
            "import random\n"
            "def jitter(x):\n"
            "    return x + random.Random().random()\n"
            "out = rdd.map(jitter)\n"
        )
        diags = scan_source(path)
        assert "GPF204" in codes(diags)

    def test_seeded_plan_clean(self, tmp_path):
        path = tmp_path / "plan.py"
        path.write_text(
            "import numpy as np\n"
            "def jitter(x):\n"
            "    return x + np.random.default_rng((7, x)).random()\n"
            "out = rdd.map(jitter)\n"
        )
        assert "GPF204" not in codes(scan_source(path))


def test_code_registered():
    assert "GPF204" in CODES

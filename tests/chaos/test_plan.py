"""ChaosPlan / ChaosRule: validation and JSON round-trips."""

from __future__ import annotations

import pytest

from repro.chaos import ChaosPlan, ChaosRule


class TestRuleValidation:
    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            ChaosRule(site="block.write", fault="eio")
        with pytest.raises(ValueError, match="exactly one"):
            ChaosRule(site="block.write", fault="eio", probability=0.5, nth=1)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            ChaosRule(site="block.write", fault="meteor", nth=1)

    def test_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            ChaosRule(site="s", fault="eio", probability=1.5)
        with pytest.raises(ValueError, match="nth"):
            ChaosRule(site="s", fault="eio", nth=0)
        with pytest.raises(ValueError, match="every"):
            ChaosRule(site="s", fault="eio", every=0)
        with pytest.raises(ValueError, match="site"):
            ChaosRule(site="", fault="eio", nth=1)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ChaosRule fields"):
            ChaosRule.from_dict({"site": "s", "fault": "eio", "nth": 1, "rate": 2})


class TestPlanSerialization:
    def test_round_trip(self):
        plan = ChaosPlan(
            seed=42,
            name="demo",
            rules=[
                ChaosRule(site="block.spill", fault="enospc", probability=0.3),
                ChaosRule(site="task.attempt", fault="slow", every=5, delay=0.1),
                ChaosRule(site="serve.persist.clock", fault="clock_skew",
                          nth=1, skew=60.0),
            ],
        )
        restored = ChaosPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.sites() == [
            "block.spill", "serve.persist.clock", "task.attempt"
        ]

    def test_dict_rules_coerced(self):
        plan = ChaosPlan(rules=[{"site": "shuffle.fetch", "fault": "eio", "nth": 2}])
        assert isinstance(plan.rules[0], ChaosRule)
        assert plan.rules[0].nth == 2

    def test_save_load(self, tmp_path):
        plan = ChaosPlan(seed=7, rules=[{"site": "a", "fault": "die", "nth": 1}])
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert ChaosPlan.load(path) == plan

    def test_with_seed_keeps_rules(self):
        plan = ChaosPlan(seed=1, rules=[{"site": "a", "fault": "eio", "nth": 1}])
        reseeded = plan.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.rules == plan.rules

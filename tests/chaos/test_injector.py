"""ChaosInjector: deterministic replay, fault realization, events."""

from __future__ import annotations

import errno
import pickle

import pytest

from repro.chaos import ChaosInjector, ChaosPlan, ChaosRule
from repro.engine.faults import InjectedFault
from repro.obs.events import EventBus, validate_event


def make(rules, seed=0, events=None):
    return ChaosInjector(ChaosPlan(seed=seed, rules=rules), events=events)


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        injector = make([ChaosRule(site="s", fault="eio", nth=3)])
        injector.hit("s")
        injector.hit("s")
        with pytest.raises(OSError) as err:
            injector.hit("s")
        assert err.value.errno == errno.EIO
        for _ in range(10):
            injector.hit("s")  # never again
        assert injector.sequence() == [("s", "eio", 3)]

    def test_every_kth_hit(self):
        injector = make([ChaosRule(site="s", fault="die", every=2, max_faults=2)])
        fired = 0
        for _ in range(10):
            try:
                injector.hit("s")
            except InjectedFault:
                fired += 1
        assert fired == 2  # max_faults caps the every-trigger
        assert [h for _, _, h in injector.sequence()] == [2, 4]

    def test_probability_replays_identically(self):
        rules = [ChaosRule(site="s", fault="eio", probability=0.4)]
        sequences = []
        for _ in range(2):
            injector = make(rules, seed=123)
            for _ in range(50):
                try:
                    injector.hit("s")
                except OSError:
                    pass
            sequences.append(injector.sequence())
        assert sequences[0] == sequences[1]
        assert 0 < len(sequences[0]) < 50

    def test_different_seed_different_draws(self):
        rules = [ChaosRule(site="s", fault="eio", probability=0.4)]
        runs = {}
        for seed in (1, 2):
            injector = make(rules, seed=seed)
            for _ in range(50):
                try:
                    injector.hit("s")
                except OSError:
                    pass
            runs[seed] = injector.sequence()
        assert runs[1] != runs[2]

    def test_site_wildcard(self):
        injector = make([ChaosRule(site="block.*", fault="eio", every=1)])
        with pytest.raises(OSError):
            injector.hit("block.write")
        with pytest.raises(OSError):
            injector.hit("block.spill.fsync")
        injector.hit("shuffle.fetch")  # no match, no fault
        assert injector.injected == 2


class TestFaultRealization:
    def test_raising_kinds(self):
        cases = {
            "enospc": (OSError, errno.ENOSPC),
            "eio": (OSError, errno.EIO),
            "conn_reset": (ConnectionResetError, errno.ECONNRESET),
        }
        for fault, (exc_type, exc_errno) in cases.items():
            injector = make([ChaosRule(site="s", fault=fault, nth=1)])
            with pytest.raises(exc_type) as err:
                injector.hit("s")
            assert err.value.errno == exc_errno

    def test_die_and_exit(self):
        injector = make([ChaosRule(site="s", fault="die", nth=1)])
        with pytest.raises(InjectedFault):
            injector.hit("s")
        injector = make([ChaosRule(site="s", fault="exit", nth=1)])
        with pytest.raises(SystemExit):
            injector.hit("s")

    def test_slow_sleeps_but_returns(self):
        injector = make([ChaosRule(site="s", fault="slow", nth=1, delay=0.01)])
        injector.hit("s")  # sleeps 10ms, no exception
        assert injector.sequence() == [("s", "slow", 1)]


class TestMangle:
    def test_corrupt_flips_one_byte_deterministically(self):
        data = bytes(range(64))
        outputs = set()
        for _ in range(2):
            injector = make([ChaosRule(site="s", fault="corrupt", nth=1)], seed=5)
            outputs.add(injector.mangle("s", data))
        assert len(outputs) == 1
        (mangled,) = outputs
        assert mangled != data and len(mangled) == len(data)
        assert sum(1 for a, b in zip(data, mangled) if a != b) == 1

    def test_torn_truncates(self):
        injector = make([ChaosRule(site="s", fault="torn", nth=1)], seed=5)
        data = bytes(range(64))
        torn = injector.mangle("s", data)
        assert len(torn) < len(data)
        assert data.startswith(torn)

    def test_no_rule_passthrough(self):
        injector = make([ChaosRule(site="other", fault="corrupt", nth=1)])
        data = b"payload"
        assert injector.mangle("s", data) is data


class TestSkew:
    def test_skew_sums_firing_rules(self):
        injector = make(
            [
                ChaosRule(site="clock", fault="clock_skew", nth=1, skew=30.0),
                ChaosRule(site="clock", fault="clock_skew", nth=1, skew=-10.0),
            ]
        )
        assert injector.skew("clock") == pytest.approx(20.0)
        assert injector.skew("clock") == 0.0  # nth=1 rules are spent


class TestObservability:
    def test_chaos_inject_events_validate(self):
        bus = EventBus()
        seen: list[dict] = []
        bus.subscribe(seen.append)
        injector = make(
            [ChaosRule(site="s", fault="eio", every=2)], events=bus
        )
        for _ in range(4):
            try:
                injector.hit("s", path="x.bin")
            except OSError:
                pass
        kinds = [e["kind"] for e in seen]
        assert kinds == ["chaos.inject", "chaos.inject"]
        for event in seen:
            assert validate_event(event) == []
            assert event["site"] == "s" and event["fault"] == "eio"
            assert event["path"] == "x.bin"

    def test_task_injector_protocol(self):
        injector = make([ChaosRule(site="task.attempt", fault="die", nth=1)])
        with pytest.raises(InjectedFault):
            injector("map", 0, 1)
        assert injector.site_hits("task.attempt") == 1


class TestPickling:
    def test_pickle_drops_lock_and_events(self):
        bus = EventBus()
        injector = make([ChaosRule(site="s", fault="eio", nth=2)], events=bus)
        injector.hit("s")
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.events is None
        with pytest.raises(OSError):
            clone.hit("s")  # counters survived the round-trip

"""The chaos scenario suite: fast scenarios end-to-end.

The full suite runs in the CI chaos-smoke job (``gpf chaos``); here we
pin the cheapest pipeline scenario, the expected-failure scenario, and
the serve overload/recovery cycle so a regression in the contract
(byte-identical-or-typed-failure, replayable sequences, schema-valid
events) fails the unit suite too.
"""

from __future__ import annotations

import json

from repro.chaos import SCENARIOS, run_scenario


class TestScenarioContract:
    def test_journal_enospc_identical_output(self, tmp_path):
        outcome = run_scenario("journal-enospc", seed=7, out_dir=str(tmp_path))
        assert outcome.passed, outcome.detail
        assert outcome.outcome == "identical"
        assert outcome.replay_ok and outcome.events_ok
        assert outcome.injected == [1, 1]
        # The event logs landed as artifacts.
        log = tmp_path / "journal-enospc" / "run0.events.jsonl"
        events = [json.loads(line) for line in log.read_text().splitlines()]
        assert any(e["kind"] == "journal.disabled" for e in events)
        assert any(e["kind"] == "chaos.inject" for e in events)

    def test_retry_budget_typed_failure(self):
        outcome = run_scenario("retry-budget", seed=7)
        assert outcome.passed, outcome.detail
        assert outcome.outcome == "typed_failure"
        assert outcome.replay_ok

    def test_serve_overload_sheds_and_recovers(self):
        outcome = run_scenario("serve-overload", seed=7)
        assert outcome.passed, outcome.detail
        assert outcome.outcome == "recovered"
        assert outcome.replay_ok


class TestRegistry:
    def test_every_scenario_has_a_description(self):
        for name, (fn, description) in SCENARIOS.items():
            assert callable(fn), name
            assert description, name

    def test_unknown_scenario_raises(self):
        import pytest

        with pytest.raises(KeyError, match="unknown chaos scenario"):
            run_scenario("meteor-strike")

"""Redundancy-elimination (Fig. 7) tests."""

import pytest

from repro.core.bundles import PartitionInfoBundle, SAMBundle
from repro.core.optimizer import (
    FusedPartitionChain,
    eliminate_redundancy,
    find_partition_chains,
)
from repro.core.process import Process
from repro.core.resource import Resource


class FakePartitionProcess(Process):
    """Minimal partition Process implementing the optimizer protocol."""

    def __init__(self, name, info, inp, outp):
        super().__init__(name, inputs=[info, inp], outputs=[outp])
        self.partition_info_bundle = info
        self.built = 0
        self.applied = 0

    @property
    def is_partition_process(self):
        return True

    def build_bundle_rdd(self, ctx):
        # Real partition Processes bucket their *input* bundle; the fake
        # mirrors that by seeding the bundle from the input resource.
        self.built += 1
        return ctx.parallelize([(0, str(self.inputs[1].value))], 1)

    def apply_to_bundle(self, bundle_rdd, ctx):
        self.applied += 1
        name = self.name
        return bundle_rdd.map(lambda kv: (kv[0], kv[1] + f"->{name}"))

    def finalize_outputs(self, bundle_rdd, ctx):
        (value,) = bundle_rdd.map(lambda kv: kv[1]).collect()
        self.outputs[0].define(value)

    def execute(self, ctx):
        rdd = self.apply_to_bundle(self.build_bundle_rdd(ctx), ctx)
        self.finalize_outputs(rdd, ctx)


class PlainProcess(Process):
    def __init__(self, name, inp, outp):
        super().__init__(name, inputs=[inp], outputs=[outp])

    def execute(self, ctx):
        self.outputs[0].define(self.inputs[0].value)


def make_chain(info, n=3, prefix="p"):
    """n partition processes linked head to tail."""
    resources = [Resource(f"{prefix}-r{i}") for i in range(n + 1)]
    procs = [
        FakePartitionProcess(f"{prefix}{i}", info, resources[i], resources[i + 1])
        for i in range(n)
    ]
    return procs, resources


class TestChainDetection:
    def test_linear_chain_found(self):
        info = PartitionInfoBundle.undefined("info")
        procs, _ = make_chain(info, 3)
        chains = find_partition_chains(procs)
        assert len(chains) == 1
        assert [p.name for p in chains[0]] == ["p0", "p1", "p2"]

    def test_single_process_not_a_chain(self):
        info = PartitionInfoBundle.undefined("info")
        procs, _ = make_chain(info, 1)
        assert find_partition_chains(procs) == []

    def test_different_partition_info_breaks_chain(self):
        info1 = PartitionInfoBundle.undefined("info1")
        info2 = PartitionInfoBundle.undefined("info2")
        r = [Resource(f"r{i}") for i in range(3)]
        a = FakePartitionProcess("a", info1, r[0], r[1])
        b = FakePartitionProcess("b", info2, r[1], r[2])
        assert find_partition_chains([a, b]) == []

    def test_extra_consumer_breaks_chain(self):
        # The link resource feeds a process outside the path -> the start
        # node's out-degree is not 1, so no fusion (Fig. 7 conditions).
        info = PartitionInfoBundle.undefined("info")
        procs, resources = make_chain(info, 2)
        spy = PlainProcess("spy", resources[1], Resource("spy-out"))
        assert find_partition_chains(procs + [spy]) == []

    def test_non_partition_process_breaks_chain(self):
        info = PartitionInfoBundle.undefined("info")
        r = [Resource(f"r{i}") for i in range(4)]
        a = FakePartitionProcess("a", info, r[0], r[1])
        mid = PlainProcess("mid", r[1], r[2])
        b = FakePartitionProcess("b", info, r[2], r[3])
        assert find_partition_chains([a, mid, b]) == []


class TestRewrite:
    def test_chain_replaced_by_fused_process(self):
        info = PartitionInfoBundle.undefined("info")
        procs, _ = make_chain(info, 3)
        plan = eliminate_redundancy(procs)
        assert len(plan) == 1
        assert isinstance(plan[0], FusedPartitionChain)
        assert "p0" in plan[0].name and "p2" in plan[0].name

    def test_non_chain_processes_preserved(self):
        info = PartitionInfoBundle.undefined("info")
        procs, resources = make_chain(info, 2)
        head = PlainProcess("head", Resource("x"), resources[0])
        plan = eliminate_redundancy([head] + procs)
        assert plan[0] is head
        assert isinstance(plan[1], FusedPartitionChain)

    def test_fused_inputs_exclude_internal_links(self):
        info = PartitionInfoBundle.undefined("info")
        procs, resources = make_chain(info, 3)
        fused = eliminate_redundancy(procs)[0]
        input_names = {r.name for r in fused.inputs}
        assert resources[1].name not in input_names  # internal
        assert resources[0].name in input_names
        assert "info" in input_names

    def test_no_chains_returns_same_plan(self):
        a = PlainProcess("a", Resource("x"), Resource("y"))
        assert eliminate_redundancy([a]) == [a]


class TestFusedExecution:
    def test_bundle_built_once_and_applied_per_member(self, ctx):
        info = PartitionInfoBundle.undefined("info")
        info.define("the-info")
        procs, resources = make_chain(info, 3)
        resources[0].define("seed")
        fused = eliminate_redundancy(procs)[0]
        fused.run(ctx)
        assert [p.built for p in procs] == [1, 0, 0]  # only head builds
        assert all(p.applied == 1 for p in procs)
        # Every member's output is defined and reflects the chained maps.
        assert resources[3].value == "seed->p0->p1->p2"
        assert resources[1].value == "seed->p0"

    def test_unfused_equivalence(self, ctx):
        """optimize=True and False produce the same terminal value."""
        from repro.core.pipeline import Pipeline

        results = {}
        for opt in (True, False):
            info = PartitionInfoBundle.undefined("info")
            info.define("x")
            procs, resources = make_chain(info, 3)
            resources[0].define("seed")
            pipeline = Pipeline("t", ctx)
            for p in procs:
                pipeline.add_process(p)
            pipeline.run(optimize=opt)
            results[opt] = resources[3].value
        assert results[True] == results[False]

    def test_fused_process_count_in_pipeline(self, ctx):
        from repro.core.pipeline import Pipeline

        info = PartitionInfoBundle.undefined("info")
        info.define("x")
        procs, resources = make_chain(info, 3)
        resources[0].define("seed")
        pipeline = Pipeline("t", ctx)
        for p in procs:
            pipeline.add_process(p)
        pipeline.run(optimize=True)
        assert len(pipeline.executed) == 1
        assert isinstance(pipeline.executed[0], FusedPartitionChain)

"""Process-DAG analysis tests."""

import pytest

from repro.core.dag import (
    analyze,
    build_process_graph,
    critical_path,
    execution_levels,
    find_cycles,
    to_dot,
)
from repro.core.process import Process
from repro.core.resource import Resource


class Passthrough(Process):
    def __init__(self, name, inputs, outputs):
        super().__init__(name, inputs=inputs, outputs=outputs)

    def execute(self, ctx):
        for outp in self.outputs:
            outp.define(1)


def chain(n: int, prefix="p"):
    resources = [Resource(f"{prefix}-r{i}") for i in range(n + 1)]
    return [
        Passthrough(f"{prefix}{i}", [resources[i]], [resources[i + 1]])
        for i in range(n)
    ], resources


class TestGraphShape:
    def test_linear_chain(self):
        procs, _ = chain(4)
        report = analyze(procs)
        assert report.num_processes == 4
        assert report.num_edges == 3
        assert report.depth == 4
        assert report.width == 1
        assert report.roots == ("p0",)
        assert report.leaves == ("p3",)
        assert report.is_dag

    def test_diamond(self):
        a, b, c, d, e = (Resource(n) for n in "abcde")
        procs = [
            Passthrough("split", [a], [b, c]),
            Passthrough("left", [b], [d]),
            Passthrough("right", [c], [e]),
            Passthrough("join", [d, e], [Resource("out")]),
        ]
        report = analyze(procs)
        assert report.depth == 3
        assert report.width == 2
        assert report.components == 1

    def test_forest_components(self):
        p1, _ = chain(2, "x")
        p2, _ = chain(2, "y")
        report = analyze(p1 + p2)
        assert report.components == 2

    def test_empty(self):
        report = analyze([])
        assert report.num_processes == 0 and report.is_dag


class TestCycles:
    def test_cycle_detected(self):
        a, b = Resource("a"), Resource("b")
        procs = [Passthrough("p1", [a], [b]), Passthrough("p2", [b], [a])]
        cycles = find_cycles(procs)
        assert cycles and set(cycles[0]) == {"p1", "p2"}
        assert not analyze(procs).is_dag

    def test_no_cycles_in_chain(self):
        procs, _ = chain(3)
        assert find_cycles(procs) == []

    def test_self_feeding_process_is_a_cycle(self):
        s = Resource("s")
        selfy = Passthrough("selfy", [s], [s])
        cycles = find_cycles([selfy])
        assert cycles and cycles[0] == ["selfy"]
        assert not analyze([selfy]).is_dag

    def test_critical_path_rejects_cycle(self):
        a, b = Resource("a"), Resource("b")
        procs = [Passthrough("p1", [a], [b]), Passthrough("p2", [b], [a])]
        with pytest.raises(ValueError):
            critical_path(procs, lambda p: 1.0)


class TestCriticalPath:
    def test_chain_cost_sums(self):
        procs, _ = chain(3)
        path, total = critical_path(procs, lambda p: 2.0)
        assert path == ["p0", "p1", "p2"]
        assert total == 6.0

    def test_heavier_branch_wins(self):
        a = Resource("a")
        procs = [
            Passthrough("split", [a], [Resource("b"), Resource("c")]),
        ]
        b, c = procs[0].outputs
        procs.append(Passthrough("cheap", [b], [Resource("d")]))
        procs.append(Passthrough("heavy", [c], [Resource("e")]))
        costs = {"split": 1.0, "cheap": 1.0, "heavy": 10.0}
        path, total = critical_path(procs, lambda p: costs[p.name])
        assert path == ["split", "heavy"]
        assert total == 11.0

    def test_empty(self):
        assert critical_path([], lambda p: 1.0) == ([], 0.0)

    def test_tied_paths_pick_exactly_one(self):
        # Two equal-cost branches: the result must be ONE complete root-to-
        # leaf path with the shared total, not a merge of both branches.
        a = Resource("a")
        split = Passthrough("split", [a], [Resource("b"), Resource("c")])
        b, c = split.outputs
        procs = [
            split,
            Passthrough("left", [b], [Resource("d")]),
            Passthrough("right", [c], [Resource("e")]),
        ]
        path, total = critical_path(procs, lambda p: 1.0)
        assert total == 2.0
        assert path[0] == "split" and len(path) == 2
        assert path[1] in {"left", "right"}


class TestLevels:
    def test_generations_match_algorithm1_batches(self):
        a, b, c = Resource("a"), Resource("b"), Resource("c")
        procs = [
            Passthrough("first", [a], [b]),
            Passthrough("also-first", [Resource("x")], [c]),
            Passthrough("second", [b, c], [Resource("out")]),
        ]
        levels = execution_levels(procs)
        assert levels == [["also-first", "first"], ["second"]]

    def test_disconnected_components_share_levels(self):
        # Two independent chains interleave by depth: level k holds the
        # k-th process of every island, so islands run concurrently.
        x_procs, _ = chain(2, "x")
        y_procs, _ = chain(3, "y")
        levels = execution_levels(x_procs + y_procs)
        assert levels == [["x0", "y0"], ["x1", "y1"], ["y2"]]

    def test_empty_plan_has_no_levels(self):
        assert execution_levels([]) == []


class TestDot:
    def test_dot_contains_nodes_and_edges(self):
        procs, resources = chain(2)
        dot = to_dot(procs)
        assert "digraph pipeline" in dot
        assert 'label="p0"' in dot and 'label="p1"' in dot
        assert "->" in dot
        assert resources[1].name in dot  # edge labelled with the resource

    def test_partition_processes_highlighted(self, reference, known_sites):
        from repro.core.bundles import PartitionInfoBundle, SAMBundle
        from repro.core.processes import IndelRealignProcess

        info = PartitionInfoBundle.undefined("info")
        realign = IndelRealignProcess(
            "ir",
            reference,
            {"dbsnp": known_sites},
            info,
            [SAMBundle.undefined("in")],
            [SAMBundle.undefined("out")],
        )
        assert "fillcolor" in to_dot([realign])


class TestWgsPipelineDag:
    def test_wgs_plan_structure(self, ctx, reference, known_sites, read_pairs):
        from repro.wgs import build_wgs_pipeline

        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(read_pairs[:5], 1),
            known_sites,
        )
        procs = handles.pipeline.processes
        report = analyze(procs)
        assert report.is_dag
        assert report.num_processes == 6
        assert report.roots == ("BwaMapping",)
        assert "HaplotypeCaller" in report.leaves
        levels = execution_levels(procs)
        assert levels[0] == ["BwaMapping"]
        path, _ = critical_path(procs, lambda p: 1.0)
        assert path[0] == "BwaMapping" and path[-1] == "HaplotypeCaller"

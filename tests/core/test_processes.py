"""Tests for the algorithm-specific Processes (Table 2) on the engine."""

import pytest

from repro.core.bundles import (
    FASTQPairBundle,
    PartitionInfoBundle,
    SAMBundle,
    VCFBundle,
)
from repro.core.processes import (
    BaseRecalibrationProcess,
    BwaMemProcess,
    HaplotypeCallerProcess,
    IndelRealignProcess,
    MarkDuplicateProcess,
    ReadRepartitioner,
    SortProcess,
    VariantFiltrationProcess,
)
from repro.core.processes.io import FileLoader, LoadFastqPairProcess, WriteVcfProcess
from repro.formats.fastq import write_fastq


@pytest.fixture()
def aligned_bundle(ctx, reference, read_pairs):
    # Keep every chr1 fragment starting below 4 kb: a contiguous window
    # that contains the simulator's hot-spot *and* whole duplicate groups
    # (copies share the fragment stem in their name).
    def frag_start(pair):
        parts = pair.name.split("_")
        return (parts[1], int(parts[2]))

    subset = [p for p in read_pairs if frag_start(p) < ("chr1", 4_000)]
    subset.sort(key=lambda p: p.name)
    fastq = FASTQPairBundle.defined("fq", ctx.parallelize(subset, 3))
    aligned = SAMBundle.undefined("aligned")
    BwaMemProcess.pair_end("map", reference, fastq, aligned).run(ctx)
    return aligned


class TestBwaMemProcess:
    def test_aligns_all_pairs(self, ctx, reference, read_pairs, aligned_bundle):
        records = aligned_bundle.rdd.collect()
        assert len(records) % 2 == 0 and len(records) > 100  # two mates/pair
        mapped = [r for r in records if not r.is_unmapped]
        assert len(mapped) >= 0.9 * len(records)
        assert aligned_bundle.header.contigs == tuple(reference.contig_lengths())

    def test_mates_carry_pair_flags(self, ctx, aligned_bundle):
        records = aligned_bundle.rdd.collect()
        assert all(r.is_paired for r in records)


class TestSortProcess:
    def test_output_is_coordinate_sorted(self, ctx, aligned_bundle, sam_header):
        from repro.cleaner.sort import is_coordinate_sorted

        out = SAMBundle.undefined("sorted")
        SortProcess("sort", aligned_bundle, out).run(ctx)
        records = out.rdd.collect()
        assert is_coordinate_sorted(records, sam_header)
        assert out.header.sort_order == "coordinate"


class TestMarkDuplicateProcess:
    def test_matches_single_node_reference(self, ctx, aligned_bundle):
        """The distributed marker must agree with the reference algorithm."""
        from repro.cleaner.duplicates import mark_duplicates

        out = SAMBundle.undefined("deduped")
        MarkDuplicateProcess("md", aligned_bundle, out).run(ctx)
        distributed = {
            (r.qname, r.flag & 0x400) for r in out.rdd.collect()
        }
        reference_records = [r.copy() for r in aligned_bundle.rdd.collect()]
        mark_duplicates(reference_records)
        expected = {(r.qname, r.flag & 0x400) for r in reference_records}
        assert distributed == expected

    def test_finds_planted_duplicates(self, ctx, aligned_bundle):
        out = SAMBundle.undefined("deduped")
        MarkDuplicateProcess("md", aligned_bundle, out).run(ctx)
        dup_count = sum(1 for r in out.rdd.collect() if r.is_duplicate)
        assert dup_count > 0  # simulator plants ~8% duplicates


class TestReadRepartitioner:
    def test_produces_partition_info(self, ctx, reference, aligned_bundle):
        info_bundle = PartitionInfoBundle.undefined("info")
        ReadRepartitioner(
            "rp",
            [aligned_bundle],
            info_bundle,
            reference.contig_lengths(),
            advised_partition_length=3_000,
        ).run(ctx)
        info = info_bundle.value
        assert info.num_partitions >= info.base_partitions

    def test_hotspot_partition_gets_split(self, ctx, reference, aligned_bundle):
        # The simulator oversamples chr1[2000:2600] 8x; with a low
        # threshold that partition must be split.
        info_bundle = PartitionInfoBundle.undefined("info")
        ReadRepartitioner(
            "rp",
            [aligned_bundle],
            info_bundle,
            reference.contig_lengths(),
            advised_partition_length=1_000,
            segmentation_threshold=15,
        ).run(ctx)
        info = info_bundle.value
        hotspot_pid = 2  # chr1 partition covering [2000, 3000)
        assert info.split_table.lookup(hotspot_pid) is not None


class TestPartitionChainProcesses:
    @pytest.fixture()
    def chain_setup(self, ctx, reference, known_sites, aligned_bundle):
        info_bundle = PartitionInfoBundle.undefined("info")
        ReadRepartitioner(
            "rp",
            [aligned_bundle],
            info_bundle,
            reference.contig_lengths(),
            advised_partition_length=4_000,
        ).run(ctx)
        return info_bundle, {"dbsnp": known_sites}

    def test_indel_realign_preserves_read_count(
        self, ctx, reference, aligned_bundle, chain_setup
    ):
        info_bundle, rod = chain_setup
        out = SAMBundle.undefined("re")
        IndelRealignProcess(
            "ir", reference, rod, info_bundle, [aligned_bundle], [out]
        ).run(ctx)
        mapped_in = sum(1 for r in aligned_bundle.rdd.collect() if not r.is_unmapped)
        assert out.rdd.count() == mapped_in

    def test_bqsr_rewrites_qualities(
        self, ctx, reference, aligned_bundle, chain_setup
    ):
        info_bundle, rod = chain_setup
        out = SAMBundle.undefined("recal")
        process = BaseRecalibrationProcess(
            "bqsr", reference, rod, info_bundle, [aligned_bundle], [out]
        )
        process.run(ctx)
        assert process.table is not None
        assert process.table.total_observations > 0
        before = {r.qname: r.qual for r in aligned_bundle.rdd.collect()}
        changed = sum(
            1 for r in out.rdd.collect() if before.get(r.qname) != r.qual
        )
        assert changed > 0

    def test_haplotype_caller_emits_vcf(
        self, ctx, reference, truth, aligned_bundle, chain_setup
    ):
        info_bundle, rod = chain_setup
        vcf = VCFBundle.undefined("vcf")
        HaplotypeCallerProcess(
            "hc", reference, rod, info_bundle, [aligned_bundle], vcf
        ).run(ctx)
        calls = vcf.rdd.collect()
        assert calls
        truth_keys = truth.truth_keys()
        hits = sum(1 for c in calls if c.key() in truth_keys)
        assert hits >= 1  # at 6x coverage over 60 pairs, some truth found


class TestIoProcesses:
    def test_load_fastq_pair(self, ctx, read_pairs, tmp_path):
        p1, p2 = str(tmp_path / "1.fastq"), str(tmp_path / "2.fastq")
        write_fastq([p.read1 for p in read_pairs[:10]], p1)
        write_fastq([p.read2 for p in read_pairs[:10]], p2)
        rdd = FileLoader.load_fastq_pair_to_rdd(ctx, p1, p2, 2)
        assert rdd.count() == 10

    def test_load_process(self, ctx, read_pairs, tmp_path):
        p1, p2 = str(tmp_path / "1.fastq"), str(tmp_path / "2.fastq")
        write_fastq([p.read1 for p in read_pairs[:5]], p1)
        write_fastq([p.read2 for p in read_pairs[:5]], p2)
        bundle = FASTQPairBundle.undefined("fq")
        LoadFastqPairProcess("load", p1, p2, bundle).run(ctx)
        assert bundle.rdd.count() == 5

    def test_write_vcf_process(self, ctx, tmp_path):
        from repro.formats.vcf import VcfHeader, VcfRecord, read_vcf

        records = [VcfRecord("chr1", 5, "A", "G", qual=50.0)]
        bundle = VCFBundle.defined(
            "v", ctx.parallelize(records, 1), VcfHeader((("chr1", 100),))
        )
        path = str(tmp_path / "out.vcf")
        WriteVcfProcess("w", bundle, path).run(ctx)
        _, out = read_vcf(path)
        assert out[0].key() == records[0].key()


class TestVariantFiltrationProcess:
    def test_filters_applied_through_pipeline(self, ctx, reference):
        from repro.caller.filters import FilterConfig
        from repro.formats.vcf import VcfHeader, VcfRecord

        raw = [
            VcfRecord("chr1", 100, "A", "G", qual=80.0, depth=20),
            VcfRecord("chr1", 200, "A", "G", qual=5.0, depth=1),
        ]
        in_bundle = VCFBundle.defined(
            "raw", ctx.parallelize(raw, 1), VcfHeader(tuple(reference.contig_lengths()))
        )
        out_bundle = VCFBundle.undefined("filtered")
        VariantFiltrationProcess(
            "vf", reference, in_bundle, out_bundle, FilterConfig()
        ).run(ctx)
        out = sorted(out_bundle.rdd.collect(), key=lambda r: r.pos)
        assert out[0].filter_ == "PASS"
        assert "LowQual" in out[1].filter_

    def test_drop_failing_records(self, ctx, reference):
        from repro.formats.vcf import VcfHeader, VcfRecord

        raw = [
            VcfRecord("chr1", 100, "A", "G", qual=80.0, depth=20),
            VcfRecord("chr1", 200, "A", "G", qual=5.0, depth=1),
        ]
        in_bundle = VCFBundle.defined(
            "raw", ctx.parallelize(raw, 1), VcfHeader(tuple(reference.contig_lengths()))
        )
        out_bundle = VCFBundle.undefined("filtered")
        VariantFiltrationProcess(
            "vf", reference, in_bundle, out_bundle, keep_failing=False
        ).run(ctx)
        out = out_bundle.rdd.collect()
        assert len(out) == 1 and out[0].pos == 100

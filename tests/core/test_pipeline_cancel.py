"""Pipeline.run(should_cancel=...): cooperative cancellation between Processes."""

import pytest

from repro.core.pipeline import PipelineCancelledError
from repro.engine.context import EngineConfig, GPFContext
from repro.wgs import build_wgs_pipeline


@pytest.fixture
def handles(reference, known_sites, read_pairs):
    ctx = GPFContext(EngineConfig(default_parallelism=2))
    yield build_wgs_pipeline(
        ctx,
        reference,
        ctx.parallelize(read_pairs[:40], 2),
        known_sites,
        partition_length=4_000,
    )
    ctx.stop()


class TestShouldCancel:
    def test_cancel_before_first_process(self, handles):
        with pytest.raises(PipelineCancelledError) as err:
            handles.pipeline.run(should_cancel=lambda: True)
        assert err.value.completed == []
        assert handles.pipeline.executed == []
        assert "BwaMapping" in err.value.remaining

    def test_cancel_after_n_processes_stops_cleanly(self, handles):
        calls = {"n": 0}

        def cancel_after_two() -> bool:
            calls["n"] += 1
            return calls["n"] > 2

        with pytest.raises(PipelineCancelledError) as err:
            handles.pipeline.run(should_cancel=cancel_after_two)
        # exactly the first two Processes committed before the stop
        assert [p.name for p in handles.pipeline.executed] == [
            "BwaMapping",
            "MarkDuplicate",
        ]
        assert err.value.completed == ["BwaMapping", "MarkDuplicate"]
        assert err.value.remaining  # something was still pending

    def test_cancelled_journaled_run_resumes(self, handles, tmp_path):
        journal_dir = str(tmp_path / "journal")
        calls = {"n": 0}

        def cancel_after_one() -> bool:
            calls["n"] += 1
            return calls["n"] > 1

        with pytest.raises(PipelineCancelledError):
            handles.pipeline.run(
                journal_dir=journal_dir, should_cancel=cancel_after_one
            )
        handles.pipeline.reset()
        handles.pipeline.run(journal_dir=journal_dir)
        # the Process finished before cancellation restores, not re-runs
        assert [p.name for p in handles.pipeline.skipped] == ["BwaMapping"]
        assert handles.vcf.rdd.collect() is not None

    def test_no_callback_means_no_overhead_path(self, handles):
        handles.pipeline.run(should_cancel=None)
        assert len(handles.pipeline.executed) >= 4

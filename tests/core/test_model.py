"""Resource/Process state machines and Pipeline (Algorithm 1) tests."""

import pytest

from repro.core.bundles import SAMBundle, VCFBundle
from repro.core.pipeline import CircularDependencyError, Pipeline
from repro.core.process import Process, ProcessState
from repro.core.resource import Resource, ResourceState


class AddOne(Process):
    """Toy process: output = input + 1."""

    def __init__(self, name, inp, outp):
        super().__init__(name, inputs=[inp], outputs=[outp])

    def execute(self, ctx):
        self.outputs[0].define(self.inputs[0].value + 1)


class Broken(Process):
    def __init__(self, name, inp, outp):
        super().__init__(name, inputs=[inp], outputs=[outp])

    def execute(self, ctx):
        raise RuntimeError("boom")


class Forgetful(Process):
    """Finishes without defining its output — a contract violation."""

    def __init__(self, name, outp):
        super().__init__(name, inputs=[], outputs=[outp])

    def execute(self, ctx):
        pass


class TestResource:
    def test_define_transitions_state(self):
        r = Resource("x")
        assert r.state is ResourceState.UNDEFINED and not r.is_defined
        r.define(42)
        assert r.state is ResourceState.DEFINED
        assert r.value == 42

    def test_double_define_rejected(self):
        r = Resource("x")
        r.define(1)
        with pytest.raises(RuntimeError, match="already defined"):
            r.define(2)

    def test_read_undefined_rejected(self):
        with pytest.raises(RuntimeError, match="undefined"):
            _ = Resource("x").value

    def test_undefine_resets(self):
        r = Resource("x")
        r.define(1)
        r.undefine()
        assert not r.is_defined


class TestProcessStateMachine:
    def test_blocked_until_inputs_defined(self):
        inp, outp = Resource("i"), Resource("o")
        p = AddOne("p", inp, outp)
        assert p.refresh_state() is ProcessState.BLOCKED
        inp.define(1)
        assert p.refresh_state() is ProcessState.READY

    def test_run_walks_to_end(self, ctx):
        inp, outp = Resource("i"), Resource("o")
        inp.define(1)
        p = AddOne("p", inp, outp)
        p.run(ctx)
        assert p.state is ProcessState.END
        assert outp.value == 2

    def test_run_while_blocked_rejected(self, ctx):
        p = AddOne("p", Resource("i"), Resource("o"))
        with pytest.raises(RuntimeError, match="undefined inputs"):
            p.run(ctx)

    def test_failed_execute_returns_to_blocked(self, ctx):
        inp, outp = Resource("i"), Resource("o")
        inp.define(1)
        p = Broken("p", inp, outp)
        with pytest.raises(RuntimeError, match="boom"):
            p.run(ctx)
        assert p.state is ProcessState.BLOCKED

    def test_missing_output_detected(self, ctx):
        outp = Resource("o")
        p = Forgetful("p", outp)
        with pytest.raises(RuntimeError, match="without defining outputs"):
            p.run(ctx)

    def test_reset_undefines_outputs_and_reblocks(self, ctx):
        inp, outp = Resource("i"), Resource("o")
        inp.define(1)
        p = AddOne("p", inp, outp)
        p.run(ctx)
        p.reset()
        assert p.state is ProcessState.BLOCKED
        assert not outp.is_defined
        p.run(ctx)  # runnable again without touching private state
        assert outp.value == 2

    def test_reset_before_any_run_is_a_noop(self):
        inp, outp = Resource("i"), Resource("o")
        p = AddOne("p", inp, outp)
        p.reset()
        assert p.state is ProcessState.BLOCKED
        assert not outp.is_defined

    def test_failed_execute_rolls_back_partial_outputs(self, ctx):
        class HalfWriter(Process):
            """Defines output 1 of 2, then dies."""

            def __init__(self, name, inp, out1, out2):
                super().__init__(name, inputs=[inp], outputs=[out1, out2])

            def execute(self, _ctx):
                self.outputs[0].define("partial")
                raise RuntimeError("midway crash")

        inp = Resource("i")
        inp.define(1)
        out1, out2 = Resource("o1"), Resource("o2")
        p = HalfWriter("half", inp, out1, out2)
        with pytest.raises(RuntimeError, match="midway crash"):
            p.run(ctx)
        # Neither output may survive the crash: a retry must start clean.
        assert not out1.is_defined and not out2.is_defined
        assert p.state is ProcessState.BLOCKED

    def test_failed_execute_keeps_preexisting_definitions(self, ctx):
        class Appender(Process):
            """Crashes without defining anything new."""

            def __init__(self, name, inp, outp):
                super().__init__(name, inputs=[inp], outputs=[outp])

            def execute(self, _ctx):
                raise RuntimeError("boom")

        inp = Resource("i")
        inp.define(1)
        outp = Resource("o")
        outp.define("already here")  # defined before the run, not by it
        p = Appender("p", inp, outp)
        with pytest.raises(RuntimeError, match="boom"):
            p.run(ctx)
        assert outp.is_defined and outp.value == "already here"


class TestPipeline:
    def test_executes_in_dependency_order(self, ctx):
        a, b, c = Resource("a"), Resource("b"), Resource("c")
        a.define(0)
        pipeline = Pipeline("p", ctx)
        # Added out of order on purpose.
        pipeline.add_process(AddOne("second", b, c))
        pipeline.add_process(AddOne("first", a, b))
        pipeline.run()
        assert c.value == 2
        assert [p.name for p in pipeline.executed] == ["first", "second"]

    def test_diamond_dependencies(self, ctx):
        a, b, c, d = (Resource(n) for n in "abcd")
        a.define(10)

        class Sum(Process):
            def __init__(self):
                super().__init__("sum", inputs=[b, c], outputs=[d])

            def execute(self, _ctx):
                d.define(b.value + c.value)

        pipeline = Pipeline("diamond", ctx)
        pipeline.add_process(Sum())
        pipeline.add_process(AddOne("left", a, b))
        pipeline.add_process(AddOne("right", a, c))
        pipeline.run()
        assert d.value == 22

    def test_circular_dependency_detected(self, ctx):
        a, b = Resource("a"), Resource("b")
        pipeline = Pipeline("cycle", ctx)
        pipeline.add_process(AddOne("p1", a, b))
        pipeline.add_process(AddOne("p2", b, a))
        with pytest.raises(CircularDependencyError):
            pipeline.run()

    def test_duplicate_process_rejected(self, ctx):
        a, b = Resource("a"), Resource("b")
        p = AddOne("p", a, b)
        pipeline = Pipeline("dup", ctx)
        pipeline.add_process(p)
        with pytest.raises(ValueError, match="already added"):
            pipeline.add_process(p)

    def test_disconnected_components_both_run(self, ctx):
        # The DAG "may not be a connected graph" (paper §4.3).
        a, b = Resource("a"), Resource("b")
        c, d = Resource("c"), Resource("d")
        a.define(1)
        c.define(100)
        pipeline = Pipeline("forest", ctx)
        pipeline.add_process(AddOne("x", a, b))
        pipeline.add_process(AddOne("y", c, d))
        pipeline.run()
        assert (b.value, d.value) == (2, 101)


class TestBundles:
    def test_sam_bundle_states(self, ctx):
        bundle = SAMBundle.undefined("sam")
        assert not bundle.is_defined
        rdd = ctx.parallelize([1, 2, 3], 1)
        bundle.define(rdd)
        assert bundle.rdd is rdd

    def test_defined_constructors(self, ctx):
        from repro.formats.sam import SamHeader
        from repro.formats.vcf import VcfHeader

        rdd = ctx.parallelize([], 1)
        sam = SAMBundle.defined("s", rdd, SamHeader.unsorted())
        vcf = VCFBundle.defined("v", rdd, VcfHeader())
        assert sam.is_defined and vcf.is_defined


class TestPipelineReset:
    def test_rerun_after_reset(self, ctx):
        a, b, c = Resource("a"), Resource("b"), Resource("c")
        a.define(0)
        pipeline = Pipeline("p", ctx)
        pipeline.add_process(AddOne("p1", a, b))
        pipeline.add_process(AddOne("p2", b, c))
        pipeline.run()
        assert c.value == 2
        pipeline.reset()
        assert not b.is_defined and not c.is_defined
        assert a.is_defined  # user input untouched
        pipeline.run()
        assert c.value == 2

    def test_rerun_without_reset_fails(self, ctx):
        a, b = Resource("a"), Resource("b")
        a.define(1)
        pipeline = Pipeline("p", ctx)
        pipeline.add_process(AddOne("p1", a, b))
        pipeline.run()
        with pytest.raises(RuntimeError):
            pipeline.run()

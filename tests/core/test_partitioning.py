"""PartitionInfo tests, including the paper's Fig. 8/9 worked example."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partitioning import (
    PartitionInfo,
    PartitionSplitTable,
    paper_example,
)
from repro.core.processes.regions import region_span


class TestBaseMapping:
    def test_start_ids_are_prefix_sums(self):
        info = PartitionInfo([("a", 2_500_000), ("b", 1_000_000)], 1_000_000)
        assert info.start_ids == {"a": 0, "b": 3}
        assert info.partitions_per_contig == {"a": 3, "b": 1}
        assert info.base_partitions == 4

    def test_position_maps_to_segment(self):
        info = PartitionInfo([("a", 3_000_000)], 1_000_000)
        assert info.base_partition_id("a", 0) == 0
        assert info.base_partition_id("a", 999_999) == 0
        assert info.base_partition_id("a", 1_000_000) == 1
        assert info.base_partition_id("a", 2_999_999) == 2

    def test_unknown_contig_rejected(self):
        info = PartitionInfo([("a", 100)], 10)
        with pytest.raises(KeyError):
            info.base_partition_id("zz", 0)

    def test_out_of_range_position_rejected(self):
        info = PartitionInfo([("a", 100)], 10)
        with pytest.raises(ValueError):
            info.base_partition_id("a", 100)

    def test_invalid_partition_length(self):
        with pytest.raises(ValueError):
            PartitionInfo([("a", 100)], 0)


class TestPaperExample:
    def test_figure8_base_mapping(self):
        info = paper_example()
        # Fig. 8: contig "4" starts at id 693; offset 12,345,678 // 1e6 = 12.
        assert info.start_ids["4"] == 693
        assert info.base_partition_id("4", 12_345_678) == 705

    def test_figure9_split_mapping(self):
        info = paper_example()
        # Fig. 9: partition 705 split 4 ways from 3510; sub-length 250,000;
        # offset 345,678 // 250,000 = 1 -> final id 3511.
        assert info.partition_id("4", 12_345_678) == 3511

    def test_unsplit_partition_keeps_base_id(self):
        info = paper_example()
        assert info.partition_id("1", 500) == 0

    def test_start_id_table_matches_paper(self):
        info = paper_example()
        starts = [info.start_ids[name] for name in info.contig_names]
        assert starts == [0, 250, 494, 693, 885, 1066, 1238]


class TestDynamicSplitting:
    def test_overloaded_partition_splits(self):
        info = PartitionInfo([("a", 4_000_000)], 1_000_000)
        counts = {0: 100, 1: 5_000, 2: 90, 3: 50}
        new = info.with_splits(counts, threshold=1_000)
        assert len(new.split_table) == 1
        pieces, start_id = new.split_table.lookup(1)
        assert pieces == 5  # ceil(5000/1000)
        assert start_id == info.base_partitions
        assert new.num_partitions == info.base_partitions + 5

    def test_split_spreads_positions(self):
        info = PartitionInfo([("a", 2_000_000)], 1_000_000)
        new = info.with_splits({0: 4_000}, threshold=1_000)
        ids = {new.partition_id("a", p) for p in range(0, 1_000_000, 100_000)}
        assert len(ids) == 4  # four sub-partitions all receive keys

    def test_below_threshold_untouched(self):
        info = PartitionInfo([("a", 2_000_000)], 1_000_000)
        new = info.with_splits({0: 10, 1: 20}, threshold=100)
        assert len(new.split_table) == 0

    def test_bad_threshold(self):
        info = PartitionInfo([("a", 100)], 10)
        with pytest.raises(ValueError):
            info.with_splits({}, 0)

    def test_count_reads_histogram(self):
        info = PartitionInfo([("a", 2_000_000)], 1_000_000)
        keys = [("a", 10), ("a", 999_999), ("a", 1_000_001)]
        assert info.count_reads(keys) == {0: 2, 1: 1}


class TestSpans:
    def test_base_partition_span(self):
        info = PartitionInfo([("a", 2_500_000)], 1_000_000)
        assert info.partition_span(0) == ("a", 0, 1_000_000)
        assert info.partition_span(2) == ("a", 2_000_000, 2_500_000)

    def test_split_partition_span(self):
        info = PartitionInfo(
            [("a", 2_000_000)],
            1_000_000,
            PartitionSplitTable({0: (4, 2)}),
        )
        assert region_span(info, 2) == ("a", 0, 250_000)
        assert region_span(info, 5) == ("a", 750_000, 1_000_000)
        assert region_span(info, 1) == ("a", 1_000_000, 2_000_000)

    def test_unknown_span_rejected(self):
        info = PartitionInfo([("a", 100)], 10)
        with pytest.raises(ValueError):
            region_span(info, 99)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(1, 5_000_000), min_size=1, max_size=6),
    st.integers(100_000, 2_000_000),
    st.data(),
)
def test_partition_id_bijective_over_spans(lengths, plen, data):
    """Every position maps into a partition whose span contains it."""
    named = [(f"c{i}", length) for i, length in enumerate(lengths)]
    info = PartitionInfo(named, plen)
    contig_idx = data.draw(st.integers(0, len(lengths) - 1))
    name, length = named[contig_idx]
    pos = data.draw(st.integers(0, length - 1))
    pid = info.partition_id(name, pos)
    span_contig, start, end = region_span(info, pid)
    assert span_contig == name
    assert start <= pos < end


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 50), st.integers(1, 20))
def test_split_sub_partitions_cover_parent(count_thousands, pieces):
    info = PartitionInfo([("a", 1_000_000)], 1_000_000)
    new = info.with_splits({0: pieces * 1_000}, threshold=1_000)
    if len(new.split_table) == 0:
        return
    covered = set()
    for pos in range(0, 1_000_000, 7_919):
        pid = new.partition_id("a", pos)
        contig, start, end = region_span(new, pid)
        assert start <= pos < end
        covered.add(pid)
    split_count, start_id = new.split_table.lookup(0)
    assert covered <= set(range(start_id, start_id + split_count))

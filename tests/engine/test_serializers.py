import pytest

from repro.compression.records import FastqCodec
from repro.engine.serializers import (
    CompactSerializer,
    GpfSerializer,
    PickleSerializer,
    get_serializer,
)
from repro.formats.cigar import Cigar
from repro.formats.fastq import FastqRecord
from repro.formats.sam import SamRecord


def fastq_batch(n=20):
    import numpy as np

    rng = np.random.default_rng(7)
    return [
        FastqRecord(
            f"r{i}",
            "".join(rng.choice(list("ACGT"), size=100)),
            "".join(chr(int(q)) for q in rng.integers(35, 74, size=100)),
        )
        for i in range(n)
    ]


def sam_batch(n=20):
    return [
        SamRecord(f"r{i}", 0, "chr1", i, 60, Cigar.parse("100M"), "*", -1, 0,
                  "ACGT" * 25, "I" * 100, {"NM": 0})
        for i in range(n)
    ]


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("pickle", PickleSerializer),
        ("compact", CompactSerializer),
        ("gpf", GpfSerializer),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(get_serializer(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown serializer"):
            get_serializer("java")


class TestRoundTrips:
    @pytest.mark.parametrize("name", ["pickle", "compact", "gpf"])
    def test_generic_objects(self, name):
        s = get_serializer(name)
        data = [1, "two", (3, [4, 5]), {"k": "v"}, None]
        assert s.loads(s.dumps(data)) == data

    @pytest.mark.parametrize("name", ["pickle", "compact", "gpf"])
    def test_empty_partition(self, name):
        s = get_serializer(name)
        assert s.loads(s.dumps([])) == []

    def test_gpf_fastq_roundtrip(self):
        s = GpfSerializer()
        batch = fastq_batch()
        out = s.loads(s.dumps(batch))
        assert [r.sequence for r in out] == [r.sequence for r in batch]

    def test_gpf_sam_roundtrip(self):
        s = GpfSerializer()
        batch = sam_batch()
        assert s.loads(s.dumps(batch)) == batch

    def test_gpf_keyed_sam_roundtrip(self):
        s = GpfSerializer()
        pairs = [((rec.rname, rec.pos), rec) for rec in sam_batch()]
        assert s.loads(s.dumps(pairs)) == pairs

    def test_gpf_mixed_partition_falls_back(self):
        s = GpfSerializer()
        data = [fastq_batch(1)[0], "not a record"]
        out = s.loads(s.dumps(data))
        assert out[1] == "not a record"


class TestSizes:
    def test_gpf_beats_pickle_on_fastq(self):
        batch = fastq_batch(100)
        gpf = len(GpfSerializer().dumps(batch))
        java = len(PickleSerializer().dumps(batch))
        assert gpf < java

    def test_gpf_beats_compact_on_sam(self):
        # zlib on pickled object graphs can't see the genomic structure.
        import numpy as np
        from repro.sim.qualities import ILLUMINA_HISEQ

        rng = np.random.default_rng(0)
        batch = []
        for i in range(100):
            seq = "".join(rng.choice(list("ACGT"), size=100))
            batch.append(
                SamRecord(f"r{i}", 0, "chr1", i * 7, 60, Cigar.parse("100M"),
                          "*", -1, 0, seq, ILLUMINA_HISEQ.sample(100, rng), {})
            )
        gpf = len(GpfSerializer().dumps(batch))
        compact = len(CompactSerializer().dumps(batch))
        assert gpf < compact

    def test_compact_beats_pickle(self):
        # Byte payloads show the old protocol's framing overhead clearly.
        data = [bytes([i % 256]) * 60 for i in range(300)]
        assert len(CompactSerializer().dumps(data)) < len(PickleSerializer().dumps(data))

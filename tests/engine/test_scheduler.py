import os

import pytest

from repro.engine.context import EngineConfig, GPFContext
from repro.engine.rdd import HashPartitioner


class TestStageCutting:
    def test_narrow_chain_is_one_stage(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x).filter(lambda x: True)
        rdd.collect()
        job = ctx.metrics.job()
        assert job.stage_count == 1  # no shuffle => only the result stage

    def test_each_shuffle_adds_a_stage(self, ctx):
        rdd = ctx.parallelize([(i % 3, i) for i in range(12)], 3)
        rdd.reduce_by_key(lambda a, b: a + b).collect()
        job = ctx.metrics.job()
        assert job.stage_count == 2  # map stage + result stage

    def test_join_has_two_map_stages(self, ctx):
        left = ctx.parallelize([("a", 1)], 2)
        right = ctx.parallelize([("a", 2)], 2)
        left.join(right).collect()
        job = ctx.metrics.job()
        assert job.stage_count == 3  # two shuffle-map stages + result

    def test_shuffle_reused_across_actions(self, ctx):
        shuffled = ctx.parallelize([(1, 1), (2, 2)], 2).partition_by(HashPartitioner(2))
        shuffled.collect()
        stages_first = ctx.metrics.job().stage_count
        shuffled.collect()  # shuffle files already written -> no new map stage
        stages_second = ctx.metrics.job().stage_count
        assert stages_second == stages_first + 1

    def test_chained_shuffles_execute_in_order(self, ctx):
        rdd = ctx.parallelize([(i % 4, i) for i in range(40)], 4)
        out = (
            rdd.reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[0] % 2, kv[1]))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        total = sum(v for _, v in out)
        assert total == sum(range(40))

    def test_cached_rdd_cuts_lineage(self, ctx):
        base = ctx.parallelize([(i % 2, i) for i in range(10)], 2)
        mid = base.reduce_by_key(lambda a, b: a + b).persist()
        mid.collect()
        before = ctx.metrics.job().stage_count
        # A new action on top of the cached RDD must not re-run its shuffle.
        mid.map(lambda kv: kv).collect()
        after = ctx.metrics.job().stage_count
        assert after == before + 1


class TestPartitionSubset:
    def test_run_job_partitions_subset(self, ctx):
        rdd = ctx.parallelize(range(10), 5)
        parts = ctx.run_job(rdd, partitions=[1, 3])
        assert parts == [[2, 3], [6, 7]]


class TestThreadBackend:
    def test_threads_give_same_results(self, tmp_path):
        config = EngineConfig(
            executor_backend="threads",
            num_workers=4,
            spill_dir=str(tmp_path / "spill"),
        )
        with GPFContext(config) as ctx:
            rdd = ctx.parallelize([(i % 5, i) for i in range(100)], 8)
            out = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        expected = {k: sum(i for i in range(100) if i % 5 == k) for k in range(5)}
        assert out == expected

    def test_closed_context_rejects_jobs(self, tmp_path):
        ctx = GPFContext(EngineConfig(spill_dir=str(tmp_path / "s")))
        rdd = ctx.parallelize([1], 1)
        ctx.stop()
        with pytest.raises(RuntimeError, match="closed"):
            rdd.collect()


class TestSpillFiles:
    def test_shuffle_writes_real_files(self, tmp_path):
        spill = tmp_path / "spill"
        with GPFContext(EngineConfig(spill_dir=str(spill))) as ctx:
            ctx.parallelize([(1, 1), (2, 2)], 2).group_by_key().collect()
            files = [
                os.path.join(root, f)
                for root, _, fs in os.walk(spill)
                for f in fs
            ]
            assert files, "shuffle must spill to disk even for in-memory data"


class TestShuffleCompression:
    def test_compressed_shuffle_roundtrips(self, tmp_path):
        config = EngineConfig(
            spill_dir=str(tmp_path / "zc"), shuffle_compression=True
        )
        with GPFContext(config) as ctx:
            rdd = ctx.parallelize([(i % 3, "value" * 20) for i in range(90)], 3)
            out = dict(rdd.group_by_key().map_values(len).collect())
            assert out == {0: 30, 1: 30, 2: 30}

    def test_compression_shrinks_compressible_shuffles(self, tmp_path):
        sizes = {}
        for compress in (False, True):
            config = EngineConfig(
                spill_dir=str(tmp_path / f"z{compress}"),
                serializer="pickle",  # verbose payload: compression visible
                shuffle_compression=compress,
            )
            with GPFContext(config) as ctx:
                rdd = ctx.parallelize(
                    [(i % 4, "pad" * 50) for i in range(400)], 4
                )
                rdd.group_by_key().collect()
                sizes[compress] = ctx.metrics.job().shuffle_bytes
        assert sizes[True] < 0.5 * sizes[False]

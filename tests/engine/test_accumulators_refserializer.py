"""Accumulators + reference-based serializer integration tests."""

import pytest

from repro.engine.accumulators import Accumulator, counter
from repro.engine.context import EngineConfig, GPFContext
from repro.engine.serializers import GpfRefSerializer


class TestAccumulator:
    def test_counter_adds(self):
        acc = counter("reads")
        acc.add(3)
        acc += 4
        assert acc.value == 7

    def test_custom_op(self):
        acc = Accumulator(1.0, lambda a, b: a * b)
        acc.add(3.0)
        acc.add(4.0)
        assert acc.value == 12.0

    def test_reset(self):
        acc = counter()
        acc.add(5)
        acc.reset(0)
        assert acc.value == 0

    def test_tasks_update_accumulator(self, ctx):
        acc = ctx.accumulator(name="seen")
        ctx.parallelize(range(50), 4).foreach(lambda _x: acc.add(1))
        assert acc.value == 50

    def test_threadsafe_updates(self, tmp_path):
        config = EngineConfig(
            executor_backend="threads",
            num_workers=4,
            spill_dir=str(tmp_path / "acc"),
        )
        with GPFContext(config) as ctx:
            acc = ctx.accumulator(name="n")

            def bump(x):
                acc.add(1)
                return x

            ctx.parallelize(range(500), 8).map(bump).count()
            assert acc.value == 500


class TestGpfRefSerializer:
    @pytest.fixture()
    def ref_ctx(self, reference, tmp_path):
        config = EngineConfig(
            default_parallelism=3,
            serializer=GpfRefSerializer(reference),
            spill_dir=str(tmp_path / "refser"),
        )
        ctx = GPFContext(config)
        yield ctx
        ctx.stop()

    def test_sam_partition_roundtrip(self, ref_ctx, aligned_records):
        mapped = [r for r in aligned_records if not r.is_unmapped][:50]
        rdd = ref_ctx.parallelize(mapped, 2).persist()
        out = rdd.collect()  # cache round-trips through the serializer
        out = rdd.collect()
        assert [r.seq for r in out] == [r.seq for r in mapped]
        assert [r.pos for r in out] == [r.pos for r in mapped]

    def test_keyed_sam_shuffle_roundtrip(self, ref_ctx, aligned_records):
        mapped = [r for r in aligned_records if not r.is_unmapped][:60]
        rdd = ref_ctx.parallelize(mapped, 3)
        grouped = rdd.key_by(lambda r: r.rname).group_by_key().collect()
        total = sum(len(v) for _, v in grouped)
        assert total == 60

    def test_smaller_cache_than_gpf(self, reference, aligned_records, tmp_path):
        """Reference-based caching beats the 2-bit codec on aligned data."""
        mapped = [r for r in aligned_records if not r.is_unmapped][:200]
        sizes = {}
        for name, serializer in (
            ("gpf", "gpf"),
            ("gpf-ref", GpfRefSerializer(reference)),
        ):
            config = EngineConfig(
                serializer=serializer, spill_dir=str(tmp_path / f"c_{name}")
            )
            with GPFContext(config) as ctx:
                rdd = ctx.parallelize(mapped, 2).persist()
                rdd.collect()
                sizes[name] = ctx.cached_bytes()
        assert sizes["gpf-ref"] < sizes["gpf"]

    def test_pipeline_works_with_ref_serializer(
        self, reference, known_sites, read_pairs, tmp_path
    ):
        from repro.wgs import build_wgs_pipeline

        config = EngineConfig(
            default_parallelism=3,
            serializer=GpfRefSerializer(reference),
            spill_dir=str(tmp_path / "refpipe"),
        )
        with GPFContext(config) as ctx:
            handles = build_wgs_pipeline(
                ctx,
                reference,
                ctx.parallelize(read_pairs[:80], 3),
                known_sites,
                partition_length=4_000,
            )
            handles.pipeline.run()
            calls = handles.vcf.rdd.collect()
        assert isinstance(calls, list)

"""Context pooling hooks: per-job tracing segments and warm reuse.

The serve worker pool keeps one ``GPFContext`` alive across jobs; these
tests pin the contract that makes that safe: ``begin_trace``/``end_trace``
give each job an isolated event log, and ``reset_for_reuse`` clears every
piece of per-run state without tearing down the engine.
"""

import os

import pytest

from repro.engine.context import EngineConfig, GPFContext
from repro.obs import NoopTracer, Tracer, read_events, validate_events


def _tiny_job(ctx, seed: int) -> int:
    rdd = ctx.parallelize(list(range(20)), 2).map(lambda x: x * seed)
    rdd.persist()
    return sum(rdd.collect())


class TestTraceSegments:
    def test_per_job_trace_files(self, tmp_path):
        with GPFContext(EngineConfig(default_parallelism=2)) as ctx:
            for tag in ("job_a", "job_b"):
                trace_dir = str(tmp_path / tag)
                ctx.begin_trace(trace_dir)
                assert isinstance(ctx.tracer, Tracer)
                _tiny_job(ctx, 3)
                ctx.end_trace()
                assert isinstance(ctx.tracer, NoopTracer)
                events = read_events(os.path.join(trace_dir, "events.jsonl"))
                assert events and not validate_events(events)
                # each segment is self-contained: starts and ends a run
                assert events[0]["kind"] == "run.start"
                assert events[-1]["kind"] == "run.end"
                assert os.path.exists(os.path.join(trace_dir, "trace.json"))

    def test_begin_trace_closes_previous_segment(self, tmp_path):
        with GPFContext(EngineConfig(default_parallelism=2)) as ctx:
            ctx.begin_trace(str(tmp_path / "first"))
            ctx.begin_trace(str(tmp_path / "second"))
            first = read_events(str(tmp_path / "first" / "events.jsonl"))
            assert first[-1]["kind"] == "run.end"
            ctx.end_trace()

    def test_begin_trace_on_closed_context_rejected(self):
        ctx = GPFContext(EngineConfig())
        ctx.stop()
        with pytest.raises(RuntimeError, match="closed"):
            ctx.begin_trace("/tmp/nope")


class TestResetForReuse:
    def test_clears_metrics_telemetry_quarantine_and_cache(self, tmp_path):
        with GPFContext(EngineConfig(default_parallelism=2)) as ctx:
            _tiny_job(ctx, 2)
            ctx.telemetry.inc("something", 5)
            ctx.quarantine.add("fastq", "@bad", "truncated")
            assert ctx.metrics.job().stage_count > 0
            assert ctx.cached_bytes() > 0
            first_metrics = ctx.metrics

            ctx.reset_for_reuse()
            assert ctx.metrics is not first_metrics
            assert ctx.metrics.job().stage_count == 0
            assert ctx.telemetry.counter("something") == 0
            assert ctx.quarantine.total == 0
            assert ctx.cached_bytes() == 0

    def test_engine_still_works_after_reset(self):
        with GPFContext(EngineConfig(default_parallelism=2)) as ctx:
            before = _tiny_job(ctx, 7)
            ctx.reset_for_reuse()
            assert _tiny_job(ctx, 7) == before
            assert ctx.metrics.job().stage_count > 0

    def test_reset_closes_open_trace_segment(self, tmp_path):
        with GPFContext(EngineConfig(default_parallelism=2)) as ctx:
            ctx.begin_trace(str(tmp_path / "seg"))
            ctx.reset_for_reuse()
            assert isinstance(ctx.tracer, NoopTracer)
            events = read_events(str(tmp_path / "seg" / "events.jsonl"))
            assert events[-1]["kind"] == "run.end"

    def test_reset_on_closed_context_rejected(self):
        ctx = GPFContext(EngineConfig())
        ctx.stop()
        with pytest.raises(RuntimeError, match="closed"):
            ctx.reset_for_reuse()

"""Block manager (MEMORY_AND_DISK cache) tests."""

import pytest

from repro.engine.blockmanager import BlockManager
from repro.engine.context import EngineConfig, GPFContext


class TestBlockManager:
    def test_put_get_roundtrip(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put((1, 0), b"hello")
        assert bm.get((1, 0)) == b"hello"
        assert bm.stats.hits == 1

    def test_missing_counts_miss(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        assert bm.get((9, 9)) is None
        assert bm.stats.misses == 1

    def test_lru_eviction_spills_to_disk(self, tmp_path):
        bm = BlockManager(str(tmp_path), memory_limit=25)
        bm.put((1, 0), b"a" * 10)
        bm.put((1, 1), b"b" * 10)
        bm.put((1, 2), b"c" * 10)  # 30 bytes > 25: evict the LRU block
        assert bm.stats.evictions >= 1
        assert bm.stats.disk_blocks >= 1
        # Everything still readable (disk fallback).
        assert bm.get((1, 0)) == b"a" * 10
        assert bm.get((1, 1)) == b"b" * 10
        assert bm.get((1, 2)) == b"c" * 10
        assert bm.stats.disk_reads >= 1

    def test_recently_used_block_survives_eviction(self, tmp_path):
        bm = BlockManager(str(tmp_path), memory_limit=25)
        bm.put((1, 0), b"a" * 10)
        bm.put((1, 1), b"b" * 10)
        bm.get((1, 0))  # touch: (1,0) becomes MRU
        bm.put((1, 2), b"c" * 10)  # forces eviction of (1,1), not (1,0)
        assert (1, 0) in bm._memory
        assert (1, 1) in bm._on_disk

    def test_overwrite_replaces_block(self, tmp_path):
        bm = BlockManager(str(tmp_path))
        bm.put((1, 0), b"old")
        bm.put((1, 0), b"newer")
        assert bm.get((1, 0)) == b"newer"
        assert bm.stats.memory_blocks == 1

    def test_evict_rdd_removes_memory_and_disk(self, tmp_path):
        bm = BlockManager(str(tmp_path), memory_limit=12)
        bm.put((1, 0), b"a" * 10)
        bm.put((1, 1), b"b" * 10)  # spills (1,0)
        bm.put((2, 0), b"c" * 5)
        bm.evict_rdd(1)
        assert not bm.contains((1, 0)) and not bm.contains((1, 1))
        assert bm.contains((2, 0))

    def test_total_bytes_spans_tiers(self, tmp_path):
        bm = BlockManager(str(tmp_path), memory_limit=12)
        bm.put((1, 0), b"a" * 10)
        bm.put((1, 1), b"b" * 10)
        assert bm.total_bytes() == 20


class TestEngineIntegration:
    def test_persisted_rdd_survives_tiny_memory_limit(self, tmp_path):
        config = EngineConfig(
            spill_dir=str(tmp_path / "s"),
            cache_memory_limit=200,  # far below the data size
            default_parallelism=4,
        )
        with GPFContext(config) as ctx:
            rdd = ctx.parallelize([("x" * 50, i) for i in range(100)], 4).persist()
            first = rdd.collect()
            second = rdd.collect()  # served from cache (memory + disk)
            assert first == second
            stats = ctx.block_manager.stats
            assert stats.evictions > 0
            assert stats.disk_reads > 0

    def test_unbounded_cache_never_evicts(self, tmp_path):
        config = EngineConfig(spill_dir=str(tmp_path / "u"))
        with GPFContext(config) as ctx:
            rdd = ctx.parallelize(list(range(1000)), 4).persist()
            rdd.collect()
            rdd.collect()
            assert ctx.block_manager.stats.evictions == 0

    def test_cache_avoids_recompute_even_when_spilled(self, tmp_path):
        calls = []
        config = EngineConfig(
            spill_dir=str(tmp_path / "r"), cache_memory_limit=50
        )
        with GPFContext(config) as ctx:
            rdd = (
                ctx.parallelize(list(range(200)), 4)
                .map(lambda x: calls.append(x) or ("pad" * 10, x))
                .persist()
            )
            rdd.collect()
            count_after_first = len(calls)
            rdd.collect()
            assert len(calls) == count_after_first  # no recompute

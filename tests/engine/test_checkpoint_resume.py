"""Fault-tolerance suite: RDD checkpointing, run-journal crash resume,
task deadlines with backoff, executor blacklisting, shutdown cleanup."""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.core.pipeline import Pipeline
from repro.core.process import Process, ProcessState
from repro.core.resource import Resource
from repro.engine.context import EngineConfig, GPFContext
from repro.engine.executors import ProcessExecutor
from repro.engine.faults import (
    InjectedFault,
    RandomFaults,
    TaskFailedError,
    TaskTimeoutError,
)
from repro.engine.journal import RunJournal, plan_signature


# ---------------------------------------------------------------------------
# RDD.checkpoint()
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def test_checkpoint_truncates_lineage(self, ctx):
        calls: list[int] = []

        def bump(x):
            calls.append(x)
            return x + 1

        rdd = ctx.parallelize(range(10), 2).map(bump)
        assert not rdd.is_checkpointed
        rdd.checkpoint()
        assert rdd.is_checkpointed
        assert rdd.parents == [] and rdd.shuffle_deps == []
        computed = len(calls)
        assert computed == 10  # checkpoint() materialized every partition

        downstream = rdd.map(lambda x: x * 2)
        assert downstream.collect() == [(x + 1) * 2 for x in range(10)]
        # Reads came from the checkpoint files, not a recompute.
        assert len(calls) == computed
        assert ctx.block_manager.stats.checkpoint_reads >= 2

    def test_checkpoint_is_idempotent(self, ctx):
        rdd = ctx.parallelize(range(6), 3).map(lambda x: -x)
        assert rdd.checkpoint() is rdd
        writes = ctx.block_manager.stats.checkpoint_writes
        rdd.checkpoint()  # second call is a no-op
        assert ctx.block_manager.stats.checkpoint_writes == writes
        assert rdd.collect() == [-x for x in range(6)]

    def test_corrupt_checkpoint_recomputes_from_lineage(self, ctx):
        rdd = ctx.parallelize(range(8), 2).map(lambda x: x * 3)
        rdd.checkpoint()
        path = ctx.block_manager._checkpoint_path((rdd.id, 0))
        with open(path, "r+b") as fh:  # flip payload bytes past the header
            fh.seek(10)
            fh.write(b"\xff\xff\xff")
        assert rdd.collect() == [x * 3 for x in range(8)]
        assert ctx.block_manager.stats.corrupt_reads >= 1
        # The recompute rewrote the checkpoint; the next read is clean.
        corrupt_before = ctx.block_manager.stats.corrupt_reads
        assert rdd.collect() == [x * 3 for x in range(8)]
        assert ctx.block_manager.stats.corrupt_reads == corrupt_before

    def test_checkpoint_feeds_shuffle(self, ctx):
        rdd = ctx.parallelize([(i % 3, 1) for i in range(30)], 3).checkpoint()
        out = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        assert out == {0: 10, 1: 10, 2: 10}


# ---------------------------------------------------------------------------
# Context shutdown cleanup (satellite: spill/checkpoint dir lifecycle)
# ---------------------------------------------------------------------------
class TestShutdownCleanup:
    def test_stop_removes_owned_spill_and_checkpoint_dirs(self):
        ctx = GPFContext(EngineConfig(default_parallelism=2))
        ctx.parallelize(range(4), 2).map(lambda x: x).checkpoint()
        spill = ctx._spill_dir
        assert os.path.isdir(spill)
        ctx.stop()
        assert not os.path.exists(spill)

    def test_user_checkpoint_dir_survives_stop(self, tmp_path):
        ckpt = tmp_path / "keep-ckpt"
        config = EngineConfig(default_parallelism=2, checkpoint_dir=str(ckpt))
        ctx = GPFContext(config)
        ctx.parallelize(range(4), 2).checkpoint()
        ctx.stop()
        assert ckpt.is_dir() and list(ckpt.iterdir())


# ---------------------------------------------------------------------------
# Run journal: crash resume at Process granularity
# ---------------------------------------------------------------------------
class _Stage(Process):
    """Adds one to every element; optionally crashes (simulated kill)."""

    def __init__(self, name, src, dst, log=None):
        super().__init__(name, [src], [dst])
        self._log = log
        self.crash = False

    def execute(self, ctx):
        if self.crash:
            raise RuntimeError("simulated crash")
        if self._log is not None:
            self._log.append(self.name)
        self.outputs[0].define(self.inputs[0].value.map(lambda x: x + 1))


class _Collect(Process):
    """Materializes the RDD into a plain list (journal 'value' path)."""

    def __init__(self, name, src, dst, log=None):
        super().__init__(name, [src], [dst])
        self._log = log

    def execute(self, ctx):
        if self._log is not None:
            self._log.append(self.name)
        self.outputs[0].define(self.inputs[0].value.collect())


def _build(ctx, log, n_stages=3):
    src = Resource("src")
    src.define(ctx.parallelize(range(20), 2))
    pipeline = Pipeline("journal-test", ctx)
    prev = src
    stages = []
    for i in range(n_stages):
        out = Resource(f"r{i}")
        stage = _Stage(f"stage{i}", prev, out, log)
        pipeline.add_process(stage)
        stages.append(stage)
        prev = out
    total = Resource("total")
    pipeline.add_process(_Collect("collect", prev, total, log))
    return pipeline, stages, total


class TestJournalResume:
    def test_kill_and_resume_skips_completed_processes(self, ctx, tmp_path):
        jdir = str(tmp_path / "journal")
        expected = [x + 3 for x in range(20)]

        log1: list[str] = []
        pipe1, stages1, _ = _build(ctx, log1)
        stages1[2].crash = True  # dies after stage0/stage1 committed
        with pytest.raises(RuntimeError, match="simulated crash"):
            pipe1.run(journal_dir=jdir)
        assert log1 == ["stage0", "stage1"]

        log2: list[str] = []
        pipe2, _, total2 = _build(ctx, log2)
        pipe2.run(journal_dir=jdir)
        # Only Processes after the kill point re-execute.
        assert log2 == ["stage2", "collect"]
        assert [p.name for p in pipe2.skipped] == ["stage0", "stage1"]
        assert [p.name for p in pipe2.executed] == ["stage2", "collect"]
        assert total2.value == expected
        # Byte-identical to an unjournaled reference run.
        pipe3, _, total3 = _build(ctx, [])
        pipe3.run()
        assert pickle.dumps(total2.value) == pickle.dumps(total3.value)

    def test_second_resume_skips_everything(self, ctx, tmp_path):
        jdir = str(tmp_path / "journal")
        pipe1, _, total1 = _build(ctx, [])
        pipe1.run(journal_dir=jdir)
        log: list[str] = []
        pipe2, stages2, total2 = _build(ctx, log)
        pipe2.run(journal_dir=jdir)
        assert log == []
        assert len(pipe2.skipped) == 4
        assert all(p.state is ProcessState.END for p in stages2)
        assert total2.value == total1.value

    def test_stale_journal_from_different_plan_is_discarded(self, ctx, tmp_path):
        jdir = str(tmp_path / "journal")
        pipe1, _, _ = _build(ctx, [], n_stages=2)
        pipe1.run(journal_dir=jdir)
        log: list[str] = []
        pipe2, _, total2 = _build(ctx, log, n_stages=3)  # structurally new plan
        pipe2.run(journal_dir=jdir)
        assert log == ["stage0", "stage1", "stage2", "collect"]
        assert pipe2.skipped == []
        assert total2.value == [x + 3 for x in range(20)]

    def test_torn_trailing_line_tolerated(self, ctx, tmp_path):
        jdir = str(tmp_path / "journal")
        log1: list[str] = []
        pipe1, stages1, _ = _build(ctx, log1)
        stages1[1].crash = True
        with pytest.raises(RuntimeError):
            pipe1.run(journal_dir=jdir)
        # Simulate a crash mid-append: a torn, non-JSON trailing line.
        with open(os.path.join(jdir, "journal.jsonl"), "a", encoding="utf-8") as fh:
            fh.write('{"kind": "process", "proc')
        log2: list[str] = []
        pipe2, _, total2 = _build(ctx, log2)
        pipe2.run(journal_dir=jdir)
        assert log2 == ["stage1", "stage2", "collect"]
        assert total2.value == [x + 3 for x in range(20)]

    def test_corrupt_checkpoint_file_reexecutes_process(self, ctx, tmp_path):
        jdir = str(tmp_path / "journal")
        pipe1, _, _ = _build(ctx, [])
        pipe1.run(journal_dir=jdir)
        # Corrupt one of stage0's journaled partitions.
        data_dir = os.path.join(jdir, "data")
        victim = sorted(
            p for p in os.listdir(data_dir) if p.startswith("stage0__")
        )[0]
        with open(os.path.join(data_dir, victim), "r+b") as fh:
            fh.seek(10)
            fh.write(b"\x00\x00\x00")
        log: list[str] = []
        pipe2, _, total2 = _build(ctx, log)
        pipe2.run(journal_dir=jdir)
        # stage0 re-executes (its checkpoint is bad); later Processes with
        # intact checkpoints still skip.
        assert "stage0" in log
        assert "stage1" not in log and "stage2" not in log
        assert total2.value == [x + 3 for x in range(20)]

    def test_header_metadata_restored(self, ctx, tmp_path):
        class _Headered(Resource):
            def __init__(self, name):
                super().__init__(name)
                self.header = None

        class _Produce(Process):
            def execute(self, process_ctx):
                self.outputs[0].define(process_ctx.parallelize(range(4), 2))
                self.outputs[0].header = {"sorted": True, "by": self.name}

        def build():
            out = _Headered("headered")
            pipeline = Pipeline("hdr", ctx)
            pipeline.add_process(_Produce("producer", [], [out]))
            return pipeline, out

        jdir = str(tmp_path / "journal")
        pipe1, out1 = build()
        pipe1.run(journal_dir=jdir)
        assert out1.header == {"sorted": True, "by": "producer"}
        pipe2, out2 = build()
        pipe2.run(journal_dir=jdir)
        assert [p.name for p in pipe2.skipped] == ["producer"]
        assert out2.header == {"sorted": True, "by": "producer"}
        assert out2.value.collect() == list(range(4))

    def test_plan_signature_stable_and_structural(self, ctx):
        pipe1, _, _ = _build(ctx, [])
        pipe2, _, _ = _build(ctx, [])
        assert plan_signature(pipe1.processes) == plan_signature(pipe2.processes)
        pipe3, _, _ = _build(ctx, [], n_stages=2)
        assert plan_signature(pipe1.processes) != plan_signature(pipe3.processes)

    @pytest.mark.parametrize("backend", ["threads", "process"])
    def test_kill_and_resume_under_random_faults(self, tmp_path, backend):
        """Crash resume is byte-identical even with tasks dying at rate 0.2."""
        jdir = str(tmp_path / "journal")
        config = EngineConfig(
            default_parallelism=2,
            spill_dir=str(tmp_path / "spill"),
            executor_backend=backend,
            num_workers=2,
            max_task_attempts=8,
        )
        with GPFContext(config) as ctx:
            ctx.add_fault_injector(RandomFaults(rate=0.2, seed=7))
            reference, _, total_ref = _build(ctx, [])
            reference.run()
            expected = pickle.dumps(total_ref.value)

            pipe1, stages1, _ = _build(ctx, [])
            stages1[1].crash = True
            with pytest.raises(RuntimeError, match="simulated crash"):
                pipe1.run(journal_dir=jdir)

            log: list[str] = []
            pipe2, _, total2 = _build(ctx, log)
            pipe2.run(journal_dir=jdir)
            assert [p.name for p in pipe2.skipped] == ["stage0"]
            assert "stage0" not in log
            assert pickle.dumps(total2.value) == expected


# ---------------------------------------------------------------------------
# Task deadlines, backoff, failure ledger, blacklisting
# ---------------------------------------------------------------------------
class TestDeadlinesAndBackoff:
    def test_timeout_kills_hung_task_and_ledgers_backoff(self, tmp_path):
        config = EngineConfig(
            default_parallelism=1,
            spill_dir=str(tmp_path / "spill"),
            task_timeout=0.2,
            max_task_attempts=2,
            retry_backoff=0.01,
        )

        def hang(x):
            time.sleep(2.0)
            return x

        with GPFContext(config) as ctx:
            with pytest.raises(TaskFailedError) as excinfo:
                ctx.parallelize([1], 1).map(hang).collect()
            assert isinstance(excinfo.value.cause, TaskTimeoutError)
            assert excinfo.value.__cause__ is excinfo.value.cause

            failures = ctx.metrics.failures
            assert len(failures) == 2
            assert {f.error_type for f in failures} == {"TaskTimeoutError"}
            # Backoff before the retry; none after the final attempt.
            assert failures[0].backoff > 0
            assert failures[1].backoff == 0.0
            assert ctx.metrics.failure_counts() == {("result", 0): 2}
            assert ctx.metrics.executor_events["timeout"] == 2

    def test_timeout_recovers_when_retry_is_fast(self, tmp_path):
        config = EngineConfig(
            default_parallelism=1,
            spill_dir=str(tmp_path / "spill"),
            task_timeout=0.5,
            max_task_attempts=3,
            retry_backoff=0.01,
        )
        hung_once: list[bool] = []

        def flaky(x):
            if not hung_once:
                hung_once.append(True)
                time.sleep(2.0)
            return x * 2

        with GPFContext(config) as ctx:
            assert ctx.parallelize([1, 2], 1).map(flaky).collect() == [2, 4]
            assert ctx.metrics.failure_counts() == {("result", 0): 1}

    def test_backoff_is_deterministic_and_bounded(self, tmp_path):
        config = EngineConfig(
            spill_dir=str(tmp_path / "spill"),
            retry_backoff=0.05,
            retry_backoff_max=0.4,
        )
        with GPFContext(config) as ctx:
            scheduler = ctx._scheduler
            first = scheduler._backoff_delay("result", 3, 2)
            assert first == scheduler._backoff_delay("result", 3, 2)
            assert 0 < first <= 0.4
            # Different task identity jitters differently.
            assert first != scheduler._backoff_delay("result", 4, 2)
            # Exponential growth until the cap.
            assert scheduler._backoff_delay("result", 0, 9) <= 0.4

    def test_injected_failures_enter_ledger(self, ctx):
        ctx.add_fault_injector(RandomFaults(rate=1.0, seed=0, max_failures=2))
        ctx.parallelize(range(6), 2).collect()
        ledger = ctx.metrics.failures
        assert len(ledger) == 2
        assert {f.error_type for f in ledger} == {"InjectedFault"}


class TestBlacklisting:
    def test_process_executor_blacklists_after_repeated_failures(self):
        executor = ProcessExecutor(num_workers=2, blacklist_after=2)
        try:
            assert executor.note_slot_failure("timeout") is False
            assert executor.note_slot_failure("timeout") is True  # trips
            assert executor.blacklisted
            assert executor.note_slot_failure("timeout") is False  # only once
            before = executor.fallback_batches
            assert executor.run_all([lambda: 1, lambda: 2]) == [1, 2]
            assert executor.fallback_batches == before + 1  # thread fallback
        finally:
            executor.shutdown()

    def test_scheduler_blacklists_slot_on_repeated_timeouts(self, tmp_path):
        config = EngineConfig(
            default_parallelism=1,
            spill_dir=str(tmp_path / "spill"),
            executor_backend="process",
            num_workers=2,
            task_timeout=0.15,
            max_task_attempts=2,
            retry_backoff=0.0,
            blacklist_after=1,
        )

        def hang(x):
            time.sleep(2.0)
            return x

        with GPFContext(config) as ctx:
            with pytest.raises(TaskFailedError):
                ctx.parallelize([1], 1).map(hang).collect()
            assert ctx.executor.blacklisted
            events = ctx.metrics.executor_events
            assert events["timeout"] == 2
            assert events["blacklisted"] == 1


# ---------------------------------------------------------------------------
# Exceptions survive the process-backend pickle round trip
# ---------------------------------------------------------------------------
class TestExceptionPickling:
    def test_task_failed_error_round_trip(self):
        err = TaskFailedError("result", 3, 4, InjectedFault("boom"))
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, TaskFailedError)
        assert (clone.stage_kind, clone.partition, clone.attempts) == ("result", 3, 4)
        assert isinstance(clone.cause, InjectedFault)
        assert clone.__cause__ is clone.cause

    def test_task_timeout_error_round_trip(self):
        clone = pickle.loads(pickle.dumps(TaskTimeoutError("result p0", 1.5)))
        assert isinstance(clone, TaskTimeoutError)
        assert clone.timeout == 1.5 and clone.where == "result p0"

    def test_injector_round_trip_keeps_determinism(self):
        injector = RandomFaults(rate=0.5, seed=3)
        clone = pickle.loads(pickle.dumps(injector))

        def trace(inj):
            outcomes = []
            for i in range(20):
                try:
                    inj("result", i, 0)
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
            return outcomes

        assert trace(injector) == trace(clone)

"""Tests for the extended RDD operations."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.context import EngineConfig, GPFContext


class TestAggregateByKey:
    def test_set_accumulation(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 1), ("a", 1)]
        rdd = ctx.parallelize(pairs, 2)
        out = dict(
            rdd.aggregate_by_key(
                set(), lambda acc, v: acc | {v}, lambda a, b: a | b
            ).collect()
        )
        assert out == {"a": {1, 2}, "b": {1}}

    def test_zero_not_shared_between_keys(self, ctx):
        # A mutable zero must not leak state across keys.
        pairs = [("a", 1), ("b", 2)]
        out = dict(
            ctx.parallelize(pairs, 1)
            .aggregate_by_key([], lambda acc, v: acc + [v], lambda a, b: a + b)
            .collect()
        )
        assert out == {"a": [1], "b": [2]}

    def test_fold_by_key(self, ctx):
        pairs = [(i % 2, i) for i in range(10)]
        out = dict(
            ctx.parallelize(pairs, 3).fold_by_key(0, lambda a, b: a + b).collect()
        )
        assert out == {0: 20, 1: 25}

    def test_mean_via_aggregate(self, ctx):
        pairs = [("x", v) for v in (1.0, 2.0, 3.0, 4.0)]
        out = dict(
            ctx.parallelize(pairs, 2)
            .aggregate_by_key(
                (0.0, 0),
                lambda acc, v: (acc[0] + v, acc[1] + 1),
                lambda a, b: (a[0] + b[0], a[1] + b[1]),
            )
            .map_values(lambda sc: sc[0] / sc[1])
            .collect()
        )
        assert out["x"] == pytest.approx(2.5)


class TestSetOperations:
    def test_subtract(self, ctx):
        a = ctx.parallelize([1, 2, 2, 3, 4], 2)
        b = ctx.parallelize([2, 4], 1)
        assert sorted(a.subtract(b).collect()) == [1, 3]

    def test_subtract_keeps_multiplicity(self, ctx):
        a = ctx.parallelize([1, 1, 2], 2)
        b = ctx.parallelize([2], 1)
        assert sorted(a.subtract(b).collect()) == [1, 1]

    def test_intersection_is_distinct(self, ctx):
        a = ctx.parallelize([1, 1, 2, 3], 2)
        b = ctx.parallelize([1, 2, 2, 4], 2)
        assert sorted(a.intersection(b).collect()) == [1, 2]

    def test_disjoint_intersection_empty(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([2], 1)
        assert a.intersection(b).collect() == []


class TestSample:
    def test_fraction_zero_and_one(self, ctx):
        rdd = ctx.parallelize(range(100), 4)
        assert rdd.sample(0.0).collect() == []
        assert rdd.sample(1.0 + 1e-12).count() == 100

    def test_deterministic_given_seed(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        assert rdd.sample(0.3, seed=7).collect() == rdd.sample(0.3, seed=7).collect()

    def test_fraction_approximated(self, ctx):
        rdd = ctx.parallelize(range(5000), 4)
        count = rdd.sample(0.2, seed=1).count()
        assert 800 <= count <= 1200

    def test_with_replacement_can_duplicate(self, ctx):
        rdd = ctx.parallelize(range(50), 2)
        out = rdd.sample(3.0, seed=2, with_replacement=True).collect()
        assert len(out) > 50
        assert any(out.count(x) > 1 for x in set(out))

    def test_negative_fraction_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).sample(-0.1)


class TestZipWithIndex:
    def test_indices_are_global_and_ordered(self, ctx):
        rdd = ctx.parallelize(list("abcdefg"), 3)
        out = rdd.zip_with_index().collect()
        assert out == [(c, i) for i, c in enumerate("abcdefg")]

    def test_empty(self, ctx):
        assert ctx.parallelize([], 2).zip_with_index().collect() == []


class TestNumericActions:
    def test_sum_and_mean(self, ctx):
        rdd = ctx.parallelize([1.5, 2.5, 3.0], 2)
        assert rdd.sum() == pytest.approx(7.0)
        assert rdd.mean() == pytest.approx(7.0 / 3)

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 1).mean()


class TestSaveAsTextFile:
    def test_one_file_per_partition(self, ctx, tmp_path):
        rdd = ctx.parallelize(range(10), 3)
        out_dir = str(tmp_path / "out")
        rdd.save_as_text_file(out_dir)
        files = sorted(os.listdir(out_dir))
        assert files == ["part-00000", "part-00001", "part-00002"]
        lines = []
        for f in files:
            with open(os.path.join(out_dir, f)) as fh:
                lines.extend(int(l) for l in fh.read().splitlines())
        assert lines == list(range(10))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, 30), max_size=40),
    st.lists(st.integers(0, 30), max_size=40),
)
def test_set_operations_match_python_sets(left, right):
    with GPFContext(EngineConfig(default_parallelism=3)) as ctx:
        a = ctx.parallelize(left, 3)
        b = ctx.parallelize(right, 2)
        assert set(a.intersection(b).collect()) == set(left) & set(right)
        assert set(a.subtract(b).collect()) == set(left) - set(right)


class TestCoalesce:
    def test_merges_without_shuffle(self, ctx):
        rdd = ctx.parallelize(range(12), 6).coalesce(2)
        assert rdd.num_partitions == 2
        assert rdd.collect() == list(range(12))  # order preserved
        rdd.collect()
        job = ctx.metrics.job()
        assert job.shuffle_bytes == 0  # narrow: nothing spilled

    def test_growing_is_noop(self, ctx):
        rdd = ctx.parallelize(range(4), 2)
        assert rdd.coalesce(8) is rdd

    def test_invalid(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).coalesce(0)


class TestOrderedActions:
    def test_top(self, ctx):
        rdd = ctx.parallelize([5, 1, 9, 3, 7, 2], 3)
        assert rdd.top(2) == [9, 7]

    def test_top_with_key(self, ctx):
        rdd = ctx.parallelize(["aa", "b", "cccc"], 2)
        assert rdd.top(1, key=len) == ["cccc"]

    def test_take_ordered(self, ctx):
        rdd = ctx.parallelize([5, 1, 9, 3], 2)
        assert rdd.take_ordered(3) == [1, 3, 5]

    def test_lookup(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        assert sorted(rdd.lookup("a")) == [1, 3]
        assert rdd.lookup("zz") == []


class TestHistogram:
    def test_even_buckets(self, ctx):
        rdd = ctx.parallelize([0.0, 1.0, 2.0, 3.0, 4.0], 2)
        edges, counts = rdd.histogram(2)
        assert edges == [0.0, 2.0, 4.0]
        assert sum(counts) == 5
        assert counts == [2, 3]  # 0,1 | 2,3,4 (max lands in last bucket)

    def test_constant_values(self, ctx):
        edges, counts = ctx.parallelize([7, 7, 7], 2).histogram(4)
        assert edges == [7.0, 7.0]
        assert counts == [3]

    def test_empty(self, ctx):
        assert ctx.parallelize([], 2).histogram(3) == ([], [])

    def test_invalid_buckets(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).histogram(0)

"""Compressed-resident partitions end to end: cache, budget eviction,
spill, checkpoint, journal compatibility, and the telemetry gauges."""

import zlib

import pytest

from repro.engine.blockmanager import unframe_block
from repro.engine.bundle import BUNDLE_MAGIC, LazyPartition
from repro.engine.context import EngineConfig, GPFContext
from repro.formats.fastq import FastqPair, FastqRecord


def make_pairs(n: int) -> list[FastqPair]:
    bases = "ACGT"
    pairs = []
    for i in range(n):
        seq = "".join(bases[(i + j) % 4] for j in range(80))
        pairs.append(
            FastqPair(
                FastqRecord(f"frag{i}/1", seq, "I" * 80),
                FastqRecord(f"frag{i}/2", seq[::-1], "H" * 80),
            )
        )
    return pairs


@pytest.fixture()
def gpf_ctx(tmp_path):
    context = GPFContext(
        EngineConfig(
            default_parallelism=3,
            serializer="gpf",
            spill_dir=str(tmp_path / "spill"),
        )
    )
    yield context
    context.stop()


class TestCachedBlocksStayCompressed:
    def test_cache_get_returns_lazy_partition(self, gpf_ctx):
        pairs = make_pairs(30)
        rdd = gpf_ctx.parallelize(pairs, 3).persist()
        assert rdd.collect() == pairs  # populates the cache
        cached = gpf_ctx._cache_get(rdd, 0)
        assert isinstance(cached, LazyPartition)
        assert cached.bundle.codec == b"P"

    def test_collect_from_cache_round_trips(self, gpf_ctx):
        pairs = make_pairs(24)
        rdd = gpf_ctx.parallelize(pairs, 3).persist()
        first = rdd.collect()
        second = rdd.collect()  # cache hit path
        assert first == second == pairs
        assert gpf_ctx.block_manager.stats.hits > 0

    def test_telemetry_gauges_present(self, gpf_ctx):
        pairs = make_pairs(40)
        rdd = gpf_ctx.parallelize(pairs, 2).persist()
        rdd.collect()
        rdd.collect()
        snapshot = gpf_ctx.telemetry_snapshot()
        gauges = snapshot["gauges"]
        assert gauges["blockmanager.compressed_bytes"] > 0
        assert gauges["blockmanager.logical_bytes"] > gauges[
            "blockmanager.compressed_bytes"
        ]
        assert gauges["blockmanager.compression_ratio"] > 1.0
        counters = snapshot["counters"]
        assert counters["blockmanager.decode_seconds"] > 0
        assert counters["blockmanager.decoded_records"] > 0

    def test_memory_accounting_uses_compressed_bytes(self, gpf_ctx):
        pairs = make_pairs(40)
        rdd = gpf_ctx.parallelize(pairs, 2).persist()
        rdd.collect()
        stats = gpf_ctx.block_manager.stats
        # The resident footprint must be well under the decoded one.
        assert stats.memory_bytes < stats.logical_bytes / 2


class TestMemoryBudget:
    def test_budget_forces_spill_results_unchanged(self, tmp_path):
        pairs = make_pairs(60)
        context = GPFContext(
            EngineConfig(
                default_parallelism=4,
                serializer="gpf",
                spill_dir=str(tmp_path / "spill"),
                memory_budget=512,  # far below the compressed working set
            )
        )
        try:
            rdd = context.parallelize(pairs, 4).persist()
            assert rdd.collect() == pairs
            assert rdd.collect() == pairs  # spilled blocks read back
            stats = context.block_manager.stats
            assert stats.evictions > 0
            assert stats.disk_blocks > 0
        finally:
            context.stop()

    def test_budget_takes_precedence_over_cache_limit(self, tmp_path):
        config = EngineConfig(
            spill_dir=str(tmp_path / "s"),
            cache_memory_limit=1,
            memory_budget=1 << 30,
        )
        context = GPFContext(config)
        try:
            rdd = context.parallelize(make_pairs(20), 2).persist()
            rdd.collect()
            assert context.block_manager.stats.evictions == 0
        finally:
            context.stop()


class TestCheckpointCompressed:
    def test_checkpoint_round_trips(self, gpf_ctx):
        pairs = make_pairs(18)
        rdd = gpf_ctx.parallelize(pairs, 3).checkpoint()
        assert rdd.collect() == pairs
        assert rdd.collect() == pairs

    def test_checkpoint_files_are_v2_bundles(self, gpf_ctx, tmp_path):
        pairs = make_pairs(12)
        rdd = gpf_ctx.parallelize(pairs, 2).checkpoint()
        rdd.collect()
        ckpt_dir = gpf_ctx.block_manager._ckpt_dir
        import glob
        import os

        files = glob.glob(os.path.join(ckpt_dir, "**", "*"), recursive=True)
        blobs = [f for f in files if os.path.isfile(f)]
        assert blobs
        with open(blobs[0], "rb") as fh:
            body = unframe_block(fh.read())
        assert body.startswith(BUNDLE_MAGIC)


class TestShuffleSpillCompressed:
    def test_group_by_key_round_trips(self, gpf_ctx):
        pairs = make_pairs(20)
        keyed = gpf_ctx.parallelize(
            [(i % 4, p) for i, p in enumerate(pairs)], 2
        )
        grouped = dict(keyed.group_by_key(2).collect())
        assert set(grouped) == {0, 1, 2, 3}
        assert sorted(
            p.name for vs in grouped.values() for p in vs
        ) == sorted(p.name for p in pairs)

    def test_spill_files_are_framed_bundles(self, tmp_path):
        context = GPFContext(
            EngineConfig(
                default_parallelism=2,
                serializer="gpf",
                spill_dir=str(tmp_path / "spill"),
            )
        )
        try:
            keyed = context.parallelize([(i % 2, i) for i in range(10)], 2)
            keyed.group_by_key(2).collect()
            import glob

            spill_files = glob.glob(
                str(tmp_path / "spill" / "shuffle_*" / "*.bin")
            )
            assert spill_files
            with open(spill_files[0], "rb") as fh:
                blob = fh.read()
            tag, body = blob[:1], blob[1:]
            if tag == b"z":
                body = zlib.decompress(body)
            assert unframe_block(body).startswith(BUNDLE_MAGIC)
        finally:
            context.stop()


class TestLegacyBlobCompat:
    def test_v1_checkpoint_file_still_restores(self, gpf_ctx, tmp_path):
        # A checkpoint written by the old code path: raw serializer bytes
        # inside the crc frame, no GPB2 header.
        from repro.engine.blockmanager import write_block_file
        from repro.engine.journal import CheckpointFileRDD

        records = [FastqRecord(f"r{i}", "ACGT" * 10, "I" * 40) for i in range(8)]
        path = str(tmp_path / "legacy__out__p0.ckpt")
        write_block_file(path, gpf_ctx.serializer.dumps(records))
        rdd = CheckpointFileRDD(gpf_ctx, [path])
        assert rdd.collect() == records

"""Lazy file-backed RDD tests."""

import os

import pytest

from repro.engine.files import (
    FastqFileRDD,
    FastqPairFileRDD,
    TextFileRDD,
    load_fastq_pair_lazy,
)
from repro.formats.fastq import write_fastq


@pytest.fixture()
def text_path(tmp_path):
    path = str(tmp_path / "data.txt")
    with open(path, "w") as fh:
        for i in range(1000):
            fh.write(f"line-{i:04d} with some padding text\n")
    return path


@pytest.fixture()
def fastq_paths(tmp_path, read_pairs):
    p1 = str(tmp_path / "r1.fastq")
    p2 = str(tmp_path / "r2.fastq")
    subset = read_pairs[:120]
    write_fastq([p.read1 for p in subset], p1)
    write_fastq([p.read2 for p in subset], p2)
    return p1, p2, subset


class TestTextFile:
    def test_all_lines_exactly_once(self, ctx, text_path):
        rdd = TextFileRDD(ctx, text_path, 7)
        lines = rdd.collect()
        assert len(lines) == 1000
        assert lines[0] == "line-0000 with some padding text"
        assert lines[-1].startswith("line-0999")

    def test_splits_are_nonoverlapping(self, ctx, text_path):
        parts = TextFileRDD(ctx, text_path, 5).collect_partitions()
        flat = [l for p in parts for l in p]
        assert len(flat) == len(set(flat)) == 1000

    def test_single_partition(self, ctx, text_path):
        assert TextFileRDD(ctx, text_path, 1).count() == 1000

    def test_more_partitions_than_lines(self, ctx, tmp_path):
        path = str(tmp_path / "tiny.txt")
        with open(path, "w") as fh:
            fh.write("a\nb\n")
        assert sorted(TextFileRDD(ctx, path, 8).collect()) == ["a", "b"]

    def test_empty_file(self, ctx, tmp_path):
        path = str(tmp_path / "empty.txt")
        open(path, "w").close()
        assert TextFileRDD(ctx, path, 3).collect() == []

    def test_read_time_charged_to_disk(self, ctx, text_path):
        TextFileRDD(ctx, text_path, 2).collect()
        job = ctx.metrics.job()
        assert sum(s.disk_blocked for s in job.stages) > 0

    def test_invalid_partitions(self, ctx, text_path):
        with pytest.raises(ValueError):
            TextFileRDD(ctx, text_path, 0)


class TestFastqFile:
    def test_records_parse_exactly(self, ctx, fastq_paths):
        p1, _, subset = fastq_paths
        rdd = FastqFileRDD(ctx, p1, 5)
        records = rdd.collect()
        assert len(records) == len(subset)
        assert [r.sequence for r in records] == [p.read1.sequence for p in subset]

    def test_quality_lines_starting_with_at_not_confused(self, ctx, tmp_path):
        # Quality strings may begin with '@' — the split snapper must not
        # treat them as record headers.
        from repro.formats.fastq import FastqRecord

        path = str(tmp_path / "tricky.fastq")
        records = [
            FastqRecord(f"r{i}", "ACGTACGTAC", "@" + "I" * 9) for i in range(50)
        ]
        write_fastq(records, path)
        out = FastqFileRDD(ctx, path, 7).collect()
        assert len(out) == 50
        assert all(r.quality.startswith("@") for r in out)


class TestFastqPairFile:
    def test_pairs_align_by_index(self, ctx, fastq_paths):
        p1, p2, subset = fastq_paths
        rdd = FastqPairFileRDD(ctx, p1, p2, 4)
        pairs = rdd.collect()
        assert len(pairs) == len(subset)
        for got, expected in zip(pairs, subset):
            assert got.read1.sequence == expected.read1.sequence
            assert got.read2.sequence == expected.read2.sequence
            assert got.read1.name == expected.read1.name

    def test_partition_counts_balanced(self, ctx, fastq_paths):
        p1, p2, subset = fastq_paths
        parts = FastqPairFileRDD(ctx, p1, p2, 5).collect_partitions()
        sizes = [len(p) for p in parts]
        assert sum(sizes) == len(subset)
        assert max(sizes) - min(sizes) <= 1

    def test_mismatched_files_rejected(self, ctx, fastq_paths, tmp_path):
        p1, _, subset = fastq_paths
        short = str(tmp_path / "short.fastq")
        write_fastq([p.read2 for p in subset[:-3]], short)
        with pytest.raises(ValueError, match="disagree"):
            FastqPairFileRDD(ctx, p1, short, 3)

    def test_helper_uses_default_parallelism(self, ctx, fastq_paths):
        p1, p2, _ = fastq_paths
        rdd = load_fastq_pair_lazy(ctx, p1, p2)
        assert rdd.num_partitions == ctx.config.default_parallelism

    def test_pipeline_runs_from_lazy_files(
        self, ctx, reference, known_sites, fastq_paths
    ):
        from repro.wgs import build_wgs_pipeline

        p1, p2, _ = fastq_paths
        rdd = load_fastq_pair_lazy(ctx, p1, p2, 3)
        handles = build_wgs_pipeline(
            ctx, reference, rdd, known_sites, partition_length=4_000
        )
        handles.pipeline.run()
        assert isinstance(handles.vcf.rdd.collect(), list)

"""Resilience tests: task retry, lineage recomputation, fault injection."""

import pytest

from repro.engine.context import EngineConfig, GPFContext
from repro.engine.faults import FaultPlan, InjectedFault, RandomFaults, TaskFailedError


class TestFaultPlan:
    def test_planned_attempt_killed(self):
        plan = FaultPlan({(0, 0)})
        with pytest.raises(InjectedFault):
            plan("result", 0, 0)
        plan("result", 0, 1)  # next attempt survives
        plan("result", 1, 0)  # other partitions untouched

    def test_random_faults_deterministic(self):
        a = RandomFaults(rate=0.5, seed=3)
        b = RandomFaults(rate=0.5, seed=3)

        def trace(injector):
            outcomes = []
            for i in range(20):
                try:
                    injector("result", i, 0)
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
            return outcomes

        assert trace(a) == trace(b)

    def test_max_failures_cap(self):
        injector = RandomFaults(rate=1.0, seed=0, max_failures=2)
        killed = 0
        for i in range(10):
            try:
                injector("result", i, 0)
            except InjectedFault:
                killed += 1
        assert killed == 2
        assert injector.injected == 2


class TestRetry:
    def test_single_failure_recovers(self, ctx):
        ctx.add_fault_injector(FaultPlan({(1, 0)}))  # kill partition 1, try 0
        data = list(range(30))
        assert ctx.parallelize(data, 3).map(lambda x: x * 2).collect() == [
            x * 2 for x in data
        ]

    def test_retry_recomputes_from_lineage(self, ctx):
        """The retried attempt re-runs the map function (recompute from
        lineage, not replay of stale state): a failure *after* part of the
        partition was computed forces those elements through again."""
        calls: list[int] = []
        failed_once = []

        def flaky(x):
            calls.append(x)
            if x == 2 and not failed_once:
                failed_once.append(True)
                raise RuntimeError("transient worker death")
            return x

        rdd = ctx.parallelize([1, 2, 3, 4], 2).map(flaky)
        assert rdd.collect() == [1, 2, 3, 4]
        # Partition 0 = [1, 2]: attempt 0 computed 1 then died at 2; the
        # retry recomputed both. Partition 1 ran once.
        assert sorted(calls) == [1, 1, 2, 2, 3, 4]

    def test_shuffle_map_retry(self, ctx):
        ctx.add_fault_injector(FaultPlan({(0, 0), (2, 0), (2, 1)}))
        rdd = ctx.parallelize([(i % 3, 1) for i in range(30)], 3)
        out = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        assert out == {0: 10, 1: 10, 2: 10}

    def test_budget_exhausted_raises(self, tmp_path):
        config = EngineConfig(max_task_attempts=2, spill_dir=str(tmp_path / "s"))
        with GPFContext(config) as ctx:
            ctx.add_fault_injector(FaultPlan({(0, 0), (0, 1)}))
            with pytest.raises(TaskFailedError) as excinfo:
                ctx.parallelize([1], 1).collect()
            assert isinstance(excinfo.value.cause, InjectedFault)

    def test_failed_attempts_not_counted_in_metrics(self, ctx):
        ctx.add_fault_injector(FaultPlan({(0, 0)}))
        ctx.parallelize([1, 2], 2).collect()
        job = ctx.metrics.job()
        # Only successful attempts are recorded; partition 0's survivor
        # carries attempt index 1.
        tasks = [t for s in job.stages for t in s.tasks]
        assert len(tasks) == 2
        assert {t.attempt for t in tasks} == {0, 1}

    def test_random_faults_full_pipeline_still_correct(self, tmp_path):
        config = EngineConfig(
            max_task_attempts=6, spill_dir=str(tmp_path / "rf"), default_parallelism=4
        )
        with GPFContext(config) as ctx:
            ctx.add_fault_injector(RandomFaults(rate=0.25, seed=11))
            rdd = ctx.parallelize(range(200), 8)
            out = dict(
                rdd.key_by(lambda x: x % 7)
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
        expected: dict = {}
        for x in range(200):
            expected[x % 7] = expected.get(x % 7, 0) + x
        assert out == expected

    def test_pipeline_survives_faults(self, tmp_path, reference, known_sites, read_pairs):
        """The whole WGS pipeline completes under random task failures."""
        from repro.wgs import build_wgs_pipeline

        config = EngineConfig(
            max_task_attempts=6,
            spill_dir=str(tmp_path / "wgs"),
            default_parallelism=3,
        )
        with GPFContext(config) as ctx:
            ctx.add_fault_injector(RandomFaults(rate=0.1, seed=5, max_failures=10))
            handles = build_wgs_pipeline(
                ctx,
                reference,
                ctx.parallelize(read_pairs[:60], 3),
                known_sites,
                partition_length=4_000,
            )
            handles.pipeline.run()
            calls = handles.vcf.rdd.collect()
            injected = ctx.fault_injectors[0].injected
        assert injected > 0  # faults actually fired
        assert isinstance(calls, list)  # and the pipeline still finished

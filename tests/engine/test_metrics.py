import gc
import threading

import pytest

from repro.engine.broadcast import Broadcast
from repro.engine.context import EngineConfig, GPFContext
from repro.engine.executors import SerialExecutor, ThreadExecutor, make_executor
from repro.engine.metrics import (
    GC_TIMER,
    JobMetrics,
    MetricsRegistry,
    StageMetrics,
    TaskMetrics,
)


class TestTaskMetrics:
    def test_finalize_computes_cpu_time(self):
        task = TaskMetrics(run_time=10.0, disk_blocked=2.0, network_blocked=1.0)
        task.finalize()
        assert task.cpu_time == 7.0

    def test_finalize_clamps_at_zero(self):
        task = TaskMetrics(run_time=1.0, disk_blocked=2.0)
        task.finalize()
        assert task.cpu_time == 0.0


class TestAggregation:
    def test_job_metrics_sum_stages(self):
        s1 = StageMetrics(0, tasks=[TaskMetrics(run_time=1.0, shuffle_bytes_written=10)])
        s2 = StageMetrics(1, tasks=[TaskMetrics(run_time=2.0, shuffle_bytes_written=20)])
        job = JobMetrics(stages=[s1, s2])
        assert job.stage_count == 2
        assert job.core_seconds == 3.0
        assert job.shuffle_bytes == 30

    def test_blocked_fractions(self):
        stage = StageMetrics(
            0,
            tasks=[
                TaskMetrics(run_time=4.0, disk_blocked=1.0, network_blocked=0.5)
            ],
        )
        disk, net = JobMetrics(stages=[stage]).blocked_fractions()
        assert disk == pytest.approx(0.25)
        assert net == pytest.approx(0.125)

    def test_empty_job(self):
        assert JobMetrics().blocked_fractions() == (0.0, 0.0)


class TestEngineIntegration:
    def test_shuffle_bytes_recorded(self, ctx):
        rdd = ctx.parallelize([(i, "x" * 100) for i in range(50)], 4)
        rdd.group_by_key().collect()
        job = ctx.metrics.job()
        assert job.shuffle_bytes > 0
        read = sum(t.shuffle_bytes_read for s in job.stages for t in s.tasks)
        written = sum(t.shuffle_bytes_written for s in job.stages for t in s.tasks)
        assert read == written

    def test_disk_blocked_time_positive_for_shuffles(self, ctx):
        rdd = ctx.parallelize([(i % 3, "y" * 200) for i in range(300)], 4)
        rdd.group_by_key().collect()
        job = ctx.metrics.job()
        assert sum(s.disk_blocked for s in job.stages) > 0

    def test_network_model_charges_remote_fraction(self, tmp_path):
        config = EngineConfig(
            spill_dir=str(tmp_path / "s"), network_bandwidth=1e6
        )  # slow fabric so the charge is visible
        with GPFContext(config) as ctx:
            ctx.parallelize([(i % 2, "z" * 500) for i in range(200)], 4).group_by_key().collect()
            job = ctx.metrics.job()
            assert sum(s.network_blocked for s in job.stages) > 0

    def test_network_model_disabled(self, tmp_path):
        config = EngineConfig(spill_dir=str(tmp_path / "s"), network_bandwidth=None)
        with GPFContext(config) as ctx:
            ctx.parallelize([(1, 1)], 2).group_by_key().collect()
            job = ctx.metrics.job()
            assert sum(s.network_blocked for s in job.stages) == 0

    def test_metrics_reset(self, ctx):
        ctx.parallelize([1], 1).collect()
        assert ctx.metrics.job().stage_count > 0
        ctx.metrics.reset()
        assert ctx.metrics.job().stage_count == 0


class TestMetricsRegistryConcurrency:
    def test_parallel_recording_is_consistent(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 50
        stage_ids: list[int] = []
        lock = threading.Lock()

        def pump():
            mine = []
            for i in range(per_thread):
                stage = registry.new_stage(name=f"s{i}")
                mine.append(stage.stage_id)
                registry.add_task(stage, TaskMetrics(run_time=0.001))
                registry.record_failure("result", i, 0, ValueError("x"))
                registry.record_executor_event("timeout")
            with lock:
                stage_ids.extend(mine)

        workers = [threading.Thread(target=pump) for _ in range(threads_n)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        total = threads_n * per_thread
        assert len(stage_ids) == len(set(stage_ids)) == total
        job = registry.job()
        assert job.stage_count == total
        assert sum(len(s.tasks) for s in job.stages) == total
        # Stage ids come back sorted and dense.
        assert [s.stage_id for s in job.stages] == list(range(total))
        assert len(registry.failures) == total
        assert registry.executor_events == {"timeout": total}


class TestGcTimer:
    def test_context_refcounts_global_hook(self, tmp_path):
        baseline = GC_TIMER._refs
        c1 = GPFContext(EngineConfig(spill_dir=str(tmp_path / "a")))
        c2 = GPFContext(EngineConfig(spill_dir=str(tmp_path / "b")))
        assert GC_TIMER._refs == baseline + 2
        assert GC_TIMER._callback in gc.callbacks
        c1.stop()
        # One context still alive: the hook must stay.
        assert GC_TIMER._callback in gc.callbacks
        c2.stop()
        assert GC_TIMER._refs == baseline
        if baseline == 0:
            assert GC_TIMER._callback not in gc.callbacks

    def test_stop_is_idempotent_for_refcount(self, tmp_path):
        baseline = GC_TIMER._refs
        ctx = GPFContext(EngineConfig(spill_dir=str(tmp_path / "a")))
        ctx.stop()
        ctx.stop()
        assert GC_TIMER._refs == baseline

    def test_uninstall_removes_hook_unconditionally(self):
        GC_TIMER.acquire()
        GC_TIMER.acquire()
        GC_TIMER.uninstall()
        assert GC_TIMER._refs == 0
        assert GC_TIMER._callback not in gc.callbacks
        assert not GC_TIMER.installed
        # Re-acquire works after a hard uninstall.
        with GC_TIMER.installed_for():
            assert GC_TIMER.installed
        assert not GC_TIMER.installed

    def test_measure_still_accumulates(self):
        with GC_TIMER.installed_for():
            with GC_TIMER.measure() as state:
                gc.collect()
            assert state["total"] >= 0.0


class TestBroadcast:
    def test_value_access(self):
        b = Broadcast({"a": 1})
        assert b.value == {"a": 1}

    def test_serialized_size_cached(self):
        b = Broadcast(list(range(1000)))
        size = b.serialized_size()
        assert size > 1000
        assert b.serialized_size() == size

    def test_destroyed_broadcast_raises(self):
        b = Broadcast(42)
        b.destroy()
        with pytest.raises(RuntimeError):
            _ = b.value


class TestExecutors:
    def test_serial_runs_in_order(self):
        order = []
        tasks = [lambda i=i: order.append(i) or i for i in range(5)]
        assert SerialExecutor().run_all(tasks) == [0, 1, 2, 3, 4]
        assert order == [0, 1, 2, 3, 4]

    def test_threads_return_in_submission_order(self):
        ex = ThreadExecutor(4)
        try:
            results = ex.run_all([lambda i=i: i * i for i in range(20)])
            assert results == [i * i for i in range(20)]
        finally:
            ex.shutdown()

    def test_make_executor_validation(self):
        with pytest.raises(ValueError):
            make_executor("mpi")
        with pytest.raises(ValueError):
            ThreadExecutor(0)

"""Corrupt/truncated GPB2 compressed checkpoints must recompute cleanly.

The block frame's crc32 catches bit flips, but a crc-valid blob can
still be undecodable: a mangled codec tag or a truncated v2 header
passes the frame check and only explodes at decode time.  The context's
checkpoint read path decode-verifies eagerly and downgrades any failure
to discard + lineage recompute + rewrite — on every executor backend.
"""

from __future__ import annotations

import pytest

from repro.engine.blockmanager import write_block_file
from repro.engine.bundle import BUNDLE_MAGIC, CompressedBundle
from repro.engine.context import EngineConfig, GPFContext


def make_ctx(tmp_path, backend):
    return GPFContext(
        EngineConfig(
            default_parallelism=2,
            executor_backend=backend,
            num_workers=2,
            spill_dir=str(tmp_path / f"spill_{backend}"),
        )
    )


def bad_codec_tag(blob: bytes) -> bytes:
    """Valid GPB2 header, payload tag byte zeroed: undecodable codec."""
    bundle = CompressedBundle.frombytes(blob)
    assert bundle is not None, "checkpoint was not a v2 bundle"
    payload = b"\x00" + bundle.payload[1:]
    return CompressedBundle(
        bundle.codec, bundle.count, bundle.logical_bytes, payload
    ).tobytes()


def short_header(blob: bytes) -> bytes:
    """GPB2 magic but the header is cut short: frombytes -> None -> the
    legacy serializer path chokes on the stub."""
    return BUNDLE_MAGIC + b"\x02"


CORRUPTIONS = {"bad_codec_tag": bad_codec_tag, "short_header": short_header}


@pytest.mark.parametrize("backend", ["threads", "process"])
class TestCheckpointCorruptionV2:
    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
    def test_crc_valid_but_undecodable_recomputes_and_rewrites(
        self, tmp_path, backend, corruption
    ):
        with make_ctx(tmp_path, backend) as ctx:
            rdd = ctx.parallelize(range(12), 2).map(lambda x: x * 5)
            rdd.checkpoint()
            expected = [x * 5 for x in range(12)]

            bm = ctx.block_manager
            key = (rdd.id, 0)
            blob = bm.get_checkpoint(key)
            assert blob is not None
            # Re-frame the corrupted blob: the crc is *valid*, only the
            # contents are garbage.
            write_block_file(bm._checkpoint_path(key), CORRUPTIONS[corruption](blob))

            assert rdd.collect() == expected
            assert ctx.block_manager.stats.corrupt_reads >= 1

            # The recompute rewrote the checkpoint: the next read is
            # clean and decodes without another discard.
            corrupt_before = ctx.block_manager.stats.corrupt_reads
            assert rdd.collect() == expected
            assert ctx.block_manager.stats.corrupt_reads == corrupt_before

    def test_crc_mismatch_recomputes_and_rewrites(self, tmp_path, backend):
        with make_ctx(tmp_path, backend) as ctx:
            rdd = ctx.parallelize(range(10), 2).map(lambda x: x + 100)
            rdd.checkpoint()
            expected = [x + 100 for x in range(10)]

            path = ctx.block_manager._checkpoint_path((rdd.id, 1))
            with open(path, "r+b") as fh:  # flip payload bytes in place
                fh.seek(12)
                fh.write(b"\x5a\x5a\x5a")

            assert rdd.collect() == expected
            assert ctx.block_manager.stats.corrupt_reads >= 1
            corrupt_before = ctx.block_manager.stats.corrupt_reads
            assert rdd.collect() == expected
            assert ctx.block_manager.stats.corrupt_reads == corrupt_before

"""Block format v2 (CompressedBundle) and lazy partition decode tests."""

import pickle

import pytest

from repro.engine.bundle import (
    BUNDLE_MAGIC,
    CompressedBundle,
    LazyPartition,
    PartitionChain,
    approx_logical_bytes,
    decode_partition,
    encode_partition,
    iter_record_batches,
)
from repro.engine.serializers import (
    CompactSerializer,
    GpfSerializer,
    PickleSerializer,
)
from repro.obs.telemetry import TelemetryRegistry
from repro.formats.fastq import FastqPair, FastqRecord
from repro.formats.sam import SamRecord


def make_fastq(n: int) -> list[FastqRecord]:
    bases = "ACGT"
    out = []
    for i in range(n):
        seq = "".join(bases[(i + j) % 4] for j in range(40))
        out.append(FastqRecord(f"read{i}", seq, "I" * 40))
    return out


class TestCompressedBundle:
    def test_header_round_trip(self):
        records = make_fastq(10)
        bundle = CompressedBundle.encode(records, GpfSerializer())
        parsed = CompressedBundle.frombytes(bundle.tobytes())
        assert parsed is not None
        assert parsed.codec == b"Q"
        assert parsed.count == 10
        assert parsed.logical_bytes == bundle.logical_bytes
        assert parsed.payload == bundle.payload

    def test_codec_tag_records_fallback(self):
        bundle = CompressedBundle.encode([1, 2, 3], GpfSerializer())
        assert bundle.codec == b"F"

    def test_codec_tag_opaque_for_pickle(self):
        bundle = CompressedBundle.encode([1, 2, 3], PickleSerializer())
        assert bundle.codec == b"."

    def test_pair_partitions_use_pair_codec(self):
        records = make_fastq(8)
        pairs = [
            FastqPair(records[i], records[i + 1]) for i in range(0, 8, 2)
        ]
        bundle = CompressedBundle.encode(pairs, GpfSerializer())
        assert bundle.codec == b"P"
        assert bundle.count == 4

    def test_legacy_blob_returns_none(self):
        assert CompressedBundle.frombytes(b"not a bundle") is None
        assert CompressedBundle.frombytes(b"") is None

    def test_wrong_version_returns_none(self):
        bundle = CompressedBundle.encode(make_fastq(2), GpfSerializer())
        blob = bytearray(bundle.tobytes())
        blob[4] = 99  # version byte
        assert CompressedBundle.frombytes(bytes(blob)) is None

    def test_compression_ratio_over_one_for_genomic(self):
        bundle = CompressedBundle.encode(make_fastq(100), GpfSerializer())
        assert bundle.ratio > 2.0
        assert bundle.compressed_bytes < bundle.logical_bytes

    def test_magic_prefixes_blob(self):
        blob, _ = encode_partition(make_fastq(3), GpfSerializer())
        assert blob.startswith(BUNDLE_MAGIC)


class TestLazyPartition:
    def _lazy(self, records, serializer=None, telemetry=None):
        serializer = serializer or GpfSerializer()
        blob, _ = encode_partition(records, serializer)
        part = decode_partition(blob, serializer, telemetry=telemetry)
        assert isinstance(part, LazyPartition)
        return part

    def test_iteration_round_trips(self):
        records = make_fastq(20)
        assert list(self._lazy(records)) == records

    def test_len_and_bool_without_decode(self):
        part = self._lazy(make_fastq(7))
        assert len(part) == 7
        assert bool(part)
        empty = self._lazy([])
        assert len(empty) == 0
        assert not empty

    def test_reiteration_decodes_again(self):
        part = self._lazy(make_fastq(5))
        assert list(part) == list(part)

    def test_getitem_int_and_negative(self):
        records = make_fastq(9)
        part = self._lazy(records)
        assert part[0] == records[0]
        assert part[4] == records[4]
        assert part[-1] == records[-1]
        with pytest.raises(IndexError):
            part[9]

    def test_getitem_slice(self):
        records = make_fastq(6)
        part = self._lazy(records)
        assert part[1:4] == records[1:4]

    def test_materialize(self):
        records = make_fastq(4)
        assert self._lazy(records).materialize() == records

    def test_batches_chunk_size(self):
        part = self._lazy(make_fastq(10))
        batches = list(part.batches(batch_size=3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]

    def test_telemetry_counts_decode(self):
        telemetry = TelemetryRegistry()
        part = self._lazy(make_fastq(12), telemetry=telemetry)
        list(part)
        counters = telemetry.snapshot()["counters"]
        assert counters["blockmanager.decoded_records"] == 12
        assert counters["blockmanager.decode_seconds"] > 0

    def test_pickle_round_trip(self):
        records = make_fastq(6)
        part = self._lazy(records)
        clone = pickle.loads(pickle.dumps(part))
        assert list(clone) == records
        assert len(clone) == 6

    def test_serializer_without_iter_loads(self):
        # CompactSerializer has no iter_loads: one whole-list chunk.
        records = make_fastq(5)
        part = self._lazy(records, serializer=CompactSerializer())
        assert list(part) == records
        assert [len(b) for b in part.batches(2)] == [5]


class TestDecodePartition:
    def test_legacy_blob_decodes_eagerly(self):
        serializer = GpfSerializer()
        records = make_fastq(4)
        legacy = serializer.dumps(records)  # v1: raw serializer output
        out = decode_partition(legacy, serializer)
        assert isinstance(out, list)
        assert out == records


class TestPartitionChain:
    def _chain(self, *parts):
        serializer = GpfSerializer()
        views = []
        for part in parts:
            blob, _ = encode_partition(part, serializer)
            views.append(decode_partition(blob, serializer))
        return PartitionChain(views)

    def test_concatenation(self):
        a, b = make_fastq(3), make_fastq(2)
        chain = self._chain(a, b)
        assert list(chain) == a + b
        assert len(chain) == 5
        assert chain[3] == b[0]
        assert chain[0:2] == a[0:2]

    def test_empty(self):
        chain = self._chain()
        assert not chain
        assert len(chain) == 0
        assert list(chain) == []

    def test_batches_span_parts(self):
        chain = self._chain(make_fastq(4), make_fastq(4))
        assert sum(len(b) for b in chain.batches(3)) == 8


class TestIterRecordBatches:
    def test_list_is_sliced(self):
        batches = list(iter_record_batches(list(range(10)), 4))
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_generator_is_accumulated(self):
        batches = list(iter_record_batches((x for x in range(5)), 2))
        assert batches == [[0, 1], [2, 3], [4]]

    def test_lazy_partition_streams(self):
        serializer = GpfSerializer()
        blob, _ = encode_partition(make_fastq(7), serializer)
        part = decode_partition(blob, serializer)
        assert [len(b) for b in iter_record_batches(part, 3)] == [3, 3, 1]


class TestApproxLogicalBytes:
    def test_scales_with_record_size(self):
        small = approx_logical_bytes(make_fastq(1))
        big = approx_logical_bytes(make_fastq(100))
        assert big > small * 50

    def test_pairs_and_keyed_records(self):
        records = make_fastq(2)
        pair = FastqPair(records[0], records[1])
        assert approx_logical_bytes([pair]) > approx_logical_bytes([records[0]])
        from repro.formats.cigar import Cigar

        sam = SamRecord(
            qname="q", flag=0, rname="chr1", pos=1, mapq=60,
            cigar=Cigar.parse("4M"), rnext="*", pnext=-1, tlen=0,
            seq="ACGT", qual="IIII",
        )
        assert approx_logical_bytes([("key", sam)]) > 0

    def test_opaque_elements_charged_flat(self):
        assert approx_logical_bytes([object(), object()]) == 320

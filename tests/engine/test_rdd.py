import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.context import EngineConfig, GPFContext
from repro.engine.rdd import FuncPartitioner, HashPartitioner, RangePartitioner


class TestBasics:
    def test_parallelize_preserves_all_elements(self, ctx):
        data = list(range(97))
        assert ctx.parallelize(data, 7).collect() == data

    def test_map_filter(self, ctx):
        rdd = ctx.parallelize(range(20), 4)
        assert rdd.map(lambda x: x * 3).filter(lambda x: x % 2 == 0).collect() == [
            x * 3 for x in range(20) if (x * 3) % 2 == 0
        ]

    def test_flat_map(self, ctx):
        rdd = ctx.parallelize([1, 2, 3], 2)
        assert rdd.flat_map(lambda x: [x] * x).collect() == [1, 2, 2, 3, 3, 3]

    def test_count_and_first(self, ctx):
        rdd = ctx.parallelize(range(10), 3)
        assert rdd.count() == 10
        assert rdd.first() == 0

    def test_first_of_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 2).first()

    def test_take(self, ctx):
        rdd = ctx.parallelize(range(100), 10)
        assert rdd.take(5) == [0, 1, 2, 3, 4]
        assert rdd.take(1000) == list(range(100))

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 6), 2).reduce(lambda a, b: a * b) == 120

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 1).reduce(lambda a, b: a)

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3, 4], 1)
        u = a.union(b)
        assert u.num_partitions == 3
        assert u.collect() == [1, 2, 3, 4]

    def test_glom(self, ctx):
        parts = ctx.parallelize(range(6), 3).glom().collect()
        assert parts == [[0, 1], [2, 3], [4, 5]]

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(range(6), 3)
        out = rdd.map_partitions_with_index(lambda i, p: [(i, len(p))]).collect()
        assert out == [(0, 2), (1, 2), (2, 2)]

    def test_zip_partitions(self, ctx):
        a = ctx.parallelize([1, 2, 3, 4], 2)
        b = ctx.parallelize([10, 20, 30, 40], 2)
        out = a.zip_partitions(b, lambda x, y: [sum(x) + sum(y)]).collect()
        assert out == [1 + 2 + 10 + 20, 3 + 4 + 30 + 40]

    def test_zip_partitions_mismatch_rejected(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([1], 2)
        with pytest.raises(ValueError):
            a.zip_partitions(b, lambda x, y: [])


class TestKeyValue:
    def test_reduce_by_key(self, ctx):
        rdd = ctx.parallelize([(i % 3, i) for i in range(12)], 4)
        out = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        assert out == {0: 0 + 3 + 6 + 9, 1: 1 + 4 + 7 + 10, 2: 2 + 5 + 8 + 11}

    def test_group_by_key(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        out = dict(rdd.group_by_key().collect())
        assert sorted(out["a"]) == [1, 3]
        assert out["b"] == [2]

    def test_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        right = ctx.parallelize([("a", "x"), ("c", "y")], 2)
        out = sorted(left.join(right).collect())
        assert out == [("a", (1, "x")), ("a", (3, "x"))]

    def test_cogroup(self, ctx):
        left = ctx.parallelize([("a", 1)], 1)
        right = ctx.parallelize([("a", 2), ("b", 3)], 1)
        out = dict(left.cogroup(right).collect())
        assert out["a"] == ([1], [2])
        assert out["b"] == ([], [3])

    def test_distinct(self, ctx):
        rdd = ctx.parallelize([1, 2, 2, 3, 3, 3], 3)
        assert sorted(rdd.distinct().collect()) == [1, 2, 3]

    def test_keys_values_mapvalues(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2)], 1)
        assert rdd.keys().collect() == ["a", "b"]
        assert rdd.values().collect() == [1, 2]
        assert rdd.map_values(lambda v: v * 10).collect() == [("a", 10), ("b", 20)]

    def test_flat_map_values(self, ctx):
        rdd = ctx.parallelize([("a", 2), ("b", 1)], 1)
        assert rdd.flat_map_values(lambda v: range(v)).collect() == [
            ("a", 0),
            ("a", 1),
            ("b", 0),
        ]

    def test_count_by_key(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        assert rdd.count_by_key() == {"a": 2, "b": 1}


class TestRepartitionSort:
    def test_repartition_changes_partition_count(self, ctx):
        rdd = ctx.parallelize(range(30), 2)
        re = rdd.repartition(5)
        assert re.num_partitions == 5
        assert sorted(re.collect()) == list(range(30))

    def test_sort_by(self, ctx):
        data = [5, 3, 8, 1, 9, 2, 7]
        rdd = ctx.parallelize(data, 3)
        assert rdd.sort_by(lambda x: x).collect() == sorted(data)
        assert rdd.sort_by(lambda x: -x).collect() == sorted(data, reverse=True)

    def test_sort_by_is_globally_sorted_across_partitions(self, ctx):
        import random

        rng = random.Random(5)
        data = [rng.randint(0, 1000) for _ in range(200)]
        out = ctx.parallelize(data, 8).sort_by(lambda x: x, num_partitions=4)
        parts = out.collect_partitions()
        flat = [x for p in parts for x in p]
        assert flat == sorted(data)

    def test_partition_by_func(self, ctx):
        rdd = ctx.parallelize([(i, i) for i in range(10)], 2)
        out = rdd.partition_by(FuncPartitioner(2, lambda k: k % 2))
        parts = out.collect_partitions()
        assert all(k % 2 == 0 for k, _ in parts[0])
        assert all(k % 2 == 1 for k, _ in parts[1])

    def test_func_partitioner_range_checked(self, ctx):
        from repro.engine.faults import TaskFailedError

        rdd = ctx.parallelize([(5, 5)], 1)
        bad = rdd.partition_by(FuncPartitioner(2, lambda k: 7))
        # The deterministic error exhausts the retry budget and surfaces
        # as a task failure whose cause is the original ValueError.
        with pytest.raises(TaskFailedError) as excinfo:
            bad.collect()
        assert isinstance(excinfo.value.cause, ValueError)


class TestPartitioners:
    def test_hash_partitioner_bounds(self):
        p = HashPartitioner(7)
        assert all(0 <= p(k) < 7 for k in ["a", 1, (2, 3), None])

    def test_range_partitioner(self):
        p = RangePartitioner([10, 20])
        assert p(5) == 0 and p(10) == 1 and p(15) == 1 and p(25) == 2

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestCaching:
    def test_persist_avoids_recompute(self, ctx):
        calls = []

        def tracked(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(10), 2).map(tracked).persist()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first  # second collect served from cache

    def test_unpersist_recomputes(self, ctx):
        calls = []
        rdd = ctx.parallelize(range(4), 2).map(lambda x: calls.append(x) or x).persist()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 8

    def test_cached_bytes_nonzero(self, ctx):
        rdd = ctx.parallelize(list(range(100)), 2).persist()
        rdd.collect()
        assert ctx.cached_bytes() > 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(-100, 100), max_size=60),
    st.integers(1, 6),
)
def test_collect_equals_input_property(data, partitions):
    with GPFContext(EngineConfig(default_parallelism=2)) as ctx:
        assert ctx.parallelize(data, partitions).collect() == data


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 50)), max_size=50))
def test_reduce_by_key_matches_dict_property(pairs):
    expected: dict = {}
    for k, v in pairs:
        expected[k] = expected.get(k, 0) + v
    with GPFContext(EngineConfig(default_parallelism=3)) as ctx:
        out = dict(ctx.parallelize(pairs, 3).reduce_by_key(lambda a, b: a + b).collect())
    assert out == expected

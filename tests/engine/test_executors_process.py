"""Process executor backend, failure cancellation, and stable hashing."""

import os
import subprocess
import sys
import time
from functools import partial

import pytest

from repro.engine.context import EngineConfig, GPFContext
from repro.engine.executors import ProcessExecutor, ThreadExecutor, make_executor
from repro.engine.rdd import HashPartitioner, stable_hash


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"task {x} failed")


class TestProcessExecutor:
    def test_results_in_submission_order(self):
        ex = make_executor("process", 2)
        try:
            tasks = [partial(_square, i) for i in range(25)]
            assert ex.run_all(tasks) == [i * i for i in range(25)]
            assert ex.fallback_batches == 0
        finally:
            ex.shutdown()

    def test_unpicklable_closures_fall_back_to_threads(self):
        ex = ProcessExecutor(2)
        try:
            captured = {"scale": 3}  # closures over locals cannot pickle
            tasks = [lambda i=i: i * captured["scale"] for i in range(6)]
            assert ex.run_all(tasks) == [0, 3, 6, 9, 12, 15]
            assert ex.fallback_batches == 1
        finally:
            ex.shutdown()

    def test_task_exception_propagates(self):
        ex = ProcessExecutor(2)
        try:
            with pytest.raises(RuntimeError, match="task 1 failed"):
                ex.run_all([partial(_square, 0), partial(_boom, 1)])
        finally:
            ex.shutdown()

    def test_chunking_covers_all_tasks(self):
        ex = ProcessExecutor(3, chunks_per_worker=2)
        chunks = ex._chunks(list(range(100)))
        assert sum(len(c) for c in chunks) == 100
        assert [x for c in chunks for x in c] == list(range(100))
        ex.shutdown()

    def test_empty_batch(self):
        ex = ProcessExecutor(2)
        assert ex.run_all([]) == []
        ex.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(2, chunks_per_worker=0)

    def test_engine_accepts_process_backend(self):
        config = EngineConfig(executor_backend="process", num_workers=2)
        with GPFContext(config) as ctx:
            # Engine task closures capture the context -> thread fallback,
            # but results must be identical to the serial backend.
            out = ctx.parallelize(list(range(40)), 4).map(lambda x: x + 1).collect()
            assert out == list(range(1, 41))


class TestThreadExecutorCancellation:
    def test_failure_cancels_not_yet_started_tasks(self):
        """Regression: a failing task must stop the batch, not let every
        queued task run to completion behind the raised exception."""
        ex = ThreadExecutor(1)
        ran: list[int] = []

        def fail():
            raise RuntimeError("early failure")

        def slow_record(i):
            time.sleep(0.05)
            ran.append(i)

        tasks = [fail] + [partial(slow_record, i) for i in range(9)]
        try:
            with pytest.raises(RuntimeError, match="early failure"):
                ex.run_all(tasks)
        finally:
            ex.shutdown()
        # With one worker, at most the single task the worker grabbed
        # between the failure and the cancellation sweep may have run.
        assert len(ran) <= 1

    def test_successful_batches_unaffected(self):
        ex = ThreadExecutor(4)
        try:
            assert ex.run_all([partial(_square, i) for i in range(20)]) == [
                i * i for i in range(20)
            ]
        finally:
            ex.shutdown()


class TestStableHash:
    def test_equal_numerics_bucket_together(self):
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash(0) == stable_hash(0.0) == stable_hash(False)

    def test_distinct_keys_are_distinguished(self):
        assert stable_hash("1") != stable_hash(1)
        assert stable_hash(("a", 1)) != stable_hash(("a", "1"))
        assert stable_hash(("ab", "c")) != stable_hash(("a", "bc"))

    def test_tuple_and_list_keys_supported(self):
        assert stable_hash(("chr1", 1000)) == stable_hash(["chr1", 1000])
        part = HashPartitioner(8)
        assert 0 <= part(("chr1", 1000)) < 8

    def test_stable_across_interpreters(self):
        """The property builtin hash() lacks: the same key buckets the same
        way in a freshly spawned interpreter (different hash salt)."""
        keys = ["chr7", ("chr2", 1234), 99, None, b"raw"]
        local = [stable_hash(k) for k in keys]
        code = (
            "from repro.engine.rdd import stable_hash\n"
            "print([stable_hash(k) for k in "
            "['chr7', ('chr2', 1234), 99, None, b'raw']])"
        )
        remote = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={
                **os.environ,
                "PYTHONPATH": os.path.join(
                    os.path.dirname(os.path.dirname(
                        os.path.dirname(os.path.abspath(__file__)))),
                    "src",
                ),
                "PYTHONHASHSEED": "12345",
            },
        )
        assert eval(remote.stdout.strip()) == local

    def test_partitioner_equality_semantics_kept(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)


class TestSerialAndThreadsStillWork:
    def test_all_backends_agree_on_a_shuffle(self):
        results = {}
        for backend in ("serial", "threads", "process"):
            with GPFContext(
                EngineConfig(executor_backend=backend, num_workers=2)
            ) as ctx:
                rdd = ctx.parallelize([(i % 5, i) for i in range(100)], 4)
                grouped = sorted(
                    (k, sorted(v)) for k, v in rdd.group_by_key().collect()
                )
                results[backend] = grouped
        assert results["serial"] == results["threads"] == results["process"]

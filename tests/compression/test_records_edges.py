"""Codec edge cases: every record either round-trips byte-identically
through the §4.1 codecs or raises :class:`CodecUnsupportedError`, the
typed error that routes the whole block to the pickle fallback."""

import pytest

from repro.compression.records import (
    CodecUnsupportedError,
    FastqCodec,
    SamCodec,
    compressed_size,
    logical_size,
    ratio,
    roundtrip_safe,
)
from repro.compression.twobit import MASK_QUAL_CHAR
from repro.engine.serializers import GpfSerializer
from repro.formats.cigar import Cigar
from repro.formats.fastq import FastqRecord
from repro.formats.sam import SamRecord


def sam(qname="r0", seq="ACGT", qual="IIII", tags=None) -> SamRecord:
    return SamRecord(
        qname=qname,
        flag=0,
        rname="chr1",
        pos=10,
        mapq=60,
        cigar=Cigar.parse(f"{len(seq)}M") if seq else Cigar.parse("*"),
        rnext="*",
        pnext=-1,
        tlen=0,
        seq=seq,
        qual=qual,
        tags=tags or {},
    )


class TestEmptyPartitions:
    def test_fastq_empty_batch(self):
        blob = FastqCodec.encode([], strict=True)
        assert FastqCodec.decode(blob) == []
        assert FastqCodec.record_count(blob) == 0
        assert list(FastqCodec.iter_decode(blob)) == []

    def test_sam_empty_batch(self):
        blob = SamCodec.encode([], strict=True)
        assert SamCodec.decode(blob) == []
        assert SamCodec.record_count(blob) == 0

    def test_zero_length_fastq_record(self):
        rec = FastqRecord("empty", "", "")
        blob = FastqCodec.encode([rec], strict=True)
        assert FastqCodec.decode(blob) == [rec]

    def test_zero_length_sam_record(self):
        rec = sam(seq="", qual="")
        blob = SamCodec.encode([rec], strict=True)
        assert SamCodec.decode(blob) == [rec]


class TestRoundtripSafe:
    def test_pure_acgt_is_safe(self):
        assert roundtrip_safe("ACGT", "IIII")

    def test_n_with_mask_quality_is_safe(self):
        assert roundtrip_safe("ACNGT", "II" + MASK_QUAL_CHAR + "II")

    def test_n_with_real_quality_is_unsafe(self):
        assert not roundtrip_safe("ACNGT", "IIIII")

    def test_lowercase_is_unsafe(self):
        assert not roundtrip_safe("acgt", "IIII")

    def test_iupac_ambiguity_is_unsafe(self):
        assert not roundtrip_safe("ACRT", "IIII")

    def test_acgt_with_mask_quality_is_unsafe(self):
        # '!' on a real base would decode as if it had been masked.
        assert not roundtrip_safe("ACGT", "I!II")

    def test_length_mismatch_unsafe(self):
        assert not roundtrip_safe("ACGT", "III")

    def test_non_ascii_unsafe(self):
        assert not roundtrip_safe("ACGé", "IIII")

    def test_empty_is_safe(self):
        assert roundtrip_safe("", "")


class TestStrictMode:
    def test_strict_rejects_n_with_real_quality(self):
        rec = FastqRecord("r", "ACNGT", "IIIII")
        with pytest.raises(CodecUnsupportedError):
            FastqCodec.encode([rec], strict=True)

    def test_strict_rejects_lowercase(self):
        rec = FastqRecord("r", "acgt", "IIII")
        with pytest.raises(CodecUnsupportedError):
            FastqCodec.encode([rec], strict=True)

    def test_strict_rejects_non_ascii_name(self):
        rec = FastqRecord("réad", "ACGT", "IIII")
        with pytest.raises(CodecUnsupportedError):
            FastqCodec.encode([rec], strict=True)

    def test_strict_accepts_masked_n(self):
        rec = FastqRecord("r", "ACNGT", "II" + MASK_QUAL_CHAR + "II")
        blob = FastqCodec.encode([rec], strict=True)
        assert FastqCodec.decode(blob) == [rec]

    def test_lenient_mode_still_lossy(self):
        # Default (lenient) encode keeps the historical behavior: the N's
        # real quality is clobbered to the Phred-0 marker.
        rec = FastqRecord("r", "ACNGT", "IIIII")
        [out] = FastqCodec.decode(FastqCodec.encode([rec]))
        assert out.sequence == "ACNGT"
        assert out.quality == "II" + MASK_QUAL_CHAR + "II"

    def test_sam_strict_rejects_unsafe_seq(self):
        with pytest.raises(CodecUnsupportedError):
            SamCodec.encode([sam(seq="ANGT", qual="IIII")], strict=True)


class TestExoticSamTags:
    def test_plain_tags_round_trip(self):
        rec = sam(tags={"NM": 2, "AS": 37, "XS": 0})
        blob = SamCodec.encode([rec], strict=True)
        assert SamCodec.decode(blob) == [rec]

    def test_z_tag_with_colons_round_trips(self):
        rec = sam(tags={"MD": "10A5^AC20", "SA": "chr2,100,+,50M,60,0;"})
        blob = SamCodec.encode([rec], strict=True)
        assert SamCodec.decode(blob) == [rec]

    def test_float_tag_round_trips(self):
        rec = sam(tags={"ZF": 1.5})
        blob = SamCodec.encode([rec], strict=True)
        assert SamCodec.decode(blob) == [rec]

    def test_tab_in_tag_value_raises_typed_error(self):
        rec = sam(tags={"XX": "a\tb"})
        with pytest.raises(CodecUnsupportedError):
            SamCodec.encode([rec], strict=True)

    def test_newline_in_tag_value_raises_typed_error(self):
        rec = sam(tags={"XX": "a\nb"})
        with pytest.raises(CodecUnsupportedError):
            SamCodec.encode([rec], strict=True)

    def test_non_ascii_tag_value_raises_typed_error(self):
        rec = sam(tags={"XX": "café"})
        with pytest.raises(CodecUnsupportedError):
            SamCodec.encode([rec], strict=True)


class TestSerializerFallbackByteIdentical:
    """The serializer must round-trip *everything*: codec when safe,
    pickle fallback otherwise — always byte-identical records."""

    @pytest.mark.parametrize(
        "rec",
        [
            FastqRecord("n-real-qual", "ACNGT", "IIIII"),
            FastqRecord("lowercase", "acgt", "IIII"),
            FastqRecord("iupac", "ACRYSWKM", "IIIIIIII"),
            FastqRecord("mask-collision", "ACGT", "I!II"),
            FastqRecord("empty", "", ""),
        ],
        ids=lambda r: r.name,
    )
    def test_unsafe_fastq_falls_back_byte_identical(self, rec):
        serializer = GpfSerializer()
        blob = serializer.dumps([rec])
        assert serializer.loads(blob) == [rec]

    def test_unsafe_partition_tagged_fallback(self):
        serializer = GpfSerializer()
        blob = serializer.dumps([FastqRecord("r", "ACNGT", "IIIII")])
        assert blob[:1] == b"F"

    def test_safe_partition_takes_codec(self):
        serializer = GpfSerializer()
        blob = serializer.dumps([FastqRecord("r", "ACGT", "IIII")])
        assert blob[:1] == b"Q"

    def test_exotic_sam_falls_back_byte_identical(self):
        rec = sam(tags={"XX": "a\tb", "YY": "café"})
        serializer = GpfSerializer()
        blob = serializer.dumps([rec])
        assert blob[:1] == b"F"
        assert serializer.loads(blob) == [rec]

    def test_mixed_safety_partition_falls_back_whole(self):
        safe = FastqRecord("ok", "ACGT", "IIII")
        unsafe = FastqRecord("bad", "ACNGT", "IIIII")
        serializer = GpfSerializer()
        blob = serializer.dumps([safe, unsafe])
        assert blob[:1] == b"F"
        assert serializer.loads(blob) == [safe, unsafe]


class TestSizeHelpers:
    def test_compressed_size_reuses_encoded(self):
        records = [FastqRecord(f"r{i}", "ACGT" * 10, "I" * 40) for i in range(8)]
        blob = FastqCodec.encode(records)
        assert compressed_size(records, blob) == len(blob)
        assert compressed_size(records) == len(blob)

    def test_ratio_single_pass(self):
        records = [FastqRecord(f"r{i}", "ACGT" * 10, "I" * 40) for i in range(8)]
        blob = FastqCodec.encode(records)
        assert ratio(records, blob) == logical_size(records) / len(blob)
        assert ratio(records, blob) > 1.0

    def test_ratio_empty_is_one(self):
        assert ratio([]) == 1.0

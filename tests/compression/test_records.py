import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.records import FastqCodec, SamCodec, compressed_size
from repro.compression.stats import (
    concentration,
    delta_histogram,
    field_fraction,
    quality_histogram,
)
from repro.formats.cigar import Cigar
from repro.formats.fastq import FastqRecord
from repro.formats.sam import SamRecord
from repro.sim.qualities import ILLUMINA_HISEQ


def make_fastq(n: int = 40, seed: int = 0) -> list[FastqRecord]:
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        length = int(rng.integers(50, 120))
        seq = "".join(rng.choice(list("ACGTN"), size=length, p=[0.24, 0.24, 0.24, 0.24, 0.04]))
        qual = ILLUMINA_HISEQ.sample(length, rng)
        records.append(FastqRecord(f"read{i}", seq, qual))
    return records


def to_sam(rec: FastqRecord, pos: int) -> SamRecord:
    return SamRecord(
        qname=rec.name,
        flag=0,
        rname="chr1",
        pos=pos,
        mapq=60,
        cigar=Cigar.parse(f"{len(rec)}M"),
        rnext="*",
        pnext=-1,
        tlen=0,
        seq=rec.sequence,
        qual=rec.quality,
        tags={"NM": 1},
    )


class TestFastqCodec:
    def test_sequences_roundtrip_exactly(self):
        records = make_fastq()
        out = FastqCodec.decode(FastqCodec.encode(records))
        assert [r.sequence for r in out] == [r.sequence for r in records]
        assert [r.name for r in out] == [r.name for r in records]

    def test_quality_preserved_at_regular_bases(self):
        records = make_fastq()
        out = FastqCodec.decode(FastqCodec.encode(records))
        for before, after in zip(records, out):
            for base, q_before, q_after in zip(
                before.sequence, before.quality, after.quality
            ):
                if base in "ACGT":
                    assert q_before == q_after

    def test_compresses_below_raw_and_pickle(self):
        records = make_fastq(100)
        blob = FastqCodec.encode(records)
        raw = sum(len(r.name) + len(r.sequence) + len(r.quality) + 6 for r in records)
        assert len(blob) < 0.7 * raw  # Table 3: FASTQ ~0.55
        assert len(blob) < len(pickle.dumps(records))

    def test_empty_batch(self):
        assert FastqCodec.decode(FastqCodec.encode([])) == []


class TestSamCodec:
    def test_full_roundtrip(self):
        # The Deorowicz transform is lossy exactly at N bases (their
        # quality becomes the Phred-0 marker); everything else must
        # round-trip bit-exactly.
        records = [to_sam(r, i * 50) for i, r in enumerate(make_fastq(30))]
        out = SamCodec.decode(SamCodec.encode(records))
        for before, after in zip(records, out):
            assert after.seq == before.seq
            assert (after.qname, after.flag, after.rname, after.pos) == (
                before.qname,
                before.flag,
                before.rname,
                before.pos,
            )
            assert (after.cigar, after.tags, after.mapq) == (
                before.cigar,
                before.tags,
                before.mapq,
            )
            for base, q_before, q_after in zip(before.seq, before.qual, after.qual):
                if base in "ACGT":
                    assert q_before == q_after
                else:
                    assert q_after == "!"

    def test_roundtrip_exact_without_n_bases(self):
        records = [
            to_sam(FastqRecord(f"r{i}", "ACGT" * 20, "I" * 80), i * 9)
            for i in range(10)
        ]
        assert SamCodec.decode(SamCodec.encode(records)) == records

    def test_unmapped_record_without_seq(self):
        rec = SamRecord(
            "u", 4, "*", -1, 0, Cigar(()), "*", -1, 0, "", "", {}
        )
        assert SamCodec.decode(SamCodec.encode([rec])) == [rec]

    def test_sam_compresses_less_than_fastq(self):
        # Table 3: SAM's uncompressed extra fields dilute the ratio.
        fastq = make_fastq(60, seed=1)
        sams = [to_sam(r, i * 10) for i, r in enumerate(fastq)]
        fq_raw = sum(len(r.name) + len(r.sequence) + len(r.quality) + 6 for r in fastq)
        sam_raw = sum(len(r.to_line()) + 1 for r in sams)
        fq_ratio = len(FastqCodec.encode(fastq)) / fq_raw
        sam_ratio = len(SamCodec.encode(sams)) / sam_raw
        assert fq_ratio < sam_ratio

    def test_compressed_size_dispatch(self):
        fastq = make_fastq(5)
        sams = [to_sam(r, 0) for r in fastq]
        assert compressed_size(fastq) == len(FastqCodec.encode(fastq))
        assert compressed_size(sams) == len(SamCodec.encode(sams))
        assert compressed_size([]) == 0


class TestStats:
    def test_quality_histogram_percent_sums_to_100(self):
        quals = [r.quality for r in make_fastq(20)]
        hist = quality_histogram(quals)
        assert abs(sum(hist.values()) - 100.0) < 1e-6

    def test_delta_more_concentrated_than_raw(self):
        # The Fig. 5 observation that motivates delta+Huffman coding.
        quals = [r.quality for r in make_fastq(50, seed=2)]
        raw_conc = concentration(quality_histogram(quals), radius=3)
        delta_conc = concentration(delta_histogram(quals), radius=3)
        assert delta_conc > raw_conc

    def test_field_fraction_in_paper_range(self):
        records = make_fastq(50, seed=3)
        frac = field_fraction(
            [r.sequence for r in records],
            [r.quality for r in records],
            [r.name for r in records],
        )
        assert 0.8 <= frac <= 0.98  # paper: 80-90%

    def test_empty_histograms(self):
        assert quality_histogram([]) == {}
        assert delta_histogram([]) == {}
        assert concentration({}) == 0.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(alphabet="ACGTN", min_size=1, max_size=80), min_size=1, max_size=10))
def test_fastq_codec_sequence_property(seqs):
    records = [
        FastqRecord(f"r{i}", seq, "J" * len(seq)) for i, seq in enumerate(seqs)
    ]
    out = FastqCodec.decode(FastqCodec.encode(records))
    assert [r.sequence for r in out] == seqs

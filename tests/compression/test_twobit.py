import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.compression.twobit import (
    MASK_QUAL_CHAR,
    compress_sequence,
    decompress_sequence,
    mask_special_bases,
    pack_bases,
    unmask_special_bases,
    unpack_bases,
)


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        seq = "GGTTACCTA"
        assert unpack_bases(pack_bases(seq), len(seq)) == seq

    def test_paper_encoding(self):
        # A:00 G:01 C:10 T:11 (Fig. 4); "AGCT" packs to one byte 00011011.
        packed = pack_bases("AGCT")
        assert packed.tolist() == [0b00011011]

    def test_four_bases_per_byte(self):
        assert len(pack_bases("A" * 17)) == 5  # ceil(17/4)

    def test_non_acgt_rejected(self):
        with pytest.raises(ValueError, match="non-ACGT"):
            pack_bases("ACGN")

    def test_empty(self):
        assert unpack_bases(pack_bases(""), 0) == ""


class TestMasking:
    def test_n_becomes_a_with_phred_zero(self):
        seq, qual = mask_special_bases("GGTTNCCTA", "CCCB#FFFF")
        assert seq == "GGTTACCTA"
        assert qual[4] == MASK_QUAL_CHAR
        assert qual[:4] == "CCCB"

    def test_unmask_restores_n(self):
        seq, qual = mask_special_bases("ANCN", "IIII")
        assert unmask_special_bases(seq, qual) == "ANCN"

    def test_collision_with_reserved_score_rejected(self):
        # A real base already carrying Phred 0 would be ambiguous.
        with pytest.raises(ValueError, match="reserved"):
            mask_special_bases("ACGT", "I!II")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mask_special_bases("AC", "I")


class TestCompressRoundTrip:
    def test_sequence_restored_exactly(self):
        seq, qual = "ACGTNNACGT", "IIII##IIII"
        blob, masked = compress_sequence(seq, qual)
        assert decompress_sequence(blob, masked) == seq

    def test_compression_is_about_4x(self):
        # Paper: "improves storage by approximately four times".
        seq = "ACGT" * 100
        blob, _ = compress_sequence(seq, "I" * 400)
        assert len(blob) == 4 + 100  # header + packed
        assert len(seq) / len(blob) > 3.5


@given(st.text(alphabet="ACGTN", min_size=0, max_size=300))
def test_roundtrip_property(seq):
    qual = "I" * len(seq)
    blob, masked = compress_sequence(seq, qual)
    assert decompress_sequence(blob, masked) == seq


@given(st.text(alphabet="ACGT", min_size=1, max_size=200))
def test_packed_size_bound(seq):
    packed = pack_bases(seq)
    assert len(packed) == (len(seq) + 3) // 4
    assert isinstance(packed, np.ndarray)

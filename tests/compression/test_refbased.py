"""Reference-based SAM compression tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.records import SamCodec
from repro.compression.refbased import (
    RefBasedSamCodec,
    encode_against_reference,
)
from repro.formats.cigar import Cigar
from repro.formats.fasta import Contig, Reference
from repro.formats.sam import SamRecord


@pytest.fixture(scope="module")
def ref():
    rng = np.random.default_rng(51)
    seq = "".join(rng.choice(list("ACGT"), size=3_000))
    return Reference([Contig("chr1", seq.encode())])


def mapped(ref, pos, length=100, mismatches=(), cigar=None, name="r"):
    contig = ref["chr1"]
    seq = list(contig.fetch(pos, pos + length))
    for idx in mismatches:
        seq[idx] = "A" if seq[idx] != "A" else "G"
    return SamRecord(
        qname=name, flag=0, rname="chr1", pos=pos, mapq=60,
        cigar=cigar or Cigar.parse(f"{length}M"),
        rnext="*", pnext=-1, tlen=0,
        seq="".join(seq), qual="I" * length,
    )


class TestDiffEncoding:
    def test_perfect_read_has_zero_diffs(self, ref):
        blob = encode_against_reference(mapped(ref, 100), ref)
        assert blob is not None
        assert len(blob) == 4  # just the two u16 headers

    def test_mismatches_counted(self, ref):
        blob = encode_against_reference(mapped(ref, 100, mismatches=(5, 50)), ref)
        assert len(blob) == 4 + 2 * 3

    def test_unmapped_returns_none(self, ref):
        rec = SamRecord("u", 4, "*", -1, 0, Cigar(()), "*", -1, 0, "ACGT", "IIII")
        assert encode_against_reference(rec, ref) is None

    def test_unknown_contig_returns_none(self, ref):
        rec = mapped(ref, 100)
        rec.rname = "chrX"
        assert encode_against_reference(rec, ref) is None


class TestCodecRoundTrip:
    def test_perfect_reads(self, ref):
        codec = RefBasedSamCodec(ref)
        records = [mapped(ref, 50 + i * 10, name=f"r{i}") for i in range(20)]
        out = codec.decode(codec.encode(records))
        assert [r.seq for r in out] == [r.seq for r in records]
        assert [r.qual for r in out] == [r.qual for r in records]

    def test_reads_with_mismatches(self, ref):
        codec = RefBasedSamCodec(ref)
        records = [
            mapped(ref, 100 + i * 7, mismatches=(3, 60, 99), name=f"m{i}")
            for i in range(10)
        ]
        out = codec.decode(codec.encode(records))
        assert [r.seq for r in out] == [r.seq for r in records]

    def test_insertion_and_clip_cigars(self, ref):
        contig = ref["chr1"]
        seq = "TT" + contig.fetch(200, 240) + "GGGG" + contig.fetch(240, 280)
        rec = SamRecord(
            "i", 0, "chr1", 200, 60, Cigar.parse("2S40M4I40M"),
            "*", -1, 0, seq, "I" * len(seq),
        )
        codec = RefBasedSamCodec(ref)
        (out,) = codec.decode(codec.encode([rec]))
        assert out.seq == seq

    def test_deletion_cigar(self, ref):
        contig = ref["chr1"]
        seq = contig.fetch(300, 340) + contig.fetch(345, 385)
        rec = SamRecord(
            "d", 0, "chr1", 300, 60, Cigar.parse("40M5D40M"),
            "*", -1, 0, seq, "I" * len(seq),
        )
        codec = RefBasedSamCodec(ref)
        (out,) = codec.decode(codec.encode([rec]))
        assert out.seq == seq

    def test_unmapped_falls_back_to_twobit(self, ref):
        rec = SamRecord(
            "u", 4, "*", -1, 0, Cigar(()), "*", -1, 0, "ACGTNACGT", "IIII!IIII"
        )
        codec = RefBasedSamCodec(ref)
        (out,) = codec.decode(codec.encode([rec]))
        assert out.seq == "ACGTNACGT"

    def test_mixed_batch(self, ref):
        codec = RefBasedSamCodec(ref)
        records = [
            mapped(ref, 500),
            SamRecord("u", 4, "*", -1, 0, Cigar(()), "*", -1, 0, "ACGT", "IIII"),
            mapped(ref, 700, mismatches=(10,)),
        ]
        out = codec.decode(codec.encode(records))
        assert [r.seq for r in out] == [r.seq for r in records]


class TestCompressionGain:
    def test_beats_twobit_on_clean_alignments(self, ref):
        records = [mapped(ref, 100 + i * 11, name=f"c{i}") for i in range(100)]
        ref_based = len(RefBasedSamCodec(ref).encode(records))
        twobit = len(SamCodec.encode(records))
        # The sequence portion collapses from ~29 bytes to ~4 per read.
        assert ref_based < 0.85 * twobit

    def test_degrades_gracefully_with_noise(self, ref):
        rng = np.random.default_rng(8)
        records = [
            mapped(
                ref,
                100 + i * 11,
                mismatches=tuple(rng.integers(0, 100, size=30)),
                name=f"n{i}",
            )
            for i in range(50)
        ]
        ref_based = len(RefBasedSamCodec(ref).encode(records))
        twobit = len(SamCodec.encode(records))
        # 30 diffs x 3 bytes ~ 90 > 25 bytes of 2-bit packing: noisy reads
        # are where diff encoding loses; the codec must still round-trip.
        out = RefBasedSamCodec(ref).decode(RefBasedSamCodec(ref).encode(records))
        assert [r.seq for r in out] == [r.seq for r in records]
        assert ref_based > 0  # (size comparison intentionally not asserted)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 2_800),
    st.lists(st.integers(0, 99), max_size=8),
)
def test_roundtrip_property(start, mismatch_positions):
    rng = np.random.default_rng(52)
    seq = "".join(rng.choice(list("ACGT"), size=3_000))
    reference = Reference([Contig("chr1", seq.encode())])
    if start > 2_900:
        start = 2_900
    rec = mapped(reference, min(start, 2_900), mismatches=tuple(set(mismatch_positions)))
    codec = RefBasedSamCodec(reference)
    (out,) = codec.decode(codec.encode([rec]))
    assert out.seq == rec.seq
    assert out.pos == rec.pos

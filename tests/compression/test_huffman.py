import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.delta import delta_decode, delta_encode
from repro.compression.huffman import EOF_SYMBOL, HuffmanCodec


class TestDelta:
    def test_paper_example(self):
        # Fig. 6: "CCCB\x01FFFF" -> 67 0 0 -1 -65 69 0 0 0 (first element is
        # the absolute ASCII of 'C' = 67).
        deltas = delta_encode("CCCB\x01FFFF")
        assert deltas.tolist() == [67, 0, 0, -1, -65, 69, 0, 0, 0]

    def test_roundtrip(self):
        qual = "IIIIJJJJ!#%>"
        assert delta_decode(delta_encode(qual)) == qual

    def test_empty(self):
        assert delta_decode(delta_encode("")) == ""

    def test_out_of_range_rejected(self):
        bad = np.array([300], dtype=np.int16)
        with pytest.raises(ValueError):
            delta_decode(bad)


class TestHuffman:
    def test_roundtrip_simple(self):
        codec = HuffmanCodec.from_frequencies({0: 100, 1: 10, -1: 10, 5: 1})
        data = [0, 0, 1, -1, 5, 0]
        assert codec.decode(codec.encode(data)).tolist() == data

    def test_empty_stream(self):
        codec = HuffmanCodec.from_frequencies({0: 1})
        assert codec.decode(codec.encode([])).tolist() == []

    def test_degenerate_single_symbol(self):
        codec = HuffmanCodec.from_frequencies({7: 1000})
        assert codec.decode(codec.encode([7] * 20)).tolist() == [7] * 20

    def test_unknown_symbol_rejected(self):
        codec = HuffmanCodec.from_frequencies({0: 1})
        with pytest.raises(ValueError, match="not in codec alphabet"):
            codec.encode([42])

    def test_frequent_symbols_get_shorter_codes(self):
        codec = HuffmanCodec.from_frequencies({0: 10_000, 9: 1})
        lengths = codec.code_lengths()
        assert lengths[0] < lengths[9]

    def test_codec_rebuilds_from_lengths(self):
        codec = HuffmanCodec.from_frequencies({0: 50, 1: 20, 2: 5})
        clone = HuffmanCodec(codec.code_lengths())
        data = [0, 1, 2, 0, 0]
        assert clone.decode(codec.encode(data)).tolist() == data
        assert clone == codec

    def test_requires_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            HuffmanCodec({0: 1})

    def test_mean_bits_reflects_skew(self):
        freqs = {0: 1000, 1: 100, 2: 10, 3: 1}
        codec = HuffmanCodec.from_frequencies(freqs)
        assert codec.mean_bits_per_symbol(freqs) < 2.0

    def test_truncated_stream_rejected(self):
        codec = HuffmanCodec.from_frequencies({0: 3, 1: 3})
        blob = codec.encode([0, 1, 0, 1, 0, 1, 0, 1])
        with pytest.raises(ValueError):
            codec.decode(blob[: max(1, len(blob) - 2)])


@settings(max_examples=60)
@given(
    st.dictionaries(
        st.integers(-127, 127), st.integers(1, 500), min_size=1, max_size=50
    ),
    st.data(),
)
def test_roundtrip_property(freqs, data):
    codec = HuffmanCodec.from_frequencies(freqs)
    symbols = data.draw(
        st.lists(st.sampled_from(sorted(freqs)), min_size=0, max_size=100)
    )
    assert codec.decode(codec.encode(symbols)).tolist() == symbols


@settings(max_examples=60)
@given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=200))
def test_delta_roundtrip_property(qual):
    assert delta_decode(delta_encode(qual)) == qual


@given(
    st.dictionaries(st.integers(-50, 50), st.integers(1, 100), min_size=2, max_size=30)
)
def test_kraft_inequality(freqs):
    codec = HuffmanCodec.from_frequencies(freqs)
    kraft = sum(2.0 ** -length for length in codec.code_lengths().values())
    assert kraft <= 1.0 + 1e-9

"""Active regions, assembly, pair-HMM, genotyper unit tests."""

import numpy as np
import pytest

from repro.caller.active_region import ActiveRegion, find_active_regions
from repro.caller.debruijn import DeBruijnAssembler, Haplotype
from repro.caller.genotyper import Genotyper, haplotype_variants
from repro.caller.pairhmm import PairHMM
from repro.formats.cigar import Cigar
from repro.formats.fasta import Contig, Reference
from repro.formats.sam import SamRecord


def rec(qname, pos, cigar, seq, rname="chr1", qual=None):
    return SamRecord(
        qname=qname, flag=0, rname=rname, pos=pos, mapq=60,
        cigar=Cigar.parse(cigar), rnext="*", pnext=-1, tlen=0,
        seq=seq, qual=qual or ("I" * len(seq)),
    )


@pytest.fixture(scope="module")
def scene():
    """Reference + reads all carrying one SNP at position 150."""
    rng = np.random.default_rng(31)
    seq = "".join(rng.choice(list("ACGT"), size=500))
    reference = Reference([Contig("chr1", seq.encode())])
    alt = "A" if seq[150] != "A" else "G"
    donor = seq[:150] + alt + seq[151:]
    reads = []
    for i in range(12):
        start = 150 - 10 - 4 * i
        if start < 0:
            continue
        reads.append(rec(f"r{i}", start, "80M", donor[start : start + 80]))
    return reference, reads, 150, seq[150], alt


class TestActiveRegions:
    def test_snp_pileup_triggers_region(self, scene):
        reference, reads, pos, _, _ = scene
        regions = find_active_regions(reads, reference)
        assert len(regions) == 1
        assert regions[0].start <= pos < regions[0].end

    def test_clean_reads_are_quiet(self, scene):
        reference, _, _, _, _ = scene
        seq = reference.contigs[0].sequence.decode()
        clean = [rec(f"c{i}", i * 30, "80M", seq[i * 30 : i * 30 + 80]) for i in range(10)]
        assert find_active_regions(clean, reference) == []

    def test_region_respects_max_span(self, scene):
        reference, _, _, _, _ = scene
        seq = reference.contigs[0].sequence.decode()
        # Mismatches everywhere: regions must be capped, not one giant window.
        noisy = []
        for i in range(10):
            start = i * 40
            bases = list(seq[start : start + 80])
            for j in range(0, 80, 4):
                bases[j] = "ACGT"[("ACGT".index(bases[j]) + 1) % 4]
            noisy.append(rec(f"n{i}", start, "80M", "".join(bases)))
        regions = find_active_regions(noisy, reference, max_region_span=100)
        assert all(r.span <= 100 + 2 * 25 + 1 for r in regions)

    def test_overlapping_reads_selection(self, scene):
        reference, reads, _, _, _ = scene
        region = ActiveRegion("chr1", 140, 180)
        selected = region.overlapping_reads(reads)
        assert selected
        assert all(r.pos < 180 and r.end > 140 for r in selected)


class TestAssembly:
    def test_reference_haplotype_always_present(self):
        assembler = DeBruijnAssembler(kmer_sizes=(11,))
        ref_window = "ACGTACGGTTACGTAGCATCGATCGGATCAAGGTCA"
        haps = assembler.assemble(ref_window, [])
        assert any(h.is_reference and h.sequence == ref_window for h in haps)

    def test_snp_haplotype_assembled(self, scene):
        reference, reads, pos, ref_base, alt_base = scene
        window = reference.fetch("chr1", 120, 200)
        assembler = DeBruijnAssembler(kmer_sizes=(15,), min_kmer_support=2)
        haps = assembler.assemble(window, reads)
        alt_window = window[:30] + alt_base + window[31:]
        assert any(h.sequence == alt_window for h in haps)

    def test_low_support_kmers_pruned(self):
        ref_window = "ACGTACGGTTACGTAGCATCGATCGGATCAAGGTCA"
        # One read with one random error: its error k-mers appear once.
        bad = rec("b", 0, "36M", ref_window[:17] + "T" + ref_window[18:])
        assembler = DeBruijnAssembler(kmer_sizes=(11,), min_kmer_support=2)
        haps = assembler.assemble(ref_window, [bad])
        assert all(h.sequence == ref_window for h in haps)

    def test_haplotype_cap(self, scene):
        reference, reads, _, _, _ = scene
        window = reference.fetch("chr1", 120, 200)
        assembler = DeBruijnAssembler(kmer_sizes=(15,), max_haplotypes=2)
        assert len(assembler.assemble(window, reads)) <= 2


class TestPairHMM:
    def test_perfect_match_beats_mismatch(self):
        hmm = PairHMM()
        hap = "ACGTACGTACGTACGTACGT"
        read = hap[4:16]
        quals = [30] * len(read)
        good = hmm.log_likelihood(read, quals, hap)
        bad_read = read[:5] + "A" + read[6:] if read[5] != "A" else read[:5] + "C" + read[6:]
        bad = hmm.log_likelihood(bad_read, quals, hap)
        assert good > bad

    def test_low_quality_mismatch_penalized_less(self):
        hmm = PairHMM()
        hap = "ACGTACGTACGTACGTACGT"
        read = list(hap[2:18])
        read[8] = "A" if read[8] != "A" else "C"
        read = "".join(read)
        high_q = hmm.log_likelihood(read, [40] * len(read), hap)
        low_q = [40] * len(read)
        low_q[8] = 5
        low = hmm.log_likelihood(read, low_q, hap)
        assert low > high_q

    def test_likelihood_is_probability(self):
        hmm = PairHMM()
        ll = hmm.log_likelihood("ACGTACGT", [30] * 8, "TTACGTACGTTT")
        assert ll <= 0.0

    def test_indel_read_scores_better_on_indel_haplotype(self):
        hmm = PairHMM()
        ref_hap = "ACGTTGCAAGGCTATCGGATCGGCTA"
        del_hap = ref_hap[:10] + ref_hap[13:]  # 3-base deletion
        read = del_hap[2:22]
        quals = [35] * len(read)
        assert hmm.log_likelihood(read, quals, del_hap) > hmm.log_likelihood(
            read, quals, ref_hap
        )

    def test_matrix_shape(self):
        hmm = PairHMM()
        reads = [("ACGTACGT", [30] * 8), ("TTTT", [30] * 4)]
        haps = ["ACGTACGTAA", "ACTTACGTAA", "GGGGGGGGGG"]
        matrix = hmm.likelihood_matrix(reads, haps)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] > matrix[0, 2]

    def test_empty_inputs(self):
        hmm = PairHMM()
        assert hmm.log_likelihood("", [], "ACGT") < -1e20


class TestGenotyper:
    def _likelihoods(self, pattern):
        """pattern rows: (ref_ll, alt_ll) per read."""
        return np.array(pattern, dtype=float)

    def test_hom_alt_called(self):
        haps = [Haplotype("REF", is_reference=True), Haplotype("ALT")]
        # Every read strongly prefers ALT.
        lls = self._likelihoods([[-40, -5]] * 10)
        call = Genotyper().call(lls, haps)
        assert (call.haplotype1, call.haplotype2) == (1, 1)
        assert call.qual > 20

    def test_het_called(self):
        haps = [Haplotype("REF", is_reference=True), Haplotype("ALT")]
        rows = [[-5, -40], [-40, -5]] * 5
        call = Genotyper().call(self._likelihoods(rows), haps)
        assert {call.haplotype1, call.haplotype2} == {0, 1}

    def test_hom_ref_has_zero_qual(self):
        haps = [Haplotype("REF", is_reference=True), Haplotype("ALT")]
        call = Genotyper().call(self._likelihoods([[-2, -50]] * 8), haps)
        assert (call.haplotype1, call.haplotype2) == (0, 0)
        assert call.qual == 0.0

    def test_ploidy_guard(self):
        with pytest.raises(NotImplementedError):
            Genotyper(ploidy=3)


class TestHaplotypeVariants:
    def test_snv_extracted(self):
        ref = "ACGTACGTAC"
        hap = "ACGTTCGTAC"
        (variant,) = haplotype_variants(hap, ref, "chr1", 100)
        assert variant == ("chr1", 104, "A", "T")

    def test_insertion_extracted(self):
        ref = "ACGTACGTACGT"
        hap = "ACGTACTTTGTACGT"
        variants = haplotype_variants(hap, ref, "c", 0)
        assert any(len(alt) > len(r) for _, _, r, alt in variants)

    def test_deletion_extracted(self):
        ref = "ACGTAGGCATTACCGGA"
        hap = ref[:6] + ref[10:]
        variants = haplotype_variants(hap, ref, "c", 50)
        deletions = [v for v in variants if len(v[2]) > len(v[3])]
        # Repeat-induced alignment ambiguity may split the run, but the
        # total deleted length must be 4 and stay inside the window.
        assert deletions
        assert sum(len(r) - len(alt) for _, _, r, alt in deletions) == 4
        assert all(50 <= pos <= 60 for _, pos, _, _ in deletions)

    def test_identical_sequences_no_variants(self):
        assert haplotype_variants("ACGT", "ACGT", "c", 0) == []

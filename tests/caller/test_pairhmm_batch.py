"""Batched pair-HMM: equivalence with the scalar kernel + dedup cache."""

import numpy as np
import pytest

from repro.caller.likelihood_cache import LikelihoodCache
from repro.caller.pairhmm import LOG_ZERO, PairHMM

BASES = np.array(list("ACGTN"))
BASE_P = [0.2425, 0.2425, 0.2425, 0.2425, 0.03]

TOLERANCE = 1e-6


def _random_read(rng, lo, hi):
    seq = "".join(rng.choice(BASES, size=int(rng.integers(lo, hi + 1)), p=BASE_P))
    quals = rng.integers(2, 41, size=len(seq)).tolist()
    return seq, quals


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_matrices_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        hmm = PairHMM(cache_size=0)
        for _ in range(12):
            reads = [
                _random_read(rng, 1, 45) for _ in range(int(rng.integers(1, 10)))
            ]
            haps = [
                "".join(rng.choice(BASES, size=int(rng.integers(1, 90)), p=BASE_P))
                for _ in range(int(rng.integers(1, 5)))
            ]
            batched = hmm.likelihood_matrix(reads, haps)
            scalar = hmm.likelihood_matrix_scalar(reads, haps)
            np.testing.assert_allclose(batched, scalar, atol=TOLERANCE, rtol=0)

    def test_edge_cases(self):
        hmm = PairHMM(cache_size=0)
        reads = [
            ("", []),  # empty read
            ("N", [30]),  # all-N length-1
            ("A", [2]),  # length-1, minimum quality
            ("NNNNN", [10] * 5),  # all-N read
            ("ACGTACGTAC", [35] * 10),
        ]
        haps = ["A", "N", "NNNN", "ACGTACGTACGTACGT"]
        batched = hmm.likelihood_matrix(reads, haps)
        scalar = hmm.likelihood_matrix_scalar(reads, haps)
        np.testing.assert_allclose(batched, scalar, atol=TOLERANCE, rtol=0)
        # Empty read rows are exactly LOG_ZERO, as in the scalar kernel.
        assert (batched[0] == LOG_ZERO).all()

    def test_batch_log_likelihoods_order_and_gaps(self):
        hmm = PairHMM(cache_size=0)
        items = [
            ("ACGT", [30] * 4, "ACGTACGT"),
            ("", [], "ACGT"),  # dead item in the middle of the batch
            ("TTTT", [20] * 4, "TTTTT"),
        ]
        out = hmm.batch_log_likelihoods(items)
        assert out[1] == LOG_ZERO
        assert out[0] == pytest.approx(
            hmm.log_likelihood("ACGT", [30] * 4, "ACGTACGT"), abs=TOLERANCE
        )
        assert out[2] == pytest.approx(
            hmm.log_likelihood("TTTT", [20] * 4, "TTTTT"), abs=TOLERANCE
        )

    def test_quals_as_ndarray_match_list(self):
        hmm = PairHMM(cache_size=0)
        quals = [17, 25, 40, 2]
        a = hmm.likelihood_matrix([("ACGT", quals)], ["ACGTA"])
        b = hmm.likelihood_matrix([("ACGT", np.array(quals))], ["ACGTA"])
        np.testing.assert_array_equal(a, b)


class TestLikelihoodCache:
    def test_repeat_calls_hit_cache(self):
        hmm = PairHMM()
        reads = [("ACGTACGT", [30] * 8), ("TTGCAAGC", [25] * 8)]
        haps = ["ACGTACGTA", "TTGCAAGCT"]
        first = hmm.likelihood_matrix(reads, haps)
        misses_after_first = hmm.cache.misses
        second = hmm.likelihood_matrix(reads, haps)
        np.testing.assert_array_equal(first, second)
        assert hmm.cache.misses == misses_after_first  # all hits
        assert hmm.cache.hits >= len(reads) * len(haps)

    def test_duplicate_pairs_computed_once_within_call(self):
        hmm = PairHMM()
        dup = ("ACGTACGT", [30] * 8)
        out = hmm.likelihood_matrix([dup, dup, dup], ["ACGTACGTA"])
        assert out[0, 0] == out[1, 0] == out[2, 0]
        assert len(hmm.cache) == 1  # one unique triple stored

    def test_cache_shared_across_regions(self):
        cache = LikelihoodCache()
        hmm = PairHMM(cache=cache)
        read = ("ACGTACGT", [30] * 8)
        hmm.likelihood_matrix([read], ["ACGTACGTA"])  # "region 1"
        baseline_misses = cache.misses
        hmm.likelihood_matrix([read], ["ACGTACGTA", "TTTT"])  # "region 2"
        assert cache.misses == baseline_misses + 1  # only the new haplotype

    def test_content_addressing_distinguishes_quals(self):
        key_a = LikelihoodCache.key("ACGT", [30, 30, 30, 30], "ACGT")
        key_b = LikelihoodCache.key("ACGT", [30, 30, 30, 31], "ACGT")
        key_c = LikelihoodCache.key("ACGT", np.array([30.0, 30, 30, 30]), "ACGT")
        assert key_a != key_b
        assert key_a == key_c  # int/float quals canonicalize identically

    def test_lru_eviction_bounds_size(self):
        cache = LikelihoodCache(max_entries=2)
        for i in range(5):
            cache.put(LikelihoodCache.key("A" * (i + 1), [30], "ACGT"), float(i))
        assert len(cache) == 2

    def test_cache_disabled(self):
        hmm = PairHMM(cache_size=0)
        assert hmm.cache is None
        out = hmm.likelihood_matrix([("ACGT", [30] * 4)], ["ACGTA"])
        assert np.isfinite(out).all()

"""Hard variant filter tests."""

import numpy as np
import pytest

from repro.caller.filters import (
    FilterConfig,
    apply_hard_filters,
    filter_summary,
    homopolymer_run_length,
    passing,
)
from repro.formats.fasta import Contig, Reference
from repro.formats.vcf import VcfRecord


@pytest.fixture(scope="module")
def plain_ref():
    rng = np.random.default_rng(71)
    # Alternate bases to avoid accidental homopolymers, then plant one.
    seq = "".join("ACGT"[i % 4] for i in range(500))
    seq = seq[:200] + "A" * 9 + seq[209:]
    return Reference([Contig("chr1", seq.encode())])


def rec(pos=50, qual=60.0, depth=20, ref="A", alt="G"):
    return VcfRecord("chr1", pos, ref, alt, qual=qual, depth=depth)


class TestHomopolymerDetection:
    def test_run_found(self, plain_ref):
        assert homopolymer_run_length(plain_ref, "chr1", 204, 10) == 9

    def test_no_run_in_alternating_sequence(self, plain_ref):
        assert homopolymer_run_length(plain_ref, "chr1", 50, 10) == 1

    def test_window_clipped_at_contig_start(self, plain_ref):
        assert homopolymer_run_length(plain_ref, "chr1", 1, 10) >= 1


class TestHardFilters:
    def test_good_call_passes(self, plain_ref):
        (out,) = apply_hard_filters([rec()], plain_ref)
        assert out.filter_ == "PASS"

    def test_low_qual_flagged(self, plain_ref):
        (out,) = apply_hard_filters([rec(qual=10.0)], plain_ref)
        assert "LowQual" in out.filter_

    def test_low_depth_flagged(self, plain_ref):
        (out,) = apply_hard_filters([rec(depth=2)], plain_ref)
        assert "LowDepth" in out.filter_

    def test_qual_by_depth_flagged(self, plain_ref):
        # QUAL 40 over depth 100: each read contributes almost nothing.
        (out,) = apply_hard_filters([rec(qual=40.0, depth=100)], plain_ref)
        assert "QualByDepth" in out.filter_

    def test_indel_in_homopolymer_flagged(self, plain_ref):
        indel = rec(pos=203, ref="AA", alt="A", qual=80.0, depth=30)
        (out,) = apply_hard_filters([indel], plain_ref)
        assert "HomopolymerRegion" in out.filter_

    def test_snv_in_homopolymer_not_flagged(self, plain_ref):
        snv = rec(pos=203, ref="A", alt="G", qual=80.0, depth=30)
        (out,) = apply_hard_filters([snv], plain_ref)
        assert "HomopolymerRegion" not in out.filter_

    def test_multiple_reasons_joined(self, plain_ref):
        (out,) = apply_hard_filters([rec(qual=5.0, depth=1)], plain_ref)
        assert set(out.filter_.split(";")) >= {"LowQual", "LowDepth"}

    def test_gvcf_blocks_untouched(self, plain_ref):
        block = VcfRecord("chr1", 10, "A", "<NON_REF>", qual=0.0, genotype="0/0")
        (out,) = apply_hard_filters([block], plain_ref)
        assert out is block

    def test_config_thresholds_respected(self, plain_ref):
        strict = FilterConfig(min_qual=90.0)
        (out,) = apply_hard_filters([rec(qual=60.0)], plain_ref, strict)
        assert "LowQual" in out.filter_


class TestHelpers:
    def test_passing_selects_pass_only(self, plain_ref):
        records = apply_hard_filters([rec(), rec(qual=5.0)], plain_ref)
        assert len(passing(records)) == 1

    def test_summary_counts(self, plain_ref):
        records = apply_hard_filters(
            [rec(), rec(qual=5.0), rec(depth=1)], plain_ref
        )
        summary = filter_summary(records)
        assert summary["PASS"] == 1
        assert summary["LowQual"] >= 1


class TestPrecisionImprovement:
    def test_filters_improve_precision_on_pipeline_output(
        self, reference, truth, known_sites, read_pairs, tmp_path
    ):
        """On real pipeline output, filtering should cut false positives
        at modest recall cost."""
        from repro.engine.context import EngineConfig, GPFContext
        from repro.wgs import build_wgs_pipeline

        ctx = GPFContext(
            EngineConfig(default_parallelism=3, spill_dir=str(tmp_path / "f"))
        )
        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(read_pairs[:250], 3),
            known_sites,
            partition_length=4_000,
        )
        handles.pipeline.run()
        raw = handles.vcf.rdd.collect()
        ctx.stop()

        filtered = passing(apply_hard_filters(raw, reference))
        truth_keys = truth.truth_keys()

        def precision(calls):
            keys = {c.key() for c in calls}
            tp = len(keys & truth_keys)
            return tp / len(keys) if keys else 1.0, tp

        raw_precision, raw_tp = precision(raw)
        flt_precision, flt_tp = precision(filtered)
        assert flt_precision >= raw_precision
        assert flt_tp >= 0.7 * raw_tp  # recall cost bounded

"""GVCF combination / joint genotyping tests."""

import pytest

from repro.caller.gvcf import CohortSite, SampleGvcf, combine_gvcfs
from repro.formats.vcf import VcfRecord


def variant(pos, genotype="0/1", qual=50.0, depth=10, contig="c", ref="A", alt="G"):
    return VcfRecord(contig, pos, ref, alt, qual=qual, genotype=genotype, depth=depth)


def block(start, end, contig="c"):
    return VcfRecord(
        contig, start, "A", "<NON_REF>", genotype="0/0", info={"END": end}
    )


class TestSampleGvcf:
    def test_split_variants_and_blocks(self):
        sample = SampleGvcf.from_records("s1", [variant(10), block(0, 10), block(11, 50)])
        assert len(sample.variants) == 1
        assert sample.blocks["c"] == [(0, 10), (11, 50)]

    def test_coverage_lookup(self):
        sample = SampleGvcf.from_records("s1", [block(10, 20), block(30, 40)])
        assert sample.covered_as_reference("c", 15)
        assert not sample.covered_as_reference("c", 25)
        assert not sample.covered_as_reference("c", 40)  # half-open end
        assert not sample.covered_as_reference("other", 15)


class TestCombine:
    def test_variant_in_one_sample_ref_in_other(self):
        s1 = SampleGvcf.from_records("s1", [variant(10, "0/1")])
        s2 = SampleGvcf.from_records("s2", [block(0, 100)])
        (site,) = combine_gvcfs([s1, s2])
        assert site.genotypes == {"s1": "0/1", "s2": "0/0"}
        assert site.carrier_samples == 1
        assert site.called_samples == 2

    def test_uncovered_sample_gets_no_call(self):
        s1 = SampleGvcf.from_records("s1", [variant(10)])
        s2 = SampleGvcf.from_records("s2", [])  # no blocks at all
        (site,) = combine_gvcfs([s1, s2])
        assert site.genotypes["s2"] == "./."
        assert site.called_samples == 1

    def test_shared_variant_merges_depth(self):
        s1 = SampleGvcf.from_records("s1", [variant(10, "0/1", depth=8)])
        s2 = SampleGvcf.from_records("s2", [variant(10, "1/1", depth=12)])
        (site,) = combine_gvcfs([s1, s2])
        assert site.record.depth == 20
        assert site.carrier_samples == 2
        assert site.record.info["NS"] == 2

    def test_best_qual_exemplar_used(self):
        s1 = SampleGvcf.from_records("s1", [variant(10, qual=20.0)])
        s2 = SampleGvcf.from_records("s2", [variant(10, qual=90.0)])
        (site,) = combine_gvcfs([s1, s2])
        assert site.record.qual == 90.0

    def test_sites_sorted_by_position(self):
        s1 = SampleGvcf.from_records("s1", [variant(50), variant(10)])
        sites = combine_gvcfs([s1])
        assert [s.record.pos for s in sites] == [10, 50]

    def test_indel_window_merges_shifted_indels(self):
        d1 = VcfRecord("c", 10, "ATTT", "A", qual=40.0, genotype="0/1", depth=5)
        d2 = VcfRecord("c", 13, "GTTT", "G", qual=60.0, genotype="0/1", depth=7)
        s1 = SampleGvcf.from_records("s1", [d1])
        s2 = SampleGvcf.from_records("s2", [d2])
        merged = combine_gvcfs([s1, s2], indel_window=5)
        assert len(merged) == 1
        assert merged[0].record.depth == 12
        without = combine_gvcfs([s1, s2], indel_window=0)
        assert len(without) == 2

    def test_empty(self):
        assert combine_gvcfs([]) == []


class TestEndToEndGvcf:
    def test_per_sample_gvcfs_combine_into_cohort(
        self, reference, truth, known_sites, tmp_path
    ):
        """Run the pipeline in GVCF mode per sample; combining recovers the
        shared truth variants with correct per-sample genotypes."""
        from repro.engine.context import EngineConfig, GPFContext
        from repro.sim import ReadSimConfig, ReadSimulator
        from repro.wgs import build_wgs_pipeline

        gvcfs = []
        for i in range(2):
            pairs = ReadSimulator(
                truth.donor, ReadSimConfig(coverage=5.0, seed=120 + i)
            ).simulate()
            ctx = GPFContext(
                EngineConfig(default_parallelism=3, spill_dir=str(tmp_path / f"g{i}"))
            )
            handles = build_wgs_pipeline(
                ctx,
                reference,
                ctx.parallelize(pairs, 3),
                known_sites,
                partition_length=4_000,
                use_gvcf=True,
            )
            handles.pipeline.run()
            records = handles.vcf.rdd.collect()
            ctx.stop()
            assert any(r.alt == "<NON_REF>" for r in records)  # real GVCF
            gvcfs.append(SampleGvcf.from_records(f"s{i}", records))

        sites = combine_gvcfs(gvcfs, indel_window=10)
        truth_keys = truth.truth_keys()
        hits = [s for s in sites if s.record.key() in truth_keys]
        assert len(hits) >= len(truth_keys) // 3
        # Both samples come from the same donor: at truth sites where both
        # are called, both should be carriers most of the time.
        both_called = [
            s for s in hits if all(g != "./." for g in s.genotypes.values())
        ]
        if both_called:
            both_carriers = [s for s in both_called if s.carrier_samples == 2]
            assert len(both_carriers) >= len(both_called) // 2

"""End-to-end HaplotypeCaller tests on simulated scenes."""

import numpy as np
import pytest

from repro.caller.haplotype_caller import CallerConfig, HaplotypeCaller
from repro.formats.cigar import Cigar
from repro.formats.fasta import Contig, Reference
from repro.formats.sam import SamRecord


def rec(qname, pos, cigar, seq, rname="chr1", qual=None):
    return SamRecord(
        qname=qname, flag=0, rname=rname, pos=pos, mapq=60,
        cigar=Cigar.parse(cigar), rnext="*", pnext=-1, tlen=0,
        seq=seq, qual=qual or ("I" * len(seq)),
    )


def make_scene(seed=41, size=600):
    rng = np.random.default_rng(seed)
    seq = "".join(rng.choice(list("ACGT"), size=size))
    return Reference([Contig("chr1", seq.encode())]), seq


def reads_from_donor(donor, centre, n=14, length=90, prefix="r"):
    reads = []
    for i in range(n):
        start = max(0, centre - length + 12 + 6 * i)
        if start + length > len(donor):
            break
        reads.append(rec(f"{prefix}{i}", start, f"{length}M", donor[start : start + length]))
    return reads


class TestSnvCalling:
    def test_homozygous_snv_called(self):
        reference, seq = make_scene()
        pos = 300
        alt = "A" if seq[pos] != "A" else "G"
        donor = seq[:pos] + alt + seq[pos + 1 :]
        caller = HaplotypeCaller(reference)
        calls = caller.call(reads_from_donor(donor, pos))
        assert any(
            c.pos == pos and c.ref == seq[pos] and c.alt == alt for c in calls
        )
        call = next(c for c in calls if c.pos == pos)
        assert call.genotype == "1/1"
        assert call.qual >= 20

    def test_heterozygous_snv_genotype(self):
        reference, seq = make_scene(seed=43)
        pos = 300
        alt = "C" if seq[pos] != "C" else "T"
        donor = seq[:pos] + alt + seq[pos + 1 :]
        ref_reads = reads_from_donor(seq, pos, prefix="ref")
        alt_reads = reads_from_donor(donor, pos, prefix="alt")
        caller = HaplotypeCaller(reference)
        calls = caller.call(ref_reads + alt_reads)
        matching = [c for c in calls if c.pos == pos]
        assert matching
        assert matching[0].genotype == "0/1"

    def test_clean_reads_produce_no_calls(self):
        reference, seq = make_scene(seed=44)
        caller = HaplotypeCaller(reference)
        assert caller.call(reads_from_donor(seq, 300)) == []

    def test_lone_sequencing_error_not_called(self):
        reference, seq = make_scene(seed=45)
        reads = reads_from_donor(seq, 300)
        # One read carries one low-quality error.
        bad = list(reads[0].seq)
        bad[40] = "A" if bad[40] != "A" else "C"
        quals = list(reads[0].qual)
        quals[40] = "#"
        reads[0].seq = "".join(bad)
        reads[0].qual = "".join(quals)
        caller = HaplotypeCaller(reference)
        assert caller.call(reads) == []


class TestIndelCalling:
    def test_deletion_called(self):
        reference, seq = make_scene(seed=46)
        pos = 300
        donor = seq[: pos + 1] + seq[pos + 4 :]  # 3-base deletion after anchor
        caller = HaplotypeCaller(reference)
        calls = caller.call(reads_from_donor(donor, pos))
        deletions = [c for c in calls if c.is_deletion]
        assert deletions
        assert any(abs(c.pos - pos) <= 3 for c in deletions)

    def test_insertion_called(self):
        reference, seq = make_scene(seed=47)
        pos = 300
        donor = seq[: pos + 1] + "TTT" + seq[pos + 1 :]
        caller = HaplotypeCaller(reference)
        calls = caller.call(reads_from_donor(donor, pos))
        insertions = [c for c in calls if c.is_insertion]
        assert insertions
        assert any(abs(c.pos - pos) <= 3 for c in insertions)


class TestGvcf:
    def test_gvcf_emits_reference_blocks(self):
        reference, seq = make_scene(seed=48)
        pos = 300
        alt = "A" if seq[pos] != "A" else "G"
        donor = seq[:pos] + alt + seq[pos + 1 :]
        caller = HaplotypeCaller(reference, CallerConfig(gvcf=True))
        calls = caller.call(reads_from_donor(donor, pos))
        blocks = [c for c in calls if c.alt == "<NON_REF>"]
        variants = [c for c in calls if c.alt != "<NON_REF>"]
        assert blocks and variants
        # Blocks must not cover the variant position.
        for block in blocks:
            end = block.info.get("END", block.pos + 1)
            assert not (block.pos <= pos < end)

    def test_gvcf_off_by_default(self):
        reference, seq = make_scene(seed=48)
        caller = HaplotypeCaller(reference)
        calls = caller.call(reads_from_donor(seq, 300))
        assert all(c.alt != "<NON_REF>" for c in calls)


class TestDuplicateHandling:
    def test_duplicate_reads_excluded_from_evidence(self):
        reference, seq = make_scene(seed=49)
        pos = 300
        alt = "A" if seq[pos] != "A" else "G"
        donor = seq[:pos] + alt + seq[pos + 1 :]
        reads = reads_from_donor(donor, pos)
        for r in reads:
            r.set_duplicate(True)
        caller = HaplotypeCaller(reference)
        assert caller.call(reads) == []

"""Variant evaluation tests."""

import pytest

from repro.caller.evaluation import evaluate_calls
from repro.formats.vcf import VcfRecord


def snv(pos, alt="G", genotype="1/1", contig="c", qual=50.0, filter_="PASS"):
    return VcfRecord(contig, pos, "A", alt, qual=qual, genotype=genotype, filter_=filter_)


def deletion(pos, length=3, genotype="1/1", contig="c", filter_="PASS"):
    return VcfRecord(
        contig, pos, "A" + "T" * length, "A", qual=50.0, genotype=genotype, filter_=filter_
    )


class TestSnvMatching:
    def test_exact_match_is_tp(self):
        report = evaluate_calls([snv(10)], [snv(10)])
        assert report.overall.tp == 1
        assert report.snv.precision == 1.0 and report.snv.recall == 1.0

    def test_wrong_alt_is_fp_and_fn(self):
        report = evaluate_calls([snv(10, alt="T")], [snv(10, alt="G")])
        assert report.overall.fp == 1 and report.overall.fn == 1

    def test_missed_truth_is_fn(self):
        report = evaluate_calls([], [snv(10)])
        assert report.snv.fn == 1 and report.snv.recall == 0.0

    def test_extra_call_is_fp(self):
        report = evaluate_calls([snv(10), snv(20)], [snv(10)])
        assert report.snv.fp == 1

    def test_duplicate_calls_only_match_once(self):
        report = evaluate_calls([snv(10), snv(10)], [snv(10)])
        assert report.snv.tp == 1 and report.snv.fp == 1


class TestIndelMatching:
    def test_exact_indel_match(self):
        report = evaluate_calls([deletion(10)], [deletion(10)])
        assert report.deletion.tp == 1

    def test_shifted_indel_within_window_matches(self):
        # Repeat-context ambiguity: same 3bp deletion reported 4bp away.
        report = evaluate_calls([deletion(14)], [deletion(10)], indel_window=10)
        assert report.deletion.tp == 1
        assert report.overall.fp == 0

    def test_shifted_beyond_window_fails(self):
        report = evaluate_calls([deletion(30)], [deletion(10)], indel_window=10)
        assert report.deletion.tp == 0
        assert report.deletion.fp == 1 and report.deletion.fn == 1

    def test_different_length_never_matches(self):
        report = evaluate_calls([deletion(10, length=2)], [deletion(10, length=3)])
        assert report.deletion.tp == 0

    def test_insertion_vs_deletion_not_confused(self):
        ins = VcfRecord("c", 10, "A", "ATTT", qual=50.0, genotype="1/1")
        report = evaluate_calls([ins], [deletion(10)])
        assert report.insertion.fp == 1
        assert report.deletion.fn == 1

    def test_one_truth_matches_one_call_only(self):
        report = evaluate_calls([deletion(10), deletion(12)], [deletion(11)])
        assert report.deletion.tp == 1 and report.deletion.fp == 1


class TestGenotypeConcordance:
    def test_concordant_genotype_counted(self):
        report = evaluate_calls([snv(10, genotype="0/1")], [snv(10, genotype="0/1")])
        assert report.overall.genotype_concordance == 1.0

    def test_discordant_genotype_still_tp(self):
        report = evaluate_calls([snv(10, genotype="0/1")], [snv(10, genotype="1/1")])
        assert report.overall.tp == 1
        assert report.overall.genotype_concordance == 0.0


class TestFiltering:
    def test_non_pass_calls_excluded_by_default(self):
        report = evaluate_calls([snv(10, filter_="LowQual")], [snv(10)])
        assert report.overall.tp == 0 and report.overall.fn == 1

    def test_pass_only_false_includes_everything(self):
        report = evaluate_calls(
            [snv(10, filter_="LowQual")], [snv(10)], pass_only=False
        )
        assert report.overall.tp == 1

    def test_gvcf_blocks_ignored(self):
        block = VcfRecord("c", 5, "A", "<NON_REF>", genotype="0/0")
        report = evaluate_calls([block, snv(10)], [snv(10)])
        assert report.overall.tp == 1 and report.overall.fp == 0


class TestSummary:
    def test_summary_renders(self):
        report = evaluate_calls([snv(10)], [snv(10), deletion(50)])
        text = report.summary()
        assert "overall" in text and "deletion" in text
        assert "1.000" in text

    def test_pipeline_output_scores_well(self, reference, truth, known_sites, read_pairs, tmp_path):
        from repro.engine.context import EngineConfig, GPFContext
        from repro.wgs import build_wgs_pipeline

        ctx = GPFContext(
            EngineConfig(default_parallelism=3, spill_dir=str(tmp_path / "ev"))
        )
        handles = build_wgs_pipeline(
            ctx, reference, ctx.parallelize(read_pairs, 3), known_sites,
            partition_length=4_000,
        )
        handles.pipeline.run()
        calls = handles.vcf.rdd.collect()
        ctx.stop()
        report = evaluate_calls(calls, truth.records, pass_only=False)
        # Position-tolerant indel matching should beat exact-key scoring.
        exact_tp = len({c.key() for c in calls} & truth.truth_keys())
        assert report.overall.tp >= exact_tp
        assert report.overall.recall > 0.4

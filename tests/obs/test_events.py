import json
import threading

from repro.obs import (
    EVENT_SCHEMA,
    EventBus,
    JsonlEventSink,
    MemorySink,
    read_events,
    validate_event,
    validate_events,
)
from repro.obs.telemetry import TelemetryRegistry


class TestEventBus:
    def test_inactive_publish_is_noop(self):
        bus = EventBus()
        assert not bus.active
        bus.publish("run.start")  # nobody listening; must not raise

    def test_publish_delivers_kind_ts_and_fields(self):
        bus = EventBus(clock=lambda: 123.0)
        sink = MemorySink()
        bus.subscribe(sink)
        assert bus.active
        bus.publish("process.start", process="p")
        assert sink.events == [{"kind": "process.start", "ts": 123.0, "process": "p"}]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        sink = MemorySink()
        bus.subscribe(sink)
        bus.unsubscribe(sink)
        assert not bus.active
        bus.publish("run.start")
        assert sink.events == []

    def test_duplicate_subscribe_delivers_once(self):
        bus = EventBus()
        sink = MemorySink()
        bus.subscribe(sink)
        bus.subscribe(sink)
        bus.publish("run.start")
        assert len(sink.events) == 1

    def test_concurrent_publish_is_safe(self):
        bus = EventBus()
        sink = MemorySink()
        bus.subscribe(sink)

        def pump():
            for _ in range(200):
                bus.publish("journal.record", process="x")

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sink.events) == 800


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        with JsonlEventSink(path) as sink:
            bus.subscribe(sink)
            bus.publish("run.start", backend="serial")
            bus.publish("process.end", process="p", elapsed=1.5)
        events = read_events(path)
        assert [e["kind"] for e in events] == ["run.start", "process.end"]
        assert events[1]["elapsed"] == 1.5
        assert validate_events(events) == []

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps({"kind": "run.start", "ts": 1.0})
        path.write_text(good + "\n" + '{"kind": "run.e')  # crash artifact
        events = read_events(str(path))
        assert len(events) == 1
        assert events[0]["kind"] == "run.start"

    def test_write_after_close_is_silent(self, tmp_path):
        sink = JsonlEventSink(str(tmp_path / "e.jsonl"))
        sink.close()
        sink({"kind": "run.start", "ts": 0.0})  # dropped, not raised

    def test_unjsonable_payloads_degrade_to_repr(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        with JsonlEventSink(path) as sink:
            sink({"kind": "run.start", "ts": 0.0, "odd": {1, 2}, "obj": object()})
        (event,) = read_events(path)
        assert event["odd"] == [1, 2]
        assert "object" in event["obj"]


class TestSchema:
    def test_every_kind_validates_with_required_fields(self):
        for kind, required in EVENT_SCHEMA.items():
            event = {"kind": kind, "ts": 0.0}
            event.update({field: 0 for field in required})
            assert validate_event(event) == [], kind

    def test_unknown_kind_rejected(self):
        problems = validate_event({"kind": "bogus.kind", "ts": 0.0})
        assert any("unknown event kind" in p for p in problems)

    def test_missing_field_and_ts_reported(self):
        problems = validate_event({"kind": "process.end", "process": "p"})
        assert any("missing numeric 'ts'" in p for p in problems)
        assert any("'elapsed'" in p for p in problems)

    def test_validate_events_indexes_problems(self):
        problems = validate_events([{"kind": "run.start", "ts": 0.0}, {"no": 1}])
        assert len(problems) == 1
        assert problems[0].startswith("event 1:")


class TestTelemetryRegistry:
    def test_counters_and_gauges(self):
        reg = TelemetryRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("g", 7)
        assert reg.counter("a") == 5
        assert reg.counter("nope") == 0
        assert reg.gauge("g") == 7
        snap = reg.snapshot()
        assert snap == {"counters": {"a": 5}, "gauges": {"g": 7}, "histograms": {}}
        # Snapshot is a copy — mutating it does not touch the registry.
        snap["counters"]["a"] = 0
        assert reg.counter("a") == 5

    def test_concurrent_inc(self):
        reg = TelemetryRegistry()

        def pump():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=pump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 8000

import threading

import pytest

from repro.obs import NOOP_SPAN, NoopTracer, Tracer, new_span_id


class TestSpanIds:
    def test_ids_unique_across_threads(self):
        ids: list[str] = []
        lock = threading.Lock()

        def mint():
            mine = [new_span_id() for _ in range(500)]
            with lock:
                ids.extend(mine)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 4000

    def test_id_embeds_pid(self):
        import os

        assert new_span_id().startswith(f"{os.getpid():x}-")


class TestTracerNesting:
    def test_context_manager_nests_implicitly(self):
        tracer = Tracer()
        with tracer.span("outer", kind="pipeline") as outer:
            assert tracer.current() is outer
            with tracer.span("inner", kind="job") as inner:
                assert inner.parent_id == outer.span_id
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        finished = tracer.finished_spans()
        assert [s.name for s in finished] == ["inner", "outer"]
        for span in finished:
            assert span.finished
            assert span.end >= span.start
            assert span.duration >= 0

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        tracer.finish(root)
        # A worker thread has no stack ancestry; the parent is explicit.
        result = {}

        def worker():
            with tracer.span("task", kind="task", parent=root) as span:
                result["parent"] = span.parent_id

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert result["parent"] == root.span_id

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("s", partition=3) as span:
            span.set_attribute("records", 10)
            span.set_attributes(bytes=99, attempt=0)
        (finished,) = tracer.finished_spans()
        assert finished.attrs == {
            "partition": 3,
            "records": 10,
            "bytes": 99,
            "attempt": 0,
        }

    def test_exception_recorded_as_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.finished_spans()
        assert span.attrs["error"] == "ValueError"
        assert span.finished

    def test_double_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("s")
        tracer.finish(span)
        end = span.end
        tracer.finish(span)
        assert span.end == end
        assert len(tracer.finished_spans()) == 1

    def test_missed_inner_finish_tolerated(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")  # never finished explicitly
        tracer.finish(outer)
        assert tracer.current() is None


class TestNoopTracer:
    def test_disabled_and_recordless(self):
        tracer = NoopTracer()
        assert tracer.enabled is False
        with tracer.span("anything", kind="task", partition=1) as span:
            assert span is NOOP_SPAN
            span.set_attribute("x", 1)  # silently ignored
            span.set_attributes(y=2)
        assert tracer.finished_spans() == []
        assert tracer.current() is None

    def test_default_context_uses_noop_tracer(self, ctx):
        assert isinstance(ctx.tracer, NoopTracer)
        assert not ctx.events.active

import json
import os

from repro.engine.context import EngineConfig, GPFContext
from repro.obs import Tracer, chrome_trace_dict, validate_chrome_trace


class TestChromeTraceDict:
    def test_spans_become_complete_events(self):
        tracer = Tracer()
        with tracer.span("pipeline:x", kind="pipeline"):
            with tracer.span("job:y", kind="job", partition=2):
                pass
        trace = chrome_trace_dict(tracer)
        assert validate_chrome_trace(trace) == []
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"pipeline:x", "job:y"}
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert "span_id" in event["args"]
        job = next(e for e in complete if e["name"] == "job:y")
        pipeline = next(e for e in complete if e["name"] == "pipeline:x")
        assert job["args"]["parent_id"] == pipeline["args"]["span_id"]
        assert job["args"]["partition"] == 2

    def test_events_sorted_and_metadata_present(self):
        tracer = Tracer()
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        trace = chrome_trace_dict(tracer)
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert metadata and metadata[0]["name"] == "process_name"
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [e["ts"] for e in complete] == sorted(e["ts"] for e in complete)

    def test_open_spans_excluded(self):
        tracer = Tracer()
        tracer.start_span("never-finished")
        trace = chrome_trace_dict(tracer)
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace({}) == ["traceEvents is not a list"]
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1}]}
        assert any("negative dur" in p for p in validate_chrome_trace(bad))


class TestTracedRunExport:
    def test_context_writes_loadable_trace_json(self, tmp_path):
        config = EngineConfig(
            spill_dir=str(tmp_path / "spill"), trace_dir=str(tmp_path / "trace")
        )
        with GPFContext(config) as ctx:
            ctx.parallelize(range(20), 4).map(lambda x: x + 1).collect()
        path = os.path.join(str(tmp_path / "trace"), "trace.json")
        with open(path, "r", encoding="utf-8") as fh:
            trace = json.load(fh)
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        # One job span plus its per-partition task spans.
        assert any(name.startswith("job:") for name in names)
        assert any(name.startswith("result-p") for name in names)
        # Task spans parent into the stage span across executor threads.
        by_id = {
            e["args"]["span_id"]: e
            for e in trace["traceEvents"]
            if e["ph"] == "X"
        }
        tasks = [e for e in by_id.values() if e["name"].startswith("result-p")]
        assert tasks
        for task in tasks:
            parent = by_id[task["args"]["parent_id"]]
            assert parent["cat"] == "stage"

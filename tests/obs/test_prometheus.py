import pytest

from repro.obs import Histogram, render_prometheus, validate_prometheus


def _metrics() -> dict:
    h = Histogram()
    for v in (0.001, 0.02, 0.5, 7.0):
        h.observe(v)
    return {
        "service": {
            "jobs_submitted": 5,
            "jobs_succeeded": 3,
            "queued": 1,
            "running": 1,
            "draining": False,
        },
        "counters": {"blockmanager.decode_calls": 12},
        "gauges": {
            "blockmanager.compressed_bytes": 1000,
            "compression_ratio": 2.0,
        },
        "histograms": {"jobs.run_seconds": h.snapshot()},
        "health": {"state": "healthy", "failure_rate": 0.0, "outcomes": 4},
    }


class TestRender:
    def test_output_validates(self):
        text = render_prometheus(_metrics())
        assert validate_prometheus(text) == []

    def test_counter_and_gauge_naming(self):
        text = render_prometheus(_metrics())
        assert "gpf_service_jobs_submitted_total 5" in text
        assert "gpf_service_queued 1" in text
        assert "gpf_blockmanager_decode_calls_total 12" in text
        assert "gpf_compression_ratio 2" in text

    def test_health_state_label(self):
        text = render_prometheus(_metrics())
        assert 'gpf_health_state{state="healthy"} 1' in text

    def test_histogram_triplet(self):
        text = render_prometheus(_metrics())
        assert 'gpf_jobs_run_seconds_bucket{le="+Inf"} 4' in text
        assert "gpf_jobs_run_seconds_count 4" in text
        assert "gpf_jobs_run_seconds_sum" in text

    def test_bucket_counts_cumulative(self):
        text = render_prometheus(_metrics())
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("gpf_jobs_run_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_empty_metrics_render_and_validate(self):
        assert validate_prometheus(render_prometheus({})) == []


class TestValidator:
    def test_sample_before_type_flagged(self):
        text = "gpf_x_total 1\n# TYPE gpf_x_total counter\n"
        assert validate_prometheus(text)

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# TYPE gpf_h histogram\n"
            'gpf_h_bucket{le="0.1"} 5\n'
            'gpf_h_bucket{le="1"} 3\n'
            'gpf_h_bucket{le="+Inf"} 5\n'
            "gpf_h_sum 1\n"
            "gpf_h_count 5\n"
        )
        assert any("cumulative" in p for p in validate_prometheus(text))

    def test_missing_inf_bucket_flagged(self):
        text = (
            "# TYPE gpf_h histogram\n"
            'gpf_h_bucket{le="0.1"} 5\n'
            "gpf_h_sum 1\n"
            "gpf_h_count 5\n"
        )
        assert any("+Inf" in p for p in validate_prometheus(text))

    def test_inf_count_mismatch_flagged(self):
        text = (
            "# TYPE gpf_h histogram\n"
            'gpf_h_bucket{le="+Inf"} 4\n'
            "gpf_h_sum 1\n"
            "gpf_h_count 5\n"
        )
        assert validate_prometheus(text)

    def test_malformed_line_flagged(self):
        assert validate_prometheus("not a metric line at all\n")

    @pytest.mark.parametrize("line", ["gpf_ok 1", "gpf_ok 1.5", "gpf_ok NaN"])
    def test_plain_untyped_sample_ok(self, line):
        assert validate_prometheus(line + "\n") == []

import json
import os

from repro.engine.context import EngineConfig, GPFContext
from repro.obs import Histogram, RunReport, read_events

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_report.txt")


def synthetic_events() -> list[dict]:
    """A tiny fixed run: every value deterministic, for the golden test."""
    return [
        {"kind": "run.start", "ts": 0.0, "backend": "serial"},
        {
            "kind": "pipeline.start",
            "ts": 0.1,
            "pipeline": "demo",
            "processes": ["Align", "Call"],
        },
        {"kind": "process.start", "ts": 0.1, "process": "Align"},
        {
            "kind": "stage.end",
            "ts": 0.4,
            "stage_id": 0,
            "name": "shuffle-map:reads",
            "tasks": 4,
            "run_time": 2.0,
            "disk_blocked": 0.5,
            "network_blocked": 0.25,
            "gc_time": 0.125,
            "shuffle_bytes_read": 0,
            "shuffle_bytes_written": 4096,
            "records_read": 100,
            "records_written": 100,
        },
        {"kind": "process.end", "ts": 0.5, "process": "Align", "elapsed": 0.4},
        {"kind": "process.skipped", "ts": 0.5, "process": "Call"},
        {
            "kind": "stage.end",
            "ts": 0.9,
            "stage_id": 1,
            "name": "result:calls",
            "tasks": 2,
            "run_time": 2.0,
            "disk_blocked": 0.1,
            "network_blocked": 0.05,
            "gc_time": 0.0,
            "shuffle_bytes_read": 4096,
            "shuffle_bytes_written": 0,
            "records_read": 100,
            "records_written": 10,
        },
        {
            "kind": "task.failure",
            "ts": 0.7,
            "stage_kind": "result",
            "partition": 1,
            "attempt": 0,
            "error_type": "ValueError",
            "backoff": 0.05,
        },
        {
            "kind": "pipeline.end",
            "ts": 1.0,
            "pipeline": "demo",
            "elapsed": 0.9,
            "executed": ["Align"],
            "skipped": ["Call"],
        },
        {
            "kind": "telemetry",
            "ts": 1.0,
            "counters": {
                "journal.restored": 1,
                "quarantine.fastq": 3,
                "likelihood_cache.hits": 10,
            },
            "gauges": {"likelihood_cache.entries": 5},
        },
        {"kind": "run.end", "ts": 1.1, "elapsed": 1.1},
    ]


class TestFromEvents:
    def test_derived_numbers(self):
        report = RunReport.from_events(synthetic_events())
        assert report.pipeline_name == "demo"
        assert report.elapsed == 0.9
        assert report.task_count == 6
        assert report.core_seconds == 4.0
        assert report.shuffle_bytes == 4096
        disk, net = report.blocked_fractions()
        assert disk == (0.5 + 0.1) / 4.0
        assert net == (0.25 + 0.05) / 4.0
        assert report.failures == [("result", 1, "ValueError")]
        assert [p.name for p in report.processes] == ["Align", "Call"]
        assert report.processes[1].skipped

    def test_summary_line(self):
        report = RunReport.from_events(synthetic_events())
        assert report.summary_line() == (
            "gpf run: 6 task(s), 1 retried failure(s), 3 quarantined "
            "record(s), 1 process(es) restored from journal"
        )

    def test_golden_text_render(self):
        report = RunReport.from_events(synthetic_events())
        with open(GOLDEN, "r", encoding="utf-8") as fh:
            expected = fh.read()
        assert report.render_text() == expected

    def test_to_json_round_trips_through_json(self):
        report = RunReport.from_events(synthetic_events())
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["pipeline"] == "demo"
        assert payload["totals"]["tasks"] == 6
        assert payload["blocked_fractions"]["disk"] > 0
        assert payload["counters"]["journal.restored"] == 1
        assert len(payload["stages"]) == 2

    def test_empty_event_list_renders(self):
        report = RunReport.from_events([])
        text = report.render_text()
        assert "no pipeline information" in text
        assert report.summary_line().startswith("gpf run: 0 task(s)")

    def test_observability_event_kinds_tolerated(self):
        # The new live-plane kinds must not derail report building.
        events = synthetic_events()
        events.insert(
            3,
            {
                "kind": "profile.sample",
                "ts": 0.2,
                "stacks": {"stage:s;mod.fn": 7},
                "samples": 7,
            },
        )
        events.insert(
            4,
            {
                "kind": "progress.stage",
                "ts": 0.3,
                "stage_id": 0,
                "name": "shuffle-map:reads",
                "tasks_done": 2,
                "tasks_total": 4,
            },
        )
        report = RunReport.from_events(events)
        assert report.task_count == 6
        assert report.pipeline_name == "demo"

    def test_unknown_future_event_kinds_tolerated(self):
        # Forward compatibility: a report reader from this version must
        # survive logs written by a future one.
        events = synthetic_events()
        events.insert(2, {"kind": "hologram.render", "ts": 0.15, "qubits": 9})
        report = RunReport.from_events(events)
        assert report.task_count == 6

    def test_histograms_from_telemetry_event(self):
        h = Histogram()
        for v in (0.01, 0.2):
            h.observe(v)
        events = synthetic_events()
        for event in events:
            if event["kind"] == "telemetry":
                event["histograms"] = {"task.seconds": h.snapshot()}
        report = RunReport.from_events(events)
        assert "task.seconds" in report.histograms
        text = report.render_text()
        assert "Latency distributions" in text
        assert "task.seconds" in text
        assert report.to_json()["histograms"]["task.seconds"]["count"] == 2


class TestTornAndDirtyLogs:
    def test_torn_last_line_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [json.dumps(e) for e in synthetic_events()]
        # A crash mid-write leaves a torn final line.
        path.write_text("\n".join(lines) + '\n{"kind": "run.en')
        events = read_events(str(path))
        report = RunReport.from_events(events)
        assert report.task_count == 6

    def test_torn_line_with_new_kinds_tolerated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = synthetic_events()
        events.append(
            {"kind": "profile.sample", "ts": 1.2, "stacks": {"a": 1}, "samples": 1}
        )
        lines = [json.dumps(e) for e in events]
        path.write_text("\n".join(lines) + '\n{"kind": "progress.st')
        report = RunReport.from_events(read_events(str(path)))
        assert report.pipeline_name == "demo"


class TestFromContextMatchesFromEvents:
    def test_traced_run_agrees(self, tmp_path):
        config = EngineConfig(
            spill_dir=str(tmp_path / "spill"), trace_dir=str(tmp_path / "trace")
        )
        ctx = GPFContext(config)
        try:
            data = [(i % 3, i) for i in range(30)]
            ctx.parallelize(data, 3).group_by_key().collect()
            live = RunReport.from_context(ctx)
        finally:
            ctx.stop()
        saved = RunReport.from_events(
            read_events(str(tmp_path / "trace" / "events.jsonl"))
        )
        assert [s.stage_id for s in saved.stages] == [
            s.stage_id for s in live.stages
        ]
        assert [s.tasks for s in saved.stages] == [s.tasks for s in live.stages]
        assert [s.shuffle_bytes_written for s in saved.stages] == [
            s.shuffle_bytes_written for s in live.stages
        ]
        assert saved.counters == live.counters
        assert saved.task_count == live.task_count

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    TelemetryRegistry,
    fold_gauges,
    fold_histograms,
    merge_histogram_snapshots,
    register_gauge_fold,
)


class TestBuckets:
    def test_log_spaced_four_per_decade(self):
        for lo, hi in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]):
            assert hi / lo == pytest.approx(10 ** 0.25, rel=1e-6)

    def test_covers_microseconds_to_hours(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_BUCKETS[-1] >= 3600.0


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.006)
        assert h.mean == pytest.approx(0.002)

    def test_negative_observations_clamp_to_zero(self):
        h = Histogram()
        h.observe(-1.0)
        assert h.count == 1
        assert h.sum == 0.0
        assert h.quantile(0.5) >= 0.0

    def test_quantiles_bracket_true_values(self):
        h = Histogram()
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s uniform
        for v in values:
            h.observe(v)
        # Log-spaced buckets: each estimate is within one bucket ratio
        # of the true quantile.
        ratio = 10 ** 0.25
        for q, true in ((0.5, 0.5), (0.95, 0.95), (0.99, 0.99)):
            est = h.quantile(q)
            assert true / ratio <= est <= true * ratio

    def test_percentiles_keys(self):
        h = Histogram()
        h.observe(0.01)
        assert set(h.percentiles()) == {"p50", "p95", "p99"}

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram()
        huge = DEFAULT_BUCKETS[-1] * 100
        h.observe(huge)
        assert h.quantile(0.99) == pytest.approx(huge)

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_merge_is_bucketwise(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.01):
            a.observe(v)
        for v in (0.1, 1.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.sum == pytest.approx(1.111)

    def test_snapshot_round_trip(self):
        h = Histogram()
        for v in (0.0005, 0.02, 3.0, 1e6):
            h.observe(v)
        clone = Histogram.from_snapshot(h.snapshot())
        assert clone.count == h.count
        assert clone.sum == pytest.approx(h.sum)
        assert clone.bucket_counts() == h.bucket_counts()
        assert clone.quantile(0.95) == pytest.approx(h.quantile(0.95))

    def test_from_snapshot_tolerates_junk(self):
        h = Histogram.from_snapshot({"buckets": {"not-an-int": 3}, "count": "x"})
        assert h.count == 0

    def test_cumulative_buckets_end_at_inf_total(self):
        h = Histogram()
        for v in (0.001, 0.002, 5.0):
            h.observe(v)
        cumulative = h.cumulative_buckets()
        les = [le for le, _ in cumulative]
        counts = [c for _, c in cumulative]
        assert les[-1] == math.inf
        assert counts[-1] == 3
        assert counts == sorted(counts)

    def test_merge_snapshots_module_helper(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(0.02)
        merged = merge_histogram_snapshots([a.snapshot(), b.snapshot()])
        assert Histogram.from_snapshot(merged).count == 2


class TestTelemetryObserve:
    def test_observe_feeds_named_histogram(self):
        reg = TelemetryRegistry()
        reg.observe("task.seconds", 0.5)
        reg.observe("task.seconds", 1.5)
        assert reg.histogram("task.seconds").count == 2
        snap = reg.snapshot()
        assert "task.seconds" in snap["histograms"]

    def test_reset_clears_histograms(self):
        reg = TelemetryRegistry()
        reg.observe("x", 1.0)
        reg.reset()
        assert reg.snapshot()["histograms"] == {}


class TestGaugeFold:
    def test_point_in_time_gauges_are_not_summed(self):
        # The regression this PR pins: compression_ratio is a ratio, not
        # a volume — two workers at 2.0x must fold to 2.0x, not 4.0x.
        worker = {
            "blockmanager.compressed_bytes": 100,
            "blockmanager.logical_bytes": 200,
            "blockmanager.compression_ratio": 2.0,
        }
        folded = fold_gauges([dict(worker), dict(worker)])
        assert folded["blockmanager.compression_ratio"] == pytest.approx(2.0)
        assert folded["blockmanager.compressed_bytes"] == 200

    def test_derived_ratio_recomputed_from_folded_bytes(self):
        a = {
            "blockmanager.compressed_bytes": 100,
            "blockmanager.logical_bytes": 300,
            "blockmanager.compression_ratio": 3.0,
        }
        b = {
            "blockmanager.compressed_bytes": 300,
            "blockmanager.logical_bytes": 300,
            "blockmanager.compression_ratio": 1.0,
        }
        folded = fold_gauges([a, b])
        # Fleet-wide truth: 600 logical over 400 compressed = 1.5x, which
        # neither sum (4.0) nor max (3.0) of the per-worker ratios gives.
        assert folded["blockmanager.compression_ratio"] == pytest.approx(1.5)

    def test_derived_falls_back_to_max_without_inputs(self):
        folded = fold_gauges([{"blockmanager.compression_ratio": 2.5}, {"blockmanager.compression_ratio": 1.5}])
        assert folded["blockmanager.compression_ratio"] == pytest.approx(2.5)

    def test_registered_policy_applies(self):
        register_gauge_fold("test.high_water", "max")
        folded = fold_gauges([{"test.high_water": 7}, {"test.high_water": 3}])
        assert folded["test.high_water"] == 7

    def test_default_policy_sums(self):
        folded = fold_gauges([{"bytes": 1}, {"bytes": 2}])
        assert folded["bytes"] == 3


class TestFoldHistograms:
    def test_same_name_merges_across_workers(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(0.02)
        folded = fold_histograms(
            [{"task.seconds": a.snapshot()}, {"task.seconds": b.snapshot()}]
        )
        assert Histogram.from_snapshot(folded["task.seconds"]).count == 2

    def test_disjoint_names_both_survive(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(0.02)
        folded = fold_histograms([{"one": a.snapshot()}, {"two": b.snapshot()}])
        assert set(folded) == {"one", "two"}

"""Overhead guard: untraced runs must pay (almost) nothing for repro.obs.

The default context keeps a NoopTracer and an EventBus with no
subscribers; both hot paths — ``events.publish`` and ``tracer.span`` —
must stay trivially cheap.  The bounds are deliberately generous (CI
machines vary wildly); what they guard against is an accidental O(work)
regression like formatting event payloads before the subscriber check.
"""

import time

from repro.obs import EventBus, NoopTracer


def test_inactive_publish_100k_is_fast():
    bus = EventBus()
    start = time.perf_counter()
    for i in range(100_000):
        bus.publish("task.end", partition=i, run_time=0.1)
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"inactive publish too slow: {elapsed:.3f}s"


def test_noop_span_100k_is_fast():
    tracer = NoopTracer()
    start = time.perf_counter()
    for i in range(100_000):
        with tracer.span("task", kind="task", partition=i):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0, f"noop span too slow: {elapsed:.3f}s"
    assert tracer.finished_spans() == []


def test_default_context_is_untraced(ctx):
    assert not ctx.tracer.enabled
    assert not ctx.events.active
    # A real job through the scheduler publishes nothing and records no spans.
    ctx.parallelize(range(10), 2).collect()
    assert ctx.tracer.finished_spans() == []

import json
import os
import threading
import time

from repro.engine.context import EngineConfig, GPFContext
from repro.obs import (
    EventBus,
    SamplingProfiler,
    Tracer,
    fold_folded_text,
    top_functions_from_stacks,
    validate_events,
)


def _burn(stop: threading.Event) -> None:
    """A busy loop with a recognizable frame for the sampler to catch."""
    while not stop.is_set():
        sum(i * i for i in range(500))


class TestSampling:
    def test_samples_busy_thread_with_qualified_names(self):
        profiler = SamplingProfiler(interval=0.001)
        stop = threading.Event()
        worker = threading.Thread(target=_burn, args=(stop,), name="burner")
        worker.start()
        profiler.start()
        time.sleep(0.2)
        profiler.stop()
        stop.set()
        worker.join()
        assert profiler.samples > 0
        folded = profiler.folded()
        burn_stacks = [s for s in folded if "_burn" in s]
        assert burn_stacks, folded
        # Unspanned threads root at thread:<name>.
        assert any(s.startswith("thread:burner;") for s in burn_stacks)

    def test_span_attribution_prefixes_stacks(self):
        tracer = Tracer()
        profiler = SamplingProfiler(
            interval=0.001, tracer_provider=lambda: tracer
        )
        profiler.start()
        with tracer.span("s1", kind="stage"):
            deadline = time.monotonic() + 0.2
            while time.monotonic() < deadline:
                sum(i * i for i in range(500))
        profiler.stop()
        attributed = [s for s in profiler.folded() if s.startswith("stage:s1;")]
        assert attributed, profiler.folded()

    def test_flush_publishes_schema_valid_delta_events(self):
        events = []
        bus = EventBus()
        bus.subscribe(events.append)
        profiler = SamplingProfiler(interval=0.001, events=bus)
        profiler.start()
        time.sleep(0.05)
        profiler.stop()  # stop flushes
        samples = [e for e in events if e["kind"] == "profile.sample"]
        assert samples
        assert validate_events(samples) == []
        # Deltas: replaying every event reconstructs the full profile.
        replayed = sum(e["samples"] for e in samples)
        assert replayed == profiler.samples

    def test_merge_counts_accepts_worker_stacks(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.merge_counts({"worker:123;mod.fn": 4})
        assert profiler.folded()["worker:123;mod.fn"] == 4
        assert profiler.samples == 4

    def test_reset_clears_everything(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.merge_counts({"a;b": 2})
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.folded() == {}

    def test_folded_text_format(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.merge_counts({"a;b": 2, "c": 1})
        lines = profiler.folded_text().splitlines()
        assert lines[0] == "a;b 2"
        assert lines[1] == "c 1"


class TestHelpers:
    def test_top_functions_aggregates_by_leaf(self):
        stacks = {"a;hot": 3, "b;hot": 2, "a;cold": 1}
        assert top_functions_from_stacks(stacks, 2) == [("hot", 5), ("cold", 1)]

    def test_fold_folded_text_merges_maps(self):
        text = fold_folded_text([{"a;b": 1}, {"a;b": 2, "c": 1}])
        assert "a;b 3" in text.splitlines()


class TestProfiledContext:
    def test_profiled_traced_run_writes_artifacts(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        config = EngineConfig(
            spill_dir=str(tmp_path / "spill"),
            trace_dir=trace_dir,
            profile_interval=0.001,
        )
        ctx = GPFContext(config)
        try:
            data = [(i % 4, i) for i in range(4000)]
            ctx.parallelize(data, 4).map_values(
                lambda v: sum(j * j for j in range(v % 97))
            ).group_by_key().collect()
        finally:
            ctx.stop()
        folded_path = os.path.join(trace_dir, "profile.folded")
        assert os.path.exists(folded_path)
        with open(folded_path) as fh:
            folded = fh.read()
        assert folded.strip(), "profiled run produced no samples"
        with open(os.path.join(trace_dir, "trace.json")) as fh:
            trace = json.load(fh)
        assert any(e.get("ph") == "P" for e in trace["traceEvents"])

    def test_unprofiled_context_has_no_profiler(self, tmp_path):
        ctx = GPFContext(EngineConfig(spill_dir=str(tmp_path / "spill")))
        try:
            assert ctx.profiler is None
        finally:
            ctx.stop()

"""The live progress plane: JobProgress folding, the endpoint, gpf top."""

import threading

import pytest

from repro.serve import JobProgress, ServiceClient, ServiceError, start_http_server
from tests.serve.conftest import GatedRunner, make_service


def _stage_event(stage_id=0, done=0, total=4, **extra) -> dict:
    event = {
        "kind": "progress.stage",
        "ts": 0.0,
        "stage_id": stage_id,
        "name": f"stage-{stage_id}",
        "tasks_done": done,
        "tasks_total": total,
    }
    event.update(extra)
    return event


class TestJobProgress:
    def test_folds_stage_events(self):
        tracker = JobProgress("j1")
        tracker({"kind": "pipeline.start", "ts": 0, "pipeline": "wgs",
                 "processes": ["Align", "Call"]})
        tracker({"kind": "process.start", "ts": 0, "process": "Align"})
        tracker(_stage_event(done=0))
        tracker(_stage_event(done=2, bytes=100, eta_seconds=1.5))
        snap = tracker.snapshot()
        assert snap["pipeline"] == "wgs"
        assert snap["current_process"] == "Align"
        assert snap["tasks_done"] == 2
        assert snap["tasks_total"] == 4
        assert snap["eta_seconds"] == pytest.approx(1.5)

    def test_monotonic_guard_against_out_of_order_delivery(self):
        tracker = JobProgress("j1")
        tracker(_stage_event(done=3))
        tracker(_stage_event(done=2))  # late arrival must not regress
        assert tracker.snapshot()["tasks_done"] == 3

    def test_stage_end_finishes_and_zeroes_eta(self):
        tracker = JobProgress("j1")
        tracker(_stage_event(done=4, eta_seconds=2.0))
        tracker({"kind": "stage.end", "ts": 1.0, "stage_id": 0})
        snap = tracker.snapshot()
        assert snap["stages"][0]["finished"]
        assert snap["eta_seconds"] is None  # no active stages left

    def test_profile_samples_become_hot_functions(self):
        tracker = JobProgress("j1", hot_functions=2)
        tracker({"kind": "profile.sample", "ts": 0,
                 "stacks": {"a;hot": 5, "b;hot": 3, "a;cold": 1}, "samples": 9})
        snap = tracker.snapshot()
        assert snap["samples"] == 9
        assert snap["hot_functions"][0] == {"function": "hot", "samples": 8}

    def test_process_lifecycle_counted(self):
        tracker = JobProgress("j1")
        tracker({"kind": "pipeline.start", "ts": 0, "pipeline": "p",
                 "processes": ["A", "B"]})
        tracker({"kind": "process.start", "ts": 0, "process": "A"})
        tracker({"kind": "process.end", "ts": 1, "process": "A", "elapsed": 1.0})
        tracker({"kind": "process.skipped", "ts": 1, "process": "B"})
        snap = tracker.snapshot()
        assert snap["processes_done"] == 2
        assert snap["current_process"] is None

    def test_unknown_events_ignored(self):
        tracker = JobProgress("j1")
        tracker({"kind": "hologram.render", "ts": 0})
        assert tracker.snapshot()["tasks_done"] == 0


class TestProgressEndpoint:
    @pytest.fixture
    def stack(self, tmp_path):
        runner = GatedRunner()
        service = make_service(tmp_path / "state", runner=runner, workers=1)
        service.start()
        server = start_http_server(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        yield service, client, runner
        runner.gate.set()
        server.shutdown()
        service.drain()

    SPEC = {"reference": "r.fa", "fastq1": "a.fq", "fastq2": "b.fq"}

    def test_unknown_job_is_404(self, stack):
        _, client, _ = stack
        with pytest.raises(ServiceError) as err:
            client.progress("nope")
        assert err.value.status == 404

    def test_running_job_has_progress_document(self, stack):
        service, client, runner = stack
        job = client.submit(self.SPEC)
        assert runner.started.wait(5.0)
        doc = client.progress(job["id"])
        assert doc["job_id"] == job["id"]
        assert doc["state"] == "running"
        assert "stages" in doc and "hot_functions" in doc
        runner.gate.set()
        client.wait(job["id"], timeout=10.0)

    def test_queued_job_progress_is_empty_but_served(self, stack):
        service, client, runner = stack
        first = client.submit(self.SPEC)
        assert runner.started.wait(5.0)
        second = client.submit(self.SPEC)  # queued behind the gated job
        doc = client.progress(second["id"])
        assert doc["state"] == "queued"
        assert doc["tasks_done"] == 0
        runner.gate.set()
        client.wait(first["id"], timeout=10.0)
        client.wait(second["id"], timeout=10.0)

    def test_finished_job_keeps_final_snapshot(self, stack):
        service, client, runner = stack
        runner.gate.set()
        job = client.submit(self.SPEC)
        done = client.wait(job["id"], timeout=10.0)
        assert done["state"] == "succeeded"
        doc = client.progress(job["id"])
        assert doc["state"] == "succeeded"


class TestWaitOnProgress:
    def test_callback_sees_snapshots_and_errors_are_swallowed(self, tmp_path):
        runner = GatedRunner()
        service = make_service(tmp_path / "state", runner=runner, workers=1)
        service.start()
        server = start_http_server(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        try:
            seen = []

            def on_progress(doc):
                seen.append(doc)
                if len(seen) >= 2:
                    runner.gate.set()

            job = client.submit(TestProgressEndpoint.SPEC)
            done = client.wait(
                job["id"], timeout=15.0, poll=0.05, on_progress=on_progress
            )
            assert done["state"] == "succeeded"
            assert seen, "on_progress never fired"
            assert all(d["job_id"] == job["id"] for d in seen)
        finally:
            runner.gate.set()
            server.shutdown()
            service.drain()

    def test_callback_exceptions_do_not_break_wait(self, tmp_path):
        runner = GatedRunner()
        service = make_service(tmp_path / "state", runner=runner, workers=1)
        service.start()
        server = start_http_server(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        try:
            fired = threading.Event()

            def bad_callback(doc):
                fired.set()
                runner.gate.set()
                raise RuntimeError("render crashed")

            job = client.submit(TestProgressEndpoint.SPEC)
            with pytest.raises(RuntimeError):
                client.wait(
                    job["id"], timeout=15.0, poll=0.05, on_progress=bad_callback
                )
            assert fired.is_set()
        finally:
            runner.gate.set()
            server.shutdown()
            service.drain()

"""Unit tests: the Job state machine and the bounded priority queue."""

import json
import threading

import pytest

from repro.serve.jobs import (
    ADMITTED,
    CANCELLED,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    InvalidTransitionError,
    Job,
    JobQueue,
    QueueClosedError,
    QueueFullError,
)


class TestJobStateMachine:
    def test_happy_path_stamps_timestamps(self):
        job = Job(spec={})
        assert job.state == QUEUED and job.submitted_at > 0
        job.transition(ADMITTED)
        assert job.admitted_at is not None
        job.transition(RUNNING)
        assert job.started_at is not None
        job.transition(SUCCEEDED)
        assert job.finished_at is not None and job.is_terminal

    @pytest.mark.parametrize(
        "path,bad",
        [
            ((), RUNNING),  # queued cannot jump straight to running
            ((), SUCCEEDED),
            ((ADMITTED, RUNNING, SUCCEEDED), RUNNING),  # terminal is final
            ((ADMITTED, RUNNING, FAILED), QUEUED),
            ((ADMITTED, RUNNING, CANCELLED), ADMITTED),
        ],
    )
    def test_illegal_transitions_rejected(self, path, bad):
        job = Job(spec={})
        for state in path:
            job.transition(state)
        with pytest.raises(InvalidTransitionError):
            job.transition(bad)

    def test_setup_failure_edge_admitted_to_failed(self):
        job = Job(spec={})
        job.transition(ADMITTED)
        job.transition(FAILED)  # setup blew up before the pipeline started
        assert job.is_terminal and job.finished_at is not None

    def test_unknown_state_rejected(self):
        with pytest.raises(InvalidTransitionError):
            Job(spec={}).transition("paused")

    def test_requeue_resets_run_stamps_and_counts_attempts(self):
        job = Job(spec={})
        job.transition(ADMITTED)
        job.transition(RUNNING)
        job.worker = 3
        job.requeue()
        assert job.state == QUEUED
        assert job.attempts == 2
        assert job.admitted_at is None and job.started_at is None
        assert job.worker is None

    def test_requeue_from_terminal_rejected(self):
        job = Job(spec={})
        job.transition(CANCELLED)
        with pytest.raises(InvalidTransitionError):
            job.requeue()

    def test_json_round_trip(self):
        job = Job(spec={"reference": "r.fa"}, priority=7)
        job.transition(ADMITTED)
        job.transition(RUNNING)
        job.transition(FAILED)
        job.error = "boom"
        job.result = {"records": 3}
        clone = Job.from_json(json.loads(json.dumps(job.to_json())))
        assert clone.to_json() == job.to_json()


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue(depth=8)
        low1 = Job(spec={}, priority=0)
        low2 = Job(spec={}, priority=0)
        high = Job(spec={}, priority=5)
        for job in (low1, low2, high):
            queue.push(job)
        order = [queue.pop(0.1).id for _ in range(3)]
        assert order == [high.id, low1.id, low2.id]

    def test_depth_bound_is_admission_control(self):
        queue = JobQueue(depth=2)
        queue.push(Job(spec={}))
        queue.push(Job(spec={}))
        with pytest.raises(QueueFullError):
            queue.push(Job(spec={}))
        assert len(queue) == 2

    def test_force_push_bypasses_depth_for_recovery(self):
        queue = JobQueue(depth=1)
        queue.push(Job(spec={}))
        queue.push(Job(spec={}), force=True)
        assert len(queue) == 2

    def test_cancel_removes_queued_entry(self):
        queue = JobQueue(depth=4)
        keep = Job(spec={})
        drop = Job(spec={}, priority=9)
        queue.push(keep)
        queue.push(drop)
        assert queue.cancel(drop.id)
        assert not queue.cancel(drop.id)  # already cancelled
        assert not queue.cancel("missing")
        assert len(queue) == 1
        assert queue.pop(0.1).id == keep.id
        assert queue.pop(0.05) is None

    def test_cancelled_entries_free_queue_capacity(self):
        queue = JobQueue(depth=2)
        victim = Job(spec={})
        queue.push(victim)
        queue.push(Job(spec={}))
        queue.cancel(victim.id)
        queue.push(Job(spec={}))  # must not raise

    def test_pop_times_out_empty(self):
        assert JobQueue(depth=1).pop(timeout=0.05) is None

    def test_pop_blocks_until_push(self):
        queue = JobQueue(depth=1)
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.pop(5.0)))
        thread.start()
        job = Job(spec={})
        queue.push(job)
        thread.join(timeout=5.0)
        assert results and results[0].id == job.id

    def test_closed_queue_refuses_push_with_typed_error(self):
        queue = JobQueue(depth=2)
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.push(Job(spec={}))

    def test_closed_queue_never_hands_out_entries(self):
        # drain() contract: queued jobs stay queued for the next
        # instance's recovery; a closed queue must not start new work.
        queue = JobQueue(depth=2)
        queue.push(Job(spec={}))
        queue.close()
        assert queue.pop(timeout=0.05) is None
        assert len(queue) == 1

    def test_close_wakes_blocked_pop(self):
        queue = JobQueue(depth=1)
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.pop(None)))
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_snapshot_is_pop_order(self):
        queue = JobQueue(depth=4)
        a = Job(spec={}, priority=1)
        b = Job(spec={}, priority=3)
        queue.push(a)
        queue.push(b)
        assert [j.id for j in queue.snapshot()] == [b.id, a.id]


class TestMonotonicDurations:
    """queue_seconds/run_seconds come from time.monotonic(), so a wall
    clock stepping backwards mid-job can never make them negative."""

    def test_happy_path_stamps_durations(self):
        job = Job(spec={})
        assert job.queue_seconds is None and job.run_seconds is None
        job.transition(ADMITTED)
        assert job.queue_seconds is not None and job.queue_seconds >= 0
        job.transition(RUNNING)
        assert job.run_seconds is None  # still running
        job.transition(SUCCEEDED)
        assert job.run_seconds is not None and job.run_seconds >= 0

    def test_durations_survive_json_round_trip(self):
        job = Job(spec={"x": 1})
        job.transition(ADMITTED)
        job.transition(RUNNING)
        job.transition(SUCCEEDED)
        clone = Job.from_json(json.loads(json.dumps(job.to_json())))
        assert clone.queue_seconds == job.queue_seconds
        assert clone.run_seconds == job.run_seconds

    def test_requeue_resets_durations(self):
        job = Job(spec={})
        job.transition(ADMITTED)
        job.transition(RUNNING)
        job.requeue()
        assert job.queue_seconds is None and job.run_seconds is None
        # The queue wait restarts from the requeue, not the original
        # submission — a recovered job isn't "queued" across the crash.
        job.transition(ADMITTED)
        assert job.queue_seconds is not None and job.queue_seconds >= 0

    def test_recovered_job_without_marks_is_robust(self):
        # from_json builds a Job whose monotonic marks belong to *this*
        # process; terminal transitions must not blow up or fabricate a
        # run duration when the job never ran here.
        data = Job(spec={}).to_json()
        data["state"] = ADMITTED
        recovered = Job.from_json(data)
        recovered.transition(FAILED)
        assert recovered.run_seconds is None

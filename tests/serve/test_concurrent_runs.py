"""Satellite: concurrent pipelines in one process are safe.

Two :class:`GPFContext`\\ s running full WGS pipelines on parallel
threads — the serve worker pool's steady state — must produce outputs
byte-identical to serial runs, and the process-global pieces (the
refcounted GC-timer hook, each context's own ``MetricsRegistry``) must
survive the overlap.
"""

import gc
import threading

from repro.engine.context import EngineConfig, GPFContext
from repro.engine.metrics import GC_TIMER
from repro.formats.vcf import write_vcf
from repro.wgs import build_wgs_pipeline


def _run_wgs(tmp_path, tag, reference, known_sites, pairs, barrier=None):
    """One full WGS run in its own context; returns (vcf_bytes, stages)."""
    config = EngineConfig(
        default_parallelism=3, spill_dir=str(tmp_path / f"spill_{tag}")
    )
    with GPFContext(config) as ctx:
        if barrier is not None:
            barrier.wait(timeout=30.0)  # maximize overlap
        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(pairs, 3),
            known_sites,
            partition_length=4_000,
        )
        handles.pipeline.run()
        records = sorted(handles.vcf.rdd.collect(), key=lambda r: r.key())
        path = str(tmp_path / f"{tag}.vcf")
        write_vcf(handles.vcf.header, records, path)
        stage_count = ctx.metrics.job().stage_count
    with open(path, "rb") as fh:
        return fh.read(), stage_count


class TestConcurrentContexts:
    def test_parallel_runs_byte_identical_to_serial(
        self, tmp_path, reference, known_sites, read_pairs
    ):
        pairs = read_pairs[:60]
        serial_a, stages_a = _run_wgs(
            tmp_path, "serial_a", reference, known_sites, pairs
        )
        serial_b, stages_b = _run_wgs(
            tmp_path, "serial_b", reference, known_sites, pairs
        )
        assert serial_a == serial_b  # the pipeline itself is deterministic
        assert stages_a == stages_b

        refs_before = GC_TIMER._refs
        barrier = threading.Barrier(2)
        results: dict[str, tuple[bytes, int]] = {}
        errors: list[BaseException] = []

        def worker(tag: str) -> None:
            try:
                results[tag] = _run_wgs(
                    tmp_path, tag, reference, known_sites, pairs, barrier
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tag,))
            for tag in ("overlap_a", "overlap_b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        assert not errors, errors

        # Byte-identical to the serial reference runs.
        assert results["overlap_a"][0] == serial_a
        assert results["overlap_b"][0] == serial_a
        # Each context's MetricsRegistry saw a complete, uncorrupted run.
        assert results["overlap_a"][1] == stages_a
        assert results["overlap_b"][1] == stages_a
        # The refcounted gc hook balanced: both acquires were released.
        assert GC_TIMER._refs == refs_before
        if refs_before == 0:
            assert GC_TIMER._callback not in gc.callbacks

    def test_gc_timer_hook_survives_overlapping_contexts(self):
        refs_before = GC_TIMER._refs
        ctx_a = GPFContext(EngineConfig(default_parallelism=2))
        ctx_b = GPFContext(EngineConfig(default_parallelism=2))
        try:
            assert GC_TIMER._refs == refs_before + 2
            assert GC_TIMER.installed
        finally:
            ctx_a.stop()
            assert GC_TIMER.installed  # ctx_b still holds a reference
            ctx_b.stop()
        assert GC_TIMER._refs == refs_before

"""PipelineService: admission, cancellation, durability, crash resume."""

import json
import os
import threading
import time

import pytest

from repro.engine.journal import job_journal_dir
from repro.serve import (
    CANCELLED,
    FAILED,
    QUEUED,
    SUCCEEDED,
    InvalidSpecError,
    Job,
    PipelineService,
    QueueFullError,
    ServiceDrainingError,
    validate_spec,
)
from tests.serve.conftest import GatedRunner, instant_runner, make_service


class TestSpecValidation:
    def test_required_path_keys(self):
        with pytest.raises(InvalidSpecError):
            validate_spec({"reference": "r.fa", "fastq1": "a.fq"})
        with pytest.raises(InvalidSpecError):
            validate_spec({"reference": 3, "fastq1": "a", "fastq2": "b"})
        with pytest.raises(InvalidSpecError):
            validate_spec([1, 2, 3])

    def test_numeric_knobs(self):
        spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
        with pytest.raises(InvalidSpecError):
            validate_spec(spec | {"partitions": 0})
        with pytest.raises(InvalidSpecError):
            validate_spec(spec | {"partition_length": "wide"})
        validate_spec(spec | {"partitions": 2, "partition_length": 1000})

    def test_timeout_knob(self):
        spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
        for bad in ("soon", -1, 0, True, [5]):
            with pytest.raises(InvalidSpecError):
                validate_spec(spec | {"timeout": bad})
        validate_spec(spec | {"timeout": 1.5})
        validate_spec(spec | {"timeout": 30})
        validate_spec(spec | {"timeout": None})  # explicit "no deadline"


class TestAdmissionControl:
    def test_queue_full_is_typed_and_running_job_unaffected(self, tmp_path):
        runner = GatedRunner()
        with make_service(tmp_path / "s", runner=runner, workers=1, depth=2) as svc:
            spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
            running = svc.submit(spec)
            assert runner.started.wait(5.0)
            svc.submit(spec)
            svc.submit(spec)
            with pytest.raises(QueueFullError):
                svc.submit(spec)
            assert svc.metrics()["service"]["jobs_rejected"] == 1
            # the running job kept running through the rejection
            assert svc.get(running.id).state == "running"
            runner.gate.set()
            assert svc.wait(running.id, timeout=10.0).state == SUCCEEDED

    def test_draining_rejects_submissions(self, tmp_path):
        svc = make_service(tmp_path / "s", runner=instant_runner).start()
        svc.drain()
        with pytest.raises(ServiceDrainingError):
            svc.submit({"reference": "r", "fastq1": "a", "fastq2": "b"})

    def test_submit_losing_race_with_drain_maps_to_draining(self, tmp_path):
        # drain() can close the queue between submit()'s draining check
        # and its push; that window must still surface as the documented
        # 503-shaped error, not a bare ServeError (HTTP 500).
        svc = make_service(tmp_path / "s", runner=instant_runner)
        svc._queue.close()
        with pytest.raises(ServiceDrainingError):
            svc.submit({"reference": "r", "fastq1": "a", "fastq2": "b"})

    def test_drain_leaves_queued_jobs_for_next_instance(self, tmp_path):
        # A worker woken by drain()'s queue close must not start a
        # brand-new job: running jobs finish, queued jobs stay queued.
        runner = GatedRunner()
        svc = make_service(tmp_path / "s", runner=runner, workers=1, depth=4).start()
        spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
        blocker = svc.submit(spec)
        assert runner.started.wait(5.0)
        queued = svc.submit(spec)
        drainer = threading.Thread(target=svc.drain)
        drainer.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not svc._queue._closed:
            time.sleep(0.005)
        assert svc._queue._closed
        runner.gate.set()
        drainer.join(timeout=10.0)
        assert not drainer.is_alive()
        assert svc.get(blocker.id).state == SUCCEEDED
        assert svc.get(queued.id).state == QUEUED
        assert runner.calls == [blocker.id]

    def test_duplicate_job_id_rejected(self, tmp_path):
        with make_service(tmp_path / "s", runner=instant_runner) as svc:
            spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
            svc.submit(spec, job_id="same")
            with pytest.raises(InvalidSpecError):
                svc.submit(spec, job_id="same")


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, tmp_path):
        runner = GatedRunner()
        with make_service(tmp_path / "s", runner=runner, workers=1, depth=4) as svc:
            spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
            blocker = svc.submit(spec)
            assert runner.started.wait(5.0)
            queued = svc.submit(spec)
            cancelled = svc.cancel(queued.id)
            assert cancelled.state == CANCELLED
            runner.gate.set()
            svc.wait(blocker.id, timeout=10.0)
        assert runner.calls == [blocker.id]

    def test_cancel_running_job_is_cooperative(self, tmp_path):
        runner = GatedRunner()
        with make_service(tmp_path / "s", runner=runner, workers=1) as svc:
            job = svc.submit({"reference": "r", "fastq1": "a", "fastq2": "b"})
            assert runner.started.wait(5.0)
            svc.cancel(job.id)
            done = svc.wait(job.id, timeout=10.0)
            assert done.state == CANCELLED

    def test_job_deadline_fails_the_job(self, tmp_path):
        runner = GatedRunner()
        with make_service(tmp_path / "s", runner=runner, workers=1) as svc:
            job = svc.submit(
                {"reference": "r", "fastq1": "a", "fastq2": "b", "timeout": 0.1}
            )
            done = svc.wait(job.id, timeout=10.0)
            assert done.state == FAILED
            assert "deadline" in done.error


class TestWorkerIsolation:
    def test_recovered_poison_timeout_fails_job_not_worker(self, tmp_path):
        # The review scenario: a job log carries a spec with a
        # non-numeric timeout (validate_spec never saw it — recovery
        # requeues blindly).  It must fail that one job, not kill the
        # worker thread and persist as a restart-surviving poison pill.
        state = tmp_path / "state"
        os.makedirs(state)
        poison = Job(
            spec={"reference": "r", "fastq1": "a", "fastq2": "b", "timeout": "soon"},
            id="poison",
        )
        with open(state / "jobs.jsonl", "w", encoding="utf-8") as fh:
            fh.write(json.dumps(poison.to_json()) + "\n")
        with make_service(state, runner=instant_runner, workers=1) as svc:
            assert svc.metrics()["service"]["jobs_recovered"] == 1
            done = svc.wait("poison", timeout=10.0)
            assert done.state == FAILED
            assert "ValueError" in done.error
            # every worker survived and the service still serves
            assert all(t.is_alive() for t in svc._threads)
            ok = svc.submit({"reference": "r", "fastq1": "a", "fastq2": "b"})
            assert svc.wait(ok.id, timeout=10.0).state == SUCCEEDED

    def test_worker_survives_exception_escaping_run_job(self, tmp_path):
        # An exception that blows through _run_job's own handlers (here:
        # formatting the job error raises again) reaches the worker
        # loop's guard, which force-fails the job instead of dying.
        class Unprintable(Exception):
            def __str__(self):
                raise RuntimeError("cannot even format this failure")

        def bad_runner(job, ctx, should_cancel, journal_dir):
            raise Unprintable()

        with make_service(tmp_path / "s", runner=bad_runner, workers=1) as svc:
            job = svc.submit({"reference": "r", "fastq1": "a", "fastq2": "b"})
            done = svc.wait(job.id, timeout=10.0)
            assert done.state == FAILED
            assert "cannot even format this failure" in done.error
            assert all(t.is_alive() for t in svc._threads)


class TestDurability:
    def test_restart_requeues_queued_jobs(self, tmp_path):
        state = tmp_path / "state"
        # No workers started: both jobs stay durably queued.
        svc = make_service(state, runner=instant_runner)
        spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
        first = svc.submit(spec, job_id="first")
        second = svc.submit(spec, job_id="second", priority=3)
        svc.drain()
        assert first.state == QUEUED and second.state == QUEUED

        svc2 = make_service(state, runner=instant_runner).start()
        try:
            assert svc2.metrics()["service"]["jobs_recovered"] == 2
            assert svc2.wait("first", timeout=10.0).state == SUCCEEDED
            assert svc2.wait("second", timeout=10.0).state == SUCCEEDED
        finally:
            svc2.drain()

    def test_restart_keeps_terminal_history_without_requeue(self, tmp_path):
        state = tmp_path / "state"
        with make_service(state, runner=instant_runner) as svc:
            spec = {"reference": "r", "fastq1": "a", "fastq2": "b"}
            done = svc.submit(spec)
            assert svc.wait(done.id, timeout=10.0).state == SUCCEEDED
        svc2 = make_service(state, runner=instant_runner)
        assert svc2.get(done.id).state == SUCCEEDED
        assert svc2.metrics()["service"]["jobs_recovered"] == 0
        svc2.drain()

    def test_torn_log_line_is_skipped(self, tmp_path):
        state = tmp_path / "state"
        svc = make_service(state, runner=instant_runner)
        svc.submit({"reference": "r", "fastq1": "a", "fastq2": "b"}, job_id="whole")
        svc.drain()
        with open(state / "jobs.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"id": "torn", "spec": {"refer')  # crash artifact
        svc2 = make_service(state, runner=instant_runner)
        assert [j.id for j in svc2.jobs()] == ["whole"]
        svc2.drain()


class TestJournalNamespacing:
    def test_identical_plans_get_disjoint_journals(self, tmp_path):
        root = str(tmp_path / "journals")
        a = job_journal_dir(root, "job-a")
        b = job_journal_dir(root, "job-b")
        assert a != b and os.path.isdir(a) and os.path.isdir(b)

    def test_sanitized_collisions_get_hash_suffix(self, tmp_path):
        root = str(tmp_path / "journals")
        assert job_journal_dir(root, "a/b") != job_journal_dir(root, "a_b")
        with pytest.raises(ValueError):
            job_journal_dir(root, "")

    def test_two_identical_jobs_never_cross_restore(self, tmp_path, wgs_spec):
        # Same plan => same plan signature; only the per-job namespace
        # keeps job B from restoring job A's checkpoints.
        with make_service(tmp_path / "state", workers=1, depth=4) as svc:
            job_a = svc.submit(wgs_spec("a"))
            job_b = svc.submit(wgs_spec("b"))
            done_a = svc.wait(job_a.id, timeout=120.0)
            done_b = svc.wait(job_b.id, timeout=120.0)
        assert done_a.state == SUCCEEDED and done_b.state == SUCCEEDED
        # B executed everything itself: nothing restored from A's journal.
        assert done_b.result["skipped"] == []
        assert len(done_b.result["executed"]) >= 4


class TestRealPipelineJobs:
    def test_submit_runs_wgs_to_success(self, tmp_path, wgs_spec):
        with make_service(tmp_path / "state", workers=1) as svc:
            job = svc.submit(wgs_spec("calls"))
            done = svc.wait(job.id, timeout=120.0)
            assert done.state == SUCCEEDED, done.error
            assert done.result["records"] > 0
            assert os.path.getsize(done.result["output"]) > 0
            assert done.result["telemetry"]["counters"]
            # per-job observability artifacts
            events = os.path.join(svc.job_trace_dir(job.id), "events.jsonl")
            assert os.path.exists(events)
            from repro.obs import read_events, validate_events

            log = read_events(events)
            assert log and not validate_events(log)

    def test_bad_input_fails_cleanly(self, tmp_path, wgs_spec):
        spec = wgs_spec("bad", reference=str(tmp_path / "missing.fa"))
        with make_service(tmp_path / "state", workers=1) as svc:
            job = svc.submit(spec)
            done = svc.wait(job.id, timeout=60.0)
            assert done.state == FAILED
            assert "FileNotFoundError" in done.error
            # the worker survives a failed job
            ok = svc.submit(wgs_spec("good"))
            assert svc.wait(ok.id, timeout=120.0).state == SUCCEEDED


class TestKillAndRestartResume:
    """The acceptance scenario: a killed service must resume, not recompute."""

    @pytest.mark.filterwarnings(
        # the simulated kill intentionally dies on a worker thread
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_midrun_job_resumes_from_its_journal(self, tmp_path, wgs_spec):
        state = tmp_path / "state"
        spec = wgs_spec("resumed")
        queued_spec = wgs_spec("queued")

        # Reference output from an undisturbed service.
        with make_service(tmp_path / "ref", workers=1) as ref_svc:
            ref_job = ref_svc.submit(wgs_spec("reference"))
            ref_done = ref_svc.wait(ref_job.id, timeout=120.0)
            assert ref_done.state == SUCCEEDED
        with open(ref_done.result["output"], "rb") as fh:
            expected = fh.read()

        def crashing_runner(job, ctx, should_cancel, journal_dir):
            # Real pipeline, but the Process after BwaMapping hard-kills
            # the worker thread (BaseException skips the job-isolation
            # handler, exactly like a dead service process: the job log
            # still says `running`).
            from repro.engine.files import load_fastq_pair_lazy
            from repro.formats.fasta import read_fasta
            from repro.formats.vcf import read_vcf
            from repro.wgs import build_wgs_pipeline

            reference = read_fasta(job.spec["reference"])
            _, known = read_vcf(job.spec["known_sites"])
            rdd = load_fastq_pair_lazy(
                ctx, job.spec["fastq1"], job.spec["fastq2"], 2
            )
            handles = build_wgs_pipeline(
                ctx, reference, rdd, known, name=f"wgs-{job.id}"
            )
            victim = handles.pipeline.processes[1]
            assert victim.name == "MarkDuplicate"
            victim.execute = lambda run_ctx: (_ for _ in ()).throw(
                SystemExit("simulated service kill")
            )
            handles.pipeline.run(journal_dir=journal_dir)
            return {}

        svc = make_service(state, runner=crashing_runner, workers=1).start()
        svc.submit(spec, job_id="midrun")
        svc.submit(queued_spec, job_id="waiting")
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and any(
            t.is_alive() for t in svc._threads
        ):
            time.sleep(0.05)
        assert not any(t.is_alive() for t in svc._threads), "worker should be dead"
        # The mid-run job died in state `running`; the queued one never ran.
        assert svc.get("midrun").state == "running"
        assert svc.get("waiting").state == QUEUED
        svc.drain(timeout=1.0)

        # Restart over the same state dir with the real runner.
        svc2 = make_service(state, workers=1).start()
        try:
            assert svc2.metrics()["service"]["jobs_recovered"] == 2
            resumed = svc2.wait("midrun", timeout=120.0)
            waiting = svc2.wait("waiting", timeout=120.0)
        finally:
            svc2.drain()

        assert resumed.state == SUCCEEDED, resumed.error
        assert resumed.attempts == 2
        # Resume, not recompute: BwaMapping came back from the journal.
        assert "BwaMapping" in resumed.result["skipped"]
        assert all("BwaMapping" != name for name in resumed.result["executed"])
        with open(resumed.result["output"], "rb") as fh:
            assert fh.read() == expected

        assert waiting.state == SUCCEEDED
        assert waiting.result["skipped"] == []

"""Serve-layer fixtures: a tiny on-disk sample and spec/runner helpers.

The service runner reads *files* (that is what arrives over the API),
so these fixtures write a deliberately tiny simulated sample once per
session — small enough that a full WGS job finishes in a couple of
seconds, which keeps the queueing/restart tests honest but quick.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core.pipeline import PipelineCancelledError
from repro.engine.context import EngineConfig
from repro.serve import PipelineService, ServiceConfig


@pytest.fixture(scope="session")
def serve_sample(tmp_path_factory):
    """Reference/FASTQ/known files for a very small sample; returns specs."""
    from repro.formats.fasta import write_fasta
    from repro.formats.fastq import write_fastq
    from repro.formats.vcf import VcfHeader, sort_records, write_vcf
    from repro.sim import (
        ReadSimConfig,
        ReadSimulator,
        generate_known_sites,
        generate_reference,
        plant_variants,
    )

    out = tmp_path_factory.mktemp("serve_sample")
    reference = generate_reference([4_000], seed=11)
    truth = plant_variants(reference, snp_rate=0.002, indel_rate=0.0003, seed=12)
    known = generate_known_sites(truth, reference, seed=13)
    pairs = ReadSimulator(
        truth.donor, ReadSimConfig(coverage=3.0, seed=14)
    ).simulate()
    paths = {
        "reference": str(out / "reference.fa"),
        "fastq1": str(out / "sample_1.fastq"),
        "fastq2": str(out / "sample_2.fastq"),
        "known_sites": str(out / "known_sites.vcf"),
    }
    write_fasta(reference, paths["reference"])
    write_fastq([p.read1 for p in pairs], paths["fastq1"])
    write_fastq([p.read2 for p in pairs], paths["fastq2"])
    header = VcfHeader(tuple(reference.contig_lengths()))
    write_vcf(
        header, sort_records(known, reference.contig_names), paths["known_sites"]
    )
    return paths


@pytest.fixture
def wgs_spec(serve_sample, tmp_path):
    """A valid WGS job spec writing its VCF under this test's tmp dir."""

    def make(tag: str = "out", **extra) -> dict:
        spec = dict(serve_sample)
        spec["output"] = str(tmp_path / f"{tag}.vcf")
        spec["partitions"] = 2
        spec.update(extra)
        return spec

    return make


def small_engine(**overrides) -> EngineConfig:
    return EngineConfig(default_parallelism=2, **overrides)


def make_service(state_dir, runner=None, workers=1, depth=4, **cfg) -> PipelineService:
    config = ServiceConfig(
        workers=workers, queue_depth=depth, engine=small_engine(), **cfg
    )
    kwargs = {} if runner is None else {"runner": runner}
    return PipelineService(str(state_dir), config, **kwargs)


class GatedRunner:
    """Stub runner that blocks until released; cancellation-aware.

    Lets the queueing tests hold a worker "running" deterministically
    without paying for a real pipeline.
    """

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls: list[str] = []

    def __call__(self, job, ctx, should_cancel, journal_dir):
        self.calls.append(job.id)
        self.started.set()
        while not self.gate.is_set():
            if should_cancel():
                raise PipelineCancelledError("stub", [], ["rest"])
            time.sleep(0.005)
        return {"records": 0, "journal_dir": journal_dir}


def instant_runner(job, ctx, should_cancel, journal_dir):
    os.makedirs(journal_dir, exist_ok=True)
    return {"records": 0, "journal_dir": journal_dir}

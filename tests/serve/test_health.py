"""ServiceHealth state machine, load shedding, and client backoff."""

from __future__ import annotations

import threading

import pytest

from repro.chaos import ChaosPlan, ChaosRule
from repro.obs.events import EventBus
from repro.serve import (
    DEGRADED,
    HEALTHY,
    SHEDDING,
    HealthConfig,
    ServiceClient,
    ServiceError,
    ServiceHealth,
    ServiceOverloadedError,
    start_http_server,
)
from repro.serve.service import PipelineService, ServiceConfig
from tests.serve.conftest import instant_runner, make_service

SPEC = {"reference": "r.fa", "fastq1": "a.fq", "fastq2": "b.fq"}


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def monitor(clock, **overrides) -> ServiceHealth:
    overrides.setdefault("window_seconds", 30.0)
    overrides.setdefault("min_samples", 4)
    return ServiceHealth(HealthConfig(**overrides), clock=clock)


class TestStateMachine:
    def test_starts_healthy_and_needs_min_samples(self):
        clock = FakeClock()
        health = monitor(clock)
        assert health.state == HEALTHY
        # Three straight failures are below min_samples: not an incident.
        for _ in range(3):
            health.record_outcome(False)
        assert health.state == HEALTHY

    def test_failure_rate_walks_degraded_then_shedding(self):
        clock = FakeClock()
        health = monitor(clock)
        for ok in (True, True, True, True, True, False, False, False):
            health.record_outcome(ok)
        assert health.state == DEGRADED  # 3/8 = 0.375 >= 0.3
        for _ in range(5):
            health.record_outcome(False)
        assert health.state == SHEDDING  # 8/13 = 0.615 >= 0.6

    def test_queue_wait_thresholds(self):
        clock = FakeClock()
        health = monitor(clock)
        health.record_queue_wait(3.0)
        assert health.state == DEGRADED
        health.record_queue_wait(30.0)
        assert health.state == SHEDDING

    def test_recovers_as_window_ages_out(self):
        clock = FakeClock()
        health = monitor(clock)
        for _ in range(6):
            health.record_outcome(False)
        assert health.state == SHEDDING
        clock.advance(31.0)
        assert health.state == HEALTHY

    def test_transitions_publish_events(self):
        clock = FakeClock()
        bus = EventBus()
        seen: list[dict] = []
        bus.subscribe(seen.append)
        health = ServiceHealth(
            HealthConfig(window_seconds=30.0, min_samples=2), events=bus, clock=clock
        )
        for _ in range(4):
            health.record_outcome(False)
        clock.advance(31.0)
        assert health.state == HEALTHY
        transitions = [
            (e["from"], e["to"]) for e in seen if e["kind"] == "health.transition"
        ]
        assert (HEALTHY, SHEDDING) in transitions
        assert (SHEDDING, HEALTHY) in transitions

    def test_should_shed_honors_priority_floor(self):
        clock = FakeClock()
        health = monitor(clock, min_samples=2, shed_priority_floor=1)
        for _ in range(4):
            health.record_outcome(False)
        assert health.state == SHEDDING
        assert health.should_shed(priority=0) == pytest.approx(2.0)
        assert health.should_shed(priority=1) is None

    def test_snapshot_fields(self):
        clock = FakeClock()
        health = monitor(clock)
        health.record_outcome(True)
        health.record_queue_wait(1.0)
        snap = health.snapshot()
        assert snap["state"] == HEALTHY
        assert snap["outcomes"] == 1 and snap["failures"] == 0
        assert snap["mean_queue_wait"] == pytest.approx(1.0)
        assert snap["retry_after"] > 0


class TestServiceShedding:
    def failing_stack(self, tmp_path, failures=4):
        """Service whose first N jobs die from serve-layer chaos."""
        plan = ChaosPlan(
            seed=3,
            rules=[
                ChaosRule(site="serve.worker.run", fault="die",
                          probability=1.0, max_faults=failures)
            ],
        )
        return make_service(
            tmp_path / "state",
            runner=instant_runner,
            workers=1,
            depth=8,
            health=HealthConfig(window_seconds=60.0, min_samples=2),
            chaos=plan,
        ).start()

    def test_shedding_rejects_low_priority_with_retry_after(self, tmp_path):
        service = self.failing_stack(tmp_path)
        try:
            done = threading.Event()
            jobs = [service.submit(SPEC, priority=1) for _ in range(4)]
            deadline_guard = 0
            while any(not service.get(j.id).is_terminal for j in jobs):
                deadline_guard += 1
                assert deadline_guard < 2000, "jobs never finished"
                done.wait(0.01)
            assert service.healthmon.state == SHEDDING
            with pytest.raises(ServiceOverloadedError) as err:
                service.submit(SPEC, priority=0)
            assert err.value.retry_after > 0
            assert service.metrics()["service"]["jobs_shed"] == 1
            # High priority is still admitted while shedding.
            high = service.submit(SPEC, priority=1)
            while not service.get(high.id).is_terminal:
                done.wait(0.01)
            assert service.get(high.id).state == "succeeded"
        finally:
            service.drain()

    def test_healthz_is_503_while_shedding_then_recovers(self, tmp_path):
        service = self.failing_stack(tmp_path)
        server = start_http_server(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        try:
            for _ in range(4):
                job = client.submit(SPEC, priority=1)
                assert client.wait(job["id"], timeout=10.0)["state"] == "failed"
            with pytest.raises(ServiceError) as err:
                client.health()
            assert err.value.status == 503
            assert err.value.payload["status"] == "shedding"
            assert err.value.retry_after is not None
            # Shed submission carries Retry-After over HTTP too.
            with pytest.raises(ServiceError) as shed:
                client.submit(SPEC, priority=0)
            assert shed.value.status == 503
            assert shed.value.kind == "ServiceOverloadedError"
            assert shed.value.retry_after is not None
            # Chaos budget is spent: successes dilute the window back.
            for _ in range(12):
                job = client.submit(SPEC, priority=1)
                assert client.wait(job["id"], timeout=10.0)["state"] == "succeeded"
            health = client.health()
            assert health["status"] == "healthy"
            assert health["workers_alive"] == 1
        finally:
            server.shutdown()
            service.drain()


class TestClientBackoff:
    class Flaky(ServiceClient):
        """job() raises transient errors before yielding a terminal job."""

        def __init__(self, failures: int):
            super().__init__("http://127.0.0.1:1")
            self.remaining = failures
            self.calls = 0

        def job(self, job_id: str) -> dict:
            self.calls += 1
            if self.remaining > 0:
                self.remaining -= 1
                raise ServiceError(503, {"error": "ServiceOverloadedError"},
                                   retry_after=0.5)
            return {"id": job_id, "state": "succeeded"}

    def test_wait_retries_transient_503(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: sleeps.append(s)
        )
        client = self.Flaky(failures=3)
        job = client.wait("j-1", timeout=60.0, poll=0.1, max_poll=1.0)
        assert job["state"] == "succeeded"
        assert client.calls == 4
        # Every backoff sleep honored the server's Retry-After floor.
        assert len(sleeps) == 3
        assert all(s >= 0.5 for s in sleeps)

    def test_wait_backoff_grows_and_caps(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: sleeps.append(s)
        )

        class Pending(ServiceClient):
            def __init__(self, polls: int):
                super().__init__("http://127.0.0.1:1")
                self.polls = polls

            def job(self, job_id: str) -> dict:
                self.polls -= 1
                state = "succeeded" if self.polls <= 0 else "running"
                return {"id": job_id, "state": state}

        client = Pending(polls=8)
        client.wait("j-2", timeout=600.0, poll=0.1, max_poll=0.8)
        assert len(sleeps) == 7
        # Jitter is in [0.5, 1.5) of the nominal delay: bounded both ways.
        assert sleeps[0] < 0.2
        assert max(sleeps) <= 0.8 * 1.5
        assert sleeps[-1] >= 0.8 * 0.5

    def test_wait_raises_non_transient_immediately(self):
        class Gone(ServiceClient):
            def job(self, job_id: str) -> dict:
                raise ServiceError(404, {"error": "UnknownJobError"})

        client = Gone("http://127.0.0.1:1")
        with pytest.raises(ServiceError) as err:
            client.wait("j-3", timeout=1.0)
        assert err.value.status == 404

    def test_wait_deterministic_per_job_id(self, monkeypatch):
        schedules = []
        for _ in range(2):
            sleeps: list[float] = []
            monkeypatch.setattr(
                "repro.serve.client.time.sleep", lambda s: sleeps.append(s)
            )

            class Pending(ServiceClient):
                def __init__(self):
                    super().__init__("http://127.0.0.1:1")
                    self.polls = 5

                def job(self, job_id: str) -> dict:
                    self.polls -= 1
                    state = "succeeded" if self.polls <= 0 else "running"
                    return {"id": job_id, "state": state}

            Pending().wait("j-same", timeout=600.0, poll=0.1)
            schedules.append(tuple(sleeps))
        assert schedules[0] == schedules[1]

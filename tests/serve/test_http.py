"""The JSON API end to end: routes, status codes, admission contract."""

import http.client
import json
import time

import pytest

from repro.serve import (
    ServiceClient,
    ServiceError,
    start_http_server,
)
from tests.serve.conftest import GatedRunner, instant_runner, make_service


@pytest.fixture
def stub_stack(tmp_path):
    """Service (gated stub runner) + HTTP server + client."""
    runner = GatedRunner()
    service = make_service(tmp_path / "state", runner=runner, workers=1, depth=2)
    service.start()
    server = start_http_server(service)
    client = ServiceClient(f"http://127.0.0.1:{server.port}")
    yield service, server, client, runner
    runner.gate.set()
    server.shutdown()
    service.drain()


SPEC = {"reference": "r.fa", "fastq1": "a.fq", "fastq2": "b.fq"}


class TestRoutes:
    def test_healthz(self, stub_stack):
        _, _, client, _ = stub_stack
        health = client.health()
        assert health["status"] == "healthy"
        assert health["workers_alive"] == 1
        assert health["queue_capacity"] == 2

    def test_submit_poll_cancel_flow(self, stub_stack):
        service, _, client, runner = stub_stack
        job = client.submit(SPEC, priority=2)
        assert job["state"] == "queued" and job["priority"] == 2
        assert runner.started.wait(5.0)
        listed = client.jobs()
        assert [j["id"] for j in listed] == [job["id"]]
        runner.gate.set()
        done = client.wait(job["id"], timeout=10.0)
        assert done["state"] == "succeeded"
        assert client.jobs(state="succeeded")
        with pytest.raises(ServiceError) as err:
            client.cancel(job["id"])
        assert err.value.status == 409
        assert err.value.kind == "NotCancellableError"

    def test_unknown_job_is_404(self, stub_stack):
        _, _, client, _ = stub_stack
        with pytest.raises(ServiceError) as err:
            client.job("missing")
        assert err.value.status == 404

    def test_bad_spec_is_400(self, stub_stack):
        _, _, client, _ = stub_stack
        with pytest.raises(ServiceError) as err:
            client.submit({"reference": 42})
        assert err.value.status == 400
        assert err.value.kind == "InvalidSpecError"

    def test_unknown_route_is_404(self, stub_stack):
        _, _, client, _ = stub_stack
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_metrics_shape(self, stub_stack):
        _, _, client, _ = stub_stack
        metrics = client.metrics()
        assert set(metrics) == {
            "service",
            "counters",
            "gauges",
            "histograms",
            "health",
        }
        assert "jobs_submitted" in metrics["service"]
        assert metrics["health"]["state"] == "healthy"

    def test_terminal_state_implies_complete_report(self, stub_stack):
        # The per-job event log is flushed *before* the terminal state
        # is persisted, so the first poll that observes a finished job
        # already carries the full run report (run.end included).
        _, _, client, runner = stub_stack
        runner.gate.set()
        job = client.submit(SPEC)
        done = client.wait(job["id"], timeout=10.0)
        assert done["state"] == "succeeded"
        assert "report" in done

    def test_unread_body_does_not_poison_persistent_connection(self, stub_stack):
        # HTTP/1.1 keep-alive: a rejected POST whose body was never read
        # must not leave body bytes in the stream to be misparsed as the
        # next request line on the same socket.
        _, server, _, _ = stub_stack
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10.0)
        try:
            body = json.dumps({"spec": SPEC}).encode("utf-8")
            conn.request(
                "POST", "/nope", body=body,
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 404
            first.read()
            # the very same socket must parse the next request cleanly
            conn.request("GET", "/healthz")
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["status"] == "healthy"
        finally:
            conn.close()


class TestAdmissionOverHTTP:
    def test_429_past_queue_depth_without_touching_running_job(self, stub_stack):
        service, _, client, runner = stub_stack
        running = client.submit(SPEC)
        assert runner.started.wait(5.0)
        client.submit(SPEC)
        client.submit(SPEC)
        with pytest.raises(ServiceError) as err:
            client.submit(SPEC)
        assert err.value.status == 429
        assert err.value.kind == "QueueFullError"
        # the running job is untouched by the rejection
        assert client.job(running["id"])["state"] == "running"
        runner.gate.set()
        assert client.wait(running["id"], timeout=10.0)["state"] == "succeeded"

    def test_503_while_draining(self, tmp_path):
        service = make_service(tmp_path / "state", runner=instant_runner).start()
        server = start_http_server(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        try:
            service.drain()
            # /healthz flips to 503 while draining so orchestrators
            # stop routing to this instance.
            with pytest.raises(ServiceError) as health_err:
                client.health()
            assert health_err.value.status == 503
            assert health_err.value.payload["status"] == "draining"
            with pytest.raises(ServiceError) as err:
                client.submit(SPEC)
            assert err.value.status == 503
            assert err.value.kind == "ServiceDrainingError"
        finally:
            server.shutdown()


class TestRealJobOverHTTP:
    def test_submit_to_report(self, tmp_path, wgs_spec):
        service = make_service(tmp_path / "state", workers=1).start()
        server = start_http_server(service)
        client = ServiceClient(f"http://127.0.0.1:{server.port}")
        try:
            job = client.submit(wgs_spec("http"))
            done = client.wait(job["id"], timeout=120.0)
            assert done["state"] == "succeeded", done.get("error")
            assert done["result"]["records"] > 0
            assert done["result"]["telemetry"]["counters"]
            # the finished-job document folds in the per-job run report
            assert "report" in done
            assert done["report"]["stages"]
            assert any(
                row["name"] == "BwaMapping" for row in done["report"]["processes"]
            )
        finally:
            server.shutdown()
            service.drain()


class TestPrometheusExposition:
    def test_content_type_and_validity(self, stub_stack):
        _, server, _, _ = stub_stack
        from repro.obs import validate_prometheus

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        conn.request("GET", "/metrics?format=prometheus")
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in response.headers["Content-Type"]
        assert validate_prometheus(body) == []
        assert "gpf_service_jobs_submitted_total" in body
        conn.close()

    def test_json_remains_default(self, stub_stack):
        _, _, client, _ = stub_stack
        metrics = client.metrics()
        assert isinstance(metrics, dict) and "service" in metrics

    def test_request_latency_observed(self, stub_stack):
        service, _, client, _ = stub_stack
        client.health()
        client.metrics()
        # The handler observes latency *after* flushing the response, so
        # the client can outrun the server thread's finally block.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            hist = service.telemetry.histogram("http.request_seconds")
            if hist is not None and hist.count >= 2:
                break
            time.sleep(0.02)
        assert hist is not None and hist.count >= 2


def _warm_contexts(service, expected):
    """Worker threads register their warm contexts asynchronously."""
    import time as _time

    deadline = _time.monotonic() + 5.0
    while _time.monotonic() < deadline:
        with service._lock:
            contexts = list(service._contexts.values())
        if len(contexts) >= expected:
            return contexts
        _time.sleep(0.01)
    raise AssertionError(f"only {len(contexts)} warm context(s)")


class TestGaugeFoldOverHTTP:
    def test_point_in_time_gauges_not_summed_across_contexts(self, tmp_path):
        # Regression for the /metrics fold: before fold policies existed,
        # every gauge was summed, so two warm contexts each reporting a
        # 2.0x compression ratio yielded a nonsense 4.0x fleet ratio
        # (hidden by a hand-rolled special case for that one name).
        service = make_service(tmp_path / "state", runner=instant_runner, workers=2)
        service.start()
        try:
            for ctx in _warm_contexts(service, 2):
                # 100 compressed bytes standing in for 200 logical ones:
                # each warm context reports a 2.0x ratio on its own.
                ctx.block_manager.put((0, 0), b"x" * 100, logical_bytes=200)
            gauges = service.metrics()["gauges"]
            # Capacity gauges sum; the ratio is derived from the sums.
            assert gauges["blockmanager.compressed_bytes"] == 200.0
            assert gauges["blockmanager.logical_bytes"] == 400.0
            assert gauges["blockmanager.compression_ratio"] == pytest.approx(2.0)
        finally:
            service.drain()

    def test_histograms_folded_across_contexts(self, tmp_path):
        service = make_service(tmp_path / "state", runner=instant_runner, workers=2)
        service.start()
        try:
            contexts = _warm_contexts(service, 2)
            for ctx in contexts:
                ctx.telemetry.observe("task.seconds", 0.1)
            folded = service.metrics()["histograms"]
            assert folded["task.seconds"]["count"] == len(contexts)
        finally:
            service.drain()

"""Concurrency stress under the lockwatch watchdog.

Eight-plus threads hammer the shared pieces of the serve and obs layers
— :class:`TelemetryRegistry`, :class:`EventBus` fan-out into a
:class:`JsonlEventSink`, and :class:`JobQueue` submit/cancel/pop — while
:mod:`repro.analysis.lockwatch` records every lock acquisition.  The
assertions are the two things a race would break: the counters balance
exactly, and the witnessed lock-acquisition graph has no order-inversion
cycles.  A full :class:`PipelineService` lifecycle runs under the
watchdog too, so the engine-layer locks (context, block manager,
shuffle, metrics) enter the same graph.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import lockwatch

N_THREADS = 8
OPS = 150


@pytest.fixture
def watch():
    lockwatch.reset()
    lockwatch.install()
    try:
        yield lockwatch
    finally:
        lockwatch.uninstall()
        lockwatch.reset()


def _run_threads(fn):
    barrier = threading.Barrier(N_THREADS)

    def wrapped(i):
        barrier.wait(timeout=30.0)
        fn(i)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "stress thread hung"


class TestTelemetryAndEvents:
    def test_counters_balance_and_no_inversions(self, watch, tmp_path):
        # Construct AFTER install so every lock is watched.
        from repro.obs.events import EventBus, JsonlEventSink
        from repro.obs.telemetry import TelemetryRegistry

        telemetry = TelemetryRegistry()
        bus = EventBus()
        sink = JsonlEventSink(str(tmp_path / "events.jsonl"))
        bus.subscribe(sink)

        def worker(i):
            for k in range(OPS):
                telemetry.inc("stress.ops")
                telemetry.inc("stress.bytes", k)
                telemetry.set_gauge(f"stress.thread{i}", k)
                bus.publish("stress.tick", thread=i, k=k)

        _run_threads(worker)
        bus.unsubscribe(sink)
        sink.close()

        assert telemetry.counter("stress.ops") == N_THREADS * OPS
        assert (
            telemetry.counter("stress.bytes")
            == N_THREADS * sum(range(OPS))
        )
        lines = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert len(lines) == N_THREADS * OPS
        assert all(e["kind"] == "stress.tick" for e in lines)

        report = watch.report()
        assert report["cycles"] == [], report["cycles"]


class TestJobQueue:
    def test_submit_cancel_pop_balance(self, watch):
        from repro.serve.jobs import Job, JobQueue, QueueFullError

        queue = JobQueue(depth=N_THREADS * OPS + 1)
        pushed = [0] * N_THREADS
        popped = [0] * N_THREADS
        cancelled = [0] * N_THREADS

        def worker(i):
            for k in range(OPS):
                job = Job(spec={"thread": i, "k": k}, priority=k % 3)
                try:
                    queue.push(job)
                    pushed[i] += 1
                except QueueFullError:
                    continue
                if k % 5 == 0 and queue.cancel(job.id):
                    cancelled[i] += 1
                if k % 2 == 0:
                    got = queue.pop(timeout=0.05)
                    if got is not None:
                        popped[i] += 1

        _run_threads(worker)

        drained = 0
        while queue.pop(timeout=0.01) is not None:
            drained += 1
        # Every push is accounted for exactly once: popped by a worker,
        # cancelled while queued, or drained at the end.
        assert sum(pushed) == sum(popped) + sum(cancelled) + drained
        assert len(queue) == 0

        report = watch.report()
        assert report["cycles"] == [], report["cycles"]


class TestServiceLifecycle:
    def test_service_under_watchdog(self, watch, tmp_path):
        from repro.serve import PipelineService, ServiceConfig

        done = threading.Event()

        def runner(job, ctx, should_cancel, journal_dir):
            done.set()
            return {"records": 0, "output": None}

        spec = {
            "reference": "r.fa",
            "fastq1": "a.fq",
            "fastq2": "b.fq",
        }
        service = PipelineService(
            str(tmp_path / "state"),
            config=ServiceConfig(workers=2, queue_depth=16),
            runner=runner,
        )
        with service:
            jobs = [service.submit(dict(spec)) for _ in range(6)]
            for job in jobs:
                service.wait(job.id, timeout=30.0)
        assert done.is_set()
        assert all(j.state == "succeeded" for j in jobs)
        # Monotonic durations exist and can never be negative.
        assert all(j.run_seconds is not None and j.run_seconds >= 0 for j in jobs)
        assert all(
            j.queue_seconds is not None and j.queue_seconds >= 0 for j in jobs
        )
        metrics = service.metrics()["service"]
        assert metrics["jobs_run_seconds"] >= 0
        assert metrics["jobs_queue_seconds"] >= 0

        report = watch.report()
        assert report["cycles"] == [], report["cycles"]
        # The run exercised real locks — an empty graph would mean the
        # watchdog silently watched nothing.
        assert report["locks"], "watchdog recorded no lock activity"

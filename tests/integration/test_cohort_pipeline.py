"""Multi-sample (cohort) pipeline integration tests.

Exercises the paper's ``inputSAMList: List(SAMBundle)`` API surface: one
partition chain over several samples, per-sample BQSR tables, joint
variant calling.
"""

import pytest

from repro.core.optimizer import FusedPartitionChain
from repro.engine.context import EngineConfig, GPFContext
from repro.sim import ReadSimConfig, ReadSimulator
from repro.wgs import build_cohort_pipeline


@pytest.fixture(scope="module")
def cohort_run(reference, truth, known_sites, tmp_path_factory):
    """Run a two-sample cohort pipeline once for all tests."""
    samples = [
        ReadSimulator(
            truth.donor, ReadSimConfig(coverage=4.0, seed=70 + i)
        ).simulate()
        for i in range(2)
    ]
    ctx = GPFContext(
        EngineConfig(
            default_parallelism=3,
            serializer="gpf",
            spill_dir=str(tmp_path_factory.mktemp("cohort")),
        )
    )
    handles = build_cohort_pipeline(
        ctx,
        reference,
        [ctx.parallelize(pairs, 3) for pairs in samples],
        known_sites,
        partition_length=4_000,
    )
    handles.pipeline.run()
    calls = handles.vcf.rdd.collect()
    yield handles, calls, samples, ctx
    ctx.stop()


class TestCohortPipeline:
    def test_finds_planted_variants_jointly(self, cohort_run, truth):
        _, calls, _, _ = cohort_run
        truth_keys = truth.truth_keys()
        called = {c.key() for c in calls}
        # Two 4x samples pool to ~8x joint coverage: solid recall expected.
        assert len(truth_keys & called) >= len(truth_keys) // 2

    def test_partition_chain_fused_across_cohort(self, cohort_run):
        handles, _, _, _ = cohort_run
        fused = [
            p
            for p in handles.pipeline.executed
            if isinstance(p, FusedPartitionChain)
        ]
        assert len(fused) == 1
        assert "IndelRealign" in fused[0].name and "BQSR" in fused[0].name

    def test_per_sample_outputs_preserved(self, cohort_run):
        handles, _, samples, _ = cohort_run
        for i, sample in enumerate(samples):
            out = handles.recalibrated[i].rdd.collect()
            mapped_in = sum(
                1 for r in handles.aligned[i].rdd.collect() if not r.is_unmapped
            )
            assert len(out) == mapped_in
            # Sample identity preserved: every record's name carries the
            # simulator stem from its own sample.
            in_names = {r.qname for r in handles.aligned[i].rdd.collect()}
            assert all(r.qname in in_names for r in out)

    def test_bqsr_builds_one_table_per_sample(self, cohort_run):
        handles, _, _, _ = cohort_run
        fused = next(
            p
            for p in handles.pipeline.executed
            if isinstance(p, FusedPartitionChain)
        )
        bqsr = next(m for m in fused.members if "BQSR" in m.name)
        assert bqsr.tables is not None
        assert len(bqsr.tables) == 2
        assert all(t.total_observations > 0 for t in bqsr.tables)

    def test_joint_matches_merged_single_sample_calls(
        self, cohort_run, reference, known_sites, truth, tmp_path
    ):
        """Joint calling finds at least what either single sample finds
        alone at a shared site (pooling adds evidence)."""
        from repro.wgs import build_wgs_pipeline

        _, joint_calls, samples, _ = cohort_run
        joint_keys = {c.key() for c in joint_calls}
        single_keys: set = set()
        for i, pairs in enumerate(samples):
            ctx = GPFContext(
                EngineConfig(
                    default_parallelism=3,
                    spill_dir=str(tmp_path / f"s{i}"),
                )
            )
            handles = build_wgs_pipeline(
                ctx,
                reference,
                ctx.parallelize(pairs, 3),
                known_sites,
                partition_length=4_000,
            )
            handles.pipeline.run()
            single_keys |= {c.key() for c in handles.vcf.rdd.collect()}
            ctx.stop()
        truth_keys = truth.truth_keys()
        # Compare recall on truth sites only (FP sets can differ freely).
        assert len(joint_keys & truth_keys) >= 0.8 * len(single_keys & truth_keys)

"""Full-pipeline integration tests: the paper's Fig. 3 user program."""

import pytest

from repro.core.optimizer import FusedPartitionChain
from repro.engine.context import EngineConfig, GPFContext
from repro.wgs import build_wgs_pipeline


@pytest.fixture(scope="module")
def pipeline_inputs(reference, truth, known_sites, read_pairs):
    return reference, truth, known_sites, read_pairs


#: Pipeline runs are expensive (full alignment + calling); memoize them per
#: configuration for the whole module.
_RUN_CACHE: dict = {}


def run_pipeline(inputs, tmp_path, optimize=True, serializer="gpf", backend="serial"):
    key = (optimize, serializer, backend)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    result = _run_pipeline_uncached(inputs, tmp_path, optimize, serializer, backend)
    _RUN_CACHE[key] = result
    return result


def _run_pipeline_uncached(inputs, tmp_path, optimize, serializer, backend):
    reference, truth, known_sites, pairs = inputs
    ctx = GPFContext(
        EngineConfig(
            default_parallelism=3,
            serializer=serializer,
            executor_backend=backend,
            num_workers=4,
            spill_dir=str(tmp_path / f"spill_{optimize}_{serializer}_{backend}"),
        )
    )
    handles = build_wgs_pipeline(
        ctx,
        reference,
        ctx.parallelize(pairs, 3),
        known_sites,
        partition_length=4_000,
    )
    handles.pipeline.run(optimize=optimize)
    calls = handles.vcf.rdd.collect()
    job = ctx.metrics.job()
    ctx.stop()
    return handles, calls, job


class TestEndToEnd:
    def test_finds_planted_variants(self, pipeline_inputs, tmp_path):
        reference, truth, _, _ = pipeline_inputs
        _, calls, _ = run_pipeline(pipeline_inputs, tmp_path)
        truth_keys = truth.truth_keys()
        called_keys = {c.key() for c in calls}
        # At the fixture's ~6x genome-wide coverage, recall should be
        # solid; require at least a third of all planted variants.
        assert len(truth_keys & called_keys) >= len(truth_keys) // 3
        # Precision: the caller must not hallucinate wildly.
        assert len(called_keys - truth_keys) <= 2 * len(called_keys & truth_keys) + 5

    def test_optimizer_fuses_cleaner_caller_chain(self, pipeline_inputs, tmp_path):
        handles, _, _ = run_pipeline(pipeline_inputs, tmp_path)
        fused = [p for p in handles.pipeline.executed if isinstance(p, FusedPartitionChain)]
        assert len(fused) == 1
        assert "IndelRealign" in fused[0].name
        assert "HaplotypeCaller" in fused[0].name

    def test_optimization_preserves_output(self, pipeline_inputs, tmp_path):
        _, calls_opt, job_opt = run_pipeline(pipeline_inputs, tmp_path, optimize=True)
        _, calls_raw, job_raw = run_pipeline(pipeline_inputs, tmp_path, optimize=False)
        assert sorted(c.key() for c in calls_opt) == sorted(c.key() for c in calls_raw)
        # Table 4's shape: fewer stages and less shuffle data when fused.
        assert job_opt.stage_count < job_raw.stage_count
        assert job_opt.shuffle_bytes < job_raw.shuffle_bytes

    def test_serializers_agree(self, pipeline_inputs, tmp_path):
        results = {}
        for serializer in ("gpf", "compact"):
            _, calls, job = run_pipeline(
                pipeline_inputs, tmp_path, serializer=serializer
            )
            results[serializer] = (sorted(c.key() for c in calls), job.shuffle_bytes)
        assert results["gpf"][0] == results["compact"][0]
        # The genomic codec must shuffle fewer bytes (Table 3).
        assert results["gpf"][1] < results["compact"][1]

    def test_threads_backend_agrees_with_serial(self, pipeline_inputs, tmp_path):
        _, serial_calls, _ = run_pipeline(pipeline_inputs, tmp_path, backend="serial")
        _, thread_calls, _ = run_pipeline(pipeline_inputs, tmp_path, backend="threads")
        assert sorted(c.key() for c in serial_calls) == sorted(
            c.key() for c in thread_calls
        )

    def test_process_backend_agrees_with_serial(self, pipeline_inputs, tmp_path):
        """`make_executor("process", n)` end-to-end: the engine's lineage
        closures are unpicklable so batches fall back to threads, but the
        backend must be safe to select and bit-identical to serial."""
        _, serial_calls, _ = run_pipeline(pipeline_inputs, tmp_path, backend="serial")
        _, process_calls, _ = run_pipeline(
            pipeline_inputs, tmp_path, backend="process"
        )
        assert sorted(c.key() for c in serial_calls) == sorted(
            c.key() for c in process_calls
        )

    def test_gpf_agrees_with_disk_pipeline_baseline(
        self, pipeline_inputs, tmp_path
    ):
        """GPF and the conventional disk pipeline call the same variants."""
        from repro.baselines.diskpipeline import DiskPipeline
        from repro.formats.fastq import write_fastq
        from repro.formats.vcf import read_vcf

        reference, truth, known_sites, pairs = pipeline_inputs
        fq1, fq2 = str(tmp_path / "m1.fastq"), str(tmp_path / "m2.fastq")
        write_fastq([p.read1 for p in pairs], fq1)
        write_fastq([p.read2 for p in pairs], fq2)
        disk = DiskPipeline(reference, known_sites, workdir=str(tmp_path / "disk"))
        disk_result = disk.run(fq1, fq2)
        _, disk_calls = read_vcf(disk_result.vcf_path)

        _, gpf_calls, _ = run_pipeline(pipeline_inputs, tmp_path)
        gpf_keys = {c.key() for c in gpf_calls}
        disk_keys = {c.key() for c in disk_calls}
        # The pipelines differ in partitioning and stage order, so exact
        # equality is not guaranteed at region boundaries; a large common
        # core is.
        common = gpf_keys & disk_keys
        assert len(common) >= 0.7 * min(len(gpf_keys), len(disk_keys))

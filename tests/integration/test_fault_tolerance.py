"""Fault-injected WGS runs: random task deaths plus a mid-run kill must
not change a single output byte.

This is the CI fault-smoke gate: the full pipeline runs under
``RandomFaults(rate=0.2, seed=7)``, is killed after an early Process, and
is resumed from its run journal; the resumed VCF must be byte-identical
to an uninterrupted reference run under the same fault schedule.
"""

import os

import pytest

from repro.engine.context import EngineConfig, GPFContext
from repro.engine.faults import RandomFaults
from repro.formats.vcf import write_vcf
from repro.wgs import build_wgs_pipeline


def _make_ctx(tmp_path, tag):
    return GPFContext(
        EngineConfig(
            default_parallelism=3,
            spill_dir=str(tmp_path / f"spill_{tag}"),
            max_task_attempts=8,
        )
    )


def _build(ctx, inputs):
    reference, known_sites, pairs = inputs
    return build_wgs_pipeline(
        ctx,
        reference,
        ctx.parallelize(pairs, 3),
        known_sites,
        partition_length=4_000,
    )


def _vcf_bytes(handles, path):
    records = sorted(handles.vcf.rdd.collect(), key=lambda r: r.key())
    write_vcf(handles.vcf.header, records, path)
    with open(path, "rb") as fh:
        return fh.read()


class TestKillAndResumeUnderFaults:
    def test_resumed_vcf_is_byte_identical(
        self, tmp_path, reference, known_sites, read_pairs
    ):
        inputs = (reference, known_sites, read_pairs[:60])
        journal_dir = str(tmp_path / "journal")

        # Uninterrupted reference run under fault injection.
        with _make_ctx(tmp_path, "ref") as ctx:
            ctx.add_fault_injector(RandomFaults(rate=0.2, seed=7))
            handles = _build(ctx, inputs)
            handles.pipeline.run()
            assert ctx.fault_injectors[0].injected > 0
            expected = _vcf_bytes(handles, str(tmp_path / "ref.vcf"))

        # Journaled run killed right after BwaMapping commits.
        with _make_ctx(tmp_path, "crash") as ctx:
            ctx.add_fault_injector(RandomFaults(rate=0.2, seed=7))
            handles = _build(ctx, inputs)
            victim = handles.pipeline.processes[1]  # MarkDuplicate
            assert victim.name == "MarkDuplicate"
            victim.execute = lambda run_ctx: (_ for _ in ()).throw(
                RuntimeError("simulated mid-run kill")
            )
            with pytest.raises(RuntimeError, match="simulated mid-run kill"):
                handles.pipeline.run(journal_dir=journal_dir)
            assert [p.name for p in handles.pipeline.executed] == ["BwaMapping"]
        assert os.path.exists(os.path.join(journal_dir, "journal.jsonl"))

        # Resume: BwaMapping restores from the journal, the rest re-runs.
        with _make_ctx(tmp_path, "resume") as ctx:
            ctx.add_fault_injector(RandomFaults(rate=0.2, seed=7))
            handles = _build(ctx, inputs)
            handles.pipeline.run(journal_dir=journal_dir)
            skipped = [p.name for p in handles.pipeline.skipped]
            executed = [p.name for p in handles.pipeline.executed]
            assert skipped == ["BwaMapping"]
            assert "BwaMapping" not in executed
            resumed = _vcf_bytes(handles, str(tmp_path / "resumed.vcf"))

        assert resumed == expected

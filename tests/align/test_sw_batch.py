"""Batched Smith-Waterman must reproduce the scalar kernel exactly."""

import numpy as np
import pytest

from repro.align.bwamem import BwaMemAligner
from repro.align.smith_waterman import ScoringScheme, smith_waterman
from repro.align.sw_batch import smith_waterman_batch
from repro.sim import generate_reference

BASES = np.array(list("ACGTN"))
BASE_P = [0.2425, 0.2425, 0.2425, 0.2425, 0.03]


def _random_seq(rng, lo, hi):
    return "".join(rng.choice(BASES, size=int(rng.integers(lo, hi + 1)), p=BASE_P))


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("band", [None, 4, 8, 16, 64])
    def test_randomized_batches_match_scalar(self, band):
        rng = np.random.default_rng(hash(band) % 1000 if band else 0)
        for _ in range(40):
            pairs = []
            for _ in range(int(rng.integers(1, 9))):
                query = _random_seq(rng, 0, 60)
                ref = _random_seq(rng, 0, 120)
                # Plant the query so real alignments (not just score-0
                # rejections) are exercised.
                if rng.random() < 0.5 and len(ref) > len(query) > 4:
                    pos = int(rng.integers(0, len(ref) - len(query)))
                    ref = ref[:pos] + query + ref[pos + len(query):]
                pairs.append((query, ref))
            batched = smith_waterman_batch(pairs, band=band)
            for (query, ref), got in zip(pairs, batched):
                assert got == smith_waterman(query, ref, band=band)

    def test_edge_cases(self):
        pairs = [
            ("", ""),
            ("", "ACGT"),
            ("ACGT", ""),
            ("A", "A"),
            ("A", "T"),
            ("N", "N"),
            ("NNNN", "NNNN"),
            ("ACGT", "NNNN"),
            ("A" * 40, "A" * 40),
        ]
        batched = smith_waterman_batch(pairs, band=8)
        for (query, ref), got in zip(pairs, batched):
            assert got == smith_waterman(query, ref, band=8)

    def test_empty_batch(self):
        assert smith_waterman_batch([]) == []

    def test_mixed_lengths_padding_does_not_leak(self):
        # One long pair forces heavy padding on the short ones.
        pairs = [("ACGTACGTA" * 12, "ACGTACGTA" * 20), ("AC", "ACGT"), ("G", "G")]
        batched = smith_waterman_batch(pairs)
        for (query, ref), got in zip(pairs, batched):
            assert got == smith_waterman(query, ref)

    def test_positive_gap_open_falls_back_to_scalar(self):
        scoring = ScoringScheme(match=2, mismatch=-1, gap_open=1, gap_extend=-2)
        pairs = [("ACGTAC", "ACGGTAC"), ("TTTT", "TTAT")]
        batched = smith_waterman_batch(pairs, scoring=scoring)
        for (query, ref), got in zip(pairs, batched):
            assert got == smith_waterman(query, ref, scoring=scoring)


class TestAlignerBatchWiring:
    def test_candidates_batch_matches_single_reads(self):
        reference = generate_reference([6_000], seed=42)
        aligner = BwaMemAligner(reference)
        contig = reference.contigs[0]
        rng = np.random.default_rng(5)
        sequences = []
        for _ in range(12):
            start = int(rng.integers(0, len(contig) - 80))
            seq = contig.fetch(start, start + 70)
            sequences.append(seq)
        batched = aligner.candidates_batch(sequences)
        assert len(batched) == len(sequences)
        for seq, cands in zip(sequences, batched):
            assert cands == aligner.candidates(seq)
            assert cands, "planted read must align"

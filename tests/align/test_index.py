"""Suffix array, BWT, and FM-index tests (cross-checked vs brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.bwt import bwt, inverse_bwt
from repro.align.fmindex import FMIndex, reverse_complement
from repro.align.suffix_array import build_suffix_array, naive_suffix_array
from repro.formats.fasta import Contig, Reference

dna = st.text(alphabet="ACGT", min_size=1, max_size=200)


class TestSuffixArray:
    def test_matches_naive_on_classic_strings(self):
        for text in [b"banana\x00", b"mississippi\x00", b"AAAA\x00", b"ACGTACGT\x00"]:
            assert build_suffix_array(text).tolist() == naive_suffix_array(text).tolist()

    def test_requires_sentinel(self):
        with pytest.raises(ValueError, match="sentinel"):
            build_suffix_array(b"abc")

    def test_sentinel_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            build_suffix_array(b"a\x00b\x00")

    def test_empty(self):
        assert build_suffix_array(b"").tolist() == []

    @settings(max_examples=40, deadline=None)
    @given(dna)
    def test_matches_naive_property(self, text):
        data = text.encode() + b"\x00"
        assert build_suffix_array(data).tolist() == naive_suffix_array(data).tolist()


class TestBWT:
    @settings(max_examples=40, deadline=None)
    @given(dna)
    def test_inverse_roundtrip(self, text):
        data = text.encode() + b"\x00"
        assert inverse_bwt(bwt(data)) == data

    def test_empty(self):
        assert inverse_bwt(np.array([], dtype=np.uint8)) == b""


def brute_force_occurrences(reference: Reference, pattern: str):
    """All (contig, pos, strand) occurrences, both strands."""
    hits = set()
    for contig in reference.contigs:
        seq = contig.sequence.decode()
        for strand_seq, is_rev in ((seq, False), (reverse_complement(seq), True)):
            start = strand_seq.find(pattern)
            while start != -1:
                if is_rev:
                    fwd = len(seq) - start - len(pattern)
                else:
                    fwd = start
                hits.add((contig.name, fwd, is_rev))
                start = strand_seq.find(pattern, start + 1)
    return hits


@pytest.fixture(scope="module")
def small_ref():
    rng = np.random.default_rng(12)
    seqs = ["".join(rng.choice(list("ACGT"), size=600)) for _ in range(2)]
    return Reference(
        [Contig("c1", seqs[0].encode()), Contig("c2", seqs[1].encode())]
    )


class TestFMIndex:
    def test_count_matches_brute_force(self, small_ref):
        index = FMIndex(small_ref)
        rng = np.random.default_rng(3)
        for _ in range(30):
            contig = small_ref.contigs[int(rng.integers(0, 2))]
            start = int(rng.integers(0, len(contig) - 25))
            pattern = contig.fetch(start, start + 20)
            expected = brute_force_occurrences(small_ref, pattern)
            lo, hi = index.backward_search(pattern)
            assert hi - lo == len(expected)

    def test_locate_positions_match_brute_force(self, small_ref):
        index = FMIndex(small_ref)
        contig = small_ref.contigs[0]
        pattern = contig.fetch(100, 125)
        lo, hi = index.backward_search(pattern)
        located = set()
        for name, offset, is_rev in index.locate(lo, hi, limit=100):
            located.add(
                (name, index.to_forward_position(name, offset, len(pattern), is_rev), is_rev)
            )
        assert located == brute_force_occurrences(small_ref, pattern)

    def test_absent_pattern_gives_empty_interval(self, small_ref):
        index = FMIndex(small_ref)
        # A 31-char pattern unlikely in 1.2kb; verify then assert.
        pattern = "ACGT" * 8
        if brute_force_occurrences(small_ref, pattern):
            pytest.skip("pattern accidentally present")
        lo, hi = index.backward_search(pattern)
        assert lo >= hi

    def test_n_in_pattern_never_matches(self, small_ref):
        index = FMIndex(small_ref)
        assert index.count("ANT") == 0

    def test_reverse_strand_found(self, small_ref):
        index = FMIndex(small_ref)
        contig = small_ref.contigs[1]
        pattern = reverse_complement(contig.fetch(50, 75))
        expected = brute_force_occurrences(small_ref, pattern)
        assert index.count(pattern) == len(expected) > 0

    def test_extend_left_consistent_with_search(self, small_ref):
        index = FMIndex(small_ref)
        pattern = small_ref.contigs[0].fetch(200, 215)
        lo, hi = 0, index.text_length
        for ch in reversed(pattern):
            lo, hi = index.extend_left(ch, lo, hi)
        assert (lo, hi) == index.backward_search(pattern)

    def test_memory_accounting_positive(self, small_ref):
        assert FMIndex(small_ref).memory_bytes() > 0


class TestReverseComplement:
    def test_basic(self):
        assert reverse_complement("ACGTN") == "NACGT"

    @given(dna)
    def test_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

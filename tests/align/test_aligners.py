"""Seed extraction, BWA-MEM driver, paired-end pairing, and SNAP."""

import numpy as np
import pytest

from repro.align.bwamem import BwaMemAligner
from repro.align.fmindex import FMIndex, reverse_complement
from repro.align.pairing import PairedEndAligner
from repro.align.seeds import chain_seeds, find_seeds
from repro.align.snap import SnapAligner, SnapConfig
from repro.formats import flags as F
from repro.formats.fastq import FastqPair, FastqRecord
from repro.sim import generate_reference


@pytest.fixture(scope="module")
def ref():
    return generate_reference([8_000], seed=21)


@pytest.fixture(scope="module")
def index(ref):
    return FMIndex(ref)


def read_at(ref, start, length=100, contig=0, rc=False, name="r"):
    seq = ref.contigs[contig].fetch(start, start + length)
    if rc:
        seq = reverse_complement(seq)
    return FastqRecord(name, seq, "I" * length)


class TestSeeds:
    def test_exact_read_produces_covering_seed(self, ref, index):
        read = read_at(ref, 1000)
        seeds = find_seeds(index, read.sequence)
        assert seeds
        best = max(seeds, key=lambda s: s.length)
        assert best.length >= 50
        assert any(
            s.ref_start - s.query_start == 1000 and not s.is_reverse for s in seeds
        )

    def test_short_read_yields_nothing(self, index):
        assert find_seeds(index, "ACGT") == []

    def test_mismatches_break_but_do_not_kill_seeding(self, ref, index):
        seq = list(read_at(ref, 2000).sequence)
        seq[50] = "A" if seq[50] != "A" else "C"
        seeds = find_seeds(index, "".join(seq))
        assert seeds  # both halves still produce seeds

    def test_chains_group_by_diagonal(self, ref, index):
        read = read_at(ref, 3000)
        chains = chain_seeds(find_seeds(index, read.sequence))
        assert chains
        top = chains[0]
        diags = {s.diagonal() for s in top}
        assert max(diags) - min(diags) <= 16


class TestBwaMem:
    def test_perfect_forward_read(self, ref):
        aligner = BwaMemAligner(ref)
        rec = aligner.align_read(read_at(ref, 1500))
        assert not rec.is_unmapped
        assert rec.rname == "chr1"
        assert rec.pos == 1500
        assert str(rec.cigar) == "100M"
        assert rec.tags["NM"] == 0
        assert rec.mapq > 0

    def test_reverse_strand_read(self, ref):
        aligner = BwaMemAligner(ref)
        rec = aligner.align_read(read_at(ref, 2500, rc=True))
        assert not rec.is_unmapped
        assert rec.is_reverse
        assert rec.pos == 2500
        # SEQ is stored as the forward-strand sequence.
        assert rec.seq == ref.contigs[0].fetch(2500, 2600)

    def test_read_with_mismatches(self, ref):
        raw = read_at(ref, 4000)
        seq = list(raw.sequence)
        for i in (20, 70):
            seq[i] = "A" if seq[i] != "A" else "G"
        aligner = BwaMemAligner(ref)
        rec = aligner.align_read(FastqRecord("m", "".join(seq), raw.quality))
        assert rec.pos == 4000
        assert rec.tags["NM"] == 2

    def test_read_with_deletion_gets_d_cigar(self, ref):
        contig = ref.contigs[0]
        seq = contig.fetch(5000, 5048) + contig.fetch(5053, 5105)
        aligner = BwaMemAligner(ref)
        rec = aligner.align_read(FastqRecord("d", seq, "I" * len(seq)))
        assert rec.pos == 5000
        assert "5D" in str(rec.cigar)

    def test_read_with_insertion_gets_i_cigar(self, ref):
        contig = ref.contigs[0]
        seq = contig.fetch(6000, 6050) + "TTTT" + contig.fetch(6050, 6096)
        aligner = BwaMemAligner(ref)
        rec = aligner.align_read(FastqRecord("i", seq, "I" * len(seq)))
        assert rec.pos == 6000
        assert "4I" in str(rec.cigar)

    def test_garbage_read_unmapped(self, ref):
        aligner = BwaMemAligner(ref)
        rng = np.random.default_rng(5)
        # Random 100-mer: essentially certainly absent from an 8kb genome.
        seq = "".join(rng.choice(list("ACGT"), size=100))
        rec = aligner.align_read(FastqRecord("g", seq, "I" * 100))
        # Either unmapped or very low quality spurious hit.
        assert rec.is_unmapped or rec.tags["NM"] > 10 or rec.mapq == 0

    def test_unique_read_has_high_mapq(self, ref):
        aligner = BwaMemAligner(ref)
        rec = aligner.align_read(read_at(ref, 700))
        assert rec.mapq >= 30


class TestPairedEnd:
    def test_proper_pair_flags_and_tlen(self, ref):
        contig = ref.contigs[0]
        frag_start, insert = 3000, 400
        r1 = read_at(ref, frag_start, name="p/1")
        r2_seq = reverse_complement(
            contig.fetch(frag_start + insert - 100, frag_start + insert)
        )
        pair = FastqPair(r1, FastqRecord("p/2", r2_seq, "I" * 100))
        pe = PairedEndAligner(ref)
        s1, s2 = pe.align_pair(pair)
        assert s1.flag & F.PROPER_PAIR and s2.flag & F.PROPER_PAIR
        assert s1.flag & F.FIRST_IN_PAIR and s2.flag & F.SECOND_IN_PAIR
        assert s1.tlen == insert and s2.tlen == -insert
        assert s1.rnext == "=" and s1.pnext == s2.pos

    def test_mate_rescue_places_degraded_mate(self, ref):
        contig = ref.contigs[0]
        frag_start = 4200
        r1 = read_at(ref, frag_start, name="q/1")
        # Mate so corrupted no seed survives, but SW can still place it.
        mate_seq = list(
            reverse_complement(contig.fetch(frag_start + 200, frag_start + 300))
        )
        rng = np.random.default_rng(8)
        for i in range(0, 100, 11):
            mate_seq[i] = "ACGT"[rng.integers(0, 4)]
        pair = FastqPair(r1, FastqRecord("q/2", "".join(mate_seq), "I" * 100))
        pe = PairedEndAligner(ref)
        s1, s2 = pe.align_pair(pair)
        assert not s1.is_unmapped
        # Rescue should have placed the mate near its partner.
        if not s2.is_unmapped:
            assert abs(s2.pos - s1.pos) < 1000

    def test_both_garbage_unmapped_pair(self, ref):
        rng = np.random.default_rng(9)
        mk = lambda n: FastqRecord(n, "".join(rng.choice(list("ACGT"), 100)), "I" * 100)
        pe = PairedEndAligner(ref)
        s1, s2 = pe.align_pair(FastqPair(mk("x/1"), mk("x/2")))
        for rec in (s1, s2):
            assert rec.is_paired
            if rec.is_unmapped:
                assert rec.rname == "*"


class TestSnap:
    def test_exact_read_found(self, ref):
        snap = SnapAligner(ref)
        rec = snap.align_read(read_at(ref, 1000))
        assert not rec.is_unmapped
        assert rec.pos == 1000
        assert rec.tags["NM"] == 0

    def test_reverse_read_found(self, ref):
        snap = SnapAligner(ref)
        rec = snap.align_read(read_at(ref, 2000, rc=True))
        assert rec.is_reverse
        assert rec.pos == 2000

    def test_mismatch_cap_respected(self, ref):
        snap = SnapAligner(ref, SnapConfig(max_mismatches=2))
        raw = read_at(ref, 3000)
        seq = list(raw.sequence)
        for i in range(0, 30, 5):  # 6 mismatches > cap
            seq[i] = "A" if seq[i] != "A" else "G"
        rec = snap.align_read(FastqRecord("mm", "".join(seq), raw.quality))
        assert rec.is_unmapped

    def test_snap_is_faster_than_bwamem(self, ref):
        import time

        reads = [read_at(ref, 500 + i * 37, name=f"s{i}") for i in range(30)]
        snap = SnapAligner(ref)
        bwa = BwaMemAligner(ref)
        t0 = time.perf_counter()
        for r in reads:
            snap.align_read(r)
        snap_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        for r in reads:
            bwa.align_read(r)
        bwa_t = time.perf_counter() - t0
        assert snap_t < bwa_t  # the SNAP/BWA trade-off of Fig. 11d


class TestAlternativeHits:
    @pytest.fixture(scope="class")
    def repeat_ref(self):
        """A genome with an exact 300 bp repeat at two loci."""
        rng = np.random.default_rng(55)
        body = "".join(rng.choice(list("ACGT"), size=2_000))
        repeat = "".join(rng.choice(list("ACGT"), size=300))
        seq = body[:500] + repeat + body[500:1_500] + repeat + body[1_500:]
        from repro.formats.fasta import Contig, Reference

        return Reference([Contig("chr1", seq.encode())])

    def test_repeat_read_gets_xa_tag(self, repeat_ref):
        aligner = BwaMemAligner(repeat_ref)
        seq = repeat_ref.contigs[0].fetch(600, 700)  # inside the repeat
        rec = aligner.align_read(FastqRecord("rep", seq, "I" * 100))
        assert not rec.is_unmapped
        assert "XA" in rec.tags
        # The XA entry points at the other repeat copy.
        entry = rec.tags["XA"].split(";")[0]
        contig, pos, cigar, nm = entry.split(",")
        assert contig == "chr1"
        assert cigar == "100M"
        positions = {rec.pos, int(pos.lstrip("+-")) - 1}
        assert len(positions) == 2  # two distinct placements

    def test_repeat_read_has_low_mapq(self, repeat_ref):
        aligner = BwaMemAligner(repeat_ref)
        seq = repeat_ref.contigs[0].fetch(600, 700)
        rec = aligner.align_read(FastqRecord("rep", seq, "I" * 100))
        assert rec.mapq == 0  # equal best scores => ambiguous

    def test_unique_read_has_no_xa(self, ref):
        aligner = BwaMemAligner(ref)
        rec = aligner.align_read(read_at(ref, 900))
        assert "XA" not in rec.tags

    def test_xa_disabled_by_config(self, repeat_ref):
        from repro.align.bwamem import AlignerConfig

        aligner = BwaMemAligner(repeat_ref, AlignerConfig(max_alternative_hits=0))
        seq = repeat_ref.contigs[0].fetch(600, 700)
        rec = aligner.align_read(FastqRecord("rep", seq, "I" * 100))
        assert "XA" not in rec.tags

class TestAlignPairsBatch:
    """align_pairs must be record-for-record identical to align_pair."""

    def _pairs(self, ref, n=6):
        contig = ref.contigs[0]
        pairs = []
        for i in range(n):
            start = 500 + i * 900
            r1 = read_at(ref, start, name=f"b{i}/1")
            r2_seq = reverse_complement(contig.fetch(start + 300, start + 400))
            pairs.append(
                FastqPair(r1, FastqRecord(f"b{i}/2", r2_seq, "I" * 100))
            )
        return pairs

    def test_batch_matches_scalar(self, ref):
        pairs = self._pairs(ref)
        pe = PairedEndAligner(ref)
        batched = pe.align_pairs(pairs)
        scalar = [pe.align_pair(p) for p in pairs]
        assert batched == scalar

    def test_empty_batch(self, ref):
        assert PairedEndAligner(ref).align_pairs([]) == []

    def test_iterator_input(self, ref):
        pairs = self._pairs(ref, 3)
        pe = PairedEndAligner(ref)
        assert pe.align_pairs(iter(pairs)) == [pe.align_pair(p) for p in pairs]

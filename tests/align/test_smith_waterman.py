import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.smith_waterman import (
    AlignmentResult,
    ScoringScheme,
    global_alignment_score,
    smith_waterman,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


def cigar_str(result: AlignmentResult) -> str:
    return "".join(f"{l}{op}" for l, op in result.cigar_pairs)


class TestExactMatch:
    def test_identical_sequences(self):
        r = smith_waterman("ACGTACGT", "ACGTACGT")
        assert r.score == 8
        assert cigar_str(r) == "8M"
        assert (r.query_start, r.query_end) == (0, 8)

    def test_substring_located(self):
        r = smith_waterman("CGTA", "AACGTACC")
        assert r.score == 4
        assert r.ref_start == 2
        assert r.ref_end == 6

    def test_empty_inputs(self):
        assert smith_waterman("", "ACGT").score == 0
        assert smith_waterman("ACGT", "").score == 0


class TestMismatchesAndGaps:
    def test_single_mismatch_tolerated(self):
        # 12 matches + 1 mismatch (13M, score 8) beats the best exact
        # piece (8M, score 8 is a tie -- so use 14 long: 13 match = 9 > 8).
        query = "ACGTACGTTACGTA"
        ref = "ACGTACGTAACGTA"  # differs at index 8 (T vs A)
        r = smith_waterman(query, ref)
        assert cigar_str(r) == "14M"
        assert r.score == 13 - 4

    def test_deletion_in_read(self):
        query = "ACGTACGTACGTACGTACGT"
        ref = query[:10] + "TTT" + query[10:]
        r = smith_waterman(query, ref)
        assert "D" in cigar_str(r)
        assert r.score == 20 - 6 - 3 * 1  # 20M minus open minus 3 extends

    def test_insertion_in_read(self):
        ref = "ACGTACGTACGTACGTACGT"
        query = ref[:10] + "TT" + ref[10:]
        r = smith_waterman(query, ref)
        assert "I" in cigar_str(r)
        assert r.score == 20 - 6 - 2

    def test_local_alignment_clips_noise(self):
        r = smith_waterman("GGGG" + "ACGTACGTACGT" + "CCCC", "TTTTACGTACGTACGTTTTT")
        assert r.query_start == 4
        assert r.query_end == 16

    def test_n_never_matches(self):
        r = smith_waterman("ACGN", "ACGN")
        assert r.score == 3  # N-vs-N is a mismatch, clipped from alignment


class TestBanding:
    def test_band_still_finds_near_diagonal(self):
        query = "ACGTACGTAC"
        r = smith_waterman(query, query, band=3)
        assert r.score == 10

    def test_band_excludes_far_off_diagonal(self):
        # Occurrence starts 10 columns right of the diagonal; band=2 misses it.
        query = "ACGTACGTGG"
        ref = "T" * 10 + query
        wide = smith_waterman(query, ref, band=None)
        narrow = smith_waterman(query, ref, band=2)
        assert wide.score == 10
        assert narrow.score < wide.score


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(dna, dna)
    def test_cigar_consistent_with_spans(self, query, ref):
        r = smith_waterman(query, ref)
        q_span = sum(l for l, op in r.cigar_pairs if op in "MI")
        r_span = sum(l for l, op in r.cigar_pairs if op in "MD")
        assert q_span == r.query_end - r.query_start
        assert r_span == r.ref_end - r.ref_start

    @settings(max_examples=60, deadline=None)
    @given(dna)
    def test_self_alignment_is_perfect(self, seq):
        r = smith_waterman(seq, seq)
        assert r.score == len(seq)
        assert cigar_str(r) == f"{len(seq)}M"

    @settings(max_examples=40, deadline=None)
    @given(dna, dna)
    def test_score_nonnegative_and_bounded(self, query, ref):
        r = smith_waterman(query, ref)
        assert 0 <= r.score <= min(len(query), len(ref))

    @settings(max_examples=30, deadline=None)
    @given(dna, dna)
    def test_traceback_score_equals_dp_score(self, query, ref):
        """Recompute the score from the CIGAR and the aligned ends."""
        s = ScoringScheme()
        r = smith_waterman(query, ref)
        if r.score == 0:
            return
        score = 0
        qi, ri = r.query_start, r.ref_start
        for length, op in r.cigar_pairs:
            if op == "M":
                for k in range(length):
                    score += s.match if query[qi + k] == ref[ri + k] else s.mismatch
                qi += length
                ri += length
            elif op == "I":
                score += s.gap_open + s.gap_extend * length
                qi += length
            elif op == "D":
                score += s.gap_open + s.gap_extend * length
                ri += length
        assert score == r.score


class TestGlobalScore:
    def test_identical(self):
        assert global_alignment_score("ACGT", "ACGT") == 4

    def test_prefers_similar(self):
        near = global_alignment_score("ACGTACGT", "ACGTACGA")
        far = global_alignment_score("ACGTACGT", "TTTTTTTT")
        assert near > far

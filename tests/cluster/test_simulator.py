"""Cluster simulator, topology, and blocked-time analysis tests."""

import numpy as np
import pytest

from repro.cluster.blocked_time import blocked_time_analysis, from_engine_metrics
from repro.cluster.simulator import (
    ClusterSimulator,
    SimulationResult,
    Stage,
    Task,
    skewed_task_sizes,
)
from repro.cluster.topology import LUSTRE, NFS, ClusterSpec, NodeSpec


def cpu_stage(name, sizes, **task_kwargs):
    return Stage(name, [Task(cpu_seconds=s, **task_kwargs) for s in sizes])


class TestTopology:
    def test_with_cores(self):
        spec = ClusterSpec.with_cores(128)
        assert spec.total_cores == 128
        assert spec.num_nodes == 16

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec.with_cores(100, cores_per_node=8)

    def test_filesystem_presets(self):
        assert LUSTRE.aggregate_bandwidth > NFS.aggregate_bandwidth


class TestScheduling:
    def test_single_task(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job([cpu_stage("s", [10.0])])
        assert result.makespan == pytest.approx(10.0)

    def test_perfectly_parallel_stage(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job([cpu_stage("s", [1.0] * 8)])
        assert result.makespan == pytest.approx(1.0)
        assert result.parallel_efficiency(8) == pytest.approx(1.0)

    def test_waves_when_tasks_exceed_cores(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job([cpu_stage("s", [1.0] * 24)])
        assert result.makespan == pytest.approx(3.0)

    def test_straggler_bounds_makespan(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job([cpu_stage("s", [1.0] * 7 + [10.0])])
        assert result.makespan == pytest.approx(10.0)

    def test_stage_barrier(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job([cpu_stage("a", [2.0]), cpu_stage("b", [3.0])])
        assert result.makespan == pytest.approx(5.0)
        assert result.stage_spans[1][1] == pytest.approx(2.0)

    def test_serial_seconds_extend_stage(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        stage = Stage("s", [Task(cpu_seconds=1.0)], serial_seconds=4.0)
        assert sim.run_job([stage]).makespan == pytest.approx(5.0)

    def test_empty_stage_free(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        assert sim.run_job([Stage("s", [])]).makespan == 0.0

    def test_work_conservation(self):
        """Sum of placement durations equals sum of task demands."""
        sim = ClusterSimulator(ClusterSpec.with_cores(16))
        sizes = list(np.random.default_rng(0).uniform(0.1, 3.0, size=50))
        result = sim.run_job([cpu_stage("s", sizes)])
        assert result.total_cpu_time == pytest.approx(sum(sizes))
        assert result.core_seconds == pytest.approx(sum(sizes))


class TestResourceModel:
    def test_disk_time_scales_with_bytes(self):
        spec = ClusterSpec.with_cores(8)
        sim = ClusterSimulator(spec)
        small = sim.run_job([Stage("s", [Task(disk_bytes=150e6)])]).makespan
        large = sim.run_job([Stage("s", [Task(disk_bytes=300e6)])]).makespan
        assert large == pytest.approx(2 * small)

    def test_disk_contention_slows_tasks(self):
        spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=8))
        sim = ClusterSimulator(spec)
        alone = sim.run_job([Stage("s", [Task(disk_bytes=150e6)])]).makespan
        crowded = sim.run_job(
            [Stage("s", [Task(disk_bytes=150e6) for _ in range(8)])]
        ).makespan
        assert crowded > 4 * alone  # 8 tasks share one disk

    def test_nfs_slower_than_lustre_at_scale(self):
        reads = [Task(shared_fs_bytes=1e9) for _ in range(64)]
        lustre = ClusterSimulator(
            ClusterSpec.with_cores(64, filesystem=LUSTRE)
        ).run_job([Stage("s", list(reads))])
        nfs = ClusterSimulator(
            ClusterSpec.with_cores(64, filesystem=NFS)
        ).run_job([Stage("s", list(reads))])
        assert nfs.makespan > lustre.makespan

    def test_io_fraction(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job(
            [Stage("s", [Task(cpu_seconds=1.0, disk_bytes=150e6)])]
        )
        assert 0.0 < result.io_fraction() < 1.0


class TestUtilizationTimeline:
    def test_timeline_shapes(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job(
            [cpu_stage("s", [1.0] * 16, disk_bytes=10e6)]
        )
        series = result.utilization_timeline(num_bins=20)
        assert len(series["cpu"]) == 20
        assert series["cpu"].max() > 0
        assert series["disk_bytes"].sum() > 0

    def test_empty_result(self):
        series = SimulationResult(makespan=0).utilization_timeline(10)
        assert series["cpu"].sum() == 0


class TestSkewedSizes:
    def test_zero_skew_uniform(self):
        assert skewed_task_sizes(2.0, 5, 0.0) == [2.0] * 5

    def test_total_work_preserved(self):
        sizes = skewed_task_sizes(2.0, 100, 0.8, seed=1)
        assert sum(sizes) == pytest.approx(200.0)

    def test_higher_skew_bigger_max(self):
        low = max(skewed_task_sizes(1.0, 200, 0.2, seed=2))
        high = max(skewed_task_sizes(1.0, 200, 1.2, seed=2))
        assert high > low

    def test_empty(self):
        assert skewed_task_sizes(1.0, 0, 0.5) == []


class TestBlockedTime:
    def test_cpu_only_job_sees_no_improvement(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job([cpu_stage("s", [1.0] * 8)])
        report = blocked_time_analysis(result, 8)
        assert report.disk_improvement == pytest.approx(0.0)
        assert report.network_improvement == pytest.approx(0.0)

    def test_disk_heavy_job_improves(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job(
            [Stage("s", [Task(cpu_seconds=1.0, disk_bytes=150e6) for _ in range(8)])]
        )
        report = blocked_time_analysis(result, 8)
        assert report.disk_improvement > 0.1
        assert report.jct_without_disk < report.base_jct

    def test_improvement_bounded_by_one(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(8))
        result = sim.run_job([Stage("s", [Task(disk_bytes=1e9)])])
        report = blocked_time_analysis(result, 8)
        assert 0.0 <= report.disk_improvement <= 1.0

    def test_from_engine_metrics(self, ctx):
        ctx.parallelize([(i % 3, "x" * 200) for i in range(200)], 4).group_by_key().collect()
        report = from_engine_metrics(ctx.metrics.job(), total_cores=4)
        assert report.base_jct > 0
        assert 0.0 <= report.disk_improvement <= 1.0
        assert 0.0 <= report.network_improvement <= 1.0

"""Workload builders + cost model tests — the shapes behind Figs. 10-13."""

import pytest

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel, calibrate
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import ClusterSpec, NFS, LUSTRE
from repro.cluster.workloads import (
    baseline_tool_stages,
    churchill_stages,
    disk_pipeline_stages,
    gpf_wgs_stages,
)

MODEL = DEFAULT_COST_MODEL
READS = MODEL.reads_for_gigabases(146.9)


def makespan(stages, cores):
    sim = ClusterSimulator(ClusterSpec.with_cores(cores))
    return sim.run_job(stages).makespan


class TestGpfScaling:
    """Fig. 10's headline shape."""

    def test_scales_to_2048_cores(self):
        t128 = makespan(gpf_wgs_stages(READS, MODEL), 128)
        t2048 = makespan(gpf_wgs_stages(READS, MODEL), 2048)
        speedup = t128 / t2048
        assert 6.0 <= speedup <= 10.0  # paper: 7.25x

    def test_completes_in_paper_ballpark(self):
        t2048 = makespan(gpf_wgs_stages(READS, MODEL), 2048)
        assert 15 * 60 <= t2048 <= 40 * 60  # paper: 24 minutes

    def test_parallel_efficiency_above_threshold(self):
        sim = ClusterSimulator(ClusterSpec.with_cores(2048))
        result = sim.run_job(gpf_wgs_stages(READS, MODEL))
        assert result.parallel_efficiency(2048) > 0.40  # paper claims >50%

    def test_unoptimized_pipeline_has_more_stages_and_time(self):
        opt = gpf_wgs_stages(READS, MODEL, optimize=True)
        unopt = gpf_wgs_stages(READS, MODEL, optimize=False)
        assert len(unopt) > len(opt)
        assert makespan(unopt, 256) > makespan(opt, 256)

    def test_serializer_changes_shuffle_bytes(self):
        gpf = gpf_wgs_stages(READS, MODEL, serializer="gpf")
        pickle_ = gpf_wgs_stages(READS, MODEL, serializer="pickle")
        gpf_bytes = sum(t.network_bytes for s in gpf for t in s.tasks)
        pickle_bytes = sum(t.network_bytes for s in pickle_ for t in s.tasks)
        assert pickle_bytes > 2 * gpf_bytes


class TestChurchillComparison:
    def test_gpf_faster_at_every_scale(self):
        for cores in (128, 512, 1024):
            assert makespan(gpf_wgs_stages(READS, MODEL), cores) < makespan(
                churchill_stages(READS, MODEL), cores
            )

    def test_churchill_flat_beyond_1024(self):
        t1024 = makespan(churchill_stages(READS, MODEL), 1024)
        t2048 = makespan(churchill_stages(READS, MODEL), 2048)
        assert t2048 > 0.95 * t1024  # no meaningful scaling past the cap

    def test_gpf_about_3x_at_1024(self):
        ratio = makespan(churchill_stages(READS, MODEL), 1024) / makespan(
            gpf_wgs_stages(READS, MODEL), 1024
        )
        assert 2.0 <= ratio <= 5.0  # paper: ~3.46x


class TestStageComparisons:
    """Fig. 11's per-tool ratios."""

    @pytest.mark.parametrize("tool,expected_low,expected_high", [
        ("markdup", 3.0, 12.0),  # paper: 7.3x vs ADAM
        ("bqsr", 3.0, 12.0),     # paper: 6.4x
        ("realign", 3.0, 12.0),  # paper: 7.6x
    ])
    def test_adam_slower_than_gpf(self, tool, expected_low, expected_high):
        reads = MODEL.reads_for_gigabases(146.9)
        gpf_t = makespan(baseline_tool_stages("gpf", tool, reads, MODEL), 512)
        adam_t = makespan(baseline_tool_stages("adam", tool, reads, MODEL), 512)
        assert expected_low <= adam_t / gpf_t <= expected_high

    def test_gatk4_slower_than_gpf(self):
        reads = MODEL.reads_for_gigabases(146.9)
        for tool in ("markdup", "bqsr"):
            gpf_t = makespan(baseline_tool_stages("gpf", tool, reads, MODEL), 512)
            gatk_t = makespan(baseline_tool_stages("gatk4", tool, reads, MODEL), 512)
            assert gatk_t / gpf_t > 3.0  # paper: 6.3x / 8.4x

    def test_persona_alignment_conversion_dominates(self):
        # Fig. 11d: raw SNAP beats BWA, but AGD conversion reverses it.
        reads = MODEL.reads_for_gigabases(30.0)
        sim = ClusterSimulator(ClusterSpec.with_cores(512))
        persona = sim.run_job(baseline_tool_stages("persona", "align", reads, MODEL))
        spans = {name: end - start for name, start, end in persona.stage_spans}
        convert_span = next(v for k, v in spans.items() if "convert" in k)
        align_span = next(v for k, v in spans.items() if "convert" not in k)
        assert convert_span > 5 * align_span

    def test_persona_raw_snap_beats_gpf_bwa(self):
        # ...while ignoring conversion, SNAP's alignment itself is faster.
        reads = MODEL.reads_for_gigabases(30.0)
        sim = ClusterSimulator(ClusterSpec.with_cores(512))
        persona_align_only = [
            s for s in baseline_tool_stages("persona", "align", reads, MODEL)
            if "convert" not in s.name
        ]
        gpf_align = baseline_tool_stages("gpf", "align", reads, MODEL)
        assert sim.run_job(persona_align_only).makespan < sim.run_job(gpf_align).makespan


class TestDiskPipeline:
    """Table 1's I/O-fraction growth."""

    def _io_fraction(self, samples, filesystem):
        reads = MODEL.reads_for_gigabases(3.3)  # ~100Gb/30 samples each
        cores = 96 if samples == 1 else 16
        spec = ClusterSpec.with_cores(cores * samples, filesystem=filesystem)
        sim = ClusterSimulator(spec)
        result = sim.run_job(
            disk_pipeline_stages(samples, reads, MODEL, cores_per_sample=cores)
        )
        return result.wall_io_fraction()

    def test_io_fraction_grows_with_samples(self):
        assert self._io_fraction(30, NFS) > self._io_fraction(1, NFS)
        assert self._io_fraction(30, LUSTRE) > self._io_fraction(1, LUSTRE)

    def test_nfs_worse_than_lustre_at_scale(self):
        assert self._io_fraction(30, NFS) > self._io_fraction(30, LUSTRE)

    def test_many_sample_io_fraction_dominates(self):
        # Paper: 60-74% I/O at 30 samples.
        frac = self._io_fraction(30, NFS)
        assert frac > 0.5


class TestCostModel:
    def test_reads_for_gigabases(self):
        assert MODEL.reads_for_gigabases(1.0) == 10_000_000

    def test_with_native_scale(self):
        scaled = MODEL.with_native_scale(2.0)
        assert scaled.align_seconds == pytest.approx(2 * MODEL.align_seconds)
        assert scaled.fastq_bytes == MODEL.fastq_bytes

    def test_calibrate_measures_real_costs(self):
        model = calibrate(num_pairs=12, genome_size=8_000, native_scale=1.0)
        # All stage costs measured and positive.
        assert model.align_seconds > 0
        assert model.caller_seconds > 0
        assert model.markdup_seconds > 0
        # The two heavyweight kernels must dominate (Fig. 13's CPU story).
        assert model.align_seconds > model.markdup_seconds
        assert model.caller_seconds > model.markdup_seconds
        # Compression ratio measured in a plausible band.
        assert 0.3 <= model.gpf_compression <= 0.9

    def test_calibrate_default_normalizes_to_paper_budget(self):
        model = calibrate(num_pairs=10, genome_size=8_000)
        total = (
            model.align_seconds
            + model.markdup_seconds
            + model.realign_seconds
            + model.bqsr_count_seconds
            + model.bqsr_apply_seconds
            + model.caller_seconds
        )
        paper_budget = 128 * 174 * 60 / (146.9e9 / 100)
        assert total == pytest.approx(paper_budget, rel=1e-6)

"""CLI end-to-end tests (simulate -> run -> evaluate -> scaling)."""

import os

import pytest

from repro.cli.main import main


@pytest.fixture(scope="module")
def sample_dir(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("cli_sample"))
    rc = main(
        [
            "simulate",
            out,
            "--genome-size",
            "12000",
            "--coverage",
            "6",
            "--seed",
            "5",
        ]
    )
    assert rc == 0
    return out


class TestSimulate:
    def test_writes_all_files(self, sample_dir):
        for name in (
            "reference.fa",
            "sample_1.fastq",
            "sample_2.fastq",
            "known_sites.vcf",
            "truth.vcf",
        ):
            path = os.path.join(sample_dir, name)
            assert os.path.exists(path) and os.path.getsize(path) > 0

    def test_files_parse(self, sample_dir):
        from repro.formats.fasta import read_fasta
        from repro.formats.fastq import read_fastq
        from repro.formats.vcf import read_vcf

        ref = read_fasta(os.path.join(sample_dir, "reference.fa"))
        assert ref.total_length() == 12000
        reads1 = read_fastq(os.path.join(sample_dir, "sample_1.fastq"))
        reads2 = read_fastq(os.path.join(sample_dir, "sample_2.fastq"))
        assert len(reads1) == len(reads2) > 0
        _, truth = read_vcf(os.path.join(sample_dir, "truth.vcf"))
        assert truth

    def test_deterministic_by_seed(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        for out in (a, b):
            main(["simulate", out, "--genome-size", "6000", "--seed", "9"])
        with open(os.path.join(a, "sample_1.fastq")) as fa, open(
            os.path.join(b, "sample_1.fastq")
        ) as fb:
            assert fa.read() == fb.read()


class TestRunAndEvaluate:
    @pytest.fixture(scope="class")
    def calls_path(self, sample_dir):
        out = os.path.join(sample_dir, "calls.vcf")
        rc = main(
            [
                "run",
                "--reference",
                os.path.join(sample_dir, "reference.fa"),
                "--fastq1",
                os.path.join(sample_dir, "sample_1.fastq"),
                "--fastq2",
                os.path.join(sample_dir, "sample_2.fastq"),
                "--known-sites",
                os.path.join(sample_dir, "known_sites.vcf"),
                "--output",
                out,
                "--partition-length",
                "4000",
            ]
        )
        assert rc == 0
        return out

    def test_run_writes_vcf(self, calls_path):
        from repro.formats.vcf import read_vcf

        _, calls = read_vcf(calls_path)
        assert calls

    def test_evaluate_reports_scores(self, sample_dir, calls_path, capsys):
        rc = main(
            [
                "evaluate",
                "--calls",
                calls_path,
                "--truth",
                os.path.join(sample_dir, "truth.vcf"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "precision" in out and "recall" in out
        recall = float(out.split("recall")[1].split()[0])
        assert recall > 0.3

    def test_run_without_known_sites(self, sample_dir, tmp_path):
        out = str(tmp_path / "nodbsnp.vcf")
        rc = main(
            [
                "run",
                "--reference",
                os.path.join(sample_dir, "reference.fa"),
                "--fastq1",
                os.path.join(sample_dir, "sample_1.fastq"),
                "--fastq2",
                os.path.join(sample_dir, "sample_2.fastq"),
                "--output",
                out,
                "--partition-length",
                "4000",
                "--no-optimize",
            ]
        )
        assert rc == 0
        assert os.path.exists(out)


class TestFaultToleranceFlags:
    def _run_args(self, sample_dir, out, *extra):
        return [
            "run",
            "--reference",
            os.path.join(sample_dir, "reference.fa"),
            "--fastq1",
            os.path.join(sample_dir, "sample_1.fastq"),
            "--fastq2",
            os.path.join(sample_dir, "sample_2.fastq"),
            "--output",
            out,
            "--partition-length",
            "4000",
            *extra,
        ]

    def test_malformed_quarantine_survives_bad_quad(
        self, sample_dir, tmp_path, capsys
    ):
        # Corrupt one FASTQ quad; fail policy dies, quarantine completes.
        bad_dir = tmp_path / "bad"
        bad_dir.mkdir()
        for name in ("reference.fa", "sample_2.fastq"):
            (bad_dir / name).write_text(
                open(os.path.join(sample_dir, name)).read()
            )
        lines = open(os.path.join(sample_dir, "sample_1.fastq")).read().splitlines()
        lines[2] = "BROKEN-SEPARATOR"  # first record's '+' line
        (bad_dir / "sample_1.fastq").write_text("\n".join(lines) + "\n")

        out = str(tmp_path / "calls.vcf")
        args = [
            "run",
            "--reference",
            str(bad_dir / "reference.fa"),
            "--fastq1",
            str(bad_dir / "sample_1.fastq"),
            "--fastq2",
            str(bad_dir / "sample_2.fastq"),
            "--output",
            out,
            "--partition-length",
            "4000",
        ]
        # fail policy: one-line error plus the quarantine hint, exit 1
        assert main(args) == 1
        err = capsys.readouterr().err
        assert "run: " in err
        assert "--malformed quarantine" in err
        rc = main(args + ["--malformed", "quarantine"])
        assert rc == 0
        assert os.path.exists(out)
        assert "quarantine:" in capsys.readouterr().out

    def test_journal_dir_resumes(self, sample_dir, tmp_path, capsys):
        out = str(tmp_path / "calls.vcf")
        journal = str(tmp_path / "journal")
        rc = main(self._run_args(sample_dir, out, "--journal-dir", journal))
        assert rc == 0
        first = capsys.readouterr().out
        assert "resumed from journal" not in first
        first_vcf = open(out).read()

        rc = main(self._run_args(sample_dir, out, "--journal-dir", journal))
        assert rc == 0
        second = capsys.readouterr().out
        assert "resumed from journal" in second
        assert open(out).read() == first_vcf


class TestLint:
    def test_builtin_plan_lints_clean(self, capsys):
        rc = main(["lint"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gpfcheck" in out
        assert "0 error(s)" in out and "0 warning(s)" in out
        assert "GPF103" in out  # the IR->BQSR->HC fusion chain

    def test_lints_files_plan(self, sample_dir, capsys):
        rc = main(
            [
                "lint",
                "--reference",
                os.path.join(sample_dir, "reference.fa"),
                "--fastq1",
                os.path.join(sample_dir, "sample_1.fastq"),
                "--fastq2",
                os.path.join(sample_dir, "sample_2.fastq"),
                "--known-sites",
                os.path.join(sample_dir, "known_sites.vcf"),
            ]
        )
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_examples_scan(self, capsys):
        examples = os.path.join(os.path.dirname(__file__), "..", "examples")
        rc = main(["lint", "--examples", examples])
        assert rc == 0
        out = capsys.readouterr().out
        assert "source scan" in out and "clean" in out

    def test_reference_without_fastqs_rejected(self, sample_dir, capsys):
        rc = main(
            ["lint", "--reference", os.path.join(sample_dir, "reference.fa")]
        )
        assert rc == 2
        assert "requires --fastq1/--fastq2" in capsys.readouterr().err


class TestRunErrorHandling:
    def _args(self, reference, tmp_path, *extra):
        return [
            "run",
            "--reference",
            reference,
            "--fastq1",
            "missing_1.fastq",
            "--fastq2",
            "missing_2.fastq",
            "--output",
            str(tmp_path / "calls.vcf"),
            *extra,
        ]

    def test_failure_is_one_line_plus_hints_not_a_traceback(
        self, tmp_path, capsys
    ):
        rc = main(self._args("/no/such/reference.fa", tmp_path))
        assert rc == 1
        err = capsys.readouterr().err
        assert "run: FileNotFoundError" in err
        assert "--journal-dir" in err  # resume hint
        assert "--malformed quarantine" in err  # bad-input hint
        assert "Traceback" not in err

    def test_failure_with_journal_dir_hints_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "journal")
        rc = main(
            self._args("/no/such/reference.fa", tmp_path, "--journal-dir", journal)
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "re-run with the same flags to resume" in err

    def test_job_id_requires_journal_dir(self, tmp_path, capsys):
        rc = main(self._args("/no/such/reference.fa", tmp_path, "--job-id", "a"))
        assert rc == 2
        assert "--job-id requires --journal-dir" in capsys.readouterr().err


class TestRunJobIdNamespacing:
    def _run(self, sample_dir, out, journal, job_id):
        return main(
            [
                "run",
                "--reference",
                os.path.join(sample_dir, "reference.fa"),
                "--fastq1",
                os.path.join(sample_dir, "sample_1.fastq"),
                "--fastq2",
                os.path.join(sample_dir, "sample_2.fastq"),
                "--output",
                out,
                "--journal-dir",
                journal,
                "--job-id",
                job_id,
            ]
        )

    def test_distinct_job_ids_share_a_root_without_cross_restore(
        self, sample_dir, tmp_path, capsys
    ):
        journal = str(tmp_path / "journal")
        out = str(tmp_path / "calls.vcf")
        assert self._run(sample_dir, out, journal, "alpha") == 0
        first = capsys.readouterr().out
        assert "resumed from journal" not in first

        # Identical plan, same journal root, different job id: must NOT
        # restore alpha's checkpoints.
        assert self._run(sample_dir, out, journal, "beta") == 0
        second = capsys.readouterr().out
        assert "resumed from journal" not in second

        # Same job id: resumes.
        assert self._run(sample_dir, out, journal, "alpha") == 0
        third = capsys.readouterr().out
        assert "resumed from journal" in third
        assert os.path.isdir(os.path.join(journal, "alpha"))
        assert os.path.isdir(os.path.join(journal, "beta"))


class TestServeCli:
    def test_serve_requires_state_dir(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    @pytest.fixture()
    def live_service(self, tmp_path):
        from repro.serve import PipelineService, ServiceConfig, start_http_server

        def instant(job, ctx, should_cancel, journal_dir):
            return {"records": 4, "output": job.spec.get("output")}

        service = PipelineService(
            str(tmp_path / "state"),
            ServiceConfig(workers=1, queue_depth=4),
            runner=instant,
        ).start()
        server = start_http_server(service)
        yield f"http://127.0.0.1:{server.port}"
        server.shutdown()
        service.drain()

    def _submit_args(self, url, *extra):
        return [
            "submit",
            "--url",
            url,
            "--reference",
            "r.fa",
            "--fastq1",
            "a.fq",
            "--fastq2",
            "b.fq",
            *extra,
        ]

    def test_submit_wait_jobs_status_roundtrip(self, live_service, capsys):
        rc = main(self._submit_args(live_service, "--wait", "--timeout", "30"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "succeeded" in out

        assert main(["jobs", "--url", live_service]) == 0
        listing = capsys.readouterr().out
        assert "succeeded" in listing and "4 records" in listing
        job_id = listing.split()[0]

        assert main(["status", job_id, "--url", live_service]) == 0
        assert "succeeded" in capsys.readouterr().out

        assert main(["status", job_id, "--url", live_service, "--json"]) == 0
        assert '"state": "succeeded"' in capsys.readouterr().out

    def test_jobs_metrics_dump(self, live_service, capsys):
        assert main(["jobs", "--url", live_service, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert '"jobs_submitted"' in out

    def test_status_unknown_job_fails(self, live_service, capsys):
        assert main(["status", "nope", "--url", live_service]) == 1
        assert "404" in capsys.readouterr().err

    def test_submit_unreachable_service_fails(self, capsys):
        rc = main(self._submit_args("http://127.0.0.1:1"))
        assert rc == 1
        assert "submit:" in capsys.readouterr().err


class TestScaling:
    def test_prints_table(self, capsys):
        rc = main(["scaling", "--cores", "128", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GPF" in out and "Churchill" in out
        assert "128" in out and "256" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestLintSelf:
    """gpf lint --self: the GPF3xx framework self-analysis gate."""

    def test_self_lint_clean_against_committed_baseline(self, capsys):
        rc = main(["lint", "--self"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gpfcheck --self" in out and "0 new" in out

    def test_self_lint_json_shape(self, capsys):
        import json

        rc = main(["lint", "--self", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mode"] == "self"
        assert data["new"] == []
        assert isinstance(data["findings"], list)

    def test_update_baseline_writes_file(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", "--self", "--update-baseline", "--baseline", str(baseline)])
        assert rc == 0
        import json

        data = json.loads(baseline.read_text())
        assert "fingerprints" in data

    def test_new_finding_fails_against_empty_baseline(self, tmp_path, capsys, monkeypatch):
        # Point the self-lint at a source tree with a seeded bug and an
        # empty baseline: the run must exit nonzero and name the finding.
        import repro.analysis.selfcheck as selfcheck

        bad_root = tmp_path / "repro"
        bad_root.mkdir()
        (bad_root / "racy.py").write_text(
            "import threading\n"
            "class Racy:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0\n"
            "    def inc(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def peek(self):\n"
            "        return self._n\n"
        )
        monkeypatch.setattr(selfcheck, "SELF_ROOT", bad_root)
        baseline = tmp_path / "empty.json"
        rc = main(["lint", "--self", "--baseline", str(baseline)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "GPF301" in out and "1 new" in out

    def test_pipeline_lint_json(self, capsys):
        import json

        rc = main(["lint", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mode"] == "pipeline" and data["plan"] == "wgs"
        codes = {f["code"] for f in data["findings"]}
        assert "GPF103" in codes  # the fusion-info finding is stable


class TestObservabilityCli:
    def test_run_profile_flag_parses(self):
        from repro.cli.main import build_parser

        args = build_parser().parse_args(
            ["run", "--reference", "r", "--fastq1", "a", "--fastq2", "b",
             "--output", "o", "--profile"]
        )
        assert args.profile == 0.005
        args = build_parser().parse_args(
            ["run", "--reference", "r", "--fastq1", "a", "--fastq2", "b",
             "--output", "o", "--profile", "0.01"]
        )
        assert args.profile == 0.01
        args = build_parser().parse_args(
            ["run", "--reference", "r", "--fastq1", "a", "--fastq2", "b",
             "--output", "o"]
        )
        assert args.profile is None

    def test_top_parser_defaults(self):
        from repro.cli.main import build_parser

        args = build_parser().parse_args(["top", "--once"])
        assert args.command == "top"
        assert args.once and args.interval == 2.0 and args.iterations == 0

    def test_profiled_run_prints_hot_functions_and_flame(
        self, sample_dir, tmp_path, capsys
    ):
        out = str(tmp_path / "calls.vcf")
        trace = str(tmp_path / "trace")
        rc = main(
            ["run", "--reference", os.path.join(sample_dir, "reference.fa"),
             "--fastq1", os.path.join(sample_dir, "sample_1.fastq"),
             "--fastq2", os.path.join(sample_dir, "sample_2.fastq"),
             "--output", out, "--profile", "0.002", "--trace-out", trace]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "profile:" in err and "sample(s)" in err
        assert os.path.exists(os.path.join(trace, "profile.folded"))
        # report --flame over the same event log prints folded stacks
        rc = main(["report", os.path.join(trace, "events.jsonl"), "--flame"])
        assert rc == 0
        flame = capsys.readouterr().out
        lines = [ln for ln in flame.splitlines() if ln.strip()]
        assert lines
        assert all(";" in ln or " " in ln for ln in lines)
        stack, count = lines[0].rsplit(" ", 1)
        assert int(count) > 0 and stack

    def test_flame_without_profile_events_is_error(self, tmp_path, capsys):
        import json

        events = tmp_path / "events.jsonl"
        events.write_text(json.dumps({"kind": "run.start", "ts": 0.0}) + "\n")
        rc = main(["report", str(events), "--flame"])
        assert rc == 2
        assert "no profile.sample events" in capsys.readouterr().err

    def test_top_once_renders_against_live_service(self, tmp_path, capsys):
        from repro.serve import PipelineService, ServiceConfig, start_http_server
        from repro.engine.context import EngineConfig

        def instant(job, ctx, should_cancel, journal_dir):
            return {"records": 4}

        service = PipelineService(
            str(tmp_path / "state"),
            ServiceConfig(workers=1, queue_depth=4,
                          engine=EngineConfig(default_parallelism=2)),
            runner=instant,
        ).start()
        server = start_http_server(service)
        try:
            rc = main(["top", "--url", f"http://127.0.0.1:{server.port}",
                       "--once"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "gpf top" in out and "[healthy]" in out
        finally:
            server.shutdown()
            service.drain()


class TestBenchHistory:
    def test_append_history_keeps_trajectory(self, tmp_path):
        import json
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from bench_history import append_history
        finally:
            sys.path.pop(0)
        path = str(tmp_path / "BENCH_kernels.json")
        append_history(path, {"kernel": {"speedup": 10.0}})
        doc = append_history(path, {"kernel": {"speedup": 11.0}})
        assert doc["kernel"]["speedup"] == 11.0
        assert len(doc["history"]) == 2
        assert all("at" in entry for entry in doc["history"])
        with open(path) as fh:
            on_disk = json.load(fh)
        assert [e["kernel"]["speedup"] for e in on_disk["history"]] == [10.0, 11.0]

    def test_history_bounded_by_keep(self, tmp_path):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from bench_history import append_history
        finally:
            sys.path.pop(0)
        path = str(tmp_path / "BENCH.json")
        for i in range(6):
            doc = append_history(path, {"k": {"speedup": float(i)}}, keep=3)
        assert [e["k"]["speedup"] for e in doc["history"]] == [3.0, 4.0, 5.0]

    def test_check_kernel_regression(self):
        import sys

        sys.path.insert(0, "benchmarks")
        try:
            from bench_history import check_kernel_regression
        finally:
            sys.path.pop(0)
        baseline = {"pairhmm": {"speedup": 10.0}, "sw": {"speedup": 4.0}}
        ok = {"pairhmm": {"speedup": 8.0}, "sw": {"speedup": 3.5}}
        assert check_kernel_regression(baseline, ok) == []
        bad = {"pairhmm": {"speedup": 6.0}, "sw": {"speedup": 3.5}}
        problems = check_kernel_regression(baseline, bad)
        assert problems and "pairhmm" in problems[0]
        missing = {"sw": {"speedup": 3.5}}
        assert any("missing" in p for p in check_kernel_regression(baseline, missing))

"""Closure shipping round-trips, including over a real socket.

Satellite coverage: serializer round-trips across a socketpair under
partial reads, and the GPB2 compressed-bundle path for
``ParallelCollectionRDD`` slices with worker-side lazy decode.
"""

import os
import pickle
import socket

import pytest

from repro.dist import protocol
from repro.dist.shipping import CTX_TOKEN, ship_dumps, ship_loads
from repro.dist.spec import format_hostport
from repro.engine.context import EngineConfig, GPFContext

HELPER_CONSTANT = 7


@pytest.fixture()
def ctx(tmp_path):
    context = GPFContext(
        EngineConfig(default_parallelism=3, spill_dir=str(tmp_path / "spill"))
    )
    yield context
    context.stop()


@pytest.fixture()
def worker_ctx(ctx, tmp_path):
    from repro.dist.worker import WorkerContext

    wctx = WorkerContext(
        str(tmp_path / "worker"),
        0,
        ("127.0.0.1", 0),
        ctx.serializer,
    )
    return wctx


class TestFunctions:
    def test_importable_function_ships_by_reference(self, ctx):
        loaded = ship_loads(ship_dumps(format_hostport, ctx), ctx)
        assert loaded is format_hostport

    def test_lambda_ships_by_value(self, ctx):
        loaded = ship_loads(ship_dumps(lambda x: x * 3, ctx), ctx)
        assert loaded(14) == 42

    def test_closure_cells_travel(self, ctx):
        def make_adder(n):
            def add(x):
                return x + n

            return add

        loaded = ship_loads(ship_dumps(make_adder(10), ctx), ctx)
        assert loaded(5) == 15

    def test_referenced_globals_travel(self, ctx):
        def f(x):
            return x + HELPER_CONSTANT

        loaded = ship_loads(ship_dumps(f, ctx), ctx)
        assert loaded(1) == 8

    def test_globals_of_nested_lambdas_travel(self, ctx):
        # The constant is only named inside the *inner* code object; the
        # globals walk must recurse through nested co_consts.
        def f():
            return (lambda: HELPER_CONSTANT)()

        loaded = ship_loads(ship_dumps(f, ctx), ctx)
        assert loaded() == HELPER_CONSTANT

    def test_captured_module_reimports(self, ctx):
        def f(a, b):
            return os.path.join(a, b)

        loaded = ship_loads(ship_dumps(f, ctx), ctx)
        assert loaded("x", "y") == os.path.join("x", "y")

    def test_unresolved_closure_cell_is_a_pickling_error(self, ctx):
        def outer():
            def f():
                return late

            if False:
                late = 1  # noqa: F841 - makes `late` a (forever empty) cell
            return f

        with pytest.raises(pickle.PicklingError, match="unresolved closure"):
            ship_dumps(outer(), ctx)


class TestContextToken:
    def test_driver_context_swaps_for_the_worker_context(self, ctx, worker_ctx):
        blob = ship_dumps({"ctx": ctx, "n": 3}, ctx)
        assert CTX_TOKEN.encode() in blob  # the context itself never ships
        loaded = ship_loads(blob, worker_ctx)
        assert loaded["ctx"] is worker_ctx
        assert loaded["n"] == 3

    def test_unknown_persistent_id_is_rejected(self, ctx):
        import io

        from repro.dist.shipping import ShipPickler

        marker = object()

        class WrongPid(ShipPickler):
            def persistent_id(self, obj):
                return "gpf:wrong" if obj is marker else None

        buffer = io.BytesIO()
        WrongPid(buffer, ctx).dump(marker)
        with pytest.raises(pickle.UnpicklingError, match="gpf:wrong"):
            ship_loads(buffer.getvalue(), ctx)


class TestParallelCollectionBundles:
    def test_slices_ship_as_compressed_bundles(self, ctx, worker_ctx):
        data = [(f"k{i % 5}", i) for i in range(200)]
        rdd = ctx.parallelize(data, 4)
        blob = ship_dumps(rdd, ctx)
        loaded = ship_loads(blob, worker_ctx)
        assert loaded.ctx is worker_ctx
        # Slices decode lazily — they arrive as bundle views, not lists.
        assert all(not isinstance(s, list) for s in loaded._slices if s)
        restored = [kv for part in loaded._slices for kv in part]
        assert restored == data

    def test_empty_slices_survive(self, ctx, worker_ctx):
        rdd = ctx.parallelize([1], 3)  # two of three slices are empty
        loaded = ship_loads(ship_dumps(rdd, ctx), worker_ctx)
        slices = [list(s) for s in loaded._slices]
        assert len(slices) == 3
        assert sorted(sum(slices, [])) == [1]
        assert slices.count([]) == 2

    def test_bundle_form_beats_pickled_lists(self, ctx, read_pairs):
        """The point of the GPB2 path: ship traffic shrinks by the
        genomic codec's compression ratio (Table 3)."""
        rdd = ctx.parallelize(read_pairs, 2)
        shipped = len(ship_dumps(rdd, ctx))
        plain = len(pickle.dumps(read_pairs))
        assert shipped < plain

    def test_roundtrip_over_a_socket_in_small_chunks(self, ctx, worker_ctx):
        """A shipped task crossing a real socket under torn reads."""
        import threading

        data = list(range(500))
        payload = (ctx.parallelize(data, 2), lambda x: x + 1)
        blob = ship_dumps(payload, ctx)
        a, b = socket.socketpair()
        try:
            # Tiny send buffer forces many partial reads on the receiver.
            a.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
            sender = threading.Thread(
                target=protocol.send_frame,
                args=(a, protocol.MSG_TASK, {"ns": 0}, blob),
            )
            sender.start()
            kind, header, body = protocol.recv_frame(b)
            sender.join()
        finally:
            a.close()
            b.close()
        assert kind == protocol.MSG_TASK
        rdd, func = ship_loads(body, worker_ctx)
        assert [func(x) for part in rdd._slices for x in part] == [
            x + 1 for x in data
        ]

"""Wire-protocol framing over real socketpairs, including torn reads.

Satellite of the distributed plane: every framing property the cluster
relies on is pinned here — partial-read reassembly, crc detection of
bit flips, typed exception transport, and orderly-close semantics.
"""

import pickle
import socket
import struct
import threading

import pytest

from repro.dist import protocol
from repro.engine.faults import ShuffleFetchFailedError, WorkerLostError


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_roundtrip_header_and_body(pair):
    a, b = pair
    body = bytes(range(256)) * 100
    protocol.send_frame(a, protocol.MSG_TASK, {"ns": 7, "x": [1, 2]}, body)
    kind, header, got = protocol.recv_frame(b)
    assert kind == protocol.MSG_TASK
    assert header == {"ns": 7, "x": [1, 2]}
    assert got == body


def test_empty_header_and_body(pair):
    a, b = pair
    protocol.send_frame(a, protocol.MSG_PING)
    kind, header, body = protocol.recv_frame(b)
    assert (kind, header, body) == (protocol.MSG_PING, {}, b"")


def test_multiple_frames_on_one_connection(pair):
    a, b = pair
    for i in range(5):
        protocol.send_frame(a, protocol.MSG_RESULT, {"i": i}, bytes([i]) * i)
    for i in range(5):
        kind, header, body = protocol.recv_frame(b)
        assert header["i"] == i
        assert body == bytes([i]) * i


def test_torn_writes_reassemble(pair):
    """A frame dribbled one byte at a time still decodes: recv_exactly
    must loop over arbitrarily small partial reads."""
    a, b = pair
    body = b"GPB2-payload" * 50
    protocol.send_frame(a, protocol.MSG_BLOCK, {"shuffle": 3}, body)
    # Re-send the identical wire bytes, one byte per send, from a thread.
    buffer = bytearray()
    a2, b2 = socket.socketpair()
    try:
        kind, header, got = protocol.recv_frame(b)
        assert got == body

        import io

        sink = io.BytesIO()

        class _Capture:
            def sendall(self, data):
                sink.write(data)

        protocol.send_frame(_Capture(), protocol.MSG_BLOCK, {"shuffle": 3}, body)
        wire = sink.getvalue()

        def dribble():
            for i in range(0, len(wire)):
                a2.sendall(wire[i : i + 1])

        t = threading.Thread(target=dribble)
        t.start()
        kind2, header2, got2 = protocol.recv_frame(b2)
        t.join()
        assert (kind2, header2, got2) == (kind, header, got)
    finally:
        a2.close()
        b2.close()
        del buffer


def test_eof_mid_frame_raises_connection_closed(pair):
    a, b = pair
    # Send only the length prefix plus half a frame, then close.
    a.sendall(struct.pack(">I", 1000) + b"x" * 10)
    a.close()
    with pytest.raises(protocol.ConnectionClosed):
        protocol.recv_frame(b)


def test_eof_on_frame_boundary_raises_connection_closed(pair):
    a, b = pair
    a.close()
    with pytest.raises(protocol.ConnectionClosed):
        protocol.recv_frame(b)


def test_oversized_length_prefix_is_refused(pair):
    a, b = pair
    a.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
    with pytest.raises(protocol.ProtocolError, match="exceeds cap"):
        protocol.recv_frame(b)


def test_bit_flip_is_caught_by_crc(pair):
    """The GPFB crc inside the frame catches in-flight corruption."""
    import io

    sink = io.BytesIO()

    class _Capture:
        def sendall(self, data):
            sink.write(data)

    protocol.send_frame(_Capture(), protocol.MSG_TASK, {"ns": 1}, b"payload")
    wire = bytearray(sink.getvalue())
    wire[-3] ^= 0x40  # flip one bit inside the payload
    a, b = pair
    a.sendall(bytes(wire))
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_frame(b)


class TestErrorTransport:
    def test_typed_fault_survives_the_wire(self, pair):
        a, b = pair
        exc = WorkerLostError("w-3", ConnectionResetError("peer gone"))
        protocol.send_error(a, exc, "Traceback: ...")
        kind, header, _ = protocol.recv_frame(b)
        assert kind == protocol.MSG_ERROR
        decoded = protocol.decode_error(header)
        assert isinstance(decoded, WorkerLostError)
        assert decoded.worker == "w-3"
        assert decoded.remote_traceback == "Traceback: ..."

    def test_shuffle_fetch_failure_survives_the_wire(self, pair):
        a, b = pair
        protocol.send_error(a, ShuffleFetchFailedError(5, 2, "10.0.0.9:41000"))
        _, header, _ = protocol.recv_frame(b)
        decoded = protocol.decode_error(header)
        assert isinstance(decoded, ShuffleFetchFailedError)
        assert decoded.shuffle_id == 5
        assert decoded.map_partition == 2

    def test_unpicklable_exception_degrades_to_remote_error(self, pair):
        a, b = pair

        class Local(Exception):  # not importable on the "other side"
            def __reduce__(self):
                raise TypeError("nope")

        protocol.send_error(a, Local("boom"), "tb")
        _, header, _ = protocol.recv_frame(b)
        decoded = protocol.decode_error(header)
        assert isinstance(decoded, protocol.RemoteError)
        assert decoded.error_type == "Local"
        assert "boom" in str(decoded)
        assert decoded.remote_traceback == "tb"

    def test_remote_error_is_itself_picklable(self):
        err = protocol.RemoteError("ValueError", "bad", "tb")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, protocol.RemoteError)
        assert clone.error_type == "ValueError"

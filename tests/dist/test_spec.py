"""CLI spec parsers: HOST:PORT and workers specs with typed errors."""

from argparse import ArgumentTypeError

import pytest

from repro.dist.spec import (
    WorkersSpec,
    format_hostport,
    parse_hostport,
    parse_workers,
)


class TestParseHostport:
    def test_plain_address(self):
        assert parse_hostport("127.0.0.1:7077") == ("127.0.0.1", 7077)

    def test_hostname(self):
        assert parse_hostport("node-3.local:80") == ("node-3.local", 80)

    def test_port_zero_is_allowed(self):
        assert parse_hostport("0.0.0.0:0") == ("0.0.0.0", 0)

    def test_surrounding_whitespace_is_stripped(self):
        assert parse_hostport("  10.0.0.1:7077 ") == ("10.0.0.1", 7077)

    def test_roundtrip_through_format(self):
        assert parse_hostport(format_hostport(("h", 1234))) == ("h", 1234)

    @pytest.mark.parametrize(
        "text",
        ["", "nope", "host:", ":7077", "host:abc", "host:-1", "host:70777"],
    )
    def test_malformed_specs_raise_typed_errors(self, text):
        with pytest.raises(ArgumentTypeError):
            parse_hostport(text)

    def test_error_message_names_the_bad_input(self):
        with pytest.raises(ArgumentTypeError, match="bad-address"):
            parse_hostport("bad-address")
        with pytest.raises(ArgumentTypeError, match="not an integer"):
            parse_hostport("host:xyz")
        with pytest.raises(ArgumentTypeError, match=r"\[0, 65535\]"):
            parse_hostport("host:99999")


class TestParseWorkers:
    def test_count_form(self):
        spec = parse_workers("4")
        assert spec == WorkersSpec(count=4)
        assert spec.addresses == []

    def test_address_list_form(self):
        spec = parse_workers("10.0.0.1:7077,10.0.0.2:7077")
        assert spec.count == 2
        assert spec.addresses == [("10.0.0.1", 7077), ("10.0.0.2", 7077)]

    def test_single_address_counts_as_list(self):
        spec = parse_workers("127.0.0.1:7077")
        assert spec.count == 1
        assert spec.addresses == [("127.0.0.1", 7077)]

    @pytest.mark.parametrize(
        "text",
        ["", "  ", "0", "-2", "four", "a:1,,b:2", "a:1,b:notaport", "a:1,"],
    )
    def test_malformed_specs_raise_typed_errors(self, text):
        with pytest.raises(ArgumentTypeError):
            parse_workers(text)

    def test_empty_entry_error_is_positional(self):
        with pytest.raises(ArgumentTypeError, match="position 1"):
            parse_workers("a:1,,b:2")


class TestCliIntegration:
    """argparse renders these as usage errors (exit 2), not tracebacks."""

    def test_worker_connect_rejects_malformed_address(self, capsys):
        from repro.cli.main import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["worker", "--connect", "nonsense"])
        assert excinfo.value.code == 2
        assert "expected HOST:PORT" in capsys.readouterr().err

    def test_serve_expect_workers_rejects_zero(self, capsys):
        from repro.cli.main import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                [
                    "serve",
                    "--state-dir",
                    "/tmp/x",
                    "--backend",
                    "cluster",
                    "--expect-workers",
                    "0",
                ]
            )
        assert excinfo.value.code == 2
        assert "at least one worker" in capsys.readouterr().err

    def test_cluster_fields_reach_engine_config(self):
        from repro.cli.main import _cluster_engine_fields, build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--state-dir",
                "/tmp/x",
                "--backend",
                "cluster",
                "--cluster-listen",
                "0.0.0.0:7171",
                "--expect-workers",
                "3",
                "--cluster-wait",
                "12.5",
            ]
        )
        fields = _cluster_engine_fields(args)
        assert fields == {
            "cluster_wait": 12.5,
            "cluster_listen": "0.0.0.0:7171",
            "cluster_min_workers": 3,
        }

    def test_non_cluster_backend_adds_no_fields(self):
        from repro.cli.main import _cluster_engine_fields, build_parser

        args = build_parser().parse_args(
            ["serve", "--state-dir", "/tmp/x", "--backend", "threads"]
        )
        assert _cluster_engine_fields(args) == {}

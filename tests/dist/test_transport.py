"""Transport registry and executor thread-fallback telemetry."""

import pytest

from repro.dist.transport import (
    Transport,
    available_transports,
    create_transport,
)
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.obs import TelemetryRegistry


class TestRegistry:
    def test_builtin_backends_resolve(self):
        assert isinstance(create_transport("serial"), SerialExecutor)
        threads = create_transport("threads", num_workers=2)
        assert isinstance(threads, ThreadExecutor)
        threads.shutdown()

    def test_cluster_is_listed_and_lazily_resolvable(self):
        assert "cluster" in available_transports()
        transport = create_transport("cluster", num_workers=2)
        try:
            assert isinstance(transport, Transport)
            assert type(transport).__name__ == "ClusterExecutor"
        finally:
            transport.shutdown()

    def test_unknown_backend_names_the_options(self):
        with pytest.raises(ValueError, match="cluster"):
            create_transport("quantum")
        with pytest.raises(ValueError, match="unknown executor backend"):
            make_executor("quantum")

    def test_make_executor_still_builds_locals(self):
        ex = make_executor("process", num_workers=2, blacklist_after=5)
        try:
            assert isinstance(ex, ProcessExecutor)
            assert ex.blacklist_after == 5
        finally:
            ex.shutdown()

    def test_default_execute_runs_inline(self):
        transport = SerialExecutor()
        sentinel = object()
        task, value = transport.execute(lambda t: (t, 41)[1] + 1, sentinel)
        assert task is sentinel
        assert value == 42

    def test_local_transports_never_lose_map_outputs(self):
        assert SerialExecutor().missing_map_outputs(0) == []


class TestFallbackTelemetry:
    """Satellite: thread fallbacks are counted, total and per reason."""

    def test_unpicklable_batch_counts_a_fallback(self):
        ex = ProcessExecutor(num_workers=2)
        ex.telemetry = TelemetryRegistry()
        try:
            captured = object()  # unpicklable-by-plain-pickle closure
            results = ex.run_all(
                [lambda i=i: (id(captured), i)[1] for i in range(4)]
            )
            assert results == [0, 1, 2, 3]
            assert ex.fallback_batches == 1
            assert ex.telemetry.counter("executor.fallbacks") == 1
            assert ex.telemetry.counter("executor.fallbacks.unpicklable") == 1
        finally:
            ex.shutdown()

    def test_blacklisted_pool_counts_per_reason(self):
        ex = ProcessExecutor(num_workers=2, blacklist_after=1)
        ex.telemetry = TelemetryRegistry()
        try:
            assert ex.note_slot_failure("timeout") is True
            assert ex.run_all([lambda: 1, lambda: 2]) == [1, 2]
            assert ex.telemetry.counter("executor.fallbacks.blacklisted") == 1
        finally:
            ex.shutdown()

    def test_fallback_event_reaches_the_bus(self):
        from repro.obs import EventBus

        seen = []
        ex = ProcessExecutor(num_workers=2)
        ex.events = EventBus()
        ex.events.subscribe(lambda e: seen.append(e))
        try:
            captured = object()
            ex.run_all([lambda: id(captured)])
        finally:
            ex.shutdown()
        incidents = [e for e in seen if e.get("kind") == "executor.incident"]
        assert incidents and incidents[0]["reason"] == "unpicklable"

    def test_no_telemetry_attached_is_fine(self):
        ex = ProcessExecutor(num_workers=2)
        try:
            captured = object()
            assert ex.run_all([lambda: (id(captured), 9)[1]]) == [9]
            assert ex.fallback_batches == 1
        finally:
            ex.shutdown()

"""The acceptance bar: WGS over a 2-worker loopback fleet writes a VCF
byte-identical to the thread backend's, and survives losing a worker."""

import threading
import time

import pytest

from repro.dist.worker import WorkerDaemon
from repro.engine.context import EngineConfig, GPFContext
from repro.formats.vcf import sort_records, write_vcf
from repro.wgs import build_wgs_pipeline


def _run_wgs(tmp_path, inputs, backend, tag, workers=0):
    reference, known_sites, pairs = inputs
    config = EngineConfig(
        default_parallelism=3,
        executor_backend=backend,
        num_workers=4,
        cluster_min_workers=workers,
        cluster_wait=10.0,
        spill_dir=str(tmp_path / f"spill_{tag}"),
    )
    ctx = GPFContext(config)
    daemons = []
    try:
        if backend == "cluster":
            port = ctx.executor.fleet.port
            for i in range(workers):
                daemon = WorkerDaemon(
                    ("127.0.0.1", port),
                    slots=2,
                    worker_id=f"wgs-{tag}-w{i}",
                    root_dir=str(tmp_path / f"{tag}_worker{i}"),
                )
                daemon.start()
                daemons.append(daemon)
            assert ctx.executor.fleet.wait_for_workers(workers, 10.0)
        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(pairs, 3),
            known_sites,
            partition_length=4_000,
        )
        handles.pipeline.run(optimize=True)
        calls = handles.vcf.rdd.collect()
        out = str(tmp_path / f"{tag}.vcf")
        write_vcf(
            handles.vcf.header,
            sort_records(calls, reference.contig_names),
            out,
        )
        with open(out, "rb") as fh:
            return fh.read(), ctx.telemetry.snapshot(), daemons
    finally:
        for daemon in daemons:
            daemon.stop()
        ctx.stop()


@pytest.fixture(scope="module")
def wgs_inputs(reference, known_sites, read_pairs):
    return reference, known_sites, read_pairs


def test_cluster_vcf_is_byte_identical_to_threads(tmp_path, wgs_inputs):
    thread_vcf, _, _ = _run_wgs(tmp_path, wgs_inputs, "threads", "threads")
    cluster_vcf, telemetry, _ = _run_wgs(
        tmp_path, wgs_inputs, "cluster", "cluster", workers=2
    )
    assert cluster_vcf == thread_vcf
    assert len(cluster_vcf) > 100
    assert telemetry["counters"].get("dist.tasks_shipped", 0) > 0


def test_wgs_survives_worker_loss_mid_job(tmp_path, wgs_inputs):
    """Kill one of two workers while the pipeline runs; the driver must
    requeue its tasks and finish with the same bytes — never hang."""
    reference, known_sites, pairs = wgs_inputs
    baseline, _, _ = _run_wgs(tmp_path, wgs_inputs, "threads", "base")
    config = EngineConfig(
        default_parallelism=3,
        executor_backend="cluster",
        cluster_min_workers=2,
        cluster_wait=10.0,
        spill_dir=str(tmp_path / "spill_loss"),
    )
    ctx = GPFContext(config)
    daemons = []
    try:
        port = ctx.executor.fleet.port
        for i in range(2):
            daemon = WorkerDaemon(
                ("127.0.0.1", port),
                slots=2,
                worker_id=f"loss-w{i}",
                root_dir=str(tmp_path / f"loss_worker{i}"),
            )
            daemon.start()
            daemons.append(daemon)
        assert ctx.executor.fleet.wait_for_workers(2, 10.0)
        killer = threading.Timer(0.5, daemons[0].stop)
        killer.start()
        start = time.monotonic()
        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(pairs, 3),
            known_sites,
            partition_length=4_000,
        )
        handles.pipeline.run(optimize=True)
        calls = handles.vcf.rdd.collect()
        killer.cancel()
        assert time.monotonic() - start < 240  # finished, did not hang
        out = str(tmp_path / "loss.vcf")
        write_vcf(
            handles.vcf.header,
            sort_records(calls, reference.contig_names),
            out,
        )
        with open(out, "rb") as fh:
            assert fh.read() == baseline
    finally:
        for daemon in daemons:
            daemon.stop()
        ctx.stop()

"""In-process fleet tests: real sockets, real workers, loopback only.

Each test spins up a driver ``GPFContext`` with the cluster transport
(ephemeral listen port) plus one or two ``WorkerDaemon`` instances in
the same process — the full wire path (register, ship, P2P fetch,
heartbeat, loss) without subprocess overhead.
"""

import contextlib
import threading
import time

import pytest

from repro.dist.worker import WorkerDaemon
from repro.engine.context import EngineConfig, GPFContext


@contextlib.contextmanager
def cluster(tmp_path, workers=1, slots=2, tag="c", **config_kwargs):
    config = EngineConfig(
        default_parallelism=4,
        executor_backend="cluster",
        cluster_min_workers=workers,
        cluster_wait=10.0,
        cluster_heartbeat_timeout=5.0,
        spill_dir=str(tmp_path / f"spill_{tag}"),
        **config_kwargs,
    )
    ctx = GPFContext(config)
    daemons = []
    try:
        port = ctx.executor.fleet.port
        for i in range(workers):
            daemon = WorkerDaemon(
                ("127.0.0.1", port),
                slots=slots,
                worker_id=f"{tag}-w{i}",
                root_dir=str(tmp_path / f"{tag}_worker{i}"),
            )
            daemon.start()
            daemons.append(daemon)
        assert ctx.executor.fleet.wait_for_workers(workers, 10.0)
        yield ctx, daemons
    finally:
        for daemon in daemons:
            daemon.stop()
        ctx.stop()


class TestBasicJobs:
    def test_map_collect_ships_tasks(self, tmp_path):
        with cluster(tmp_path, workers=1, tag="map") as (ctx, _):
            result = ctx.parallelize(range(100), 4).map(lambda x: x * 2).collect()
            assert result == [x * 2 for x in range(100)]
            assert ctx.telemetry.counter("dist.tasks_shipped") >= 4
            assert ctx.telemetry.counter("executor.fallbacks") == 0
            assert ctx.executor.fallback_batches == 0

    def test_shuffle_runs_peer_to_peer(self, tmp_path):
        with cluster(tmp_path, workers=2, tag="shuf") as (ctx, _):
            data = [(f"k{i % 7}", i) for i in range(140)]
            result = dict(
                ctx.parallelize(data, 4)
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            expected: dict = {}
            for k, v in data:
                expected[k] = expected.get(k, 0) + v
            assert result == expected
            # Reduce tasks fetched map outputs over worker block servers.
            assert ctx.telemetry.counter("dist.fetches") > 0
            assert ctx.telemetry.counter("dist.fetch_bytes") > 0

    def test_remote_task_metrics_land_in_the_driver(self, tmp_path):
        with cluster(tmp_path, workers=1, tag="met") as (ctx, daemons):
            ctx.parallelize(range(40), 4).map(lambda x: x + 1).collect()
            job = ctx.metrics.job()
            assert job.core_seconds > 0  # worker-measured run times
            workers = {
                t.worker for s in job.stages for t in s.tasks if t.worker
            }
            assert workers == {daemons[0].worker_id}

    def test_per_worker_telemetry_and_gauge(self, tmp_path):
        with cluster(tmp_path, workers=2, tag="tel") as (ctx, daemons):
            ctx.parallelize(range(80), 8).map(lambda x: x).collect()
            assert ctx.telemetry.gauge("dist.workers") == 2
            per_worker = sum(
                ctx.telemetry.counter(f"dist.worker.{d.worker_id}.tasks")
                for d in daemons
            )
            assert per_worker == ctx.telemetry.counter("dist.tasks_shipped")

    def test_fleet_snapshot_rows(self, tmp_path):
        with cluster(tmp_path, workers=2, slots=3, tag="snap") as (ctx, daemons):
            # wait_for_workers returns on the first slot of each worker;
            # the remaining slot registrations may still be in flight.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                rows = {
                    r["worker"]: r for r in ctx.executor.fleet.fleet_snapshot()
                }
                if sum(r["slots"] for r in rows.values()) == 6:
                    break
                time.sleep(0.05)
            assert set(rows) == {d.worker_id for d in daemons}
            for row in rows.values():
                assert row["alive"] is True
                assert row["slots"] == 3
                assert ":" in row["fetch"]


class TestWorkerLoss:
    def test_job_survives_a_worker_killed_mid_run(self, tmp_path):
        with cluster(tmp_path, workers=2, tag="kill") as (ctx, daemons):
            victim = daemons[0]
            release = threading.Event()

            def slow(x):
                time.sleep(0.05)
                return x * 10

            # Warm run so both workers hold tasks, then kill one and
            # run again: its parked slots are dead sockets the driver
            # must detect, evict, and retry around.
            assert ctx.parallelize(range(8), 8).map(slow).collect() == [
                x * 10 for x in range(8)
            ]
            killer = threading.Timer(0.08, victim.stop)
            killer.start()
            try:
                result = ctx.parallelize(range(16), 16).map(slow).collect()
            finally:
                killer.cancel()
                release.set()
            assert result == [x * 10 for x in range(16)]
            assert ctx.telemetry.counter("dist.workers_lost") >= 1
            assert ctx.metrics.executor_events.get("worker_lost", 0) >= 1
            live = ctx.executor.fleet.live_workers()
            assert victim.worker_id not in {w.id for w in live}

    def test_all_workers_dead_falls_back_inline(self, tmp_path):
        with cluster(tmp_path, workers=1, tag="dead") as (ctx, daemons):
            ctx.parallelize(range(4), 4).map(lambda x: x).collect()
            daemons[0].stop()
            deadline = time.monotonic() + 10.0
            while ctx.executor.fleet.live_workers():
                if time.monotonic() > deadline:
                    pytest.fail("fleet never noticed the dead worker")
                time.sleep(0.1)
            result = ctx.parallelize(range(12), 4).map(lambda x: -x).collect()
            assert result == [-x for x in range(12)]
            assert ctx.telemetry.counter("executor.fallbacks.no_workers") > 0

    def test_fetch_failure_recovers_lost_map_outputs(self, tmp_path):
        """Kill the worker holding half the map outputs *between* two
        collects of the same shuffled RDD: the reduce side hits dead
        block servers, raises ShuffleFetchFailedError, and the
        scheduler regenerates the missing maps."""
        with cluster(tmp_path, workers=2, tag="fetch") as (ctx, daemons):
            data = [(f"k{i % 5}", i) for i in range(100)]
            shuffled = ctx.parallelize(data, 4).reduce_by_key(lambda a, b: a + b)
            first = sorted(shuffled.collect())
            daemons[0].stop()
            deadline = time.monotonic() + 10.0
            while len(ctx.executor.fleet.live_workers()) > 1:
                if time.monotonic() > deadline:
                    pytest.fail("fleet never evicted the dead worker")
                time.sleep(0.1)
            second = sorted(shuffled.collect())
            assert second == first
            kinds = {f.error_type for f in ctx.metrics.failures}
            assert "ShuffleFetchFailedError" in kinds


class TestChaosSites:
    def test_dist_ship_fault_is_retried(self, tmp_path):
        from repro.chaos import ChaosPlan

        plan = ChaosPlan(
            seed=3, rules=[{"site": "dist.ship", "fault": "conn_reset", "nth": 1}]
        )
        with cluster(tmp_path, workers=1, tag="ship", chaos=plan) as (ctx, _):
            result = ctx.parallelize(range(20), 4).map(lambda x: x + 5).collect()
            assert result == [x + 5 for x in range(20)]
            assert len(ctx.metrics.failures) >= 1

    def test_dist_heartbeat_fault_evicts_the_worker(self, tmp_path):
        from repro.chaos import ChaosPlan

        plan = ChaosPlan(
            seed=3,
            rules=[{"site": "dist.heartbeat", "fault": "conn_reset", "nth": 1}],
        )
        with cluster(tmp_path, workers=2, tag="hb", chaos=plan) as (ctx, _):
            result = ctx.parallelize(range(20), 4).map(lambda x: x).collect()
            assert result == list(range(20))
            assert ctx.telemetry.counter("dist.workers_lost") == 1
            kinds = {f.error_type for f in ctx.metrics.failures}
            assert "WorkerLostError" in kinds

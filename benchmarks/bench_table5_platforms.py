"""Table 5: platform comparison — cores and parallel efficiency.

Paper's rows::

    GPF           full pipeline, in-memory   2048 cores   >50%
    Churchill     full pipeline              768 cores    28%
    HugeSeq       full pipeline              48 cores     ~50%
    GATK-Queue    full pipeline              48 cores     ~50%
    ADAM          Cleaner, in-memory         1024 cores   14.8%
    GATK4         Cleaner+Caller, in-memory  1024 cores   41.6%
    Persona       Aligner+Cleaner            512 cores    51.1%

Reproduced by simulating each system's workload at its paper core count
and reporting parallel efficiency relative to the system's own 48-core
run (speedup achieved / cores ratio), which is how multi-node pipeline
papers report it.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import ClusterSpec
from repro.cluster.workloads import (
    baseline_tool_stages,
    churchill_stages,
    gpf_wgs_stages,
)

MODEL = DEFAULT_COST_MODEL
BASE_CORES = 48


def _stages(system: str, reads: int):
    if system == "gpf":
        return gpf_wgs_stages(reads, MODEL)
    if system == "churchill":
        return churchill_stages(reads, MODEL)
    if system == "adam":
        return (
            baseline_tool_stages("adam", "markdup", reads, MODEL)
            + baseline_tool_stages("adam", "realign", reads, MODEL)
            + baseline_tool_stages("adam", "bqsr", reads, MODEL)
        )
    if system == "gatk4":
        return (
            baseline_tool_stages("gatk4", "markdup", reads, MODEL)
            + baseline_tool_stages("gatk4", "bqsr", reads, MODEL)
        )
    if system == "persona":
        # Persona's published efficiency number covers its parallel
        # aligner/cleaner dataflow; the serial AGD conversion is excluded
        # here (it is Fig. 11(d)'s subject instead).
        return [
            s
            for s in baseline_tool_stages("persona", "align", reads, MODEL)
            if "convert" not in s.name
        ]
    raise ValueError(system)


def relative_efficiency(system: str, cores: int, reads: int) -> float:
    def makespan(c: int) -> float:
        sim = ClusterSimulator(ClusterSpec.with_cores(c))
        return sim.run_job(_stages(system, reads)).makespan

    speedup = makespan(BASE_CORES) / makespan(cores)
    return speedup / (cores / BASE_CORES)


PAPER = [
    ("gpf", "full, in-memory", 2048, ">50%"),
    ("churchill", "full", 768, "28%"),
    ("adam", "Cleaner, in-memory", 1024, "14.8%"),
    ("gatk4", "Cleaner+Caller, in-memory", 1024, "41.6%"),
    ("persona", "Aligner+Cleaner", 512, "51.1%"),
]


def test_table5_platform_comparison(benchmark):
    reads = MODEL.reads_for_gigabases(146.9)

    def sweep():
        return {
            system: relative_efficiency(system, cores, reads)
            for system, _, cores, _ in PAPER
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [system, scope, cores, f"{100 * results[system]:.0f}%", paper]
        for system, scope, cores, paper in PAPER
    ]
    print_table(
        "Table 5 — platform comparison (parallel efficiency at paper cores)",
        ["system", "scope", "cores", "efficiency (measured)", "efficiency (paper)"],
        rows,
    )

    # The ordering the paper reports: GPF keeps the highest efficiency at
    # the largest scale; ADAM is the worst of the in-memory systems;
    # Churchill sits in between.
    assert results["gpf"] > results["churchill"]
    assert results["gpf"] > results["adam"]
    assert results["gatk4"] > results["adam"]
    assert results["gpf"] > 0.40  # paper: >50% at 2048 cores
    assert results["adam"] < 0.45  # paper: 14.8% at 1024 cores

"""Loopback fleet scaling: measured N-worker WGS wall time vs the
cluster simulator's prediction (§5.4's scaling methodology, in-process).

The same seeded workload as ``bench_pipeline.py`` runs through the
cluster transport against N = 1, 2, 4 ``gpf worker`` **subprocesses**
on loopback (separate interpreters — real sockets, real ship/fetch
traffic).  A serial-backend run calibrates the simulator job (one
:class:`~repro.cluster.simulator.Task` per measured task, uncontended
task times), and each fleet size is simulated with its *effective* core
budget — ``min(workers x slots, host cpus)`` — because loopback workers
share one machine: on a many-core host the model predicts near-linear
scaling until the cores saturate, and on a small host it predicts the
flat profile the measurement actually shows.  The N=1 measurement
calibrates a constant transport overhead (ship/serialize/IPC); N=2/4
must then agree with the simulator within ``TOLERANCE`` (documented in
DESIGN.md §15).  Every fleet size must write a VCF byte-identical to
the calibration run's.

Run directly (``python benchmarks/bench_dist_scaling.py``) to fold a
``dist_scaling`` entry into ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

try:
    from benchmarks.bench_pipeline import PARTITION_LENGTH, _workload
    from benchmarks.conftest import print_table
except ModuleNotFoundError:  # direct script run from benchmarks/
    from bench_pipeline import PARTITION_LENGTH, _workload
    from conftest import print_table
from repro.cluster.simulator import ClusterSimulator, Stage, Task
from repro.cluster.topology import ClusterSpec, NodeSpec
from repro.engine.context import EngineConfig, GPFContext
from repro.formats.vcf import sort_records, write_vcf
from repro.wgs import build_wgs_pipeline

FLEET_SIZES = (1, 2, 4)
SLOTS_PER_WORKER = 2
PARALLELISM = 8
#: Measured-vs-predicted agreement bar for N>1 (documented in DESIGN §15:
#: loopback workers share one machine's memory bus, GIL-holding stretches,
#: and OS scheduler, so the model's ideal-node assumption only holds
#: approximately).
TOLERANCE = 0.35


def _effective_cores(n_workers: int) -> int:
    """The parallelism a loopback fleet can actually realize."""
    host = os.cpu_count() or 1
    return max(1, min(n_workers * SLOTS_PER_WORKER, host))


def _run_serial_calibration(reference, known_sites, pairs, workdir: str):
    """Uncontended per-task times + the byte-identity reference VCF."""
    ctx = GPFContext(
        EngineConfig(
            default_parallelism=PARALLELISM,
            executor_backend="serial",
            spill_dir=os.path.join(workdir, "spill_serial"),
        )
    )
    try:
        vcf_path = os.path.join(workdir, "serial.vcf")
        _run_pipeline(ctx, reference, known_sites, pairs, vcf_path)
        with open(vcf_path, "rb") as fh:
            return ctx.metrics.job(), fh.read()
    finally:
        ctx.stop()


def _run_pipeline(ctx, reference, known_sites, pairs, vcf_path: str):
    handles = build_wgs_pipeline(
        ctx,
        reference,
        ctx.parallelize(pairs, PARALLELISM),
        known_sites,
        partition_length=PARTITION_LENGTH,
    )
    handles.pipeline.run(optimize=True)
    calls = handles.vcf.rdd.collect()
    write_vcf(
        handles.vcf.header, sort_records(calls, reference.contig_names), vcf_path
    )


def _spawn_workers(port: int, count: int, workdir: str) -> list[subprocess.Popen]:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = []
    for i in range(count):
        procs.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli.main",
                    "worker",
                    "--connect",
                    f"127.0.0.1:{port}",
                    "--slots",
                    str(SLOTS_PER_WORKER),
                    "--id",
                    f"bench-w{i}",
                    "--work-dir",
                    os.path.join(workdir, f"worker{i}"),
                ],
                env=env,
                stderr=subprocess.DEVNULL,
            )
        )
    return procs


def _run_cluster(reference, known_sites, pairs, workdir: str, n_workers: int):
    """One N-worker fleet run; returns (wall_seconds, vcf_bytes, shipped)."""
    ctx = GPFContext(
        EngineConfig(
            default_parallelism=PARALLELISM,
            executor_backend="cluster",
            cluster_min_workers=n_workers,
            cluster_wait=30.0,
            spill_dir=os.path.join(workdir, f"spill_n{n_workers}"),
        )
    )
    procs: list[subprocess.Popen] = []
    try:
        port = ctx.executor.fleet.port
        procs = _spawn_workers(port, n_workers, workdir)
        if not ctx.executor.fleet.wait_for_workers(n_workers, 30.0):
            raise RuntimeError(f"workers never registered (n={n_workers})")
        vcf_path = os.path.join(workdir, f"cluster_n{n_workers}.vcf")
        t0 = time.perf_counter()
        _run_pipeline(ctx, reference, known_sites, pairs, vcf_path)
        wall = time.perf_counter() - t0
        shipped = ctx.telemetry.counter("dist.tasks_shipped")
        with open(vcf_path, "rb") as fh:
            return wall, fh.read(), shipped
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
        ctx.stop()


def _simulated_makespan(job, cores: int) -> float:
    """Replay the calibrated task graph on a ``cores``-core node."""
    stages = [
        Stage(
            name=stage.name or f"stage{stage.stage_id}",
            tasks=[Task(cpu_seconds=t.run_time) for t in stage.tasks],
        )
        for stage in job.stages
        if stage.tasks
    ]
    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=cores))
    return ClusterSimulator(spec).run_job(stages).makespan


def run_bench() -> dict:
    reference, known_sites, pairs = _workload()
    workdir = tempfile.mkdtemp(prefix="gpf_dist_scaling_")
    try:
        calibration_job, baseline_vcf = _run_serial_calibration(
            reference, known_sites, pairs, workdir
        )
        measured: dict[int, float] = {}
        identical: dict[int, bool] = {}
        shipped: dict[int, float] = {}
        for n in FLEET_SIZES:
            wall, vcf, n_shipped = _run_cluster(
                reference, known_sites, pairs, workdir, n
            )
            measured[n] = wall
            identical[n] = vcf == baseline_vcf
            shipped[n] = n_shipped
        # Constant transport overhead (ship/serialize/IPC, driver-side
        # collects) calibrated from the N=1 fleet against its simulation.
        overhead = max(
            0.0,
            measured[1]
            - _simulated_makespan(calibration_job, _effective_cores(1)),
        )
        rows = []
        fleet_entries = []
        for n in FLEET_SIZES:
            cores = _effective_cores(n)
            predicted = overhead + _simulated_makespan(calibration_job, cores)
            error = abs(measured[n] - predicted) / predicted
            fleet_entries.append(
                {
                    "workers": n,
                    "slots": n * SLOTS_PER_WORKER,
                    "effective_cores": cores,
                    "wall_seconds": measured[n],
                    "predicted_seconds": predicted,
                    "relative_error": error,
                    "within_tolerance": n == 1 or error <= TOLERANCE,
                    "speedup_vs_1": measured[1] / measured[n],
                    "tasks_shipped": shipped[n],
                    "vcf_byte_identical": identical[n],
                }
            )
            rows.append(
                [
                    n,
                    cores,
                    f"{measured[n]:.2f}s",
                    f"{predicted:.2f}s",
                    f"{100 * error:.1f}%",
                    f"{measured[1] / measured[n]:.2f}x",
                    identical[n],
                ]
            )
        print_table(
            "dist_scaling: loopback fleet vs simulator",
            ["workers", "cores", "measured", "predicted", "error", "speedup", "vcf=="],
            rows,
        )
        return {
            "workload": f"{len(pairs)} read pairs, {PARALLELISM}-way, "
            f"{SLOTS_PER_WORKER} slots/worker, loopback subprocess fleet",
            "host_cpus": os.cpu_count() or 1,
            "tolerance": TOLERANCE,
            "transport_overhead_seconds": overhead,
            "fleets": fleet_entries,
            "all_within_tolerance": all(
                e["within_tolerance"] for e in fleet_entries
            ),
            "all_byte_identical": all(identical.values()),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main() -> int:
    summary = run_bench()
    try:
        from benchmarks.bench_history import append_history
    except ModuleNotFoundError:
        from bench_history import append_history

    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_pipeline.json",
    )
    document: dict = {}
    if os.path.exists(path):
        with open(path) as fh:
            document = {
                k: v for k, v in json.load(fh).items() if k != "history"
            }
    document["dist_scaling"] = summary
    append_history(path, document)
    print(f"\nwrote dist_scaling entry to {path}")
    if not summary["all_byte_identical"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

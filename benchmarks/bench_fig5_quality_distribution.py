"""Figure 5: quality-score vs adjacent-delta distributions.

The paper plots, for SRR622461 and SRR504516, (a) the raw quality
histogram (spread out) and (b) the adjacent-difference histogram
(concentrated near zero, mostly within [0, 10]) — the observation behind
delta + Huffman coding.  Regenerated from the two simulated profiles.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.compression.stats import concentration, delta_histogram, quality_histogram
from repro.sim.qualities import ILLUMINA_HISEQ, ILLUMINA_OLD


def test_fig5_quality_distribution(benchmark):
    def compute():
        out = {}
        for profile in (ILLUMINA_HISEQ, ILLUMINA_OLD):
            quals = profile.sample_many(400, 100, seed=42)
            out[profile.name] = {
                "raw": quality_histogram(quals),
                "delta": delta_histogram(quals),
            }
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, hists in results.items():
        raw_conc = concentration(hists["raw"], radius=5)
        delta_conc = concentration(hists["delta"], radius=5)
        small_deltas = sum(
            p for v, p in hists["delta"].items() if -10 <= v <= 10
        )
        peak_delta = max(hists["delta"], key=lambda k: hists["delta"][k])
        rows.append(
            [
                name,
                f"{raw_conc:.0f}%",
                f"{delta_conc:.0f}%",
                f"{small_deltas:.0f}%",
                peak_delta,
            ]
        )
    print_table(
        "Fig. 5 — raw vs delta quality distributions",
        [
            "sample profile",
            "raw mass within ±5 of mode",
            "delta mass within ±5 of mode",
            "deltas in [-10,10]",
            "delta mode",
        ],
        rows,
    )
    for name, hists in results.items():
        # (b): deltas concentrate far more than raw scores (per profile).
        assert concentration(hists["delta"], 5) > concentration(hists["raw"], 5)
        # "the vast majority of adjacent differences are ranged 0-10".
        small = sum(p for v, p in hists["delta"].items() if -10 <= v <= 10)
        assert small > 85.0
        # The mode sits at zero.
        assert max(hists["delta"], key=lambda k: hists["delta"][k]) == 0

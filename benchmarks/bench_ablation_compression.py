"""Ablation: which parts of the GPF codec buy the compression.

DESIGN.md calls out two codec design choices: 2-bit sequence packing and
delta+Huffman quality coding.  This bench measures each in isolation on
realistic simulated reads, against the serializer baselines:

    pickle (Java)  |  compact (Kryo)  |  compact+zlib (Spark shuffle
    compression)   |  2-bit only      |  delta+Huffman only  |  full GPF
"""

from __future__ import annotations

import pickle

import numpy as np

from benchmarks.conftest import print_table
from repro.compression.delta import delta_encode
from repro.compression.huffman import HuffmanCodec
from repro.compression.records import FastqCodec
from repro.compression.twobit import compress_sequence
from repro.engine.serializers import CompactSerializer, PickleSerializer
from repro.formats.fastq import FastqRecord
from repro.sim.qualities import ILLUMINA_HISEQ


def make_reads(n=600, length=100, seed=9):
    rng = np.random.default_rng(seed)
    reads = []
    for i in range(n):
        seq = "".join(rng.choice(list("ACGT"), size=length))
        reads.append(FastqRecord(f"r{i}", seq, ILLUMINA_HISEQ.sample(length, rng)))
    return reads


def test_ablation_codec_components(benchmark):
    reads = make_reads()
    raw = sum(len(r.name) + len(r.sequence) + len(r.quality) + 6 for r in reads)

    def measure():
        out = {"raw text": raw}
        out["pickle (Java)"] = len(PickleSerializer().dumps(reads))
        out["compact (Kryo)"] = len(CompactSerializer().dumps(reads))
        out["compact+zlib"] = len(CompactSerializer(level=6).dumps(reads))
        # 2-bit only: pack sequences, leave qualities as raw bytes.
        twobit_only = 0
        for r in reads:
            blob, masked = compress_sequence(r.sequence, r.quality)
            twobit_only += len(blob) + len(masked) + len(r.name) + 6
        out["2-bit only"] = twobit_only
        # delta+Huffman only: qualities coded, sequences raw.
        deltas = [delta_encode(r.quality) for r in reads]
        freqs: dict[int, int] = {}
        for arr in deltas:
            values, counts = np.unique(arr, return_counts=True)
            for v, c in zip(values.tolist(), counts.tolist()):
                freqs[int(v)] = freqs.get(int(v), 0) + int(c)
        codec = HuffmanCodec.from_frequencies(freqs)
        huff_only = sum(
            len(codec.encode(arr)) + len(r.sequence) + len(r.name) + 6
            for arr, r in zip(deltas, reads)
        )
        out["delta+Huffman only"] = huff_only
        out["full GPF codec"] = len(FastqCodec.encode(reads))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [name, f"{size / 1e3:.1f} KB", f"{size / raw:.2f}x"]
        for name, size in results.items()
    ]
    print_table(
        "Ablation — codec components on 600 simulated reads",
        ["representation", "size", "vs raw"],
        rows,
    )

    # Each component alone compresses; together they compound.
    assert results["2-bit only"] < raw
    assert results["delta+Huffman only"] < raw
    assert results["full GPF codec"] < results["2-bit only"]
    assert results["full GPF codec"] < results["delta+Huffman only"]
    # The full codec beats the Kryo analogue decisively and is competitive
    # with (or better than) generic zlib while staying record-addressable.
    assert results["full GPF codec"] < 0.8 * results["compact (Kryo)"]
    assert results["full GPF codec"] < 1.3 * results["compact+zlib"]
    # Paper: sequences compress ~4x; full records land around 0.5x raw.
    assert results["full GPF codec"] / raw < 0.65


def test_ablation_reference_based_codec(benchmark, bench_reference, bench_aligned):
    """The CRAM-style extension: on aligned records, storing diffs from
    the reference beats even 2-bit packing (DESIGN.md's codec-evolution
    direction, foreshadowed by the paper's conclusion)."""
    from repro.compression.records import SamCodec
    from repro.compression.refbased import RefBasedSamCodec

    mapped = [r for r in bench_aligned if not r.is_unmapped][:300]
    raw = sum(len(r.to_line()) + 1 for r in mapped)

    def measure():
        return {
            "raw SAM text": raw,
            "GPF codec (2-bit)": len(SamCodec.encode(mapped)),
            "reference-based": len(RefBasedSamCodec(bench_reference).encode(mapped)),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name, f"{size / 1e3:.1f} KB", f"{size / raw:.2f}x"]
        for name, size in results.items()
    ]
    print_table(
        "Ablation — reference-based SAM codec on 300 aligned reads",
        ["representation", "size", "vs raw"],
        rows,
    )
    assert results["reference-based"] < results["GPF codec (2-bit)"]
    # Round trip integrity under the winning codec.
    codec = RefBasedSamCodec(bench_reference)
    out = codec.decode(codec.encode(mapped))
    assert [r.seq for r in out] == [r.seq for r in mapped]

"""Figure 10: GPF vs Churchill — execution time and speedup, 128-2048 cores.

Paper's series (minutes)::

    cores      128   256   512   1024   2048
    GPF        174    96    57    37     24     (speedup 1..7.25)
    Churchill  320   210   150   128     —      (flat beyond 1024)

Reproduced on the cluster simulator with calibrated task graphs at the
paper's dataset size (146.9 Gbases).
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import ClusterSpec
from repro.cluster.workloads import churchill_stages, gpf_wgs_stages

PAPER_GPF = {128: 174, 256: 96, 512: 57, 1024: 37, 2048: 24}
PAPER_CHURCHILL = {128: 320, 256: 210, 512: 150, 1024: 128}
CORES = (128, 256, 512, 1024, 2048)


def test_fig10_scalability(benchmark):
    model = DEFAULT_COST_MODEL
    reads = model.reads_for_gigabases(146.9)

    def sweep():
        out = {}
        for cores in CORES:
            sim = ClusterSimulator(ClusterSpec.with_cores(cores))
            gpf = sim.run_job(gpf_wgs_stages(reads, model))
            churchill = sim.run_job(churchill_stages(reads, model))
            out[cores] = {
                "gpf_min": gpf.makespan / 60,
                "churchill_min": churchill.makespan / 60,
                "gpf_eff": gpf.parallel_efficiency(cores),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results[128]["gpf_min"]
    rows = []
    for cores in CORES:
        r = results[cores]
        rows.append(
            [
                cores,
                f"{r['gpf_min']:.0f}",
                PAPER_GPF[cores],
                f"{base / r['gpf_min']:.2f}x",
                f"{r['churchill_min']:.0f}",
                PAPER_CHURCHILL.get(cores, "-"),
                f"{100 * r['gpf_eff']:.0f}%",
            ]
        )
    print_table(
        "Fig. 10 — execution time & scalability (minutes)",
        ["cores", "GPF", "GPF paper", "GPF speedup", "Churchill", "Churchill paper", "GPF eff."],
        rows,
    )

    # Shape checks against the paper.
    speedup = results[128]["gpf_min"] / results[2048]["gpf_min"]
    assert 6.0 <= speedup <= 10.0  # paper: 7.25x over 16x cores
    assert 18 <= results[2048]["gpf_min"] <= 35  # paper: 24 min
    for cores in CORES:
        assert results[cores]["gpf_min"] < results[cores]["churchill_min"]
    # Every simulated GPF point within 25% of the paper's value.
    for cores in CORES:
        assert abs(results[cores]["gpf_min"] - PAPER_GPF[cores]) / PAPER_GPF[cores] < 0.25
    # Churchill saturates: 1024 -> 2048 gains <10%.
    assert results[2048]["churchill_min"] > 0.9 * results[1024]["churchill_min"]

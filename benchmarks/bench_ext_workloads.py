"""Extension: the three instrumented workloads' scaling side by side.

The paper's evaluation scales WGS only; its Fig. 12 instrumentation dump
shows WES and GenePanel runs too.  This bench extends Fig. 10's sweep to
all three workloads — the interesting shape is that smaller captured
fractions stop scaling earlier (fixed costs and the BQSR broadcast weigh
more as data shrinks).
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import ClusterSpec
from repro.cluster.workloads import WORKLOAD_PRESETS, workload_stages

CORES = (128, 256, 512, 1024, 2048)


def test_ext_workload_scaling(benchmark):
    def sweep():
        out = {}
        for workload in WORKLOAD_PRESETS:
            for cores in CORES:
                sim = ClusterSimulator(ClusterSpec.with_cores(cores))
                result = sim.run_job(workload_stages(workload, DEFAULT_COST_MODEL))
                out[(workload, cores)] = result.makespan / 60
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for cores in CORES:
        rows.append(
            [cores]
            + [f"{results[(w, cores)]:.1f}" for w in WORKLOAD_PRESETS]
        )
    print_table(
        "Extension — workload scaling (minutes)",
        ["cores", *WORKLOAD_PRESETS],
        rows,
    )

    speedups = {
        w: results[(w, 128)] / results[(w, 2048)] for w in WORKLOAD_PRESETS
    }
    print(f"\nspeedup 128 -> 2048 cores: " + ", ".join(f"{w} {s:.1f}x" for w, s in speedups.items()))

    # Total time ordering holds at every scale.
    for cores in CORES:
        assert (
            results[("WGS", cores)]
            > results[("WES", cores)]
            > results[("GenePanel", cores)]
        )
    # Smaller workloads saturate earlier: WGS keeps the best speedup.
    assert speedups["WGS"] > speedups["WES"] > speedups["GenePanel"]
    # GenePanel is minutes-scale even at modest core counts (clinical
    # turnaround, the use case panels exist for).
    assert results[("GenePanel", 256)] < 10

"""Table 4: effect of redundancy elimination (real pipeline measurement).

Paper's rows (256 cores, SRR622461)::

    Running time   21 min   -> 18 min      (with elimination)
    Stage Num.     38       -> 22
    Core Hour      74.95 h  -> 63.98 h
    GC Time        7.16 h   -> 6.34 h
    Shuffle Time   46.83min -> 24.29 min
    Shuffle Data   326.1 GB -> 187.0 GB

Reproduced by running the *real* GPF WGS pipeline twice on the engine —
optimizer off ("original") vs on ("redundancy eliminated") — and reading
the same six metrics off the engine's task instrumentation.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.engine.context import EngineConfig, GPFContext
from repro.wgs import build_wgs_pipeline


def run_once(inputs, tmp_path, optimize):
    reference, known_sites, pairs = inputs
    ctx = GPFContext(
        EngineConfig(
            default_parallelism=3,
            serializer="gpf",
            spill_dir=str(tmp_path / f"t4_{optimize}"),
        )
    )
    start = time.perf_counter()
    handles = build_wgs_pipeline(
        ctx, reference, ctx.parallelize(pairs, 3), known_sites, partition_length=4_000
    )
    handles.pipeline.run(optimize=optimize)
    calls = handles.vcf.rdd.collect()
    elapsed = time.perf_counter() - start
    job = ctx.metrics.job()
    stats = {
        "running_time_s": elapsed,
        "stage_num": job.stage_count,
        "core_seconds": job.core_seconds,
        "gc_seconds": job.gc_time,
        "shuffle_seconds": job.shuffle_time,
        "shuffle_bytes": job.shuffle_bytes,
        "calls": sorted(c.key() for c in calls),
    }
    ctx.stop()
    return stats


def test_table4_redundancy_elimination(
    benchmark, bench_reference, bench_known_sites, bench_read_pairs, tmp_path
):
    inputs = (bench_reference, bench_known_sites, bench_read_pairs[:200])

    def run_both():
        return {
            "original": run_once(inputs, tmp_path, optimize=False),
            "eliminated": run_once(inputs, tmp_path, optimize=True),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    orig, opt = results["original"], results["eliminated"]

    rows = [
        ["Running time", f"{orig['running_time_s']:.1f} s", f"{opt['running_time_s']:.1f} s", "21 -> 18 min"],
        ["Stage Num.", orig["stage_num"], opt["stage_num"], "38 -> 22"],
        ["Core seconds", f"{orig['core_seconds']:.1f}", f"{opt['core_seconds']:.1f}", "74.95 -> 63.98 h"],
        ["GC time", f"{orig['gc_seconds'] * 1e3:.1f} ms", f"{opt['gc_seconds'] * 1e3:.1f} ms", "7.16 -> 6.34 h"],
        ["Shuffle time", f"{orig['shuffle_seconds'] * 1e3:.1f} ms", f"{opt['shuffle_seconds'] * 1e3:.1f} ms", "46.83 -> 24.29 min"],
        ["Shuffle data", f"{orig['shuffle_bytes'] / 1e6:.2f} MB", f"{opt['shuffle_bytes'] / 1e6:.2f} MB", "326.1 -> 187.0 GB"],
    ]
    print_table(
        "Table 4 — redundancy elimination (original vs eliminated)",
        ["metric", "original", "eliminated", "paper"],
        rows,
    )

    # Correctness: identical variant output.
    assert orig["calls"] == opt["calls"]
    # The paper's directional claims.
    assert opt["stage_num"] < orig["stage_num"]
    assert opt["shuffle_bytes"] < orig["shuffle_bytes"]
    assert opt["shuffle_seconds"] <= orig["shuffle_seconds"] * 1.1
    # Shuffle-data reduction in the paper is ~43%; ours must be material.
    assert opt["shuffle_bytes"] < 0.8 * orig["shuffle_bytes"]

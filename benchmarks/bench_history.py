"""Benchmark trajectory: keep BENCH_*.json results over time.

A committed benchmark JSON is a single point; regressions only show up
against a *trajectory*.  :func:`append_history` folds the freshly
measured summary into the file's ``history`` list (UTC-timestamped,
bounded), so the committed artifact carries both the latest numbers and
how they moved.  :func:`check_kernel_regression` is the CI guard: it
compares a fresh ``BENCH_kernels.json`` against the committed baseline
and fails when any kernel's measured speedup dropped by more than the
tolerance.

Also a tiny CLI (what the CI perf guard invokes)::

    python benchmarks/bench_history.py check-kernels BASELINE FRESH
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from datetime import datetime, timezone

#: History entries kept per benchmark file; old entries age out so the
#: committed JSON never grows unboundedly.
DEFAULT_KEEP = 50

#: CI guard: fail when a kernel speedup drops more than this fraction
#: below the committed baseline.
DEFAULT_TOLERANCE = 0.30


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def append_history(path: str, summary: dict, keep: int = DEFAULT_KEEP) -> dict:
    """Write ``summary`` plus an updated ``history`` list to ``path``.

    The existing file's history (if any) is carried forward and the new
    entry appended, newest last; the write is atomic (tmp + replace) so
    an interrupted benchmark never truncates the committed artifact.
    Returns the document written.
    """
    history: list[dict] = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                history = json.load(fh).get("history") or []
        except (ValueError, OSError):
            history = []
    entry = {"at": _utc_now_iso()}
    entry.update(summary)
    history.append(entry)
    document = dict(summary)
    document["history"] = history[-max(1, keep) :]
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return document


def _speedups(doc: dict) -> dict[str, float]:
    """kernel name -> measured speedup, skipping history/other keys."""
    out: dict[str, float] = {}
    for name, section in doc.items():
        if isinstance(section, dict) and "speedup" in section:
            out[name] = float(section["speedup"])
    return out


def check_kernel_regression(
    baseline: dict, fresh: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Problems list (empty = pass) comparing kernel speedups.

    A kernel regresses when its fresh speedup is more than ``tolerance``
    (fractionally) below the committed baseline.  Kernels only present
    on one side are reported too — a silently dropped benchmark must
    not look like a pass.
    """
    problems: list[str] = []
    base = _speedups(baseline)
    new = _speedups(fresh)
    for name, old_speedup in sorted(base.items()):
        if name not in new:
            problems.append(f"{name}: missing from fresh results")
            continue
        floor = old_speedup * (1.0 - tolerance)
        if new[name] < floor:
            problems.append(
                f"{name}: speedup {new[name]:.2f}x fell below "
                f"{floor:.2f}x (baseline {old_speedup:.2f}x - {tolerance:.0%})"
            )
    for name in sorted(set(new) - set(base)):
        problems.append(f"{name}: not in baseline (update the committed file)")
    return problems


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 3 or argv[0] != "check-kernels":
        print(
            "usage: bench_history.py check-kernels BASELINE.json FRESH.json",
            file=sys.stderr,
        )
        return 2
    problems = check_kernel_regression(_load(argv[1]), _load(argv[2]))
    for problem in problems:
        print(f"perf regression: {problem}", file=sys.stderr)
    if not problems:
        print("kernel speedups within tolerance of baseline")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 11: per-stage comparison with ADAM, GATK4, and Persona.

Paper's headline ratios at matched core counts:

- (a) MarkDuplicate: GPF 7.3x faster than ADAM, 6.3x than GATK4, ~10x
  than Persona;
- (b) BQSR: 6.4x vs ADAM, 8.4x vs GATK4;
- (c) INDEL realignment: 7.6x vs ADAM;
- (d) aligner throughput (Gbases/s): GPF-BWA above Persona-BWA, and
  Persona's *real* throughput ~20x lower once AGD conversion counts.

(a)-(c) replay calibrated task graphs on the simulator over 128-1024
cores; (d) combines the simulator's alignment throughput with Persona's
published conversion bandwidths (360 MB/s in, 82 MB/s out).
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import ClusterSpec
from repro.cluster.workloads import baseline_tool_stages

CORES = (128, 256, 512, 1024)
PAPER_RATIOS = {
    ("adam", "markdup"): 7.3,
    ("adam", "bqsr"): 6.4,
    ("adam", "realign"): 7.6,
    ("gatk4", "markdup"): 6.3,
    ("gatk4", "bqsr"): 8.4,
}


def run_tool(system: str, tool: str, cores: int, reads: int) -> float:
    sim = ClusterSimulator(ClusterSpec.with_cores(cores))
    return sim.run_job(
        baseline_tool_stages(system, tool, reads, DEFAULT_COST_MODEL)
    ).makespan


def test_fig11_cleaner_stage_comparison(benchmark):
    reads = DEFAULT_COST_MODEL.reads_for_gigabases(146.9)

    def sweep():
        out = {}
        for tool in ("markdup", "bqsr", "realign"):
            for system in ("gpf", "adam", "gatk4"):
                if system == "gatk4" and tool == "realign":
                    continue  # the paper has no GATK4 realignment series
                for cores in CORES:
                    out[(system, tool, cores)] = run_tool(system, tool, cores, reads)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for tool in ("markdup", "bqsr", "realign"):
        rows = []
        for cores in CORES:
            gpf_t = results[("gpf", tool, cores)]
            row = [cores, f"{gpf_t:.0f}s"]
            for system in ("adam", "gatk4"):
                key = (system, tool, cores)
                if key in results:
                    row += [f"{results[key]:.0f}s", f"{results[key] / gpf_t:.1f}x"]
                else:
                    row += ["-", "-"]
            rows.append(row)
        print_table(
            f"Fig. 11 — {tool} strong scaling (seconds)",
            ["cores", "GPF", "ADAM", "ADAM/GPF", "GATK4", "GATK4/GPF"],
            rows,
        )

    # Ratio checks at 512 cores vs the paper's reported speedups (±50%).
    for (system, tool), paper_ratio in PAPER_RATIOS.items():
        measured = results[(system, tool, 512)] / results[("gpf", tool, 512)]
        assert 0.5 * paper_ratio <= measured <= 1.6 * paper_ratio, (
            system,
            tool,
            measured,
        )
    # Both baselines must lose at every core count.
    for key, value in results.items():
        system, tool, cores = key
        if system != "gpf":
            assert value > results[("gpf", tool, cores)]


def test_fig11d_aligner_throughput(benchmark):
    model = DEFAULT_COST_MODEL
    # Half of a paired-end whole genome, as in the paper's Fig. 11(d).
    gigabases = 146.9 / 2
    reads = model.reads_for_gigabases(gigabases)

    def sweep():
        out = {}
        for cores in (128, 256, 512):
            gpf_t = run_tool("gpf", "align", cores, reads)
            persona_stages = baseline_tool_stages("persona", "align", reads, model)
            sim = ClusterSimulator(ClusterSpec.with_cores(cores))
            persona = sim.run_job(persona_stages)
            spans = {n: e - s for n, s, e in persona.stage_spans}
            convert_t = sum(v for k, v in spans.items() if "convert" in k)
            align_t = sum(v for k, v in spans.items() if "convert" not in k)
            out[cores] = {
                "gpf": gigabases / gpf_t,
                "persona_raw": gigabases / align_t,
                "persona_real": gigabases / (align_t + convert_t),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            cores,
            f"{r['gpf']:.3f}",
            f"{r['persona_raw']:.3f}",
            f"{r['persona_real']:.3f}",
            f"{r['gpf'] / r['persona_real']:.0f}x",
        ]
        for cores, r in results.items()
    ]
    print_table(
        "Fig. 11(d) — aligner throughput (Gbases aligned / second)",
        ["cores", "GPF BWA", "Persona raw", "Persona + conversion", "GPF advantage"],
        rows,
    )

    for r in results.values():
        # Raw SNAP-based Persona is faster than BWA per base...
        assert r["persona_raw"] > r["gpf"]
        # ...but conversion reverses the comparison at every scale.
        assert r["gpf"] > r["persona_real"]
    # The gap widens with cores because the serial conversion never
    # scales: at 512 cores GPF's advantage is decisive (paper: ~20x).
    assert results[512]["gpf"] > 5 * results[512]["persona_real"]
    # Persona's real throughput is conversion-bound, hence nearly flat.
    assert results[512]["persona_real"] < 1.2 * results[128]["persona_real"]
    # GPF throughput scales with cores.
    assert results[512]["gpf"] > 2.5 * results[128]["gpf"]

"""Table 1: I/O share of the conventional pipeline, 1 -> 30 samples.

Paper's rows::

    1 sample   96 cores  Lustre   I/O 29%   CPU 71%
    1 sample   96 cores  NFS      I/O 25%   CPU 75%
    30 samples 480 cores Lustre   I/O 60%   CPU 40%
    30 samples 480 cores NFS      I/O 74%   CPU 26%

Reproduced by replaying the disk-based multi-sample pipeline (every tool
reads/writes whole files on the shared filesystem) on the cluster
simulator with Lustre- and NFS-class filesystem models.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import LUSTRE, NFS, ClusterSpec
from repro.cluster.workloads import disk_pipeline_stages

PAPER = {
    (1, "lustre"): 29,
    (1, "nfs"): 25,
    (30, "lustre"): 60,
    (30, "nfs"): 74,
}


def io_percent(num_samples: int, filesystem) -> float:
    model = DEFAULT_COST_MODEL
    reads_per_sample = model.reads_for_gigabases(3.3)  # ~100 Gb over 30
    # The paper's rows: 1 sample on 96 cores, 30 samples on 480 (16 each).
    cores_per_sample = 96 if num_samples == 1 else 16
    spec = ClusterSpec.with_cores(
        cores_per_sample * num_samples, filesystem=filesystem
    )
    result = ClusterSimulator(spec).run_job(
        disk_pipeline_stages(
            num_samples, reads_per_sample, model, cores_per_sample=cores_per_sample
        )
    )
    return 100.0 * result.wall_io_fraction()


def test_table1_io_fraction(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (n, fs.name): io_percent(n, fs)
            for n in (1, 30)
            for fs in (LUSTRE, NFS)
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for (n, fs), measured in sorted(results.items()):
        rows.append(
            [
                f"{n} sample(s)",
                fs,
                f"{measured:.0f}%",
                f"{100 - measured:.0f}%",
                f"{PAPER[(n, fs)]}%",
            ]
        )
    print_table(
        "Table 1 — I/O share of the disk pipeline",
        ["samples", "filesystem", "I/O% (measured)", "CPU% (measured)", "I/O% (paper)"],
        rows,
    )
    # Shape assertions: I/O share grows with sample count; NFS is worse
    # than Lustre at scale; the 30-sample runs are I/O-dominated.
    assert results[(30, "lustre")] > results[(1, "lustre")]
    assert results[(30, "nfs")] > results[(1, "nfs")]
    assert results[(30, "nfs")] > results[(30, "lustre")]
    assert results[(30, "nfs")] > 50

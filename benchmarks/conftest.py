"""Shared fixtures and reporting helpers for the paper-reproduction benches.

Every ``bench_*`` module regenerates one table or figure of the paper.
Real-measurement benches run this repository's actual implementations on
synthetic data; paper-scale benches replay calibrated task graphs on the
cluster simulator.  Each bench prints the rows/series the paper reports,
side by side with the paper's numbers where those are stated.
"""

from __future__ import annotations

import pytest

from repro.sim import (
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)
from repro.sim.reads import Hotspot


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Fixed-width table printer for bench reports."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def bench_reference():
    return generate_reference([15_000, 8_000], seed=103)


@pytest.fixture(scope="session")
def bench_truth(bench_reference):
    return plant_variants(
        bench_reference, snp_rate=0.002, indel_rate=0.0003, seed=104
    )


@pytest.fixture(scope="session")
def bench_known_sites(bench_truth, bench_reference):
    return generate_known_sites(bench_truth, bench_reference, seed=105)


@pytest.fixture(scope="session")
def bench_read_pairs(bench_truth):
    config = ReadSimConfig(
        coverage=6.0,
        seed=106,
        duplicate_fraction=0.06,
        hotspots=[Hotspot("chr1", 4_000, 4_800, multiplier=8.0)],
    )
    return ReadSimulator(bench_truth.donor, config).simulate()


@pytest.fixture(scope="session")
def bench_aligned(bench_reference, bench_read_pairs):
    from repro.align.pairing import PairedEndAligner
    from repro.cleaner.sort import coordinate_sort
    from repro.formats.sam import SamHeader

    aligner = PairedEndAligner(bench_reference)
    records = []
    for pair in bench_read_pairs[:250]:
        r1, r2 = aligner.align_pair(pair)
        records.extend((r1, r2))
    header = SamHeader.unsorted(bench_reference.contig_lengths())
    return coordinate_sort(records, header)

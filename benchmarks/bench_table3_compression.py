"""Table 3: compression of genomic data per pipeline stage.

Paper's rows (GB at cluster scale; ratios are what transfers)::

    Stage 1   Load FASTQ            20.0 -> 11.1   (0.56x)
    Stage 5   Segment SAM           22.8 -> 14.4   (0.63x)
    Stage 20  Generate Bundle RDD   27.0 -> 18.7   (0.69x)

Reproduced as a *real measurement*: the same three RDD contents are
serialized with the compact (Kryo-analogue) serializer for the "Origin"
column and the GPF genomic codec for the "Compressed" column, on
simulated reads with realistic quality strings.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.engine.serializers import CompactSerializer, GpfSerializer, PickleSerializer

PAPER_RATIOS = {"load-fastq": 11.1 / 20.0, "segment-sam": 14.4 / 22.8, "bundle-rdd": 18.7 / 27.0}


@pytest.fixture(scope="module")
def stage_partitions(bench_reference, bench_read_pairs, bench_aligned, bench_known_sites):
    """The three stages' partition contents."""
    fastq = [r for pair in bench_read_pairs[:400] for r in pair]
    sam = [r for r in bench_aligned if not r.is_unmapped]
    # Bundle RDD elements: keyed SAM records (the join payload carries the
    # same record bytes; FASTA windows and known VCFs are tiny beside it).
    keyed = [((r.rname, r.pos), r) for r in sam]
    return {"load-fastq": fastq, "segment-sam": sam, "bundle-rdd": keyed}


def test_table3_compression(benchmark, stage_partitions):
    gpf = GpfSerializer()
    compact = CompactSerializer()
    pickle_ = PickleSerializer()

    def measure():
        out = {}
        for stage, data in stage_partitions.items():
            out[stage] = {
                "origin": len(compact.dumps(data)),
                "compressed": len(gpf.dumps(data)),
                "java": len(pickle_.dumps(data)),
            }
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for stage in ("load-fastq", "segment-sam", "bundle-rdd"):
        origin = results[stage]["origin"]
        compressed = results[stage]["compressed"]
        rows.append(
            [
                stage,
                f"{origin / 1e6:.2f} MB",
                f"{compressed / 1e6:.2f} MB",
                f"{compressed / origin:.2f}x",
                f"{PAPER_RATIOS[stage]:.2f}x",
            ]
        )
    print_table(
        "Table 3 — genomic data compression per stage",
        ["stage", "origin (Kryo)", "compressed (GPF)", "ratio", "paper ratio"],
        rows,
    )

    ratios = {
        stage: results[stage]["compressed"] / results[stage]["origin"]
        for stage in results
    }
    # Every stage compresses (paper: total memory consumption halved).
    assert all(r < 0.85 for r in ratios.values())
    # FASTQ compresses best; the bundle RDD (extra key/join payload)
    # compresses least — the paper's stage ordering.
    assert ratios["load-fastq"] < ratios["segment-sam"] <= ratios["bundle-rdd"] + 0.05
    # GPF also beats Java serialization by a wide margin everywhere.
    assert all(
        results[s]["compressed"] < 0.5 * results[s]["java"] for s in results
    )


def test_table3_memory_consumption_halved(
    benchmark, bench_reference, bench_known_sites, bench_read_pairs, tmp_path
):
    """"GPF reduces memory consumption by 50% totally" (§5.2.4): measure
    the engine's *actual resident cache* (block manager bytes after a
    pipeline run) under the gpf codec vs the Kryo-analogue serializer."""
    from repro.engine.context import EngineConfig, GPFContext
    from repro.wgs import build_wgs_pipeline

    def run(serializer: str) -> int:
        ctx = GPFContext(
            EngineConfig(
                default_parallelism=3,
                serializer=serializer,
                spill_dir=str(tmp_path / f"mem_{serializer}"),
            )
        )
        handles = build_wgs_pipeline(
            ctx,
            bench_reference,
            ctx.parallelize(bench_read_pairs[:150], 3),
            bench_known_sites,
            partition_length=4_000,
        )
        handles.pipeline.run()
        handles.vcf.rdd.collect()
        cached = ctx.cached_bytes()
        ctx.stop()
        return cached

    results = benchmark.pedantic(
        lambda: {name: run(name) for name in ("compact", "gpf")},
        rounds=1,
        iterations=1,
    )
    ratio = results["gpf"] / results["compact"]
    print_table(
        "Table 3 addendum — resident cache after the pipeline run",
        ["serializer", "cached bytes", "vs compact"],
        [
            ["compact (Kryo)", f"{results['compact'] / 1e3:.1f} KB", "1.00x"],
            ["gpf", f"{results['gpf'] / 1e3:.1f} KB", f"{ratio:.2f}x"],
        ],
    )
    # The paper's 50% total memory-consumption reduction.
    assert ratio < 0.65

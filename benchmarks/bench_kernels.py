"""Microbenchmarks of the pipeline's hot kernels.

Not a paper table — these are the pytest-benchmark timings a performance
engineer would track: pair-HMM (the caller's dominant kernel per
Fig. 13), banded Smith-Waterman, FM-index backward search, the 2-bit
packer, and the Huffman quality codec.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.fmindex import FMIndex
from repro.align.smith_waterman import smith_waterman
from repro.caller.pairhmm import PairHMM
from repro.compression.huffman import HuffmanCodec
from repro.compression.records import FastqCodec
from repro.compression.twobit import pack_bases, unpack_bases
from repro.formats.fastq import FastqRecord
from repro.sim import generate_reference
from repro.sim.qualities import ILLUMINA_HISEQ


@pytest.fixture(scope="module")
def kernel_ref():
    return generate_reference([30_000], seed=77)


def test_kernel_fmindex_build(benchmark, kernel_ref):
    benchmark(lambda: FMIndex(kernel_ref))


def test_kernel_backward_search(benchmark, kernel_ref):
    index = FMIndex(kernel_ref)
    patterns = [
        kernel_ref.contigs[0].fetch(i * 113, i * 113 + 25) for i in range(50)
    ]
    benchmark(lambda: [index.backward_search(p) for p in patterns])


def test_kernel_smith_waterman(benchmark, kernel_ref):
    query = kernel_ref.contigs[0].fetch(1_000, 1_100)
    window = kernel_ref.contigs[0].fetch(960, 1_160)
    benchmark(lambda: smith_waterman(query, window, band=40))


def test_kernel_pairhmm(benchmark, kernel_ref):
    hmm = PairHMM()
    hap = kernel_ref.contigs[0].fetch(2_000, 2_200)
    read = kernel_ref.contigs[0].fetch(2_040, 2_140)
    quals = [35] * len(read)
    benchmark(lambda: hmm.log_likelihood(read, quals, hap))


def test_kernel_twobit_pack(benchmark):
    rng = np.random.default_rng(0)
    seq = "".join(rng.choice(list("ACGT"), size=10_000))
    benchmark(lambda: unpack_bases(pack_bases(seq), len(seq)))


def test_kernel_huffman_roundtrip(benchmark):
    rng = np.random.default_rng(1)
    quals = [ILLUMINA_HISEQ.sample(100, rng) for _ in range(50)]
    from repro.compression.delta import delta_encode

    freqs: dict[int, int] = {}
    deltas = [delta_encode(q) for q in quals]
    for arr in deltas:
        values, counts = np.unique(arr, return_counts=True)
        for v, c in zip(values.tolist(), counts.tolist()):
            freqs[int(v)] = freqs.get(int(v), 0) + int(c)
    codec = HuffmanCodec.from_frequencies(freqs)

    def roundtrip():
        for arr in deltas:
            codec.decode(codec.encode(arr))

    benchmark(roundtrip)


def test_kernel_fastq_codec(benchmark):
    rng = np.random.default_rng(2)
    reads = [
        FastqRecord(
            f"r{i}",
            "".join(rng.choice(list("ACGT"), size=100)),
            ILLUMINA_HISEQ.sample(100, rng),
        )
        for i in range(200)
    ]
    benchmark(lambda: FastqCodec.decode(FastqCodec.encode(reads)))

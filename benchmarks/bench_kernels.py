"""Microbenchmarks of the pipeline's hot kernels.

Not a paper table — these are the pytest-benchmark timings a performance
engineer would track: pair-HMM (the caller's dominant kernel per
Fig. 13), banded Smith-Waterman, FM-index backward search, the 2-bit
packer, and the Huffman quality codec.  The ``*_batch`` cases pit the
batched kernels against the scalar reference paths on a realistic active
region (32 reads x 8 haplotypes) and a chain batch.

Run directly (``python benchmarks/bench_kernels.py``) to time the batched
vs scalar kernels without pytest and write the before/after artifact
``BENCH_kernels.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.align.fmindex import FMIndex
from repro.align.smith_waterman import smith_waterman
from repro.align.sw_batch import smith_waterman_batch
from repro.caller.pairhmm import PairHMM
from repro.compression.huffman import HuffmanCodec
from repro.compression.records import FastqCodec
from repro.compression.twobit import pack_bases, unpack_bases
from repro.formats.fastq import FastqRecord
from repro.sim import generate_reference
from repro.sim.qualities import ILLUMINA_HISEQ


def _region_workload(num_reads=32, num_haps=8, read_len=100, hap_len=200, seed=9):
    """A synthetic active region: reads drawn from the haplotypes."""
    rng = np.random.default_rng(seed)
    haps = [
        "".join(rng.choice(list("ACGT"), size=hap_len)) for _ in range(num_haps)
    ]
    reads = []
    for i in range(num_reads):
        hap = haps[i % num_haps]
        start = int(rng.integers(0, hap_len - read_len))
        seq = list(hap[start : start + read_len])
        for pos in rng.integers(0, read_len, size=2):  # sprinkle errors
            seq[pos] = "ACGT"[int(rng.integers(4))]
        reads.append(("".join(seq), rng.integers(20, 41, size=read_len).tolist()))
    return reads, haps


def _sw_workload(num_pairs=32, query_len=100, window_len=200, seed=10):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(num_pairs):
        window = "".join(rng.choice(list("ACGT"), size=window_len))
        start = int(rng.integers(0, window_len - query_len))
        query = list(window[start : start + query_len])
        for pos in rng.integers(0, query_len, size=2):
            query[pos] = "ACGT"[int(rng.integers(4))]
        pairs.append(("".join(query), window))
    return pairs


@pytest.fixture(scope="module")
def kernel_ref():
    return generate_reference([30_000], seed=77)


def test_kernel_fmindex_build(benchmark, kernel_ref):
    benchmark(lambda: FMIndex(kernel_ref))


def test_kernel_backward_search(benchmark, kernel_ref):
    index = FMIndex(kernel_ref)
    patterns = [
        kernel_ref.contigs[0].fetch(i * 113, i * 113 + 25) for i in range(50)
    ]
    benchmark(lambda: [index.backward_search(p) for p in patterns])


def test_kernel_smith_waterman(benchmark, kernel_ref):
    query = kernel_ref.contigs[0].fetch(1_000, 1_100)
    window = kernel_ref.contigs[0].fetch(960, 1_160)
    benchmark(lambda: smith_waterman(query, window, band=40))


def test_kernel_pairhmm(benchmark, kernel_ref):
    hmm = PairHMM()
    hap = kernel_ref.contigs[0].fetch(2_000, 2_200)
    read = kernel_ref.contigs[0].fetch(2_040, 2_140)
    quals = [35] * len(read)
    benchmark(lambda: hmm.log_likelihood(read, quals, hap))


def test_kernel_twobit_pack(benchmark):
    rng = np.random.default_rng(0)
    seq = "".join(rng.choice(list("ACGT"), size=10_000))
    benchmark(lambda: unpack_bases(pack_bases(seq), len(seq)))


def test_kernel_huffman_roundtrip(benchmark):
    rng = np.random.default_rng(1)
    quals = [ILLUMINA_HISEQ.sample(100, rng) for _ in range(50)]
    from repro.compression.delta import delta_encode

    freqs: dict[int, int] = {}
    deltas = [delta_encode(q) for q in quals]
    for arr in deltas:
        values, counts = np.unique(arr, return_counts=True)
        for v, c in zip(values.tolist(), counts.tolist()):
            freqs[int(v)] = freqs.get(int(v), 0) + int(c)
    codec = HuffmanCodec.from_frequencies(freqs)

    def roundtrip():
        for arr in deltas:
            codec.decode(codec.encode(arr))

    benchmark(roundtrip)


def test_kernel_fastq_codec(benchmark):
    rng = np.random.default_rng(2)
    reads = [
        FastqRecord(
            f"r{i}",
            "".join(rng.choice(list("ACGT"), size=100)),
            ILLUMINA_HISEQ.sample(100, rng),
        )
        for i in range(200)
    ]
    benchmark(lambda: FastqCodec.decode(FastqCodec.encode(reads)))


def test_kernel_pairhmm_matrix_scalar(benchmark):
    reads, haps = _region_workload(num_reads=8, num_haps=4)
    hmm = PairHMM(cache_size=0)
    benchmark(lambda: hmm.likelihood_matrix_scalar(reads, haps))


def test_kernel_pairhmm_matrix_batched(benchmark):
    reads, haps = _region_workload(num_reads=8, num_haps=4)
    hmm = PairHMM(cache_size=0)
    benchmark(lambda: hmm.likelihood_matrix(reads, haps))


def test_kernel_smith_waterman_batched(benchmark):
    pairs = _sw_workload(num_pairs=16)
    benchmark(lambda: smith_waterman_batch(pairs, band=40))


def test_kernel_smith_waterman_scalar_loop(benchmark):
    pairs = _sw_workload(num_pairs=16)
    benchmark(lambda: [smith_waterman(q, r, band=40) for q, r in pairs])


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main():
    """Standalone before/after timing of the batched kernels.

    Writes BENCH_kernels.json next to the repo root: the scalar (before)
    vs batched (after) wall time of the pair-HMM likelihood matrix on a
    32-reads x 8-haplotypes active region, and of banded Smith-Waterman
    over a 32-pair chain batch.
    """
    reads, haps = _region_workload(num_reads=32, num_haps=8)
    hmm = PairHMM(cache_size=0)
    scalar_hmm = _time(lambda: hmm.likelihood_matrix_scalar(reads, haps))
    batched_hmm = _time(lambda: hmm.likelihood_matrix(reads, haps))
    scalar_mat = hmm.likelihood_matrix_scalar(reads, haps)
    batched_mat = hmm.likelihood_matrix(reads, haps)
    max_abs_diff = float(np.abs(scalar_mat - batched_mat).max())

    pairs = _sw_workload(num_pairs=32)
    scalar_sw = _time(lambda: [smith_waterman(q, r, band=40) for q, r in pairs])
    batched_sw = _time(lambda: smith_waterman_batch(pairs, band=40))
    sw_identical = smith_waterman_batch(pairs, band=40) == [
        smith_waterman(q, r, band=40) for q, r in pairs
    ]

    report = {
        "pairhmm_likelihood_matrix": {
            "workload": "32 reads x 8 haplotypes, 100bp reads / 200bp haplotypes",
            "scalar_seconds": scalar_hmm,
            "batched_seconds": batched_hmm,
            "speedup": scalar_hmm / batched_hmm,
            "max_abs_diff": max_abs_diff,
        },
        "smith_waterman": {
            "workload": "32 pairs, 100bp query / 200bp window, band=40",
            "scalar_seconds": scalar_sw,
            "batched_seconds": batched_sw,
            "speedup": scalar_sw / batched_sw,
            "results_identical": sw_identical,
        },
    }
    try:
        from benchmarks.bench_history import append_history
    except ImportError:  # run as a script: benchmarks/ itself is on sys.path
        from bench_history import append_history

    out = "BENCH_kernels.json"
    append_history(out, report)
    print(json.dumps(report, indent=2))
    print(f"wrote {out} (history appended)")


if __name__ == "__main__":
    main()

"""End-to-end WGS run with compressed-resident partitions (§4.1 + §5.2.4).

The paper keeps cached data in codec form and decodes lazily per task;
this bench runs the full Fig. 3 pipeline three ways on the same reads:

1. ``baseline``   — compact (Kryo-analogue) serializer, no memory budget:
   the pre-compression resident representation.
2. ``compressed`` — gpf codec serializer, no memory budget: measures the
   resident working-set reduction of the codec-form cache.
3. ``budgeted``   — gpf codec with ``memory_budget`` set far below the
   decoded working set (bigger-than-RAM regime): blocks must be evicted
   to disk and re-read, and the VCF output must stay byte-identical.

Run directly (``python benchmarks/bench_pipeline.py``) to write the
artifact ``BENCH_pipeline.json`` with the wall-time and working-set
numbers behind the PR's acceptance criteria.
"""

from __future__ import annotations

import json
import time

import pytest

try:
    from benchmarks.conftest import print_table
except ModuleNotFoundError:  # direct script run from benchmarks/
    from conftest import print_table
from repro.engine.context import EngineConfig, GPFContext
from repro.sim import (
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)
from repro.wgs import build_wgs_pipeline

NUM_PAIRS = 150
PARALLELISM = 3
PARTITION_LENGTH = 4_000


def _workload():
    """Reference, known sites, and read pairs — all seeded."""
    reference = generate_reference([15_000, 8_000], seed=211)
    truth = plant_variants(
        reference, snp_rate=0.002, indel_rate=0.0003, seed=212
    )
    known_sites = generate_known_sites(truth, reference, seed=213)
    pairs = ReadSimulator(
        truth.donor, ReadSimConfig(coverage=6.0, seed=214, duplicate_fraction=0.05)
    ).simulate()[:NUM_PAIRS]
    return reference, known_sites, pairs


def run_once(
    reference,
    known_sites,
    pairs,
    spill_dir: str,
    serializer: str,
    memory_budget: int | None = None,
) -> dict:
    """One full pipeline run; returns VCF lines plus the memory gauges."""
    ctx = GPFContext(
        EngineConfig(
            default_parallelism=PARALLELISM,
            serializer=serializer,
            spill_dir=spill_dir,
            memory_budget=memory_budget,
        )
    )
    try:
        t0 = time.perf_counter()
        handles = build_wgs_pipeline(
            ctx,
            reference,
            ctx.parallelize(pairs, PARALLELISM),
            known_sites,
            partition_length=PARTITION_LENGTH,
        )
        handles.pipeline.run()
        vcf = handles.vcf.rdd.collect()
        wall = time.perf_counter() - t0
        stats = ctx.block_manager.stats
        counters = ctx.telemetry_snapshot()["counters"]
        return {
            "vcf_lines": [r.to_line() for r in vcf],
            "wall_seconds": wall,
            "resident_bytes": stats.memory_bytes,
            "disk_bytes": stats.disk_bytes,
            "logical_bytes": stats.logical_bytes,
            "evictions": stats.evictions,
            "disk_blocks": stats.disk_blocks,
            "decode_seconds": counters.get("blockmanager.decode_seconds", 0.0),
        }
    finally:
        ctx.stop()


def run_matrix(reference, known_sites, pairs, root_dir: str) -> dict:
    """The three runs; the budget is derived from the compressed run."""
    baseline = run_once(
        reference, known_sites, pairs, f"{root_dir}/baseline", "compact"
    )
    compressed = run_once(
        reference, known_sites, pairs, f"{root_dir}/compressed", "gpf"
    )
    # Bigger-than-RAM regime: budget at half the *compressed* resident
    # set, which is well under 50% of the decoded working set.
    budget = max(16 * 1024, compressed["resident_bytes"] // 2)
    budgeted = run_once(
        reference,
        known_sites,
        pairs,
        f"{root_dir}/budgeted",
        "gpf",
        memory_budget=budget,
    )
    return {
        "baseline": baseline,
        "compressed": compressed,
        "budgeted": budgeted,
        "memory_budget": budget,
    }


def summarize(runs: dict) -> dict:
    baseline, compressed, budgeted = (
        runs["baseline"],
        runs["compressed"],
        runs["budgeted"],
    )
    return {
        "workload": (
            f"{NUM_PAIRS} read pairs, 23kb reference, "
            f"{PARALLELISM}-way, partition_length={PARTITION_LENGTH}"
        ),
        "baseline_wall_seconds": baseline["wall_seconds"],
        "compressed_wall_seconds": compressed["wall_seconds"],
        "budgeted_wall_seconds": budgeted["wall_seconds"],
        "wall_time_ratio": compressed["wall_seconds"] / baseline["wall_seconds"],
        "budgeted_wall_time_ratio": (
            budgeted["wall_seconds"] / baseline["wall_seconds"]
        ),
        "baseline_resident_bytes": baseline["resident_bytes"],
        "compressed_resident_bytes": compressed["resident_bytes"],
        "decoded_working_set_bytes": compressed["logical_bytes"],
        "working_set_reduction_vs_baseline": (
            baseline["resident_bytes"] / compressed["resident_bytes"]
        ),
        "working_set_reduction_vs_decoded": (
            compressed["logical_bytes"] / compressed["resident_bytes"]
        ),
        "memory_budget": runs["memory_budget"],
        "budgeted_evictions": budgeted["evictions"],
        "budgeted_disk_blocks": budgeted["disk_blocks"],
        "decode_seconds": compressed["decode_seconds"],
        "vcf_byte_identical": (
            baseline["vcf_lines"]
            == compressed["vcf_lines"]
            == budgeted["vcf_lines"]
        ),
        "vcf_records": len(baseline["vcf_lines"]),
    }


def _report(summary: dict) -> None:
    print_table(
        "Compressed-resident pipeline — wall time",
        ["run", "wall (s)", "vs baseline"],
        [
            ["baseline (compact)", f"{summary['baseline_wall_seconds']:.2f}", "1.00x"],
            [
                "compressed (gpf)",
                f"{summary['compressed_wall_seconds']:.2f}",
                f"{summary['wall_time_ratio']:.2f}x",
            ],
            [
                "budgeted (gpf)",
                f"{summary['budgeted_wall_seconds']:.2f}",
                f"{summary['budgeted_wall_time_ratio']:.2f}x",
            ],
        ],
    )
    print_table(
        "Compressed-resident pipeline — working set",
        ["measure", "bytes", "reduction"],
        [
            ["baseline resident", summary["baseline_resident_bytes"], "1.00x"],
            [
                "compressed resident",
                summary["compressed_resident_bytes"],
                f"{summary['working_set_reduction_vs_baseline']:.2f}x",
            ],
            [
                "decoded working set",
                summary["decoded_working_set_bytes"],
                f"{summary['working_set_reduction_vs_decoded']:.2f}x vs resident",
            ],
        ],
    )


@pytest.fixture(scope="module")
def pipeline_runs(tmp_path_factory):
    reference, known_sites, pairs = _workload()
    root = tmp_path_factory.mktemp("bench_pipeline")
    return run_matrix(reference, known_sites, pairs, str(root))


def test_pipeline_vcf_byte_identical(pipeline_runs):
    """Codec-resident caching and the memory budget must not change a
    single output byte."""
    summary = summarize(pipeline_runs)
    assert summary["vcf_records"] > 0
    assert summary["vcf_byte_identical"], "VCF output diverged between runs"


def test_pipeline_working_set_reduction(pipeline_runs):
    """Acceptance: >= 2x resident working-set reduction."""
    summary = summarize(pipeline_runs)
    _report(summary)
    assert summary["working_set_reduction_vs_baseline"] >= 2.0
    assert summary["working_set_reduction_vs_decoded"] >= 2.0


def test_pipeline_budget_forces_bigger_than_ram(pipeline_runs):
    """Under the budget the cache really does overflow to disk."""
    summary = summarize(pipeline_runs)
    assert summary["budgeted_evictions"] > 0
    assert summary["budgeted_disk_blocks"] > 0
    resident = pipeline_runs["budgeted"]["resident_bytes"]
    # The budget is enforced on compressed bytes (the largest single
    # block may straddle the line; allow one block of slack).
    assert resident <= summary["memory_budget"] * 2


def test_pipeline_wall_time_within_threshold(pipeline_runs):
    """Acceptance: wall time within 1.3x of baseline.  The CI smoke run
    shares cores with the rest of the suite, so assert a generous 2x
    here; BENCH_pipeline.json records the measured ratio."""
    summary = summarize(pipeline_runs)
    assert summary["wall_time_ratio"] < 2.0
    assert summary["budgeted_wall_time_ratio"] < 2.5


def main():
    reference, known_sites, pairs = _workload()
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench_pipeline_") as root:
        runs = run_matrix(reference, known_sites, pairs, root)
    summary = summarize(runs)
    _report(summary)
    try:
        from benchmarks.bench_history import append_history
    except ImportError:  # run as a script: benchmarks/ itself is on sys.path
        from bench_history import append_history

    out = "BENCH_pipeline.json"
    append_history(out, summary)
    print(json.dumps(summary, indent=2))
    print(f"wrote {out} (history appended)")


if __name__ == "__main__":
    main()

"""Ablation: dynamic repartitioning vs static equal-length partitioning.

DESIGN.md's §4.4 design choice: coverage hot-spots make equal-length
genomic partitions heavily imbalanced; GPF's ReadRepartitioner splits
overloaded partitions via the split table.  Measured two ways:

1. real measurement — reads with an 8x hot-spot are bucketed by a static
   PartitionInfo and by the dynamically split one; report max/mean bucket
   occupancy (the straggler factor);
2. paper-scale simulation — the same WGS workload with GPF's low task
   skew vs a Churchill-style static skew, showing the makespan gap grows
   with core count.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.core.partitioning import PartitionInfo


def bucket_stats(info: PartitionInfo, keys) -> tuple[float, int]:
    counts: dict[int, int] = {}
    for contig, pos in keys:
        pid = info.partition_id(contig, pos)
        counts[pid] = counts.get(pid, 0) + 1
    occupied = [c for c in counts.values() if c > 0]
    mean = sum(occupied) / len(occupied)
    return max(occupied) / mean, max(occupied)


def test_ablation_dynamic_repartition(benchmark, bench_reference, bench_aligned):
    keys = [
        (r.rname, r.pos) for r in bench_aligned if not r.is_unmapped
    ]

    def measure():
        static = PartitionInfo.from_reference(bench_reference, 2_000)
        counts = static.count_reads(keys)
        occupied = [c for c in counts.values() if c > 0]
        threshold = max(1, int(1.5 * sum(occupied) / len(occupied)))
        dynamic = static.with_splits(counts, threshold)
        return {
            "static": bucket_stats(static, keys),
            "dynamic": bucket_stats(dynamic, keys),
            "splits": len(dynamic.split_table),
            "partitions": (static.num_partitions, dynamic.num_partitions),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    static_imbalance, static_max = results["static"]
    dynamic_imbalance, dynamic_max = results["dynamic"]
    print_table(
        "Ablation — static vs dynamic genomic partitioning (8x hot-spot)",
        ["strategy", "max/mean occupancy", "max bucket", "partitions"],
        [
            ["static equal-length", f"{static_imbalance:.2f}", static_max, results["partitions"][0]],
            ["dynamic (split table)", f"{dynamic_imbalance:.2f}", dynamic_max, results["partitions"][1]],
        ],
    )
    assert results["splits"] >= 1  # the hot-spot partition was split
    assert dynamic_imbalance < static_imbalance
    assert dynamic_max < static_max


def test_ablation_skew_cost_at_scale(benchmark):
    """Straggler cost of static partitioning grows with core count."""
    from repro.cluster.costmodel import DEFAULT_COST_MODEL
    from repro.cluster.simulator import ClusterSimulator, Stage, Task, skewed_task_sizes
    from repro.cluster.topology import ClusterSpec

    model = DEFAULT_COST_MODEL
    reads = model.reads_for_gigabases(146.9)
    total_cpu = reads * model.caller_seconds

    def measure():
        out = {}
        for cores in (256, 1024, 2048):
            sim = ClusterSimulator(ClusterSpec.with_cores(cores))
            for label, skew in (("dynamic", 0.12), ("static", 0.9)):
                sizes = skewed_task_sizes(total_cpu / 1500, 1500, skew, seed=5)
                result = sim.run_job(
                    [Stage("caller", [Task(cpu_seconds=s) for s in sizes])]
                )
                out[(label, cores)] = result.makespan / 60
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for cores in (256, 1024, 2048):
        dynamic = results[("dynamic", cores)]
        static = results[("static", cores)]
        rows.append([cores, f"{dynamic:.1f}", f"{static:.1f}", f"{static / dynamic:.2f}x"])
    print_table(
        "Ablation — caller stage makespan (minutes), dynamic vs static skew",
        ["cores", "dynamic", "static", "penalty"],
        rows,
    )
    # The straggler penalty grows with parallelism (waves amortize skew at
    # low core counts; the longest task dominates at high ones).
    p256 = results[("static", 256)] / results[("dynamic", 256)]
    p2048 = results[("static", 2048)] / results[("dynamic", 2048)]
    assert p2048 > p256
    assert p2048 > 1.5

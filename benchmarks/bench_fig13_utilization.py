"""Figure 13: resource utilization over the 2048-core run.

Paper's panels: (a) disk throughput/IOPS never saturates the disks,
(b) network throughput peaks during load/shuffle phases, (c) CPU usage is
high through Aligner and Caller — the pipeline is CPU-bound, with the
heaviest compute in alignment, recalibration and variant calling.

Reproduced from the simulator's placement log: binned CPU/disk/network
series plus per-phase utilization summary.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import ClusterSpec
from repro.cluster.workloads import gpf_wgs_stages


def test_fig13_utilization(benchmark):
    model = DEFAULT_COST_MODEL
    reads = model.reads_for_gigabases(146.9)
    cores = 2048
    spec = ClusterSpec.with_cores(cores)

    def simulate():
        sim = ClusterSimulator(spec)
        # At 2048 cores GPF's dynamic splitting produces several tasks per
        # core (the paper's runs show 1502-task stages at smaller scale);
        # 4096 partitions keeps every core busy through multiple waves.
        result = sim.run_job(gpf_wgs_stages(reads, model, num_tasks=4096))
        series = result.utilization_timeline(num_bins=48)
        phases = {}
        for phase in ("aligner", "cleaner", "caller"):
            ps = [p for p in result.placements if p.phase == phase]
            span = sum(
                e - s
                for n, s, e in result.stage_spans
                if n in {p.stage for p in ps}
            )
            cpu = sum(p.cpu_time for p in ps)
            io = sum(p.disk_time + p.network_time + p.shared_fs_time for p in ps)
            phases[phase] = {
                "span_min": span / 60,
                "cpu_util": cpu / (cores * span) if span else 0.0,
                "io_share": io / (cpu + io) if (cpu + io) else 0.0,
            }
        return result, series, phases

    result, series, phases = benchmark.pedantic(simulate, rounds=1, iterations=1)

    rows = [
        [
            phase,
            f"{d['span_min']:.1f} min",
            f"{100 * d['cpu_util']:.0f}%",
            f"{100 * d['io_share']:.1f}%",
        ]
        for phase, d in phases.items()
    ]
    print_table(
        "Fig. 13 — per-phase resource utilization (2048 cores)",
        ["phase", "wall time", "avg CPU utilization", "I/O share of task time"],
        rows,
    )

    # ASCII sparkline of busy cores over time (the Fig. 13(c) panel).
    cpu = series["cpu"]
    peak = max(cpu.max(), 1e-9)
    glyphs = " .:-=+*#%@"
    line = "".join(glyphs[min(9, int(9 * v / peak))] for v in cpu)
    print(f"\nbusy cores over time (peak={peak:.0f}): [{line}]")
    disk = series["disk_bytes"]
    net = series["network_bytes"]
    print(
        f"peak disk-seconds/s {disk.max():.2f}; peak network-seconds/s {net.max():.2f}"
    )

    # Paper's conclusions in assertable form:
    # 1. The aligner and caller phases dominate wall time and are CPU-heavy.
    assert phases["aligner"]["cpu_util"] > 0.5
    assert phases["caller"]["cpu_util"] > 0.5
    # 2. Every phase's I/O share of task time is small (CPU-bound job).
    for d in phases.values():
        assert d["io_share"] < 0.35
    # 3. Disk I/O concentrates in the cleaner (shuffle) phase.
    assert phases["cleaner"]["io_share"] > phases["caller"]["io_share"]
    # 4. The CPU series has sustained high regions (not I/O-gapped).
    assert float(np.mean(cpu > 0.5 * peak)) > 0.4

"""Figure 12: blocked-time analysis — JCT improvement without disk/network.

Paper's bars: removing all time blocked on disk improves job completion
time by at most 2.73% (aligner), 3.26% (cleaner), 2.68% (caller); removing
network by at most 1.38%.  Conclusion: GPF is CPU-bound; I/O is not the
bottleneck (§5.3.1).

Two reproductions:

1. paper-scale: blocked-time analysis over the simulated 2048-core WGS
   run, per phase;
2. real-measurement: the same analysis over actual engine task metrics
   from a laptop-scale pipeline run.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.cluster.blocked_time import blocked_time_analysis, from_engine_metrics
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator, SimulationResult
from repro.cluster.topology import ClusterSpec
from repro.cluster.workloads import gpf_wgs_stages

PAPER_DISK = {"aligner": 2.73, "cleaner": 3.26, "caller": 2.68}
PAPER_NET = {"aligner": 1.38, "cleaner": 0.79, "caller": 0.58}


def phase_result(result: SimulationResult, phase: str) -> SimulationResult:
    sub = SimulationResult(makespan=result.makespan)
    sub.placements = [p for p in result.placements if p.phase == phase]
    stage_names = {p.stage for p in sub.placements}
    sub.stage_spans = [s for s in result.stage_spans if s[0] in stage_names]
    return sub


def test_fig12_blocked_time_paper_scale(benchmark):
    model = DEFAULT_COST_MODEL
    reads = model.reads_for_gigabases(146.9)
    cores = 2048

    def analyze():
        sim = ClusterSimulator(ClusterSpec.with_cores(cores))
        result = sim.run_job(gpf_wgs_stages(reads, model))
        out = {}
        for phase in ("aligner", "cleaner", "caller"):
            report = blocked_time_analysis(phase_result(result, phase), cores)
            out[phase] = (
                100 * report.disk_improvement,
                100 * report.network_improvement,
            )
        whole = blocked_time_analysis(result, cores)
        out["whole job"] = (
            100 * whole.disk_improvement,
            100 * whole.network_improvement,
        )
        return out

    results = benchmark.pedantic(analyze, rounds=1, iterations=1)

    rows = [
        [
            phase,
            f"{disk:.2f}%",
            f"{PAPER_DISK.get(phase, '-')}%" if phase in PAPER_DISK else "-",
            f"{net:.2f}%",
            f"{PAPER_NET.get(phase, '-')}%" if phase in PAPER_NET else "-",
        ]
        for phase, (disk, net) in results.items()
    ]
    print_table(
        "Fig. 12 — max JCT improvement from removing blocked time",
        ["phase", "no disk", "paper", "no network", "paper"],
        rows,
    )

    # The paper's central conclusion: I/O removal buys almost nothing.
    disk_whole, net_whole = results["whole job"]
    assert disk_whole < 10.0
    assert net_whole < 5.0
    # Network improvement below disk improvement, as in the paper.
    for phase in ("aligner", "cleaner", "caller"):
        disk, net = results[phase]
        assert net <= disk + 0.5


def test_fig12_three_workloads(benchmark):
    """The paper's Fig. 12 instrumentation covers three pipelines — WGS,
    WES, and GenePanel (its dataset dump lists per-workload stage traces
    with 1502-, 1578- and 470-task stages).  Reproduce the cross-workload
    blocked-time comparison at 512 cores."""
    from repro.cluster.workloads import WORKLOAD_PRESETS, workload_stages

    cores = 512

    def analyze():
        sim = ClusterSimulator(ClusterSpec.with_cores(cores))
        out = {}
        for workload in WORKLOAD_PRESETS:
            result = sim.run_job(workload_stages(workload, DEFAULT_COST_MODEL))
            report = blocked_time_analysis(result, cores)
            out[workload] = (
                100 * report.disk_improvement,
                100 * report.network_improvement,
            )
        return out

    results = benchmark.pedantic(analyze, rounds=1, iterations=1)
    paper = {"WGS": (2.73, 1.38), "WES": (3.26, 0.79), "GenePanel": (2.68, 0.58)}
    rows = [
        [
            workload,
            f"{disk:.2f}%",
            f"{paper[workload][0]}%",
            f"{net:.2f}%",
            f"{paper[workload][1]}%",
        ]
        for workload, (disk, net) in results.items()
    ]
    print_table(
        "Fig. 12 — per-workload JCT improvement (WGS/WES/GenePanel)",
        ["workload", "no disk", "paper", "no network", "paper"],
        rows,
    )
    for disk, net in results.values():
        assert disk < 10.0  # CPU-bound in every workload, as in the paper
        assert net <= disk + 0.5


def test_fig12_blocked_time_real_engine(
    benchmark, bench_reference, bench_known_sites, bench_read_pairs, tmp_path
):
    from repro.engine.context import EngineConfig, GPFContext
    from repro.wgs import build_wgs_pipeline

    def run_and_analyze():
        ctx = GPFContext(
            EngineConfig(default_parallelism=4, spill_dir=str(tmp_path / "f12"))
        )
        handles = build_wgs_pipeline(
            ctx,
            bench_reference,
            ctx.parallelize(bench_read_pairs[:150], 4),
            bench_known_sites,
            partition_length=4_000,
        )
        handles.pipeline.run()
        handles.vcf.rdd.collect()
        report = from_engine_metrics(ctx.metrics.job(), total_cores=4)
        ctx.stop()
        return report

    report = benchmark.pedantic(run_and_analyze, rounds=1, iterations=1)
    print_table(
        "Fig. 12 (real engine run) — blocked-time analysis",
        ["metric", "value"],
        [
            ["base JCT", f"{report.base_jct:.2f} s"],
            ["no-disk improvement", f"{100 * report.disk_improvement:.2f}%"],
            ["no-network improvement", f"{100 * report.network_improvement:.2f}%"],
        ],
    )
    # The real pipeline is CPU-bound too: I/O removal buys single digits.
    assert report.disk_improvement < 0.10
    assert report.network_improvement < 0.10

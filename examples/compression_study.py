#!/usr/bin/env python
"""Walk through GPF's genomic compression (paper §4.2, Figs. 4-6).

Shows the paper's own worked example (``GGTTNCCTA`` / ``CCCB#FFFF``),
then measures the codec on realistic simulated reads: sequence packing,
quality delta distribution, Huffman coding, and the full record codec
against the Java/Kryo serializer baselines.

Run:  python examples/compression_study.py
"""

from __future__ import annotations

import numpy as np

from repro.compression.delta import delta_encode
from repro.compression.huffman import HuffmanCodec
from repro.compression.records import FastqCodec
from repro.compression.stats import concentration, delta_histogram, quality_histogram
from repro.compression.twobit import (
    compress_sequence,
    decompress_sequence,
    mask_special_bases,
)
from repro.engine.serializers import CompactSerializer, PickleSerializer
from repro.formats.fastq import FastqRecord
from repro.sim.qualities import ILLUMINA_HISEQ, ILLUMINA_OLD


def paper_example() -> None:
    print("== The paper's Fig. 4/6 worked example ==")
    seq, qual = "GGTTNCCTA", "CCCB#FFFF"
    masked_seq, masked_qual = mask_special_bases(seq, qual)
    print(f"  sequence          : {seq}")
    print(f"  quality           : {qual}")
    print(f"  masked sequence   : {masked_seq}   (N -> A, quality -> Phred 0)")
    print(f"  masked quality    : {masked_qual!r}")
    blob, carried_qual = compress_sequence(seq, qual)
    print(f"  2-bit packed      : {blob.hex()} ({len(seq)} bases -> {len(blob)} bytes incl. length header)")
    print(f"  round trip        : {decompress_sequence(blob, carried_qual)}")
    deltas = delta_encode(carried_qual)
    print(f"  quality deltas    : {deltas.tolist()}  (paper: 67 0 0 -1 -65 69 0 0 0)")
    codec = HuffmanCodec.from_samples(deltas.tolist())
    encoded = codec.encode(deltas)
    print(f"  Huffman coded     : {len(carried_qual)} chars -> {len(encoded)} bytes")


def measured_study() -> None:
    print("\n== Measured on 1,000 simulated reads ==")
    rng = np.random.default_rng(3)
    reads = [
        FastqRecord(
            f"r{i}",
            "".join(rng.choice(list("ACGTN"), size=100, p=[0.2425] * 4 + [0.03])),
            ILLUMINA_HISEQ.sample(100, rng),
        )
        for i in range(1_000)
    ]
    raw = sum(len(r.name) + len(r.sequence) + len(r.quality) + 6 for r in reads)
    gpf = len(FastqCodec.encode(reads))
    kryo = len(CompactSerializer().dumps(reads))
    java = len(PickleSerializer().dumps(reads))
    print(f"  raw FASTQ text : {raw / 1e3:8.1f} KB")
    print(f"  Java (pickle)  : {java / 1e3:8.1f} KB ({java / raw:.2f}x raw)")
    print(f"  Kryo (compact) : {kryo / 1e3:8.1f} KB ({kryo / raw:.2f}x raw)")
    print(f"  GPF codec      : {gpf / 1e3:8.1f} KB ({gpf / raw:.2f}x raw)")

    print("\n== Why delta coding works (Fig. 5) ==")
    for profile in (ILLUMINA_HISEQ, ILLUMINA_OLD):
        quals = profile.sample_many(300, 100, seed=4)
        raw_c = concentration(quality_histogram(quals), radius=3)
        delta_c = concentration(delta_histogram(quals), radius=3)
        print(
            f"  {profile.name:<16} raw mass near mode: {raw_c:5.1f}%   "
            f"delta mass near mode: {delta_c:5.1f}%"
        )


if __name__ == "__main__":
    paper_example()
    measured_study()

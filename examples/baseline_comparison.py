#!/usr/bin/env python
"""Run GPF against the runnable baseline implementations on the same data.

Aligns one simulated sample, then pushes the aligned reads through the
Cleaner stage four ways — GPF (fused in-memory), ADAM-like (columnar
conversions per tool), GATK4-like (disk spill per tool), and the
conventional disk pipeline — reporting wall time, I/O bytes and agreement.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.align.pairing import PairedEndAligner
from repro.baselines.adam import AdamLikePipeline
from repro.baselines.gatk import GatkLikePipeline
from repro.cleaner.sort import coordinate_sort
from repro.core.bundles import PartitionInfoBundle, SAMBundle
from repro.core.processes import (
    BaseRecalibrationProcess,
    IndelRealignProcess,
    ReadRepartitioner,
)
from repro.engine import EngineConfig, GPFContext
from repro.formats.sam import SamHeader
from repro.sim import (
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp())
    reference = generate_reference([15_000], seed=41)
    truth = plant_variants(reference, seed=42)
    known = generate_known_sites(truth, reference, seed=43)
    pairs = ReadSimulator(truth.donor, ReadSimConfig(coverage=6.0, seed=44)).simulate()

    print(f"aligning {len(pairs)} pairs once (shared input)...")
    aligner = PairedEndAligner(reference)
    aligned = []
    for pair in pairs:
        r1, r2 = aligner.align_pair(pair)
        aligned.extend((r1, r2))
    header = SamHeader.unsorted(reference.contig_lengths())
    aligned = coordinate_sort(aligned, header)

    results = {}

    # --- GPF: fused in-memory chain -------------------------------------
    ctx = GPFContext(EngineConfig(default_parallelism=4, serializer="gpf"))
    sam_bundle = SAMBundle.defined("in", ctx.parallelize([r.copy() for r in aligned], 4), header)
    info_bundle = PartitionInfoBundle.undefined("info")
    ReadRepartitioner(
        "rp", [sam_bundle], info_bundle, reference.contig_lengths(), 4_000
    ).run(ctx)
    realigned = SAMBundle.undefined("re")
    recal = SAMBundle.undefined("recal")
    t0 = time.perf_counter()
    IndelRealignProcess(
        "ir", reference, {"dbsnp": known}, info_bundle, [sam_bundle], [realigned]
    ).run(ctx)
    BaseRecalibrationProcess(
        "bqsr", reference, {"dbsnp": known}, info_bundle, [realigned], [recal]
    ).run(ctx)
    out_gpf = recal.rdd.collect()
    results["GPF (in-memory, fused)"] = (
        time.perf_counter() - t0,
        ctx.metrics.job().shuffle_bytes,
        len(out_gpf),
    )
    ctx.stop()

    # --- ADAM-like: columnar conversion per tool -------------------------
    ctx = GPFContext(EngineConfig(default_parallelism=4, serializer="compact"))
    adam = AdamLikePipeline(ctx, reference, known, partition_length=4_000)
    rdd = ctx.parallelize([r.copy() for r in aligned], 4)
    t0 = time.perf_counter()
    out_adam = adam.bqsr(adam.indel_realignment(rdd)).collect()
    results["ADAM-like (columnar per tool)"] = (
        time.perf_counter() - t0,
        ctx.metrics.job().shuffle_bytes,
        len(out_adam),
    )
    ctx.stop()

    # --- GATK4-like: file spill per tool ---------------------------------
    gatk = GatkLikePipeline(reference, known, workdir=str(workdir / "gatk"))
    t0 = time.perf_counter()
    path = gatk.write_input([r.copy() for r in aligned])
    path = gatk.indel_realignment(path)
    path = gatk.bqsr(path)
    results["GATK4-like (disk per tool)"] = (
        time.perf_counter() - t0,
        gatk.total_spill_bytes(),
        len(aligned),
    )

    print(f"\n{'system':<32} {'wall':>8} {'bytes moved':>12} {'records':>8}")
    print("-" * 64)
    for name, (wall, moved, count) in results.items():
        print(f"{name:<32} {wall:>7.2f}s {moved / 1e6:>10.2f}MB {count:>8}")
    print(
        "\nGPF moves the least data (one fused bundle shuffle, compressed); "
        "the ADAM shape re-shuffles per tool; the GATK shape re-reads and "
        "re-writes whole files per tool — the mechanisms behind the "
        "paper's Fig. 11 speedups."
    )


if __name__ == "__main__":
    main()

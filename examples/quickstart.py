#!/usr/bin/env python
"""Quickstart: call variants on a small simulated genome with GPF.

Builds the whole WGS pipeline of the paper's Fig. 3 — Aligner (BWA-MEM
style) -> Cleaner (MarkDuplicates, IndelRealign, BQSR) -> Caller
(HaplotypeCaller) — over simulated paired-end reads, runs it on the
in-memory engine, and scores the calls against the planted truth set.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.engine import EngineConfig, GPFContext
from repro.sim import (
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)
from repro.wgs import build_wgs_pipeline


def main() -> None:
    print("1. Simulating a 25 kb reference genome with planted variants...")
    reference = generate_reference([18_000, 7_000], seed=11)
    truth = plant_variants(reference, snp_rate=0.002, indel_rate=0.0003, seed=12)
    known_sites = generate_known_sites(truth, reference, seed=13)
    pairs = ReadSimulator(
        truth.donor, ReadSimConfig(coverage=8.0, seed=14, duplicate_fraction=0.05)
    ).simulate()
    print(f"   {len(truth.records)} variants planted, {len(pairs)} read pairs simulated")

    print("2. Building the GPF pipeline (Fig. 3 of the paper)...")
    ctx = GPFContext(EngineConfig(default_parallelism=4, serializer="gpf"))
    handles = build_wgs_pipeline(
        ctx,
        reference,
        ctx.parallelize(pairs, 4),
        known_sites,
        partition_length=5_000,
    )

    print("3. Running (DAG analysis + redundancy elimination + execution)...")
    start = time.perf_counter()
    handles.pipeline.run()
    calls = handles.vcf.rdd.collect()
    elapsed = time.perf_counter() - start
    print(f"   executed processes: {[p.name for p in handles.pipeline.executed]}")

    truth_keys = truth.truth_keys()
    called_keys = {c.key() for c in calls}
    tp = len(truth_keys & called_keys)
    job = ctx.metrics.job()
    print(f"\nDone in {elapsed:.1f}s:")
    print(f"   variants called : {len(calls)}")
    print(f"   recall          : {tp}/{len(truth_keys)} planted variants found")
    print(f"   precision       : {tp}/{len(called_keys)} calls match truth")
    print(f"   engine stages   : {job.stage_count}")
    print(f"   shuffle data    : {job.shuffle_bytes / 1e3:.1f} KB (gpf codec)")
    ctx.stop()


if __name__ == "__main__":
    main()

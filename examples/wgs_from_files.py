#!/usr/bin/env python
"""The paper's Fig. 3 user program, end to end with real files.

Writes simulated paired-end FASTQ files to disk, then builds the pipeline
exactly the way the paper's example does — FileLoader, Bundles, Processes
added one by one, ``pipeline.run()`` — and writes a sorted VCF.

Run:  python examples/wgs_from_files.py [output_dir] [--backend serial|threads|process] [--workers N]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.core.bundles import (
    FASTQPairBundle,
    PartitionInfoBundle,
    SAMBundle,
    VCFBundle,
)
from repro.core.pipeline import Pipeline
from repro.core.processes import (
    BaseRecalibrationProcess,
    BwaMemProcess,
    FileLoader,
    HaplotypeCallerProcess,
    IndelRealignProcess,
    MarkDuplicateProcess,
    ReadRepartitioner,
)
from repro.core.processes.io import WriteVcfProcess
from repro.engine import EngineConfig, GPFContext
from repro.formats.fastq import write_fastq
from repro.formats.vcf import read_vcf
from repro.sim import (
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output_dir", nargs="?", default=None)
    parser.add_argument(
        "--backend",
        choices=["serial", "threads", "process"],
        default="serial",
        help="executor backend for the engine's task pools",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="worker count for threads/process"
    )
    parser.add_argument(
        "--malformed",
        choices=["fail", "drop", "quarantine"],
        default="fail",
        help="bad-input policy for the FASTQ loader",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="run-journal directory; re-running resumes after completed Processes",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-attempt task deadline in seconds",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="tracing directory: writes events.jsonl and a Chrome trace.json",
    )
    args = parser.parse_args()
    workdir = Path(args.output_dir) if args.output_dir else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)

    # --- make input files (stand-ins for the sequencer's FASTQ) ---------
    reference = generate_reference([20_000], seed=21)
    truth = plant_variants(reference, seed=22)
    known_sites = generate_known_sites(truth, reference, seed=23)
    pairs = ReadSimulator(truth.donor, ReadSimConfig(coverage=8.0, seed=24)).simulate()
    fastq1 = str(workdir / "sample_1.fastq")
    fastq2 = str(workdir / "sample_2.fastq")
    write_fastq([p.read1 for p in pairs], fastq1)
    write_fastq([p.read2 for p in pairs], fastq2)
    print(f"wrote {len(pairs)} read pairs to {fastq1} / {fastq2}")

    # --- the Fig. 3 program, line for line ------------------------------
    # Set up environment for Process and Resource
    ctx = GPFContext(
        EngineConfig(
            default_parallelism=4,
            serializer="gpf",
            executor_backend=args.backend,
            num_workers=args.workers,
            task_timeout=args.task_timeout,
            trace_dir=args.trace_out,
        )
    )
    pipeline = Pipeline("myPipeline", ctx)

    # Load pair-end FASTQ to RDD
    fastq_pair_rdd = FileLoader.load_fastq_pair_to_rdd(
        ctx, fastq1, fastq2, malformed=args.malformed
    )
    fastq_pair_bundle = FASTQPairBundle.defined("fastqPair", fastq_pair_rdd)

    # Add Aligner Process into the Pipeline
    aligned_sam_bundle = SAMBundle.undefined("alignedSam")
    pipeline.add_process(
        BwaMemProcess.pair_end(
            "MyBwaMapping", reference, fastq_pair_bundle, aligned_sam_bundle
        )
    )

    # Add Cleaner Processes into the Pipeline
    deduped_sam_bundle = SAMBundle.undefined("dedupedSam")
    pipeline.add_process(
        MarkDuplicateProcess("MyMarkDuplicate", aligned_sam_bundle, deduped_sam_bundle)
    )

    repartition_info_bundle = PartitionInfoBundle.undefined("partitionInfo")
    pipeline.add_process(
        ReadRepartitioner(
            "MyRepartitioner",
            [deduped_sam_bundle],
            repartition_info_bundle,
            reference.contig_lengths(),
            advised_partition_length=5_000,
        )
    )

    rod_map = {"dbsnp": known_sites}
    realigned_bundle = SAMBundle.undefined("realignedSam")
    pipeline.add_process(
        IndelRealignProcess(
            "MyIndelRealign",
            reference,
            rod_map,
            repartition_info_bundle,
            [deduped_sam_bundle],
            [realigned_bundle],
        )
    )

    recaled_sam_bundle = SAMBundle.undefined("recaledSam")
    pipeline.add_process(
        BaseRecalibrationProcess(
            "MyBQSR",
            reference,
            rod_map,
            repartition_info_bundle,
            [realigned_bundle],
            [recaled_sam_bundle],
        )
    )

    # Add Caller Process into the Pipeline
    vcf_bundle = VCFBundle.undefined("ResultVCF")
    use_gvcf = False
    pipeline.add_process(
        HaplotypeCallerProcess(
            "MyHaplotypeCaller",
            reference,
            rod_map,
            repartition_info_bundle,
            [recaled_sam_bundle],
            vcf_bundle,
            use_gvcf,
        )
    )

    vcf_path = str(workdir / "result.vcf")
    pipeline.add_process(WriteVcfProcess("WriteVCF", vcf_bundle, vcf_path))

    # Issue and Execute Processes
    pipeline.run(journal_dir=args.journal_dir)

    _, calls = read_vcf(vcf_path)
    truth_keys = truth.truth_keys()
    tp = sum(1 for c in calls if c.key() in truth_keys)
    print(f"\nVCF written to {vcf_path}")
    print(f"   {len(calls)} variants called, {tp}/{len(truth_keys)} truth recovered")
    print(f"   executed: {[p.name for p in pipeline.executed]}")
    if pipeline.skipped:
        print(f"   resumed from journal; skipped: {[p.name for p in pipeline.skipped]}")
    if ctx.quarantine.total:
        print(f"   {ctx.quarantine.summary()}")
    ctx.stop()
    if args.trace_out:
        print(f"   trace written under {args.trace_out} (see `gpf report`)")


if __name__ == "__main__":
    main()

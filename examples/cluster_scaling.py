#!/usr/bin/env python
"""Reproduce the paper's cluster-scaling story (Fig. 10 + Table 5).

Replays the calibrated GPF and baseline task graphs on the discrete-event
cluster simulator across 128-2048 cores and prints the paper-versus-
measured comparison.

Run:  python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.simulator import ClusterSimulator
from repro.cluster.topology import ClusterSpec
from repro.cluster.workloads import churchill_stages, gpf_wgs_stages

PAPER_GPF = {128: 174, 256: 96, 512: 57, 1024: 37, 2048: 24}
PAPER_CHURCHILL = {128: 320, 256: 210, 512: 150, 1024: 128}


def main() -> None:
    model = DEFAULT_COST_MODEL
    reads = model.reads_for_gigabases(146.9)  # the Platinum Genome's size
    print(f"dataset: 146.9 Gbases = {reads / 1e9:.2f}B reads of {model.read_length} bp")
    print(f"{'cores':>6} | {'GPF (min)':>9} {'paper':>6} | {'Churchill':>9} {'paper':>6} | {'speedup':>7} {'eff':>5}")
    print("-" * 66)
    base = None
    for cores in (128, 256, 512, 1024, 2048):
        sim = ClusterSimulator(ClusterSpec.with_cores(cores))
        gpf = sim.run_job(gpf_wgs_stages(reads, model))
        churchill = sim.run_job(churchill_stages(reads, model))
        gpf_min = gpf.makespan / 60
        base = base or gpf_min
        print(
            f"{cores:>6} | {gpf_min:>9.0f} {PAPER_GPF[cores]:>6} | "
            f"{churchill.makespan / 60:>9.0f} {str(PAPER_CHURCHILL.get(cores, '-')):>6} | "
            f"{base / gpf_min:>6.2f}x {100 * gpf.parallel_efficiency(cores):>4.0f}%"
        )
    print(
        "\nGPF scales to 2048 cores (paper: 24 min, 7.25x); Churchill "
        "saturates at its fixed region count (paper: flat beyond 1024)."
    )


if __name__ == "__main__":
    main()

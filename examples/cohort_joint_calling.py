#!/usr/bin/env python
"""Cohort pipeline + fault tolerance + QC in one walkthrough.

Simulates three samples from one donor genome, runs the multi-sample
pipeline (per-sample Align/MarkDuplicate, one fused partition chain over
the whole cohort, joint calling) *under injected task failures*, then
prints QC metrics and the variant scorecard.

Run:  python examples/cohort_joint_calling.py
"""

from __future__ import annotations

import time

from repro.caller.filters import apply_hard_filters, filter_summary, passing
from repro.cleaner.qc import flagstat, insert_size_metrics
from repro.engine import EngineConfig, GPFContext
from repro.engine.faults import RandomFaults
from repro.sim import (
    ReadSimConfig,
    ReadSimulator,
    generate_known_sites,
    generate_reference,
    plant_variants,
)
from repro.wgs import build_cohort_pipeline


def main() -> None:
    print("1. Simulating one donor, three sequencing runs (4x each)...")
    reference = generate_reference([20_000], seed=81)
    truth = plant_variants(reference, snp_rate=0.002, indel_rate=0.0003, seed=82)
    known = generate_known_sites(truth, reference, seed=83)
    samples = [
        ReadSimulator(truth.donor, ReadSimConfig(coverage=4.0, seed=84 + i)).simulate()
        for i in range(3)
    ]
    print(f"   samples: {[len(s) for s in samples]} pairs; truth: {len(truth.records)} variants")

    print("2. Building the cohort pipeline and injecting random task failures...")
    ctx = GPFContext(EngineConfig(default_parallelism=3, max_task_attempts=6))
    faults = RandomFaults(rate=0.08, seed=85, max_failures=12)
    ctx.add_fault_injector(faults)
    handles = build_cohort_pipeline(
        ctx,
        reference,
        [ctx.parallelize(pairs, 3) for pairs in samples],
        known,
        partition_length=5_000,
    )
    print(handles.pipeline.describe())

    start = time.perf_counter()
    handles.pipeline.run()
    raw_calls = handles.vcf.rdd.collect()
    elapsed = time.perf_counter() - start
    print(f"\n3. Done in {elapsed:.1f}s despite {faults.injected} injected task failures")

    print("\n4. Per-sample QC (flagstat + insert sizes):")
    for i in range(3):
        records = handles.recalibrated[i].rdd.collect()
        stats = flagstat(records)
        inserts = insert_size_metrics(records)
        print(
            f"   sample {i}: {stats.total} reads, "
            f"{100 * stats.mapped_fraction:.1f}% mapped, "
            f"{stats.duplicates} duplicates, "
            f"insert {inserts.mean:.0f}±{inserts.std:.0f}"
        )

    print("\n5. Hard-filtering and scoring the joint calls:")
    filtered = apply_hard_filters(raw_calls, reference)
    kept = passing(filtered)
    truth_keys = truth.truth_keys()
    tp = sum(1 for c in kept if c.key() in truth_keys)
    print(f"   filter summary: {filter_summary(filtered)}")
    print(f"   {len(kept)} PASS calls; recall {tp}/{len(truth_keys)}, "
          f"precision {tp}/{len(kept)}")
    ctx.stop()


if __name__ == "__main__":
    main()

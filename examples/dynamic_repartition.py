#!/usr/bin/env python
"""Demonstrate GPF's dynamic repartitioning (paper §4.4, Figs. 8-9).

Simulates a coverage hot-spot (a 10,000x-style pile-up region), shows the
static equal-length partition map overloading one partition, runs the
ReadRepartitioner's counting + splitting, and prints the resulting split
table alongside the paper's own Fig. 9 worked example.

Run:  python examples/dynamic_repartition.py
"""

from __future__ import annotations

from repro.align.pairing import PairedEndAligner
from repro.core.partitioning import PartitionInfo, paper_example
from repro.sim import ReadSimConfig, ReadSimulator, generate_reference, plant_variants
from repro.sim.reads import Hotspot


def figure_9_walkthrough() -> None:
    print("== The paper's Fig. 8/9 worked example ==")
    info = paper_example()
    contig, position = "4", 12_345_678
    base = info.base_partition_id(contig, position)
    final = info.partition_id(contig, position)
    print(f"  start-id table       : {[info.start_ids[c] for c in info.contig_names]}")
    print(f"  position             : (contig {contig}, {position:,})")
    print(f"  base partition id    : {base}   (segment base 693 + offset 12)")
    print(f"  split table entry    : {info.split_table.lookup(base)}  (4 ways from 3510)")
    print(f"  final partition id   : {final}  (paper: 3511)")


def hotspot_demo() -> None:
    print("\n== Dynamic splitting under a simulated coverage hot-spot ==")
    reference = generate_reference([30_000], seed=31)
    truth = plant_variants(reference, seed=32)
    pairs = ReadSimulator(
        truth.donor,
        ReadSimConfig(
            coverage=5.0,
            seed=33,
            hotspots=[Hotspot("chr1", 10_000, 11_000, multiplier=12.0)],
        ),
    ).simulate()
    aligner = PairedEndAligner(reference)
    keys = []
    for pair in pairs[:400]:
        r1, r2 = aligner.align_pair(pair)
        for rec in (r1, r2):
            if not rec.is_unmapped:
                keys.append((rec.rname, rec.pos))

    static = PartitionInfo.from_reference(reference, partition_length=2_000)
    counts = static.count_reads(keys)
    mean = sum(counts.values()) / len(counts)
    print(f"  {len(keys)} aligned reads over {static.base_partitions} partitions of 2 kb")
    print(f"  occupancy: mean {mean:.0f}, max {max(counts.values())} "
          f"(partition {max(counts, key=counts.get)}, the hot-spot)")

    threshold = int(1.5 * mean)
    dynamic = static.with_splits(counts, threshold)
    print(f"  splitting everything above {threshold} reads:")
    for pid, (pieces, start) in sorted(dynamic.split_table.entries.items()):
        span = static.partition_span(pid)
        print(
            f"    partition {pid} ({span[0]}:{span[1]:,}-{span[2]:,}) "
            f"-> {pieces} pieces starting at id {start}"
        )
    new_counts: dict[int, int] = {}
    for key in keys:
        pid = dynamic.partition_id(*key)
        new_counts[pid] = new_counts.get(pid, 0) + 1
    print(
        f"  after splitting: {dynamic.num_partitions} partitions, "
        f"max occupancy {max(new_counts.values())} "
        f"(was {max(counts.values())})"
    )


if __name__ == "__main__":
    figure_9_walkthrough()
    hotspot_demo()

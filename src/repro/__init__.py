"""GPF: a high-performance genomic analysis framework with in-memory computing.

A full Python reproduction of Li, Tan, Wang & Sun, PPoPP 2018
(DOI 10.1145/3178487.3178511).  Subpackages:

- :mod:`repro.core`        -- the GPF programming model (Process/Resource,
  Pipeline DAG scheduler, redundancy elimination, dynamic PartitionInfo).
- :mod:`repro.engine`      -- the in-memory dataflow engine (Spark substitute):
  lazy RDDs, shuffle-to-disk, pluggable serializers, task metrics.
- :mod:`repro.compression` -- GPF's genomic codec (2-bit bases, delta+Huffman
  qualities).
- :mod:`repro.formats`     -- FASTQ / SAM / FASTA / VCF.
- :mod:`repro.align`       -- BWA-MEM-style FM-index aligner + SNAP baseline.
- :mod:`repro.cleaner`     -- sort, MarkDuplicates, indel realignment, BQSR.
- :mod:`repro.caller`      -- HaplotypeCaller (assembly + pair-HMM).
- :mod:`repro.sim`         -- synthetic genomes, variants, reads.
- :mod:`repro.cluster`     -- discrete-event cluster simulator for the paper's
  scaling experiments.
- :mod:`repro.baselines`   -- Churchill / ADAM / GATK4 / Persona comparators.

Quickstart::

    from repro.engine import GPFContext, EngineConfig
    from repro.sim import generate_reference, plant_variants, ReadSimulator
    from repro.wgs import build_wgs_pipeline

    ctx = GPFContext(EngineConfig(serializer="gpf"))
    reference = generate_reference([50_000])
    truth = plant_variants(reference)
    pairs = ReadSimulator(truth.donor).simulate()
    handles = build_wgs_pipeline(ctx, reference, ctx.parallelize(pairs),
                                 known_sites=[])
    handles.pipeline.run()
    variants = handles.vcf.rdd.collect()
"""

__version__ = "1.0.0"

from repro.engine import GPFContext, EngineConfig
from repro.wgs import build_wgs_pipeline, WgsPipelineHandles

__all__ = [
    "GPFContext",
    "EngineConfig",
    "build_wgs_pipeline",
    "WgsPipelineHandles",
    "__version__",
]

"""GPF genomic data compression (paper §4.2).

FASTQ/SAM records spend 80-90% of their bytes on the ``Sequence`` and
``Quality`` fields, so GPF compresses exactly those two fields while leaving
the record structure intact:

- **Sequence**: 2-bit packing of A/C/G/T.  Non-ACGT characters (``N`` etc.)
  use the Deorowicz trick — the base is rewritten to ``A`` and the matching
  quality score is set to 0, which is outside the legal Phred range of real
  reads, so decompression can restore the ``N`` (``repro.compression.twobit``).
- **Quality**: the adjacent-difference (delta) sequence is far more
  concentrated than the raw scores (paper Fig. 5), so qualities are
  delta-transformed and Huffman-coded with an explicit EOF symbol
  (``repro.compression.delta`` + ``repro.compression.huffman``).

``repro.compression.records`` combines both into whole-record codecs used
by the engine's ``gpf`` serializer.
"""

from repro.compression.twobit import (
    compress_sequence,
    decompress_sequence,
    pack_bases,
    unpack_bases,
)
from repro.compression.delta import delta_encode, delta_decode
from repro.compression.huffman import HuffmanCodec, EOF_SYMBOL
from repro.compression.records import (
    CodecUnsupportedError,
    FastqCodec,
    SamCodec,
    compressed_size,
    logical_size,
    ratio,
    roundtrip_safe,
)
from repro.compression.stats import (
    quality_histogram,
    delta_histogram,
    field_fraction,
)

__all__ = [
    "compress_sequence",
    "decompress_sequence",
    "pack_bases",
    "unpack_bases",
    "delta_encode",
    "delta_decode",
    "HuffmanCodec",
    "EOF_SYMBOL",
    "CodecUnsupportedError",
    "FastqCodec",
    "SamCodec",
    "compressed_size",
    "logical_size",
    "ratio",
    "roundtrip_safe",
    "quality_histogram",
    "delta_histogram",
    "field_fraction",
]

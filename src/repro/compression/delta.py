"""Delta transform of quality strings.

Paper Fig. 5: adjacent quality-score differences concentrate near zero far
more than the raw scores do, so the quality field is converted to the
sequence ``[q0, q1-q0, q2-q1, ...]`` with values in [-127, 127] before
entropy coding.  The first element is the absolute first score (the paper's
example ``CCCB(SOH)FFFF -> 67 0 0 -1 -65 -69 0 0 0`` encodes the first raw
ASCII value 67 followed by differences).
"""

from __future__ import annotations

import numpy as np


def delta_encode(quality: str) -> np.ndarray:
    """Quality string -> int16 array [first_ascii, diffs...]."""
    if not quality:
        return np.empty(0, dtype=np.int16)
    raw = np.frombuffer(quality.encode("ascii"), dtype=np.uint8).astype(np.int16)
    out = np.empty_like(raw)
    out[0] = raw[0]
    np.subtract(raw[1:], raw[:-1], out=out[1:])
    return out


def delta_decode(deltas: np.ndarray) -> str:
    """Inverse of :func:`delta_encode`."""
    deltas = np.asarray(deltas, dtype=np.int16)
    if deltas.size == 0:
        return ""
    raw = np.cumsum(deltas, dtype=np.int64)
    if raw.min() < 0 or raw.max() > 255:
        raise ValueError("delta stream decodes outside byte range")
    return raw.astype(np.uint8).tobytes().decode("ascii")

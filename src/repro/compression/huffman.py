"""Canonical Huffman coding with an explicit EOF symbol (paper Fig. 6).

The quality-delta alphabet is small (deltas in [-127, 127] plus EOF), so a
codec is built once per RDD partition from the observed symbol frequencies
and shipped with the compressed block.  Encoding/decoding are implemented
over NumPy bit arrays; the decoder walks a flattened tree stored as two
child arrays, which keeps the hot loop allocation-free.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

#: Symbol appended to every encoded stream so the decoder knows where the
#: payload ends inside the zero-padded final byte.
EOF_SYMBOL = 0x10000

#: Internal decode-tree marker for "this node is not a leaf".  Must lie
#: outside every legal symbol value (deltas are in [-255, 255], EOF is
#: 0x10000), so a large negative sentinel is safe.
_NO_SYMBOL = -(2**31)


@dataclass(frozen=True)
class _Node:
    weight: int
    order: int  # tie-breaker for deterministic trees
    symbol: int | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    def __lt__(self, other: "_Node") -> bool:
        return (self.weight, self.order) < (other.weight, other.order)


class HuffmanCodec:
    """A prefix code over an integer alphabet, built from frequencies."""

    def __init__(self, code_lengths: Mapping[int, int]):
        if EOF_SYMBOL not in code_lengths:
            raise ValueError("codec must include the EOF symbol")
        self._lengths = dict(code_lengths)
        self._codes = _canonical_codes(self._lengths)
        self._build_decode_tree()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_frequencies(cls, freqs: Mapping[int, int]) -> "HuffmanCodec":
        """Build a codec from symbol counts; EOF is added automatically."""
        counts = {int(s): int(c) for s, c in freqs.items() if c > 0}
        counts[EOF_SYMBOL] = counts.get(EOF_SYMBOL, 0) + 1
        if len(counts) == 1:
            # Degenerate alphabet: give EOF a 1-bit code by adding a dummy.
            counts[0] = counts.get(0, 0) + 1
        heap = [
            _Node(weight, order, symbol=symbol)
            for order, (symbol, weight) in enumerate(sorted(counts.items()))
        ]
        heapq.heapify(heap)
        order = len(heap)
        while len(heap) > 1:
            a = heapq.heappop(heap)
            b = heapq.heappop(heap)
            heapq.heappush(heap, _Node(a.weight + b.weight, order, left=a, right=b))
            order += 1
        lengths: dict[int, int] = {}
        _walk_lengths(heap[0], 0, lengths)
        return cls(lengths)

    @classmethod
    def from_samples(cls, samples: Iterable[int]) -> "HuffmanCodec":
        """Build a codec from a raw symbol stream (counts computed here)."""
        freqs: dict[int, int] = {}
        for s in samples:
            freqs[int(s)] = freqs.get(int(s), 0) + 1
        return cls.from_frequencies(freqs)

    # -- serialization of the codec itself -------------------------------
    def code_lengths(self) -> dict[int, int]:
        """The (symbol -> code length) table; enough to rebuild the codec."""
        return dict(self._lengths)

    # -- encode/decode ----------------------------------------------------
    def encode(self, symbols: np.ndarray | list[int]) -> bytes:
        """Encode symbols followed by EOF; zero-padded to a whole byte."""
        stream = list(np.asarray(symbols, dtype=np.int64).tolist()) + [EOF_SYMBOL]
        bits: list[np.ndarray] = []
        codes = self._codes
        try:
            for sym in stream:
                bits.append(codes[sym])
        except KeyError as exc:
            raise ValueError(f"symbol {exc.args[0]} not in codec alphabet") from None
        flat = np.concatenate(bits) if bits else np.empty(0, dtype=np.uint8)
        return np.packbits(flat).tobytes()

    def decode(self, blob: bytes) -> np.ndarray:
        """Decode until EOF; returns the symbol array (without EOF)."""
        bits = np.unpackbits(np.frombuffer(blob, dtype=np.uint8))
        out: list[int] = []
        node = 0
        left, right, symbols = self._left, self._right, self._symbols
        for bit in bits:
            node = right[node] if bit else left[node]
            if node < 0:
                raise ValueError("invalid bit stream: walked past a leaf")
            sym = symbols[node]
            if sym != _NO_SYMBOL:
                if sym == EOF_SYMBOL:
                    return np.asarray(out, dtype=np.int64)
                out.append(sym)
                node = 0
        raise ValueError("bit stream ended before EOF symbol")

    def mean_bits_per_symbol(self, freqs: Mapping[int, int]) -> float:
        """Expected code length under the given symbol frequencies."""
        total = sum(freqs.values())
        if total == 0:
            return 0.0
        return (
            sum(self._lengths[s] * c for s, c in freqs.items() if s in self._lengths)
            / total
        )

    # -- internals --------------------------------------------------------
    def _build_decode_tree(self) -> None:
        """Flatten the canonical tree into arrays for the decode loop."""
        size = 1
        left = [-1]
        right = [-1]
        symbols = [_NO_SYMBOL]
        for symbol, code in self._codes.items():
            node = 0
            for bit in code:
                children = right if bit else left
                if children[node] == -1:
                    left.append(-1)
                    right.append(-1)
                    symbols.append(_NO_SYMBOL)
                    children[node] = size
                    size += 1
                node = children[node]
            symbols[node] = symbol
        self._left = np.asarray(left, dtype=np.int64)
        self._right = np.asarray(right, dtype=np.int64)
        self._symbols = np.asarray(symbols, dtype=np.int64)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HuffmanCodec) and self._lengths == other._lengths


def _walk_lengths(node: _Node, depth: int, out: dict[int, int]) -> None:
    if node.symbol is not None:
        out[node.symbol] = max(depth, 1)
        return
    assert node.left is not None and node.right is not None
    _walk_lengths(node.left, depth + 1, out)
    _walk_lengths(node.right, depth + 1, out)


def _canonical_codes(lengths: Mapping[int, int]) -> dict[int, np.ndarray]:
    """Assign canonical codes: sort by (length, symbol), count upwards."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: dict[int, np.ndarray] = {}
    code = 0
    prev_len = 0
    for symbol, length in ordered:
        code <<= length - prev_len
        bits = np.array(
            [(code >> (length - 1 - i)) & 1 for i in range(length)], dtype=np.uint8
        )
        codes[symbol] = bits
        code += 1
        prev_len = length
    return codes

"""Reference-based SAM sequence compression (a CRAM-style extension).

The paper's conclusion notes that "serialization and compression formats
will inevitably evolve"; the natural next step after 2-bit packing is to
drop aligned sequences entirely and store only their *differences* from
the reference — what CRAM does.  For each mapped record the codec stores:

- the alignment anchor (pos + CIGAR, already in the record's framing),
- mismatching bases as ``(query_offset, base)`` pairs,
- inserted and soft-clipped bases verbatim (they have no reference),

and reconstructs the full sequence at decode time by walking the CIGAR
over the reference.  Unmapped records fall back to 2-bit packing.

On real data most aligned reads have 0-3 mismatches, so sequence storage
drops from len/4 bytes (2-bit) to a handful of bytes per read.  The codec
needs the reference at *both* ends, which GPF satisfies by broadcast —
the same reference every Process already holds.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.compression.records import (
    _BatchReader,
    _BatchWriter,
    _deserialize_table,
    _encode_qualities,
    _sam_extra_fields,
    _sam_from_extra,
    _serialize_table,
)
from repro.compression.twobit import compress_sequence, decompress_sequence
from repro.compression.delta import delta_decode
from repro.compression.huffman import HuffmanCodec
from repro.formats.fasta import Reference
from repro.formats.sam import SamRecord


def encode_against_reference(rec: SamRecord, reference: Reference) -> bytes | None:
    """Difference encoding of one mapped record's sequence.

    Returns None when the record cannot be reference-encoded (unmapped,
    empty sequence, contig missing) — callers fall back to 2-bit packing.

    Layout: ``[u16 n_diff][(u16 offset, u8 base) * n_diff]`` where diffs
    cover mismatches AND all query bases without a reference counterpart
    (insertions, soft clips), identified by their query offset.
    """
    if rec.is_unmapped or not rec.seq or rec.rname not in reference:
        return None
    contig = reference[rec.rname]
    seq = rec.seq
    diffs: list[tuple[int, str]] = []
    for ref_pos, query_idx, op in rec.cigar.walk(rec.pos):
        if query_idx is None:
            continue  # deletion: no query base
        base = seq[query_idx]
        if ref_pos is None or ref_pos >= len(contig):
            diffs.append((query_idx, base))  # insertion / clip / overhang
        elif chr(contig.sequence[ref_pos]) != base:
            diffs.append((query_idx, base))
    if rec.cigar.query_length() != len(seq):
        return None  # malformed CIGAR; cannot reconstruct
    out = struct.pack("<HH", len(seq), len(diffs))
    for offset, base in diffs:
        out += struct.pack("<HB", offset, ord(base))
    return out


def decode_against_reference(
    blob: bytes, rec_pos: int, rname: str, cigar, reference: Reference
) -> str:
    """Inverse of :func:`encode_against_reference`."""
    seq_len, n_diff = struct.unpack_from("<HH", blob, 0)
    contig = reference[rname]
    out = bytearray(b"?" * seq_len)
    for ref_pos, query_idx, op in cigar.walk(rec_pos):
        if query_idx is None:
            continue
        if ref_pos is not None and ref_pos < len(contig):
            out[query_idx] = contig.sequence[ref_pos]
    offset = 4
    for _ in range(n_diff):
        query_idx, base = struct.unpack_from("<HB", blob, offset)
        offset += 3
        out[query_idx] = base
    return out.decode("ascii")


#: Per-record frame tags inside a reference-based batch.
_REF_ENCODED = 0
_TWOBIT_FALLBACK = 1


class RefBasedSamCodec:
    """Batch codec: reference-diff sequences + delta/Huffman qualities.

    Drop-in alternative to :class:`repro.compression.records.SamCodec`
    for contexts that hold the reference (all of GPF's Processes do).
    """

    def __init__(self, reference: Reference):
        self.reference = reference

    def encode(self, records: Sequence[SamRecord]) -> bytes:
        """Serialize a batch with reference-diff sequences where possible."""
        writer = _BatchWriter()
        writer.u32(len(records))
        masked_quals: list[str] = []
        seq_blobs: list[tuple[int, bytes]] = []
        for rec in records:
            ref_blob = encode_against_reference(rec, self.reference)
            if ref_blob is not None:
                seq_blobs.append((_REF_ENCODED, ref_blob))
                masked_quals.append(rec.qual)
            elif rec.seq:
                blob, masked = compress_sequence(rec.seq, rec.qual)
                seq_blobs.append((_TWOBIT_FALLBACK, blob))
                masked_quals.append(masked)
            else:
                seq_blobs.append((_TWOBIT_FALLBACK, b""))
                masked_quals.append("")
        codec, qual_blobs = _encode_qualities(masked_quals)
        writer.blob(_serialize_table(codec.code_lengths()))
        for rec, (tag, seq_blob), qual_blob in zip(records, seq_blobs, qual_blobs):
            writer.u16(tag)
            writer.blob(rec.qname.encode("ascii"), width="u16")
            writer.blob(seq_blob)
            writer.blob(qual_blob)
            writer.blob(_sam_extra_fields(rec))
        return writer.getvalue()

    def decode(self, blob: bytes) -> list[SamRecord]:
        """Inverse of :meth:`encode`; reconstructs sequences from the reference."""
        reader = _BatchReader(blob)
        count = reader.u32()
        codec = HuffmanCodec(_deserialize_table(reader.blob()))
        records: list[SamRecord] = []
        for _ in range(count):
            tag = reader.u16()
            name = reader.blob(width="u16").decode("ascii")
            seq_blob = reader.blob()
            qual = delta_decode(codec.decode(reader.blob()))
            extra = reader.blob()
            if tag == _REF_ENCODED:
                # Build the record shell first (pos/cigar live in extra).
                shell = _sam_from_extra(name, "", qual, extra)
                shell.seq = decode_against_reference(
                    seq_blob, shell.pos, shell.rname, shell.cigar, self.reference
                )
                records.append(shell)
            else:
                seq = decompress_sequence(seq_blob, qual) if seq_blob else ""
                records.append(_sam_from_extra(name, seq, qual, extra))
        return records

"""Whole-record codecs for FASTQ and SAM record batches.

GPF stores each RDD partition as one large byte array (paper §4.2).  A
batch codec therefore takes a *list* of records and produces a single
``bytes`` blob:

- the Sequence field is 2-bit packed (``twobit``),
- the Quality field is delta-transformed and Huffman-coded with one codec
  built per batch (``delta`` + ``huffman``),
- all remaining fields keep their original structure and are framed
  verbatim — the paper is explicit that SAM's other fields are *not*
  compressed, which is why SAM batches compress less than FASTQ batches
  (Table 3).

Binary layout of a batch::

    [u32 record_count]
    [u32 table_len][huffman code-length table as 'sym:len,...' ascii]
    per record:
      [u16 name_len][name][u32 seq_blob_len][seq blob]
      [u32 qual_blob_len][qual bits][u32 extra_len][extra ascii fields]
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

import numpy as np

from repro.compression.delta import delta_decode, delta_encode
from repro.compression.huffman import HuffmanCodec
from repro.compression.twobit import (
    MASK_QUAL_CHAR,
    _ENCODE_LUT,
    compress_sequence,
    decompress_sequence,
)
from repro.formats.cigar import Cigar
from repro.formats.fastq import FastqRecord
from repro.formats.sam import SamRecord, format_tag, parse_tag

#: Default record-batch size for the lazy ``iter_decode`` generators —
#: large enough to amortize the Huffman table setup, small enough that a
#: consumer never holds more than a sliver of the partition decoded.
DECODE_BATCH_SIZE = 512


class CodecUnsupportedError(ValueError):
    """A record cannot round-trip byte-identically through the §4.1 codec.

    Raised by ``encode(..., strict=True)`` for records the 2-bit + mask
    transform would alter: lowercase or IUPAC ambiguity codes (decoded as
    ``N``), an ``N`` whose quality is not already the Phred-0 marker (its
    real quality would be clobbered), or a real ACGT base carrying the
    reserved Phred-0 score (the mask would be ambiguous).  The serializer
    layer catches this and falls back to pickle for the whole block.
    """


def roundtrip_safe(sequence: str, quality: str) -> bool:
    """True when (sequence, quality) survive the codec byte-identically.

    Exactly the records the mask transform leaves untouched: every base
    is ACGT (quality anything but the reserved ``!``) or an ``N`` whose
    quality is *already* the Phred-0 marker.
    """
    if len(sequence) != len(quality):
        return False
    if not sequence:
        return True
    try:
        seq = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
        qual = np.frombuffer(quality.encode("ascii"), dtype=np.uint8)
    except UnicodeEncodeError:
        return False
    special = _ENCODE_LUT[seq] == 255
    mask = ord(MASK_QUAL_CHAR)
    # A special base must be exactly N-with-marker; a regular base must
    # not use the reserved marker score.
    bad_special = special & ~((seq == ord("N")) & (qual == mask))
    collision = (~special) & (qual == mask)
    return not (bool(bad_special.any()) or bool(collision.any()))


def _check_strict(name: str, sequence: str, quality: str) -> None:
    try:
        name.encode("ascii")
    except UnicodeEncodeError as exc:
        raise CodecUnsupportedError(f"non-ascii record name {name!r}") from exc
    if not roundtrip_safe(sequence, quality):
        raise CodecUnsupportedError(
            f"record {name!r} would not round-trip byte-identically "
            "(ambiguity code, lowercase base, or N with a real quality)"
        )


def _check_sam_strict(rec: SamRecord) -> None:
    """Strict-mode gate for one SAM record: name, payload, extra fields.

    The extra fields are framed as one tab-joined ascii line, so a tag
    value carrying a tab/newline (or any non-ascii byte) would re-split
    into the wrong fields on decode — those records must take the pickle
    fallback.
    """
    if rec.seq:
        _check_strict(rec.qname, rec.seq, rec.qual)
    else:
        try:
            rec.qname.encode("ascii")
        except UnicodeEncodeError as exc:
            raise CodecUnsupportedError(
                f"non-ascii record name {rec.qname!r}"
            ) from exc
    try:
        extra = _sam_extra_fields(rec)
    except (UnicodeEncodeError, ValueError, TypeError) as exc:
        raise CodecUnsupportedError(
            f"SAM extra fields of {rec.qname!r} are not ascii-framable"
        ) from exc
    if extra.count(b"\t") != 7 + len(rec.tags) or b"\n" in extra:
        raise CodecUnsupportedError(
            f"SAM tag of {rec.qname!r} contains a framing byte (tab/newline)"
        )


def _serialize_table(lengths: dict[int, int]) -> bytes:
    return ",".join(f"{s}:{l}" for s, l in sorted(lengths.items())).encode("ascii")


def _deserialize_table(blob: bytes) -> dict[int, int]:
    table: dict[int, int] = {}
    for token in blob.decode("ascii").split(","):
        sym, length = token.split(":")
        table[int(sym)] = int(length)
    return table


class _BatchWriter:
    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u16(self, value: int) -> None:
        self._parts.append(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def blob(self, data: bytes, width: str = "u32") -> None:
        if width == "u16":
            self.u16(len(data))
        else:
            self.u32(len(data))
        self._parts.append(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _BatchReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._off = 0

    def u16(self) -> int:
        (value,) = struct.unpack_from("<H", self._data, self._off)
        self._off += 2
        return value

    def u32(self) -> int:
        (value,) = struct.unpack_from("<I", self._data, self._off)
        self._off += 4
        return value

    def blob(self, width: str = "u32") -> bytes:
        n = self.u16() if width == "u16" else self.u32()
        out = self._data[self._off : self._off + n]
        self._off += n
        return out

    def eof(self) -> bool:
        return self._off >= len(self._data)


def _encode_qualities(masked_quals: list[str]) -> tuple[HuffmanCodec, list[bytes]]:
    """Build one Huffman codec over a batch's quality deltas, encode each."""
    deltas = [delta_encode(q) for q in masked_quals]
    freqs: dict[int, int] = {}
    for arr in deltas:
        symbols, counts = np.unique(arr, return_counts=True)
        for s, c in zip(symbols.tolist(), counts.tolist()):
            freqs[s] = freqs.get(s, 0) + c
    codec = HuffmanCodec.from_frequencies(freqs)
    return codec, [codec.encode(arr) for arr in deltas]


class FastqCodec:
    """Batch codec for FASTQ records."""

    @staticmethod
    def encode(records: Sequence[FastqRecord], strict: bool = False) -> bytes:
        """Serialize a record batch to one byte blob (see module layout).

        With ``strict=True`` every record must round-trip byte-identically
        or :class:`CodecUnsupportedError` is raised before any output is
        produced (the serializer layer then falls back to pickle).
        """
        writer = _BatchWriter()
        writer.u32(len(records))
        seq_blobs: list[bytes] = []
        masked_quals: list[str] = []
        for rec in records:
            if strict:
                _check_strict(rec.name, rec.sequence, rec.quality)
            blob, masked = compress_sequence(rec.sequence, rec.quality)
            seq_blobs.append(blob)
            masked_quals.append(masked)
        codec, qual_blobs = _encode_qualities(masked_quals)
        writer.blob(_serialize_table(codec.code_lengths()))
        for rec, seq_blob, qual_blob in zip(records, seq_blobs, qual_blobs):
            writer.blob(rec.name.encode("ascii"), width="u16")
            writer.blob(seq_blob)
            writer.blob(qual_blob)
        return writer.getvalue()

    @staticmethod
    def record_count(blob: bytes) -> int:
        """Record count from the batch header, without decoding."""
        return _BatchReader(blob).u32()

    @staticmethod
    def iter_decode(
        blob: bytes, batch_size: int = DECODE_BATCH_SIZE
    ) -> Iterator[list[FastqRecord]]:
        """Lazily decode the batch, yielding record chunks of ``batch_size``."""
        reader = _BatchReader(blob)
        count = reader.u32()
        codec = HuffmanCodec(_deserialize_table(reader.blob()))
        batch: list[FastqRecord] = []
        for _ in range(count):
            name = reader.blob(width="u16").decode("ascii")
            seq_blob = reader.blob()
            masked_qual = delta_decode(codec.decode(reader.blob()))
            seq = decompress_sequence(seq_blob, masked_qual)
            # Restore the original quality: the Phred-0 markers were only
            # meaningful for masked bases; real FASTQ keeps them (score 0
            # positions correspond to N bases whose original quality the
            # sequencer reported as low anyway -- the Deorowicz transform
            # is lossy exactly there, replacing the N's quality with 0).
            batch.append(FastqRecord(name=name, sequence=seq, quality=masked_qual))
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    @staticmethod
    def decode(blob: bytes) -> list[FastqRecord]:
        """Inverse of :meth:`encode`."""
        out: list[FastqRecord] = []
        for batch in FastqCodec.iter_decode(blob):
            out.extend(batch)
        return out


def _sam_extra_fields(rec: SamRecord) -> bytes:
    """All SAM fields except name/seq/qual, framed as a tab-joined line."""
    fields = [
        str(rec.flag),
        rec.rname,
        str(rec.pos),
        str(rec.mapq),
        str(rec.cigar),
        rec.rnext,
        str(rec.pnext),
        str(rec.tlen),
    ]
    fields += [format_tag(k, v) for k, v in sorted(rec.tags.items())]
    return "\t".join(fields).encode("ascii")


def _sam_from_extra(name: str, seq: str, qual: str, extra: bytes) -> SamRecord:
    parts = extra.decode("ascii").split("\t")
    tags: dict[str, object] = {}
    for raw in parts[8:]:
        key, value = parse_tag(raw)
        tags[key] = value
    return SamRecord(
        qname=name,
        flag=int(parts[0]),
        rname=parts[1],
        pos=int(parts[2]),
        mapq=int(parts[3]),
        cigar=Cigar.parse(parts[4]),
        rnext=parts[5],
        pnext=int(parts[6]),
        tlen=int(parts[7]),
        seq=seq,
        qual=qual,
        tags=tags,
    )


class SamCodec:
    """Batch codec for SAM records: seq/qual compressed, other fields framed."""

    @staticmethod
    def encode(records: Sequence[SamRecord], strict: bool = False) -> bytes:
        """Serialize a record batch to one byte blob (see module layout).

        ``strict=True`` raises :class:`CodecUnsupportedError` for records
        that would not round-trip byte-identically (see FastqCodec).
        """
        writer = _BatchWriter()
        writer.u32(len(records))
        seq_blobs: list[bytes] = []
        masked_quals: list[str] = []
        for rec in records:
            if strict:
                _check_sam_strict(rec)
            if rec.seq:
                blob, masked = compress_sequence(rec.seq, rec.qual)
            else:
                blob, masked = b"", ""
            seq_blobs.append(blob)
            masked_quals.append(masked)
        codec, qual_blobs = _encode_qualities(masked_quals)
        writer.blob(_serialize_table(codec.code_lengths()))
        for rec, seq_blob, qual_blob in zip(records, seq_blobs, qual_blobs):
            writer.blob(rec.qname.encode("ascii"), width="u16")
            writer.blob(seq_blob)
            writer.blob(qual_blob)
            writer.blob(_sam_extra_fields(rec))
        return writer.getvalue()

    @staticmethod
    def record_count(blob: bytes) -> int:
        """Record count from the batch header, without decoding."""
        return _BatchReader(blob).u32()

    @staticmethod
    def iter_decode(
        blob: bytes, batch_size: int = DECODE_BATCH_SIZE
    ) -> Iterator[list[SamRecord]]:
        """Lazily decode the batch, yielding record chunks of ``batch_size``."""
        reader = _BatchReader(blob)
        count = reader.u32()
        codec = HuffmanCodec(_deserialize_table(reader.blob()))
        batch: list[SamRecord] = []
        for _ in range(count):
            name = reader.blob(width="u16").decode("ascii")
            seq_blob = reader.blob()
            masked_qual = delta_decode(codec.decode(reader.blob()))
            extra = reader.blob()
            seq = decompress_sequence(seq_blob, masked_qual) if seq_blob else ""
            batch.append(_sam_from_extra(name, seq, masked_qual, extra))
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    @staticmethod
    def decode(blob: bytes) -> list[SamRecord]:
        """Inverse of :meth:`encode`."""
        out: list[SamRecord] = []
        for batch in SamCodec.iter_decode(blob):
            out.extend(batch)
        return out


def logical_size(records: Sequence[FastqRecord] | Sequence[SamRecord]) -> int:
    """Decoded in-memory footprint estimate of a record batch (bytes).

    Counts the string payload plus a fixed per-object overhead; this is
    the "logical bytes" side of the compression-ratio telemetry.
    """
    total = 0
    for rec in records:
        if isinstance(rec, FastqRecord):
            total += len(rec.name) + len(rec.sequence) + len(rec.quality) + 96
        else:
            total += (
                len(rec.qname)
                + len(rec.seq)
                + len(rec.qual)
                + len(rec.rname)
                + len(rec.rnext)
                + 160
            )
    return total


def compressed_size(
    records: Sequence[FastqRecord] | Sequence[SamRecord],
    encoded: bytes | None = None,
) -> int:
    """Size in bytes of the GPF-compressed batch.

    Callers that already hold the encoded blob pass it via ``encoded`` so
    the batch is not re-encoded just to be measured.
    """
    if encoded is not None:
        return len(encoded)
    if not records:
        return 0
    if isinstance(records[0], FastqRecord):
        return len(FastqCodec.encode(records))  # type: ignore[arg-type]
    return len(SamCodec.encode(records))  # type: ignore[arg-type]


def ratio(
    records: Sequence[FastqRecord] | Sequence[SamRecord],
    encoded: bytes | None = None,
) -> float:
    """Compression ratio logical/compressed of one batch (>1 is a win).

    Reuses ``encoded`` when provided — a single encode pass serves both
    the stored blob and the ratio telemetry.
    """
    compressed = compressed_size(records, encoded)
    if compressed == 0:
        return 1.0
    return logical_size(records) / compressed

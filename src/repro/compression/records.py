"""Whole-record codecs for FASTQ and SAM record batches.

GPF stores each RDD partition as one large byte array (paper §4.2).  A
batch codec therefore takes a *list* of records and produces a single
``bytes`` blob:

- the Sequence field is 2-bit packed (``twobit``),
- the Quality field is delta-transformed and Huffman-coded with one codec
  built per batch (``delta`` + ``huffman``),
- all remaining fields keep their original structure and are framed
  verbatim — the paper is explicit that SAM's other fields are *not*
  compressed, which is why SAM batches compress less than FASTQ batches
  (Table 3).

Binary layout of a batch::

    [u32 record_count]
    [u32 table_len][huffman code-length table as 'sym:len,...' ascii]
    per record:
      [u16 name_len][name][u32 seq_blob_len][seq blob]
      [u32 qual_blob_len][qual bits][u32 extra_len][extra ascii fields]
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.compression.delta import delta_decode, delta_encode
from repro.compression.huffman import HuffmanCodec
from repro.compression.twobit import compress_sequence, decompress_sequence
from repro.formats.cigar import Cigar
from repro.formats.fastq import FastqRecord
from repro.formats.sam import SamRecord, format_tag, parse_tag


def _serialize_table(lengths: dict[int, int]) -> bytes:
    return ",".join(f"{s}:{l}" for s, l in sorted(lengths.items())).encode("ascii")


def _deserialize_table(blob: bytes) -> dict[int, int]:
    table: dict[int, int] = {}
    for token in blob.decode("ascii").split(","):
        sym, length = token.split(":")
        table[int(sym)] = int(length)
    return table


class _BatchWriter:
    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u16(self, value: int) -> None:
        self._parts.append(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        self._parts.append(struct.pack("<I", value))

    def blob(self, data: bytes, width: str = "u32") -> None:
        if width == "u16":
            self.u16(len(data))
        else:
            self.u32(len(data))
        self._parts.append(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _BatchReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._off = 0

    def u16(self) -> int:
        (value,) = struct.unpack_from("<H", self._data, self._off)
        self._off += 2
        return value

    def u32(self) -> int:
        (value,) = struct.unpack_from("<I", self._data, self._off)
        self._off += 4
        return value

    def blob(self, width: str = "u32") -> bytes:
        n = self.u16() if width == "u16" else self.u32()
        out = self._data[self._off : self._off + n]
        self._off += n
        return out

    def eof(self) -> bool:
        return self._off >= len(self._data)


def _encode_qualities(masked_quals: list[str]) -> tuple[HuffmanCodec, list[bytes]]:
    """Build one Huffman codec over a batch's quality deltas, encode each."""
    deltas = [delta_encode(q) for q in masked_quals]
    freqs: dict[int, int] = {}
    for arr in deltas:
        symbols, counts = np.unique(arr, return_counts=True)
        for s, c in zip(symbols.tolist(), counts.tolist()):
            freqs[s] = freqs.get(s, 0) + c
    codec = HuffmanCodec.from_frequencies(freqs)
    return codec, [codec.encode(arr) for arr in deltas]


class FastqCodec:
    """Batch codec for FASTQ records."""

    @staticmethod
    def encode(records: Sequence[FastqRecord]) -> bytes:
        """Serialize a record batch to one byte blob (see module layout)."""
        writer = _BatchWriter()
        writer.u32(len(records))
        seq_blobs: list[bytes] = []
        masked_quals: list[str] = []
        for rec in records:
            blob, masked = compress_sequence(rec.sequence, rec.quality)
            seq_blobs.append(blob)
            masked_quals.append(masked)
        codec, qual_blobs = _encode_qualities(masked_quals)
        writer.blob(_serialize_table(codec.code_lengths()))
        for rec, seq_blob, qual_blob in zip(records, seq_blobs, qual_blobs):
            writer.blob(rec.name.encode("ascii"), width="u16")
            writer.blob(seq_blob)
            writer.blob(qual_blob)
        return writer.getvalue()

    @staticmethod
    def decode(blob: bytes) -> list[FastqRecord]:
        """Inverse of :meth:`encode`."""
        reader = _BatchReader(blob)
        count = reader.u32()
        codec = HuffmanCodec(_deserialize_table(reader.blob()))
        records: list[FastqRecord] = []
        for _ in range(count):
            name = reader.blob(width="u16").decode("ascii")
            seq_blob = reader.blob()
            masked_qual = delta_decode(codec.decode(reader.blob()))
            seq = decompress_sequence(seq_blob, masked_qual)
            # Restore the original quality: the Phred-0 markers were only
            # meaningful for masked bases; real FASTQ keeps them (score 0
            # positions correspond to N bases whose original quality the
            # sequencer reported as low anyway -- the Deorowicz transform
            # is lossy exactly there, replacing the N's quality with 0).
            records.append(FastqRecord(name=name, sequence=seq, quality=masked_qual))
        return records


def _sam_extra_fields(rec: SamRecord) -> bytes:
    """All SAM fields except name/seq/qual, framed as a tab-joined line."""
    fields = [
        str(rec.flag),
        rec.rname,
        str(rec.pos),
        str(rec.mapq),
        str(rec.cigar),
        rec.rnext,
        str(rec.pnext),
        str(rec.tlen),
    ]
    fields += [format_tag(k, v) for k, v in sorted(rec.tags.items())]
    return "\t".join(fields).encode("ascii")


def _sam_from_extra(name: str, seq: str, qual: str, extra: bytes) -> SamRecord:
    parts = extra.decode("ascii").split("\t")
    tags: dict[str, object] = {}
    for raw in parts[8:]:
        key, value = parse_tag(raw)
        tags[key] = value
    return SamRecord(
        qname=name,
        flag=int(parts[0]),
        rname=parts[1],
        pos=int(parts[2]),
        mapq=int(parts[3]),
        cigar=Cigar.parse(parts[4]),
        rnext=parts[5],
        pnext=int(parts[6]),
        tlen=int(parts[7]),
        seq=seq,
        qual=qual,
        tags=tags,
    )


class SamCodec:
    """Batch codec for SAM records: seq/qual compressed, other fields framed."""

    @staticmethod
    def encode(records: Sequence[SamRecord]) -> bytes:
        """Serialize a record batch to one byte blob (see module layout)."""
        writer = _BatchWriter()
        writer.u32(len(records))
        seq_blobs: list[bytes] = []
        masked_quals: list[str] = []
        for rec in records:
            if rec.seq:
                blob, masked = compress_sequence(rec.seq, rec.qual)
            else:
                blob, masked = b"", ""
            seq_blobs.append(blob)
            masked_quals.append(masked)
        codec, qual_blobs = _encode_qualities(masked_quals)
        writer.blob(_serialize_table(codec.code_lengths()))
        for rec, seq_blob, qual_blob in zip(records, seq_blobs, qual_blobs):
            writer.blob(rec.qname.encode("ascii"), width="u16")
            writer.blob(seq_blob)
            writer.blob(qual_blob)
            writer.blob(_sam_extra_fields(rec))
        return writer.getvalue()

    @staticmethod
    def decode(blob: bytes) -> list[SamRecord]:
        """Inverse of :meth:`encode`."""
        reader = _BatchReader(blob)
        count = reader.u32()
        codec = HuffmanCodec(_deserialize_table(reader.blob()))
        records: list[SamRecord] = []
        for _ in range(count):
            name = reader.blob(width="u16").decode("ascii")
            seq_blob = reader.blob()
            masked_qual = delta_decode(codec.decode(reader.blob()))
            extra = reader.blob()
            seq = decompress_sequence(seq_blob, masked_qual) if seq_blob else ""
            records.append(_sam_from_extra(name, seq, masked_qual, extra))
        return records


def compressed_size(records: Sequence[FastqRecord] | Sequence[SamRecord]) -> int:
    """Size in bytes of the GPF-compressed batch."""
    if not records:
        return 0
    if isinstance(records[0], FastqRecord):
        return len(FastqCodec.encode(records))  # type: ignore[arg-type]
    return len(SamCodec.encode(records))  # type: ignore[arg-type]

"""2-bit base-sequence packing with the special-character-to-quality trick.

Paper Fig. 4: the encoding is ``A:00 G:01 C:10 T:11``.  A non-ACGT base
(``N`` and IUPAC ambiguity codes) is rewritten to ``A`` and its quality
score is set to 0 — legal Phred scores of real reads are >= 1 in this
scheme (the paper notes the range 33..126 for the raw ASCII, i.e. score
0 is never produced by a sequencer) — so the decoder can recognize
"A with quality 0" as a masked special character.

The packed layout per sequence is::

    [length: u32 little-endian][packed 2-bit bases, 4 per byte, zero padded]

All packing/unpacking is vectorized with NumPy.
"""

from __future__ import annotations

import numpy as np

#: Paper's code assignment (Fig. 4).
BASE_TO_CODE = {"A": 0, "G": 1, "C": 2, "T": 3}
CODE_TO_BASE = np.frombuffer(b"AGCT", dtype=np.uint8)

#: ASCII lookup: base byte -> 2-bit code, 255 for non-ACGT.
_ENCODE_LUT = np.full(256, 255, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _ENCODE_LUT[ord(_base)] = _code

#: Quality character used to mark a masked special base (Phred 0 => '!'-1
#: is out of range, so we use chr(33+0)... but the paper sets the *score*
#: to 0, meaning ASCII 33 ('!') never appears for real bases).  We encode
#: the mask as Phred score 0 == ASCII '!' and require real reads to have
#: Phred >= 1, which repro.sim guarantees and real Illumina data satisfies
#: (minimum reported quality is 2).
MASK_QUAL_CHAR = "!"


def pack_bases(sequence: str) -> np.ndarray:
    """Pack an ACGT-only sequence into a uint8 array, 4 bases per byte.

    Raises ``ValueError`` on non-ACGT characters — callers must mask
    specials first (see :func:`compress_sequence`).
    """
    raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    codes = _ENCODE_LUT[raw]
    if codes.max(initial=0) == 255:
        bad = sorted({chr(b) for b in raw[codes == 255]})
        raise ValueError(f"cannot 2-bit pack non-ACGT characters: {bad}")
    pad = (-len(codes)) % 4
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, dtype=np.uint8)])
    quads = codes.reshape(-1, 4)
    packed = (
        (quads[:, 0] << 6) | (quads[:, 1] << 4) | (quads[:, 2] << 2) | quads[:, 3]
    ).astype(np.uint8)
    return packed


def unpack_bases(packed: np.ndarray, length: int) -> str:
    """Inverse of :func:`pack_bases`."""
    if length == 0:
        return ""
    packed = np.asarray(packed, dtype=np.uint8)
    codes = np.empty((len(packed), 4), dtype=np.uint8)
    codes[:, 0] = (packed >> 6) & 3
    codes[:, 1] = (packed >> 4) & 3
    codes[:, 2] = (packed >> 2) & 3
    codes[:, 3] = packed & 3
    flat = codes.reshape(-1)[:length]
    return CODE_TO_BASE[flat].tobytes().decode("ascii")


def mask_special_bases(sequence: str, quality: str) -> tuple[str, str]:
    """Rewrite non-ACGT bases to ``A`` and their qualities to Phred 0.

    Returns the masked (sequence, quality) pair.  Raises if the input
    quality already uses Phred 0 at a real (ACGT) base, which would make
    decompression ambiguous.
    """
    if len(sequence) != len(quality):
        raise ValueError("sequence/quality length mismatch")
    seq = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    qual = np.frombuffer(quality.encode("ascii"), dtype=np.uint8).copy()
    special = _ENCODE_LUT[seq] == 255
    collision = (~special) & (qual == ord(MASK_QUAL_CHAR))
    if collision.any():
        raise ValueError(
            "quality uses the reserved Phred-0 score at a regular base; "
            "cannot mask special characters unambiguously"
        )
    if special.any():
        seq = seq.copy()
        seq[special] = ord("A")
        qual[special] = ord(MASK_QUAL_CHAR)
    return seq.tobytes().decode("ascii"), qual.tobytes().decode("ascii")


def unmask_special_bases(sequence: str, quality: str) -> str:
    """Restore ``N`` at every position where quality is the Phred-0 marker."""
    seq = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8).copy()
    qual = np.frombuffer(quality.encode("ascii"), dtype=np.uint8)
    masked = qual == ord(MASK_QUAL_CHAR)
    seq[masked] = ord("N")
    return seq.tobytes().decode("ascii")


def compress_sequence(sequence: str, quality: str) -> tuple[bytes, str]:
    """Compress the sequence field of one record.

    Returns ``(packed_bytes, masked_quality)``.  ``packed_bytes`` is the
    length-prefixed 2-bit packing; ``masked_quality`` carries the Phred-0
    markers for special bases and must be stored alongside (it is what the
    quality codec then compresses).
    """
    masked_seq, masked_qual = mask_special_bases(sequence, quality)
    packed = pack_bases(masked_seq)
    header = len(sequence).to_bytes(4, "little")
    return header + packed.tobytes(), masked_qual


def decompress_sequence(blob: bytes, masked_quality: str) -> str:
    """Inverse of :func:`compress_sequence`; restores special characters."""
    length = int.from_bytes(blob[:4], "little")
    packed = np.frombuffer(blob[4:], dtype=np.uint8)
    seq = unpack_bases(packed, length)
    return unmask_special_bases(seq, masked_quality)

"""Distribution statistics that motivate the quality codec (paper Fig. 5).

Figure 5 of the paper plots, for two SRA samples, (a) the raw quality-score
distribution and (b) the adjacent-difference distribution, showing the
latter concentrates near zero.  These helpers compute both histograms from
any collection of quality strings so the figure can be regenerated from
simulated profiles.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.compression.delta import delta_encode


def quality_histogram(qualities: Iterable[str]) -> dict[int, float]:
    """Percent of bases at each raw ASCII quality value."""
    counts: dict[int, int] = {}
    total = 0
    for qual in qualities:
        raw = np.frombuffer(qual.encode("ascii"), dtype=np.uint8)
        values, freq = np.unique(raw, return_counts=True)
        for v, c in zip(values.tolist(), freq.tolist()):
            counts[v] = counts.get(v, 0) + c
        total += len(raw)
    if total == 0:
        return {}
    return {v: 100.0 * c / total for v, c in sorted(counts.items())}


def delta_histogram(qualities: Iterable[str]) -> dict[int, float]:
    """Percent of adjacent quality differences at each delta value.

    Only the difference part of the delta stream is counted (the first
    element of each read is the absolute score, not a difference).
    """
    counts: dict[int, int] = {}
    total = 0
    for qual in qualities:
        deltas = delta_encode(qual)[1:]
        values, freq = np.unique(deltas, return_counts=True)
        for v, c in zip(values.tolist(), freq.tolist()):
            counts[int(v)] = counts.get(int(v), 0) + int(c)
        total += len(deltas)
    if total == 0:
        return {}
    return {v: 100.0 * c / total for v, c in sorted(counts.items())}


def concentration(histogram: dict[int, float], radius: int = 10) -> float:
    """Percent of mass within ``radius`` of the histogram's mode.

    The paper's observation is that deltas are "more concentrated and
    easier to predict": this scalar makes the comparison testable.
    """
    if not histogram:
        return 0.0
    mode = max(histogram, key=lambda k: histogram[k])
    return sum(p for v, p in histogram.items() if abs(v - mode) <= radius)


def field_fraction(sequences: Iterable[str], qualities: Iterable[str], names: Iterable[str]) -> float:
    """Fraction of total record bytes taken by sequence+quality fields.

    The paper reports 80-90% for FASTQ records, which justifies compressing
    only those two fields.
    """
    name_list = list(names)
    seq_bytes = sum(len(s) for s in sequences)
    qual_bytes = sum(len(q) for q in qualities)
    name_bytes = sum(len(n) for n in name_list)
    # Four-line FASTQ framing per record:
    # '@' + name + '\n' + seq + '\n' + '+' + '\n' + qual + '\n'  (6 framing bytes)
    overhead = name_bytes + 6 * len(name_list)
    total = seq_bytes + qual_bytes + overhead
    if total == 0:
        return 0.0
    return (seq_bytes + qual_bytes) / total

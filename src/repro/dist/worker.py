"""Worker-side machinery: context stub, P2P shuffle, and the daemon.

A worker node runs the *same source tree* as the driver and receives
task bodies by value (:mod:`repro.dist.shipping`).  Everything a task
body reaches through ``ctx`` resolves to a :class:`WorkerContext`: a
worker-local block manager for cache/checkpoint blocks, a
:class:`DistShuffle` whose reduce side fetches map blocks *from peer
workers* (never through the driver), and telemetry that travels home
with each result frame.

The daemon (``gpf worker --connect HOST:PORT``) opens one task channel
per slot, serves shuffle blocks to peers on its own listener, and
heartbeats the driver from a separate thread.  It exits when the driver
closes the task channels (orderly shutdown) or on SIGTERM.
"""

from __future__ import annotations

import os
import socket
import sys
import tempfile
import threading
import time
import traceback
import zlib

from repro.dist import protocol
from repro.dist.shipping import ship_loads
from repro.engine.blockmanager import BlockManager, frame_block, unframe_block
from repro.engine.bundle import PartitionChain, decode_partition, encode_partition
from repro.engine.faults import ShuffleFetchFailedError
from repro.engine.metrics import timed
from repro.obs import EventBus, NoopTracer, TelemetryRegistry


#: Socket timeout for peer block fetches; a hung peer must fail the
#: task (-> retry + recovery) rather than wedge the reduce slot.
FETCH_TIMEOUT = 30.0


class _TaskLocalTelemetry:
    """Telemetry facade routing to the running task's private registry.

    One WorkerContext is shared by every slot thread of a namespace;
    counters incremented during a task must travel home with *that*
    task's result frame, so each slot activates a thread-local registry
    for the duration of its task.  Increments outside any task (rare:
    daemon housekeeping) fall through to a base registry that stays on
    the worker.
    """

    def __init__(self) -> None:
        self._tls = threading.local()
        self._base = TelemetryRegistry()

    def activate(self) -> TelemetryRegistry:
        registry = TelemetryRegistry()
        self._tls.registry = registry
        return registry

    def deactivate(self) -> None:
        self._tls.registry = None

    def _target(self) -> TelemetryRegistry:
        return getattr(self._tls, "registry", None) or self._base

    def inc(self, name: str, delta: float = 1) -> None:
        self._target().inc(name, delta)

    def observe(self, name: str, value: float) -> None:
        self._target().observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self._target().set_gauge(name, value)

    def counter(self, name: str) -> float:
        return self._target().counter(name)

    def snapshot(self) -> dict:
        return self._target().snapshot()


def fetch_block(
    sock: socket.socket, ns: int, shuffle_id: int, map_p: int, reduce_p: int
) -> bytes:
    """Fetch one shuffle block over an open peer connection."""
    protocol.send_frame(
        sock,
        protocol.MSG_FETCH,
        {"ns": ns, "shuffle": shuffle_id, "map": map_p, "reduce": reduce_p},
    )
    kind, header, body = protocol.recv_frame(sock)
    if kind == protocol.MSG_BLOCK:
        return body
    if kind == protocol.MSG_ERROR:
        raise protocol.decode_error(header)
    raise protocol.ProtocolError(f"unexpected reply {kind!r} to FETCH")


def serve_fetch_connection(conn: socket.socket, path_for, initial: dict | None = None) -> None:
    """Serve FETCH requests on one connection until the peer hangs up.

    ``path_for(ns, shuffle, map, reduce)`` maps a block identity to its
    file path (or None when the namespace is unknown).  A missing block
    answers with a pickled :class:`ShuffleFetchFailedError` so the
    fetching task fails with the *typed* error the scheduler's recovery
    path keys on.  ``initial`` is a FETCH header the caller already read
    off the socket (the fleet server dispatches on the first frame).
    """
    try:
        header = initial
        while True:
            if header is None:
                try:
                    kind, header, _ = protocol.recv_frame(conn)
                except protocol.ConnectionClosed:
                    return
                if kind == protocol.MSG_GOODBYE:
                    return
                if kind != protocol.MSG_FETCH:
                    protocol.send_error(
                        conn,
                        protocol.ProtocolError(f"unexpected {kind!r} on fetch channel"),
                    )
                    header = None
                    continue
            shuffle_id = header.get("shuffle", -1)
            map_p = header.get("map", -1)
            path = path_for(
                header.get("ns", -1), shuffle_id, map_p, header.get("reduce", -1)
            )
            blob = None
            if path is not None:
                try:
                    with open(path, "rb") as fh:
                        blob = fh.read()
                except OSError:
                    blob = None
            if blob is None:
                protocol.send_error(
                    conn,
                    ShuffleFetchFailedError(shuffle_id, map_p, where="block server"),
                )
            else:
                protocol.send_frame(conn, protocol.MSG_BLOCK, {"ok": True}, blob)
            header = None
    except (OSError, protocol.ProtocolError):
        return
    finally:
        try:
            conn.close()
        except OSError:
            pass


def run_block_server(
    bind_host: str, path_for, *, port: int = 0
) -> tuple[socket.socket, int, threading.Thread]:
    """Start the shuffle block server; returns (listener, port, thread)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((bind_host, port))
    listener.listen(64)

    def accept_loop() -> None:
        while True:
            try:
                conn, _ = listener.accept()
            except OSError:
                return  # listener closed: shutdown
            threading.Thread(
                target=serve_fetch_connection,
                args=(conn, path_for),
                daemon=True,
                name="gpf-dist-blockserve",
            ).start()

    thread = threading.Thread(
        target=accept_loop, daemon=True, name="gpf-dist-blockserver"
    )
    thread.start()
    return listener, listener.getsockname()[1], thread


class DistShuffle:
    """Peer-to-peer hash shuffle over the spill-file format.

    Map tasks write exactly the spill blocks
    :class:`~repro.engine.shuffle.ShuffleManager` writes (tag byte +
    crc32 ``GPFB`` frame + ``GPB2`` bundle) into this node's store;
    reduce tasks read the *locations* table and fetch every remote
    bucket directly from the owning peer's block server.  Bytes cross
    the wire in their compressed resident form — no re-pickling.

    Used on both ends: workers get a per-namespace instance with
    locations snapshotted from each TASK frame; the driver gets one
    (wrapped by the cluster transport) whose locations resolve live, so
    locally-fallen-back tasks interoperate with remote ones.
    """

    def __init__(
        self,
        root: str,
        self_addr: tuple[str, int],
        *,
        ns: int = 0,
        compress: bool = False,
        chaos=None,
        telemetry=None,
        on_write=None,
    ):
        self._root = root
        self._self_addr = tuple(self_addr)
        self._ns = ns
        self._compress = compress
        self._chaos = chaos
        self._telemetry = telemetry
        self._on_write = on_write
        self._lock = threading.Lock()
        #: shuffle_id -> {"num_map": int, "maps": {map_p: (host, port)}}
        self._locations: dict[int, dict] = {}
        self._tls = threading.local()
        os.makedirs(root, exist_ok=True)

    # -- locations -------------------------------------------------------
    def set_locations(self, locations: dict) -> None:
        """Merge a TASK frame's locations snapshot (worker side)."""
        with self._lock:
            for shuffle_id, entry in (locations or {}).items():
                current = self._locations.setdefault(
                    shuffle_id, {"num_map": entry.get("num_map", 0), "maps": {}}
                )
                current["num_map"] = entry.get("num_map", current["num_map"])
                current["maps"].update(entry.get("maps", {}))

    def ensure_shuffle(self, shuffle_id: int, num_map: int) -> None:
        """Declare a shuffle's map-side width (driver side, at register)."""
        with self._lock:
            entry = self._locations.setdefault(
                shuffle_id, {"num_map": num_map, "maps": {}}
            )
            entry["num_map"] = num_map

    def add_location(self, shuffle_id: int, map_partition: int, addr) -> None:
        """Record which node holds one map output (driver side)."""
        with self._lock:
            entry = self._locations.setdefault(
                shuffle_id, {"num_map": 0, "maps": {}}
            )
            entry["maps"][map_partition] = tuple(addr)

    def snapshot_locations(self) -> dict:
        """A picklable copy of the whole locations table (TASK header)."""
        with self._lock:
            return {
                shuffle_id: {"num_map": e["num_map"], "maps": dict(e["maps"])}
                for shuffle_id, e in self._locations.items()
            }

    def _resolve(self, shuffle_id: int) -> dict:
        with self._lock:
            entry = self._locations.get(shuffle_id)
            if entry is None:
                return {"num_map": 0, "maps": {}}
            return {"num_map": entry["num_map"], "maps": dict(entry["maps"])}

    # -- per-task output manifest (worker side) --------------------------
    def begin_task(self) -> None:
        self._tls.outputs = []

    def drain_outputs(self) -> list[tuple[int, int]]:
        outputs = getattr(self._tls, "outputs", None) or []
        self._tls.outputs = []
        return outputs

    def _record_output(self, shuffle_id: int, map_partition: int) -> None:
        if self._on_write is not None:
            self._on_write(shuffle_id, map_partition)
            return
        outputs = getattr(self._tls, "outputs", None)
        if outputs is None:
            outputs = self._tls.outputs = []
        outputs.append((shuffle_id, map_partition))

    # -- map side --------------------------------------------------------
    def write(
        self, shuffle_id, map_partition, elements, partition_func, serializer, task
    ) -> None:
        num_reduce = partition_func.num_partitions
        buckets: list[list] = [[] for _ in range(num_reduce)]
        records = 0
        for kv in elements:
            buckets[partition_func(kv[0])].append(kv)
            records += 1
        shuffle_dir = self._shuffle_dir(shuffle_id)
        os.makedirs(shuffle_dir, exist_ok=True)
        total = 0
        for reduce_partition, bucket in enumerate(buckets):
            body, _ = encode_partition(bucket, serializer)
            blob = frame_block(body)
            blob = (b"z" + zlib.compress(blob, 1)) if self._compress else (b"r" + blob)
            total += len(blob)
            if self._chaos is not None:
                self._chaos.hit(
                    "shuffle.write", shuffle=shuffle_id, map=map_partition
                )
            path = os.path.join(shuffle_dir, f"{map_partition}_{reduce_partition}.bin")
            with timed(task, "disk_blocked"):
                with open(path, "wb") as fh:
                    fh.write(blob)
        task.shuffle_bytes_written += total
        task.records_written += records
        if self._telemetry is not None:
            self._telemetry.inc("shuffle.bytes_written", total)
            self._telemetry.inc("shuffle.records_written", records)
        self._record_output(shuffle_id, map_partition)

    # -- reduce side -----------------------------------------------------
    def read(self, shuffle_id, reduce_partition, serializer, task) -> PartitionChain:
        entry = self._resolve(shuffle_id)
        num_map = entry["num_map"]
        maps = entry["maps"]
        if len(maps) < num_map:
            missing = sorted(set(range(num_map)) - set(maps))
            raise ShuffleFetchFailedError(
                shuffle_id, missing[0] if missing else -1, where="no location"
            )
        parts: list = []
        total = 0
        peer_socks: dict[tuple[str, int], socket.socket] = {}
        try:
            for map_partition in range(num_map):
                addr = tuple(maps[map_partition])
                local = addr == self._self_addr
                if local:
                    path = os.path.join(
                        self._shuffle_dir(shuffle_id),
                        f"{map_partition}_{reduce_partition}.bin",
                    )
                    try:
                        with timed(task, "disk_blocked"):
                            with open(path, "rb") as fh:
                                blob = fh.read()
                    except OSError as exc:
                        raise ShuffleFetchFailedError(
                            shuffle_id, map_partition, where=str(exc)
                        ) from exc
                else:
                    if self._chaos is not None:
                        # dist.fetch faults: a hit simulates a dead or
                        # refusing peer (typed as a fetch failure so the
                        # scheduler's recovery path exercises), a mangle
                        # corrupts the fetched bytes so the crc below
                        # fails the attempt.
                        try:
                            self._chaos.hit(
                                "dist.fetch", shuffle=shuffle_id, map=map_partition
                            )
                        except Exception as exc:  # noqa: BLE001 - typed below
                            raise ShuffleFetchFailedError(
                                shuffle_id, map_partition, where=f"chaos: {exc}"
                            ) from exc
                    try:
                        sock = peer_socks.get(addr)
                        if sock is None:
                            sock = socket.create_connection(addr, timeout=FETCH_TIMEOUT)
                            peer_socks[addr] = sock
                        with timed(task, "network_blocked"):
                            blob = fetch_block(
                                sock, self._ns, shuffle_id, map_partition, reduce_partition
                            )
                    except ShuffleFetchFailedError:
                        raise
                    except (OSError, protocol.ProtocolError) as exc:
                        raise ShuffleFetchFailedError(
                            shuffle_id, map_partition, where=f"{addr[0]}:{addr[1]}: {exc}"
                        ) from exc
                    if self._chaos is not None:
                        blob = self._chaos.mangle(
                            "dist.fetch", blob, shuffle=shuffle_id, map=map_partition
                        )
                    if self._telemetry is not None:
                        self._telemetry.inc("dist.fetch_bytes", len(blob))
                        self._telemetry.inc("dist.fetches")
                total += len(blob)
                tag, body = blob[:1], blob[1:]
                if tag == b"z":
                    body = zlib.decompress(body)
                part = decode_partition(unframe_block(body), serializer)
                if part:
                    parts.append(part)
        finally:
            for sock in peer_socks.values():
                try:
                    sock.close()
                except OSError:
                    pass
        chain = PartitionChain(parts)
        records = len(chain)
        task.shuffle_bytes_read += total
        task.records_read += records
        if self._telemetry is not None:
            self._telemetry.inc("shuffle.bytes_read", total)
            self._telemetry.inc("shuffle.records_read", records)
        return chain

    # -- paths -----------------------------------------------------------
    def _shuffle_dir(self, shuffle_id: int) -> str:
        return os.path.join(self._root, f"shuffle_{shuffle_id}")


class WorkerContext:
    """The ``ctx`` a shipped task body sees on a worker node.

    Implements exactly the context surface lineage code touches at
    *compute* time: serializer, cache/checkpoint block I/O (worker-local
    block manager — a partition cached by one task is reused by the next
    task of the same namespace), the P2P shuffle, telemetry, and an
    inert event bus.  Driver-only machinery (scheduler, executor,
    accumulators) is deliberately absent; a closure that calls
    ``ctx.run_job`` mid-task gets a clear error instead of a deadlock.
    """

    is_remote_worker = True

    def __init__(
        self,
        root: str,
        ns: int,
        self_addr: tuple[str, int],
        serializer,
        *,
        compress: bool = False,
        decode_batch_size: int = 512,
    ):
        self.ns = ns
        self.serializer = serializer
        self.decode_batch_size = decode_batch_size
        self.telemetry = _TaskLocalTelemetry()
        self.events = EventBus()
        self.tracer = NoopTracer()
        self.chaos = None
        self.fault_injectors: list = []
        from repro.formats.quarantine import QuarantineSink

        self.quarantine = QuarantineSink(events=self.events)
        ns_dir = os.path.join(root, f"ns{ns}")
        os.makedirs(ns_dir, exist_ok=True)
        self.block_manager = BlockManager(
            os.path.join(ns_dir, "blocks"),
            checkpoint_dir=os.path.join(ns_dir, "checkpoints"),
            events=self.events,
        )
        self.shuffle_manager = DistShuffle(
            ns_dir,
            self_addr,
            ns=ns,
            compress=compress,
            telemetry=self.telemetry,
        )

    # -- cache (mirrors GPFContext, worker-local store) ------------------
    def _cache_get(self, rdd, split: int):
        blob = self.block_manager.get((rdd.id, split))
        if blob is None:
            return None
        return decode_partition(
            blob, self.serializer, telemetry=self.telemetry,
            batch_size=self.decode_batch_size,
        )

    def _cache_put(self, rdd, split: int, data) -> None:
        blob, bundle = encode_partition(data, self.serializer)
        self.block_manager.put(
            (rdd.id, split), blob, logical_bytes=bundle.logical_bytes
        )

    def _cache_evict(self, rdd) -> None:
        self.block_manager.evict_rdd(rdd.id)

    def _cache_complete(self, rdd) -> bool:
        return all(
            self.block_manager.contains((rdd.id, split))
            for split in range(rdd.num_partitions)
        )

    # -- checkpoints -----------------------------------------------------
    def _checkpoint_put(self, rdd, split: int, data) -> str:
        blob, _ = encode_partition(data, self.serializer)
        return self.block_manager.put_checkpoint((rdd.id, split), blob)

    def _checkpoint_get(self, rdd, split: int):
        blob = self.block_manager.get_checkpoint((rdd.id, split))
        if blob is None:
            return None
        try:
            part = decode_partition(
                blob, self.serializer, telemetry=self.telemetry,
                batch_size=self.decode_batch_size,
            )
            if hasattr(part, "batches"):
                for _ in part.batches():
                    pass
        except Exception:  # noqa: BLE001 - undecodable => recompute
            self.block_manager.discard_checkpoint((rdd.id, split))
            return None
        return part

    # -- guards ----------------------------------------------------------
    def run_job(self, rdd, partitions=None):
        raise RuntimeError(
            "nested run_job inside a shipped task: actions must run on "
            "the driver, not inside lineage closures"
        )

    def _register_rdd(self, rdd) -> int:  # unpickled RDDs keep their ids
        raise RuntimeError("new RDDs cannot be created inside a shipped task")


class WorkerDaemon:
    """One worker node: task slots, block server, heartbeats.

    ``slots`` is the worker's task parallelism: each slot is a dedicated
    socket connection to the driver's fleet server, so the driver's slot
    pool *is* the fleet's admission control and no frame multiplexing is
    needed.
    """

    def __init__(
        self,
        connect: tuple[str, int],
        *,
        slots: int | None = None,
        worker_id: str | None = None,
        root_dir: str | None = None,
        advertise_host: str | None = None,
        connect_timeout: float = 10.0,
    ):
        self.connect_addr = tuple(connect)
        self.slots = max(1, slots or (os.cpu_count() or 2))
        self.worker_id = worker_id or f"worker-{socket.gethostname()}-{os.getpid()}"
        self.root_dir = root_dir or tempfile.mkdtemp(prefix="gpf_worker_")
        self._owns_root = root_dir is None
        self.advertise_host = advertise_host or self.connect_addr[0]
        self.connect_timeout = connect_timeout
        self._stop = threading.Event()
        self._contexts: dict[int, WorkerContext] = {}
        self._contexts_lock = threading.Lock()
        self._heartbeat_interval = 1.0
        self._block_listener: socket.socket | None = None
        self.fetch_port: int | None = None
        self.tasks_run = 0

    # -- namespace state -------------------------------------------------
    def _context_for(self, header: dict) -> WorkerContext:
        ns = header["ns"]
        with self._contexts_lock:
            wctx = self._contexts.get(ns)
            if wctx is None:
                wctx = WorkerContext(
                    self.root_dir,
                    ns,
                    (self.advertise_host, self.fetch_port),
                    header["serializer"],
                    compress=header.get("compress", False),
                    decode_batch_size=header.get("batch", 512),
                )
                self._contexts[ns] = wctx
        return wctx

    def _block_path(self, ns: int, shuffle_id: int, map_p: int, reduce_p: int):
        path = os.path.join(
            self.root_dir, f"ns{ns}", f"shuffle_{shuffle_id}", f"{map_p}_{reduce_p}.bin"
        )
        return path if os.path.exists(path) else None

    # -- task execution --------------------------------------------------
    def _run_task(self, header: dict, body_blob: bytes) -> tuple[dict, bytes]:
        wctx = self._context_for(header)
        wctx.shuffle_manager.set_locations(header.get("locations") or {})
        wctx.chaos = header.get("chaos")
        wctx.shuffle_manager._chaos = wctx.chaos
        registry = wctx.telemetry.activate()
        wctx.shuffle_manager.begin_task()
        try:
            body, task = ship_loads(body_blob, wctx)
            started = time.perf_counter()
            value = body(task)
            task.run_time = time.perf_counter() - started
            task.finalize()
            outputs = wctx.shuffle_manager.drain_outputs()
            if value is None:
                encoding, result_blob = "none", b""
            else:
                try:
                    elements = value if isinstance(value, list) else list(value)
                    result_blob, _ = encode_partition(elements, wctx.serializer)
                    encoding = "bundle"
                except Exception:  # noqa: BLE001 - non-record values
                    import pickle as _pickle

                    result_blob = _pickle.dumps(
                        value, protocol=_pickle.HIGHEST_PROTOCOL
                    )
                    encoding = "pickle"
            self.tasks_run += 1
            reply = {
                "task": task,
                "outputs": outputs,
                "encoding": encoding,
                "telemetry": registry.snapshot()["counters"],
                "worker": self.worker_id,
            }
            return reply, result_blob
        finally:
            wctx.telemetry.deactivate()

    def _slot_loop(self, slot: int) -> None:
        try:
            sock = socket.create_connection(
                self.connect_addr, timeout=self.connect_timeout
            )
        except OSError:
            self._stop.set()
            return
        sock.settimeout(None)
        try:
            protocol.send_frame(
                sock,
                protocol.MSG_REGISTER,
                {
                    "worker": self.worker_id,
                    "slot": slot,
                    "slots": self.slots,
                    "pid": os.getpid(),
                    "fetch": (self.advertise_host, self.fetch_port),
                },
            )
            kind, header, _ = protocol.recv_frame(sock)
            if kind != protocol.MSG_WELCOME:
                return
            self._heartbeat_interval = header.get("heartbeat", 1.0)
            while not self._stop.is_set():
                try:
                    kind, header, body = protocol.recv_frame(sock)
                except protocol.ConnectionClosed:
                    return  # driver went away: orderly exit
                if kind == protocol.MSG_GOODBYE:
                    return
                if kind != protocol.MSG_TASK:
                    continue
                try:
                    reply, result_blob = self._run_task(header, body)
                except BaseException as exc:  # noqa: BLE001 - shipped home
                    protocol.send_error(sock, exc, traceback.format_exc())
                else:
                    protocol.send_frame(
                        sock, protocol.MSG_RESULT, reply, result_blob
                    )
        except (OSError, protocol.ProtocolError):
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _heartbeat_loop(self) -> None:
        while not self._stop.is_set():
            try:
                with socket.create_connection(
                    self.connect_addr, timeout=self.connect_timeout
                ) as sock:
                    protocol.send_frame(
                        sock, protocol.MSG_PING, {"worker": self.worker_id}
                    )
            except OSError:
                pass  # driver busy/restarting; slots detect real loss
            self._stop.wait(self._heartbeat_interval)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start the block server, slot threads, and heartbeats."""
        os.makedirs(self.root_dir, exist_ok=True)
        self._block_listener, self.fetch_port, _ = run_block_server(
            "0.0.0.0", self._block_path
        )
        self._threads = [
            threading.Thread(
                target=self._slot_loop, args=(i,), daemon=True,
                name=f"gpf-worker-slot-{i}",
            )
            for i in range(self.slots)
        ]
        for thread in self._threads:
            thread.start()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="gpf-worker-heartbeat"
        )
        self._hb_thread.start()

    def wait(self) -> None:
        """Block until every slot loop has exited (driver hung up)."""
        for thread in self._threads:
            while thread.is_alive():
                thread.join(0.2)
        self.stop()

    def stop(self) -> None:
        self._stop.set()
        if self._block_listener is not None:
            try:
                self._block_listener.close()
            except OSError:
                pass
            self._block_listener = None
        if self._owns_root:
            import shutil

            shutil.rmtree(self.root_dir, ignore_errors=True)

    def run(self) -> None:
        """start() + wait(); the ``gpf worker`` entry point."""
        self.start()
        print(
            f"gpf worker {self.worker_id}: {self.slots} slot(s), "
            f"fetch port {self.fetch_port}, driver "
            f"{self.connect_addr[0]}:{self.connect_addr[1]}",
            file=sys.stderr,
            flush=True,
        )
        self.wait()

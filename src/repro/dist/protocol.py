"""The worker-node wire protocol: length-prefixed GPFB frames.

Every message on a cluster socket is one frame::

    [u32 length, big-endian][GPFB payload]

where the payload reuses the engine's on-disk block framing
(:func:`repro.engine.blockmanager.frame_block` — ``GPFB`` magic + crc32
+ blob), so a bit flip on the wire is caught by the same check that
catches a torn spill file.  Inside the crc frame::

    [1s message type][u32 header length][pickled header dict][raw body]

The *header* is a small pickled dict (message metadata: worker id,
task namespace, shuffle locations).  The *body* is raw bytes — shipped
closures, ``GPB2`` compressed partition bundles, shuffle blocks — and
is never re-pickled: compressed blocks travel in exactly their resident
form, which is the point (SAGe's warning: data movement is where
distributed genomics pipelines lose their throughput).

Message types:

=========  ====================  =======================================
type       direction             meaning
=========  ====================  =======================================
REGISTER   worker -> driver      join the fleet (one frame per slot)
WELCOME    driver -> worker      registration ack + heartbeat interval
PING       worker -> driver      heartbeat (short-lived connection)
TASK       driver -> worker      run a shipped task body
RESULT     worker -> driver      task value + metrics + shuffle outputs
ERROR      either direction      pickled exception + remote traceback
FETCH      worker -> peer        request one shuffle block
BLOCK      peer -> worker        the requested block bytes
GOODBYE    either direction      orderly shutdown of this connection
=========  ====================  =======================================
"""

from __future__ import annotations

import pickle
import socket
import struct

from repro.engine.blockmanager import BlockCorruptionError, frame_block, unframe_block

MSG_REGISTER = b"R"
MSG_WELCOME = b"W"
MSG_PING = b"P"
MSG_TASK = b"T"
MSG_RESULT = b"r"
MSG_ERROR = b"E"
MSG_FETCH = b"F"
MSG_BLOCK = b"B"
MSG_GOODBYE = b"G"

_LEN = struct.Struct(">I")

#: Refuse frames beyond this size — a corrupt length prefix must not
#: make a worker try to allocate gigabytes.
MAX_FRAME = 1 << 30


class ProtocolError(RuntimeError):
    """Malformed or corrupt frame on a cluster socket."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF), possibly mid-frame."""


def send_frame(sock: socket.socket, kind: bytes, header: dict | None = None, body: bytes = b"") -> None:
    """Send one message; the payload is crc32-framed before the length."""
    header_bytes = pickle.dumps(header or {}, protocol=pickle.HIGHEST_PROTOCOL)
    payload = kind + _LEN.pack(len(header_bytes)) + header_bytes + body
    framed = frame_block(payload)
    sock.sendall(_LEN.pack(len(framed)) + framed)


def recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes, looping over partial reads.

    TCP delivers a frame in arbitrary chunks; a ``recv`` that returns
    early is normal, not an error.  EOF before ``n`` bytes raises
    :class:`ConnectionClosed` — a torn frame is indistinguishable from
    a dead peer and is treated as one.
    """
    if n == 0:
        return b""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {n} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[bytes, dict, bytes]:
    """Receive one message: ``(kind, header, body)``.

    Raises :class:`ConnectionClosed` on a clean EOF before any bytes,
    :class:`ProtocolError` on a corrupt or oversized frame.
    """
    try:
        prefix = recv_exactly(sock, _LEN.size)
    except ConnectionClosed as exc:
        # EOF exactly on a frame boundary is an orderly close.
        raise ConnectionClosed("connection closed") from exc
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME}")
    framed = recv_exactly(sock, length)
    try:
        payload = unframe_block(framed, where="socket frame")
    except BlockCorruptionError as exc:
        raise ProtocolError(str(exc)) from exc
    if len(payload) < 1 + _LEN.size:
        raise ProtocolError("frame too short for type + header length")
    kind = payload[:1]
    (header_len,) = _LEN.unpack_from(payload, 1)
    header_end = 1 + _LEN.size + header_len
    if header_end > len(payload):
        raise ProtocolError("frame header length exceeds payload")
    try:
        header = pickle.loads(payload[1 + _LEN.size : header_end])
    except Exception as exc:  # noqa: BLE001 - any unpickle failure
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    return kind, header, payload[header_end:]


def send_error(sock: socket.socket, exc: BaseException, traceback_text: str = "") -> None:
    """Ship an exception as an ERROR frame.

    The exception object itself is pickled when possible (the engine's
    fault types all define ``__reduce__``) so the driver re-raises the
    *real* type — retry classification depends on it; anything
    unpicklable degrades to a :class:`RemoteError` description.
    """
    try:
        blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 - fall back to a description
        blob = b""
    send_frame(
        sock,
        MSG_ERROR,
        {
            "exc": blob,
            "error_type": type(exc).__name__,
            "message": str(exc)[:2000],
            "traceback": traceback_text[-8000:],
        },
    )


class RemoteError(RuntimeError):
    """A worker-side failure whose exception could not be pickled home."""

    def __init__(self, error_type: str, message: str, traceback_text: str = ""):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_traceback = traceback_text

    def __reduce__(self):
        return (type(self), (self.error_type, str(self).split(": ", 1)[-1], self.remote_traceback))


def decode_error(header: dict) -> BaseException:
    """Rebuild the exception carried by an ERROR frame."""
    blob = header.get("exc") or b""
    if blob:
        try:
            exc = pickle.loads(blob)
            if isinstance(exc, BaseException):
                exc.remote_traceback = header.get("traceback", "")
                return exc
        except Exception:  # noqa: BLE001 - degrade to RemoteError below
            pass
    return RemoteError(
        header.get("error_type", "Exception"),
        header.get("message", ""),
        header.get("traceback", ""),
    )

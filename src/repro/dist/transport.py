"""The pluggable Transport interface and its backend registry.

A *transport* decides where task bodies physically run.  The engine's
scheduler is transport-agnostic: it builds per-partition thunks, hands
batches to :meth:`Transport.run_all`, and routes each measured attempt
through :meth:`Transport.execute` — the single seam a remote transport
overrides to ship the body somewhere else.  Local transports (serial,
threads, process — see :mod:`repro.engine.executors`) keep the default
inline ``execute`` and only differ in how ``run_all`` schedules thunks.

The registry decouples backend *names* from backend *imports*: the
cluster transport lives in :mod:`repro.dist.cluster` (which pulls in
sockets, shipping, fleet state) and is resolved lazily, so importing the
engine never pays for it and there is no engine -> dist -> engine import
cycle.
"""

from __future__ import annotations

import importlib
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


class Transport:
    """Where task thunks and task bodies run.

    Lifecycle: built by :func:`create_transport`, then :meth:`bind` is
    called once by the owning context (after its shuffle manager and
    block manager exist), then ``run_all``/``execute`` during jobs, then
    :meth:`shutdown` at context stop.
    """

    #: Optional EventBus the owning context attaches; backends publish
    #: executor-level incidents (thread fallbacks, lost workers) to it.
    events = None
    #: Optional TelemetryRegistry the owning context attaches; backends
    #: count fallbacks, shipped tasks, and transport traffic on it.
    telemetry = None
    #: Sampling-profiler wiring (process backend only): with an interval
    #: set, each worker-side chunk runs under a child profiler and the
    #: folded stacks are handed to ``profile_sink`` on the driver.
    profile_interval = None
    profile_sink = None

    def bind(self, ctx) -> None:
        """Attach the owning context (remote transports hook shuffle I/O
        and allocate their namespace here).  Local transports ignore it."""

    def run_all(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Run a batch of task thunks, returning results in order."""
        raise NotImplementedError

    def execute(self, body, task):
        """Run one measured task body; returns ``(task, value)``.

        The scheduler's retry/backoff/blacklist machinery stays on the
        driver: this is only the *placement* decision.  Local transports
        run the body inline; the cluster transport ships it to a worker
        and returns the worker-mutated :class:`TaskMetrics` so blocked
        time measured remotely lands in the driver's accounting.
        """
        return task, body(task)

    def note_slot_failure(self, reason: str = "") -> bool:
        """Record an executor-level incident (timeout, broken pool,
        lost worker).  Returns True when this report tripped a
        blacklist threshold.  Backends without slots ignore reports."""
        return False

    def missing_map_outputs(self, shuffle_id: int) -> list[int]:
        """Map partitions of ``shuffle_id`` whose output is unreachable
        (the worker holding them died).  The scheduler re-runs these on
        a shuffle-fetch failure; local transports never lose outputs."""
        return []

    def shutdown(self) -> None:  # pragma: no cover - trivial default
        pass


#: name -> factory(num_workers=..., blacklist_after=..., config=...) -> Transport
_REGISTRY: dict[str, Callable[..., Transport]] = {}

#: Backends resolved on first use: name -> "module.path:factory_name".
_LAZY: dict[str, str] = {
    "cluster": "repro.dist.cluster:make_cluster_transport",
}


def register_transport(name: str, factory: Callable[..., Transport]) -> None:
    """Register a transport factory under a backend name."""
    _REGISTRY[name] = factory


def available_transports() -> list[str]:
    return sorted(set(_REGISTRY) | set(_LAZY))


def create_transport(name: str, **kwargs) -> Transport:
    """Instantiate a registered transport backend by name.

    ``kwargs`` carries ``num_workers``, ``blacklist_after``, and the
    owning ``EngineConfig`` as ``config``; factories take what they need
    and ignore the rest.
    """
    factory = _REGISTRY.get(name)
    if factory is None and name in _LAZY:
        module_name, _, attr = _LAZY[name].partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        _REGISTRY[name] = factory
    if factory is None:
        raise ValueError(
            f"unknown executor backend {name!r}; "
            f"options: {', '.join(available_transports())}"
        )
    return factory(**kwargs)

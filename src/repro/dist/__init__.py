"""repro.dist — the distributed execution plane.

Everything the engine needs to run on more than one box:

- :mod:`repro.dist.transport` — the pluggable ``Transport`` interface
  every executor backend implements (Serial/Thread/Process are *local*
  transports), plus the backend registry ``make_executor`` resolves.
- :mod:`repro.dist.protocol` — the stdlib-socket wire protocol:
  length-prefixed frames wrapping the existing ``GPFB`` crc32 framing.
- :mod:`repro.dist.shipping` — closure shipping: a pickler that sends
  lineage closures by value (marshalled code objects + cells) and swaps
  the driver context for the worker's.
- :mod:`repro.dist.worker` — the ``gpf worker`` daemon and the
  worker-side context/shuffle machinery.
- :mod:`repro.dist.cluster` — the driver side: ``FleetServer`` (worker
  registry, heartbeats, block serving) and ``ClusterExecutor``.
- :mod:`repro.dist.spec` — shared ``--workers``-style spec parsers for
  ``gpf worker`` / ``gpf serve``.
"""

from repro.dist.transport import (
    Transport,
    available_transports,
    create_transport,
    register_transport,
)

__all__ = [
    "Transport",
    "available_transports",
    "create_transport",
    "register_transport",
]

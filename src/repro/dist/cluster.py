"""Driver side of the cluster transport: fleet server + ClusterExecutor.

The :class:`FleetServer` is the driver's single listening socket.  Every
inbound connection declares itself with its first frame: REGISTER parks
the connection as a task *slot* (one worker daemon opens one connection
per slot, so the slot pool is the fleet's admission control), PING
refreshes the sender's heartbeat, FETCH turns the connection into a
block-serving channel for driver-held shuffle outputs — the driver is a
peer in the shuffle, so tasks that fall back inline interoperate with
remote ones.

:class:`ClusterExecutor` implements the :class:`~repro.dist.transport`
seam: ``execute`` ships one measured task body to a worker slot and
returns the worker-mutated metrics; everything above it — retries,
backoff, blacklists, progress — stays in the driver's scheduler.  Any
failure to ship (no workers, unpicklable closure) degrades to running
the body inline, so the cluster backend is *always safe to select*, the
same guarantee the process backend makes via its thread fallback.

Fleets are shared per listen address and refcounted: a serve-layer
context pool reuses one fleet across many contexts, each isolated by a
namespace that scopes worker-side state (shuffle dirs, caches).
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.dist import protocol
from repro.dist.shipping import ship_dumps
from repro.dist.spec import parse_hostport
from repro.dist.transport import Transport
from repro.dist.worker import DistShuffle, serve_fetch_connection
from repro.engine.faults import WorkerLostError


class WorkerHandle:
    """One registered worker daemon (possibly many slots)."""

    def __init__(self, worker_id: str, fetch_addr: tuple[str, int], pid: int = 0):
        self.id = worker_id
        self.fetch_addr = tuple(fetch_addr)
        self.pid = pid
        self.alive = True
        self.last_seen = time.monotonic()
        self.slots: list[WorkerSlot] = []
        self.tasks_done = 0


class WorkerSlot:
    """A parked task channel to one worker slot."""

    def __init__(self, worker: WorkerHandle, slot: int, sock: socket.socket):
        self.worker = worker
        self.slot = slot
        self.sock = sock


class FleetServer:
    """Worker registry, heartbeat ledger, slot pool, and block server."""

    def __init__(
        self,
        listen: tuple[str, int],
        *,
        heartbeat_timeout: float = 10.0,
    ):
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = max(0.2, heartbeat_timeout / 5.0)
        self.refs = 0
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerHandle] = {}
        self._slots: "queue.Queue[WorkerSlot]" = queue.Queue()
        self._ns_roots: dict[int, str] = {}
        self._next_ns = 0
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(listen)
        self._listener.listen(128)
        self.port: int = self._listener.getsockname()[1]
        host = listen[0]
        #: Address peers use to fetch driver-held blocks; an any-interface
        #: bind advertises loopback (the loopback-fleet case this repo's
        #: harness exercises; real deployments pass a routable host).
        self.advertise_addr = ("127.0.0.1" if host in ("0.0.0.0", "") else host, self.port)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="gpf-fleet-accept"
        )
        self._accept_thread.start()

    # -- namespaces ------------------------------------------------------
    def allocate_ns(self) -> int:
        with self._lock:
            ns = self._next_ns
            self._next_ns += 1
            return ns

    def register_ns_root(self, ns: int, root: str) -> None:
        with self._lock:
            self._ns_roots[ns] = root

    def release_ns(self, ns: int) -> None:
        with self._lock:
            self._ns_roots.pop(ns, None)

    def _block_path(self, ns: int, shuffle_id: int, map_p: int, reduce_p: int):
        with self._lock:
            root = self._ns_roots.get(ns)
        if root is None:
            return None
        path = os.path.join(root, f"shuffle_{shuffle_id}", f"{map_p}_{reduce_p}.bin")
        return path if os.path.exists(path) else None

    # -- connection dispatch ---------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._dispatch,
                args=(conn,),
                daemon=True,
                name="gpf-fleet-dispatch",
            ).start()

    def _dispatch(self, conn: socket.socket) -> None:
        """Route one inbound connection by its first frame."""
        try:
            kind, header, _ = protocol.recv_frame(conn)
        except (OSError, protocol.ProtocolError):
            conn.close()
            return
        if kind == protocol.MSG_REGISTER:
            self._register(conn, header)
        elif kind == protocol.MSG_PING:
            self._heartbeat(header.get("worker", ""))
            conn.close()
        elif kind == protocol.MSG_FETCH:
            serve_fetch_connection(conn, self._block_path, initial=header)
        else:
            conn.close()

    def _register(self, conn: socket.socket, header: dict) -> None:
        worker_id = header.get("worker", "")
        if not worker_id:
            conn.close()
            return
        try:
            protocol.send_frame(
                conn, protocol.MSG_WELCOME, {"heartbeat": self.heartbeat_interval}
            )
        except OSError:
            conn.close()
            return
        with self._lock:
            handle = self._workers.get(worker_id)
            if handle is None or not handle.alive:
                handle = WorkerHandle(
                    worker_id,
                    tuple(header.get("fetch", ("127.0.0.1", 0))),
                    pid=header.get("pid", 0),
                )
                self._workers[worker_id] = handle
            handle.last_seen = time.monotonic()
            slot = WorkerSlot(handle, header.get("slot", 0), conn)
            handle.slots.append(slot)
        self._slots.put(slot)

    def _heartbeat(self, worker_id: str) -> None:
        with self._lock:
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.last_seen = time.monotonic()

    # -- fleet state -----------------------------------------------------
    def live_workers(self) -> list[WorkerHandle]:
        now = time.monotonic()
        stale: list[WorkerHandle] = []
        with self._lock:
            live = []
            for handle in self._workers.values():
                if not handle.alive:
                    continue
                if now - handle.last_seen > self.heartbeat_timeout:
                    stale.append(handle)
                else:
                    live.append(handle)
        for handle in stale:
            self.lose_worker(handle, reason="heartbeat timeout")
        return live

    def is_addr_live(self, addr: tuple[str, int]) -> bool:
        if tuple(addr) == self.advertise_addr:
            return True  # the driver itself never "dies" mid-job
        return any(h.fetch_addr == tuple(addr) for h in self.live_workers())

    def wait_for_workers(self, count: int, timeout: float) -> int:
        """Block until ``count`` workers registered (or timeout); returns
        how many are live."""
        deadline = time.monotonic() + timeout
        while True:
            live = len(self.live_workers())
            if live >= count or time.monotonic() >= deadline:
                return live
            time.sleep(0.02)

    def acquire_slot(self, timeout: float) -> WorkerSlot | None:
        """Take one live slot from the pool; prunes dead/stale workers."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                slot = self._slots.get(timeout=remaining)
            except queue.Empty:
                return None
            handle = slot.worker
            if not handle.alive:
                continue  # lost after parking; its socket is closed
            if time.monotonic() - handle.last_seen > self.heartbeat_timeout:
                self.lose_worker(handle, reason="heartbeat timeout")
                continue
            return slot

    def release_slot(self, slot: WorkerSlot) -> None:
        if slot.worker.alive:
            slot.worker.tasks_done += 1
            self._slots.put(slot)
        else:
            self._close_slot(slot)

    def lose_worker(self, handle: WorkerHandle, reason: str = "") -> None:
        """Evict a worker: mark dead, sever its task channels.

        Idempotent; parked slots drain out of the pool on the next
        acquire.  Closing the sockets makes a *live-but-evicted* worker's
        slot loops exit too, so eviction is authoritative.
        """
        with self._lock:
            if not handle.alive:
                return
            handle.alive = False
            slots = list(handle.slots)
        for slot in slots:
            self._close_slot(slot)

    @staticmethod
    def _close_slot(slot: WorkerSlot) -> None:
        try:
            protocol.send_frame(slot.sock, protocol.MSG_GOODBYE)
        except OSError:
            pass
        try:
            slot.sock.close()
        except OSError:
            pass

    def fleet_snapshot(self) -> list[dict]:
        """Per-worker rows for /metrics and ``gpf top``."""
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "worker": h.id,
                    "alive": h.alive,
                    "slots": len(h.slots),
                    "tasks_done": h.tasks_done,
                    "last_seen_age": now - h.last_seen,
                    "fetch": f"{h.fetch_addr[0]}:{h.fetch_addr[1]}",
                }
                for h in self._workers.values()
            ]

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        try:
            self._listener.close()
        except OSError:
            pass
        for handle in workers:
            self.lose_worker(handle, reason="fleet shutdown")


#: Shared fleets keyed by requested listen address, refcounted so a
#: context pool reuses one listener.  Ephemeral-port requests (port 0)
#: are never shared — the caller cannot name what it would share.
_FLEETS: dict[tuple[str, int], FleetServer] = {}
_FLEETS_LOCK = threading.Lock()


def get_fleet(listen: tuple[str, int], heartbeat_timeout: float = 10.0) -> FleetServer:
    with _FLEETS_LOCK:
        if listen[1] != 0:
            fleet = _FLEETS.get(listen)
            if fleet is not None:
                fleet.refs += 1
                return fleet
        fleet = FleetServer(listen, heartbeat_timeout=heartbeat_timeout)
        fleet.refs = 1
        if listen[1] != 0:
            _FLEETS[listen] = fleet
        return fleet


def release_fleet(fleet: FleetServer) -> None:
    with _FLEETS_LOCK:
        fleet.refs -= 1
        if fleet.refs > 0:
            return
        for key, value in list(_FLEETS.items()):
            if value is fleet:
                del _FLEETS[key]
    fleet.shutdown()


class DriverShuffle:
    """Shuffle facade swapped in by :meth:`ClusterExecutor.bind`.

    Registration and completeness bookkeeping stay on the inner
    :class:`~repro.engine.shuffle.ShuffleManager`; the data path moves to
    the location-aware :class:`~repro.dist.worker.DistShuffle`, so a map
    task that runs *inline* (ship fallback) writes to the driver's P2P
    store and its output is fetchable by remote reduce tasks.
    """

    def __init__(self, inner, dist: DistShuffle, executor: "ClusterExecutor"):
        self._inner = inner
        self._dist = dist
        self._executor = executor

    def register(self, num_map: int, num_reduce: int) -> int:
        shuffle_id = self._inner.register(num_map, num_reduce)
        self._dist.ensure_shuffle(shuffle_id, num_map)
        return shuffle_id

    def write(self, shuffle_id, map_partition, elements, partition_func, serializer, task):
        self._dist.write(
            shuffle_id, map_partition, elements, partition_func, serializer, task
        )

    def read(self, shuffle_id, reduce_partition, serializer, task):
        return self._dist.read(shuffle_id, reduce_partition, serializer, task)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ClusterExecutor(Transport):
    """Ships measured task bodies to a socket-connected worker fleet."""

    def __init__(
        self,
        num_workers: int = 4,
        blacklist_after: int = 3,
        config=None,
    ):
        self.num_workers = max(1, num_workers)
        self.blacklist_after = blacklist_after
        self.config = config
        self.fleet: FleetServer | None = None
        self.ns: int | None = None
        self._ctx = None
        self._dist: DistShuffle | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._waited = False
        self._wait_lock = threading.Lock()
        self.fallback_batches = 0

    # -- lifecycle -------------------------------------------------------
    def bind(self, ctx) -> None:
        self._ctx = ctx
        config = ctx.config
        listen = parse_hostport(config.cluster_listen or "127.0.0.1:0")
        self.fleet = get_fleet(
            listen, heartbeat_timeout=config.cluster_heartbeat_timeout
        )
        self.ns = self.fleet.allocate_ns()
        root = os.path.join(ctx._spill_dir, "dist", f"ns{self.ns}")
        os.makedirs(root, exist_ok=True)
        self._dist = DistShuffle(
            root,
            self.fleet.advertise_addr,
            ns=self.ns,
            compress=config.shuffle_compression,
            chaos=ctx.chaos,
            telemetry=ctx.telemetry,
            on_write=self._on_local_write,
        )
        self.fleet.register_ns_root(self.ns, root)
        ctx.shuffle_manager = DriverShuffle(ctx.shuffle_manager, self._dist, self)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.fleet is not None:
            if self.ns is not None:
                self.fleet.release_ns(self.ns)
            release_fleet(self.fleet)
            self.fleet = None

    # -- scheduling ------------------------------------------------------
    def run_all(self, tasks):
        if not tasks:
            return []
        if self._pool is None:
            # Thunks block on slot acquisition (bounded by timeout, then
            # inline fallback), so the driver-side thread count only caps
            # concurrent in-flight ships, not fleet size.
            self._pool = ThreadPoolExecutor(
                max_workers=max(4, self.num_workers),
                thread_name_prefix="gpf-cluster-driver",
            )
        futures = [self._pool.submit(task) for task in tasks]
        try:
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise

    # -- bookkeeping -----------------------------------------------------
    def _on_local_write(self, shuffle_id: int, map_partition: int) -> None:
        """A map output landed in the *driver's* store (inline task)."""
        self._record_map_output(shuffle_id, map_partition, self.fleet.advertise_addr)

    def _record_map_output(self, shuffle_id, map_partition, addr) -> None:
        self._dist.add_location(shuffle_id, map_partition, addr)
        # Keep the inner manager's completeness ledger true: reads that
        # bypass the dist path (reports, is_complete checks) still work.
        try:
            self._ctx.shuffle_manager._inner.mark_map_done(shuffle_id, map_partition)
        except (AttributeError, KeyError):
            pass

    def missing_map_outputs(self, shuffle_id: int) -> list[int]:
        entry = self._dist._resolve(shuffle_id)
        return sorted(
            m
            for m, addr in entry["maps"].items()
            if not self.fleet.is_addr_live(addr)
        )

    def _note_fallback(self, reason: str) -> None:
        self.fallback_batches += 1
        if self.telemetry is not None:
            self.telemetry.inc("executor.fallbacks")
            self.telemetry.inc(f"executor.fallbacks.{reason}")
        if self.events is not None:
            self.events.publish(
                "executor.incident", incident="fallback_batch", reason=reason
            )

    def _lose(self, slot: WorkerSlot, cause: Exception) -> WorkerLostError:
        self.fleet.lose_worker(slot.worker, reason=str(cause))
        if self.telemetry is not None:
            self.telemetry.inc("dist.workers_lost")
            self.telemetry.set_gauge("dist.workers", len(self.fleet.live_workers()))
        if self.events is not None:
            self.events.publish(
                "executor.incident", incident="worker_lost", worker=slot.worker.id
            )
        return WorkerLostError(slot.worker.id, cause)

    def _ensure_fleet_ready(self) -> bool:
        config = self._ctx.config
        with self._wait_lock:
            if not self._waited:
                self._waited = True
                self.fleet.wait_for_workers(
                    max(1, config.cluster_min_workers), config.cluster_wait
                )
        live = len(self.fleet.live_workers())
        if self.telemetry is not None:
            self.telemetry.set_gauge("dist.workers", live)
        return live > 0

    # -- the transport seam ----------------------------------------------
    def execute(self, body, task):
        ctx = self._ctx
        if ctx is None or not self._ensure_fleet_ready():
            self._note_fallback("no_workers")
            return task, body(task)
        chaos = ctx.chaos
        if chaos is not None:
            # dist.ship faults model a driver-side ship failure (e.g. a
            # send buffer error); the raised fault fails this attempt and
            # the scheduler's retry ships again.
            chaos.hit("dist.ship", partition=task.partition)
        try:
            blob = ship_dumps((body, task), ctx)
        except Exception:  # noqa: BLE001 - unship-able => run it here
            self._note_fallback("unpicklable")
            return task, body(task)
        slot = self.fleet.acquire_slot(timeout=ctx.config.cluster_wait)
        if slot is None:
            self._note_fallback("no_slots")
            return task, body(task)
        worker = slot.worker
        if chaos is not None:
            # dist.heartbeat faults simulate a silent worker: the driver
            # treats the assigned worker as heartbeat-expired and evicts
            # it, exercising the whole loss path deterministically.
            try:
                chaos.hit("dist.heartbeat", worker=worker.id)
            except Exception as exc:  # noqa: BLE001 - typed below
                raise self._lose(slot, exc) from exc
        header = {
            "ns": self.ns,
            "locations": self._dist.snapshot_locations(),
            "serializer": ctx.serializer,
            "batch": ctx.config.decode_batch_size,
            "compress": ctx.config.shuffle_compression,
            "chaos": chaos,
        }
        try:
            protocol.send_frame(slot.sock, protocol.MSG_TASK, header, blob)
            kind, rheader, rbody = protocol.recv_frame(slot.sock)
        except (OSError, protocol.ProtocolError) as exc:
            raise self._lose(slot, exc) from exc
        self.fleet.release_slot(slot)
        if kind == protocol.MSG_ERROR:
            raise protocol.decode_error(rheader)
        if kind != protocol.MSG_RESULT:
            raise protocol.ProtocolError(f"unexpected reply {kind!r} to TASK")
        remote_task = rheader["task"]
        remote_task.worker = rheader.get("worker", worker.id)
        for shuffle_id, map_partition in rheader.get("outputs", ()):
            self._record_map_output(shuffle_id, map_partition, worker.fetch_addr)
        counts = rheader.get("telemetry") or {}
        if counts:
            ctx.telemetry.merge_counts(counts)
        if self.telemetry is not None:
            self.telemetry.inc("dist.tasks_shipped")
            self.telemetry.inc("dist.bytes_shipped", len(blob))
            self.telemetry.inc("dist.bytes_returned", len(rbody))
            self.telemetry.inc(f"dist.worker.{worker.id}.tasks")
        encoding = rheader.get("encoding", "none")
        if encoding == "none":
            value = None
        elif encoding == "bundle":
            from repro.engine.bundle import decode_partition

            value = list(decode_partition(rbody, ctx.serializer))
        else:
            value = pickle.loads(rbody)
        return remote_task, value


def make_cluster_transport(
    num_workers: int = 4, blacklist_after: int = 3, config=None, **_ignored
) -> ClusterExecutor:
    """Factory the transport registry resolves for backend 'cluster'."""
    return ClusterExecutor(
        num_workers=num_workers, blacklist_after=blacklist_after, config=config
    )

"""Closure shipping: task bodies cross the wire with stdlib pickle only.

Two problems stand between the scheduler's task bodies and a socket:

1. They are *closures* — lambdas and nested functions capturing RDDs,
   dependencies, splits — and plain pickle refuses functions that are
   not importable module attributes.
2. They (transitively) capture the driver :class:`GPFContext`, whose
   executor, locks, and sockets must never ship.

:class:`ShipPickler` solves both.  Functions that *are* importable
pickle by reference as usual (the fleet runs the same source tree).
Everything else ships **by value**: the code object is marshalled, the
closure cells and the referenced globals are pickled recursively
through the same pickler (so a lambda capturing a lambda works), and
the worker rebuilds a live function with ``types.FunctionType``.  The
driver context is swapped for a persistent-id token that the worker's
unpickler resolves to its own :class:`~repro.dist.worker.WorkerContext`.

``ParallelCollectionRDD`` slices additionally ship in ``GPB2``
compressed bundle form (the serializer's §4.1-codec payload) rather
than as pickled record lists — task ship traffic shrinks by the codec's
compression ratio and the worker decodes lazily per batch.

Limits (all safe): marshalled code requires the same interpreter
version on both ends — true for loopback fleets and documented for real
ones; a function whose cell is still empty (recursive forward
reference) raises ``PicklingError``, which the cluster transport turns
into an inline local fallback, never a wrong answer.
"""

from __future__ import annotations

import builtins
import importlib
import io
import marshal
import pickle
import types

from repro.engine.bundle import decode_partition, encode_partition

#: Persistent-id token standing in for the driver context.
CTX_TOKEN = "gpf:ctx"


def _is_importable(func: types.FunctionType) -> bool:
    """True when plain pickle could ship this function by reference.

    Lambdas and nested functions have ``<lambda>``/``<locals>`` in the
    qualname and fail the attribute walk; module-level functions (and
    methods of module-level classes) resolve to themselves.
    """
    module = getattr(func, "__module__", None)
    if not module:
        return False
    try:
        obj: object = importlib.import_module(module)
        for part in func.__qualname__.split("."):
            obj = getattr(obj, part)
    except Exception:  # noqa: BLE001 - any lookup failure => not importable
        return False
    return obj is func


def _referenced_globals(code: types.CodeType, globals_dict: dict) -> dict:
    """The subset of ``globals_dict`` the code (or nested code) names."""
    names: set[str] = set(code.co_names)
    stack = [code]
    while stack:
        current = stack.pop()
        for const in current.co_consts:
            if isinstance(const, types.CodeType):
                names.update(const.co_names)
                stack.append(const)
    return {name: globals_dict[name] for name in names if name in globals_dict}


def _restore_function(
    code_bytes: bytes,
    name: str,
    defaults: tuple | None,
    cell_values: tuple,
    globals_items: tuple,
    kwdefaults: dict | None,
    func_dict: dict | None,
):
    """Worker-side inverse of the by-value function reduce."""
    code = marshal.loads(code_bytes)
    globs = dict(globals_items)
    globs["__builtins__"] = builtins
    cells = tuple(types.CellType(value) for value in cell_values)
    func = types.FunctionType(code, globs, name, defaults, cells or None)
    if kwdefaults:
        func.__kwdefaults__ = kwdefaults
    if func_dict:
        func.__dict__.update(func_dict)
    return func


def _restore_pcrdd(cls, state: dict, slice_blobs: list[bytes], serializer):
    """Rebuild a ParallelCollectionRDD with lazily-decoded slices."""
    rdd = object.__new__(cls)
    rdd.__dict__.update(state)
    rdd._slices = [
        decode_partition(blob, serializer) if blob is not None else []
        for blob in slice_blobs
    ]
    return rdd


def _import_module(name: str):
    return importlib.import_module(name)


class ShipPickler(pickle.Pickler):
    """Pickler that makes lineage closures and contexts wire-safe."""

    def __init__(self, file, ctx):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._ctx = ctx
        self._serializer = getattr(ctx, "serializer", None)

    # The driver context never crosses the wire; the worker substitutes
    # its own.  Identity comparison: a context is unique per driver.
    def persistent_id(self, obj):
        if obj is self._ctx:
            return CTX_TOKEN
        return None

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType):
            if _is_importable(obj):
                return NotImplemented  # by reference, as usual
            return self._reduce_function(obj)
        if isinstance(obj, types.ModuleType):
            # Modules captured in closures (``import numpy as np`` at
            # module scope, referenced by a shipped lambda).
            return (_import_module, (obj.__name__,))
        if self._serializer is not None and type(obj).__name__ == "ParallelCollectionRDD":
            return self._reduce_pcrdd(obj)
        return NotImplemented

    def _reduce_function(self, func: types.FunctionType):
        try:
            cell_values = tuple(
                cell.cell_contents for cell in (func.__closure__ or ())
            )
        except ValueError as exc:  # empty cell: recursive forward ref
            raise pickle.PicklingError(
                f"cannot ship {func.__qualname__}: unresolved closure cell"
            ) from exc
        code = func.__code__
        globals_needed = _referenced_globals(code, func.__globals__)
        return (
            _restore_function,
            (
                marshal.dumps(code),
                func.__name__,
                func.__defaults__,
                cell_values,
                tuple(globals_needed.items()),
                func.__kwdefaults__,
                dict(func.__dict__) or None,
            ),
        )

    def _reduce_pcrdd(self, rdd):
        """Ship parallelize() source data as compressed GPB2 bundles."""
        state = dict(rdd.__dict__)
        slices = state.pop("_slices", [])
        blobs: list[bytes | None] = []
        for part in slices:
            elements = part if isinstance(part, list) else list(part)
            if not elements:
                blobs.append(None)
                continue
            blob, _ = encode_partition(elements, self._serializer)
            blobs.append(blob)
        return (_restore_pcrdd, (type(rdd), state, blobs, self._serializer))


class ShipUnpickler(pickle.Unpickler):
    """Worker-side unpickler resolving the context token."""

    def __init__(self, file, ctx):
        super().__init__(file)
        self._ctx = ctx

    def persistent_load(self, pid):
        if pid == CTX_TOKEN:
            return self._ctx
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def ship_dumps(obj, ctx) -> bytes:
    """Serialize ``obj`` for the wire, swapping out the driver ``ctx``."""
    buffer = io.BytesIO()
    ShipPickler(buffer, ctx).dump(obj)
    return buffer.getvalue()


def ship_loads(blob: bytes, ctx):
    """Inverse of :func:`ship_dumps`: the token resolves to ``ctx``."""
    return ShipUnpickler(io.BytesIO(blob), ctx).load()

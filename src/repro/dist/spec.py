"""Shared CLI spec parsers for the distributed plane.

``gpf worker --connect`` and ``gpf serve --cluster-listen`` take
``HOST:PORT``; ``--expect-workers`` takes either a fleet *size* or an
explicit comma-separated ``host:port`` list.  Both follow the
``--memory-budget`` parser convention: typed errors are raised as
:class:`argparse.ArgumentTypeError` so argparse renders them as proper
usage errors instead of tracebacks.
"""

from __future__ import annotations

from argparse import ArgumentTypeError
from dataclasses import dataclass, field


def parse_hostport(text: str) -> tuple[str, int]:
    """``"HOST:PORT"`` -> ``(host, port)`` with typed errors.

    Port 0 is allowed (bind to an ephemeral port); the host may not be
    empty — a listener that should bind all interfaces says so with
    ``0.0.0.0`` explicitly.
    """
    text = (text or "").strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ArgumentTypeError(
            f"invalid address {text!r}: expected HOST:PORT (e.g. 127.0.0.1:7077)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ArgumentTypeError(
            f"invalid port {port_text!r} in {text!r}: not an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise ArgumentTypeError(
            f"invalid port {port} in {text!r}: must be in [0, 65535]"
        )
    return host, port


@dataclass
class WorkersSpec:
    """A fleet expectation: how many workers, and (optionally) which."""

    count: int
    addresses: list[tuple[str, int]] = field(default_factory=list)


def parse_workers(text: str) -> WorkersSpec:
    """``--expect-workers`` spec: a size or a ``host:port`` list.

    ``"4"`` means *wait for 4 workers*; ``"10.0.0.1:7077,10.0.0.2:7077"``
    means *wait for these two*.  Mixing forms, empty entries, and
    non-positive sizes are typed errors.
    """
    text = (text or "").strip()
    if not text:
        raise ArgumentTypeError("empty workers spec; expected N or HOST:PORT,...")
    if "," not in text and ":" not in text:
        try:
            count = int(text)
        except ValueError:
            raise ArgumentTypeError(
                f"invalid workers spec {text!r}: expected a count like '4' "
                "or a host:port list"
            ) from None
        if count <= 0:
            raise ArgumentTypeError(
                f"invalid workers count {count}: need at least one worker"
            )
        return WorkersSpec(count=count)
    addresses = []
    for i, entry in enumerate(text.split(",")):
        entry = entry.strip()
        if not entry:
            raise ArgumentTypeError(
                f"empty entry at position {i} in workers spec {text!r}"
            )
        addresses.append(parse_hostport(entry))
    return WorkersSpec(count=len(addresses), addresses=addresses)


def format_hostport(addr: tuple[str, int]) -> str:
    return f"{addr[0]}:{addr[1]}"

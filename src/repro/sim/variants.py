"""Variant planting and known-sites catalogs.

``plant_variants`` turns a reference into a *donor* genome carrying SNPs
and small indels, and records the truth set.  ``generate_known_sites``
builds a dbSNP-like catalog that overlaps the truth set partially — BQSR
uses the catalog as its mismatch mask, and the caller benches score
against the truth set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.fasta import Contig, Reference
from repro.formats.vcf import VcfRecord

_BASES = "ACGT"


@dataclass
class VariantTruth:
    """The planted variants plus the mutated (donor) genome."""

    donor: Reference
    records: list[VcfRecord] = field(default_factory=list)
    #: Maps donor coordinates back to reference coordinates per contig:
    #: list of (donor_pos, ref_pos) anchor points at each indel boundary.
    coordinate_anchors: dict[str, list[tuple[int, int]]] = field(default_factory=dict)

    def truth_keys(self) -> set[tuple[str, int, str, str]]:
        return {rec.key() for rec in self.records}

    def donor_to_ref(self, contig: str, donor_pos: int) -> int:
        """Map a donor-coordinate position to the reference coordinate."""
        anchors = self.coordinate_anchors.get(contig, [(0, 0)])
        # Find last anchor with donor_pos_anchor <= donor_pos.
        lo, hi = 0, len(anchors)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if anchors[mid][0] <= donor_pos:
                lo = mid
            else:
                hi = mid
        d_anchor, r_anchor = anchors[lo]
        return r_anchor + (donor_pos - d_anchor)


def plant_variants(
    reference: Reference,
    snp_rate: float = 0.001,
    indel_rate: float = 0.0001,
    max_indel_length: int = 8,
    seed: int = 1,
) -> VariantTruth:
    """Mutate the reference into a donor genome; record truth VCF records.

    Variants are placed homozygously (genotype 1/1) so that every truth
    variant is observable in *all* reads covering it — the simplest model
    that still exercises the whole caller path.  Indel starts keep the
    VCF convention of an anchor base (``REF=AT ALT=A`` deletes one base).
    """
    rng = np.random.default_rng(seed)
    donor_contigs: list[Contig] = []
    records: list[VcfRecord] = []
    anchors: dict[str, list[tuple[int, int]]] = {}

    for contig in reference.contigs:
        seq = contig.sequence.decode("ascii")
        out: list[str] = []
        contig_anchors: list[tuple[int, int]] = [(0, 0)]
        pos = 0
        donor_pos = 0
        n = len(seq)
        while pos < n:
            base = seq[pos]
            if base == "N":
                out.append(base)
                pos += 1
                donor_pos += 1
                continue
            draw = rng.random()
            if draw < snp_rate:
                alt = _BASES[(rng.integers(1, 4) + _BASES.index(base)) % 4]
                records.append(
                    VcfRecord(
                        contig=contig.name,
                        pos=pos,
                        ref=base,
                        alt=alt,
                        genotype="1/1",
                        qual=100.0,
                    )
                )
                out.append(alt)
                pos += 1
                donor_pos += 1
            elif draw < snp_rate + indel_rate and pos + max_indel_length + 1 < n:
                length = int(rng.integers(1, max_indel_length + 1))
                if rng.random() < 0.5:
                    # Insertion after the anchor base.
                    ins = "".join(_BASES[i] for i in rng.integers(0, 4, size=length))
                    records.append(
                        VcfRecord(
                            contig=contig.name,
                            pos=pos,
                            ref=base,
                            alt=base + ins,
                            genotype="1/1",
                            qual=100.0,
                        )
                    )
                    out.append(base + ins)
                    pos += 1
                    donor_pos += 1 + length
                    contig_anchors.append((donor_pos, pos))
                else:
                    # Deletion of `length` bases after the anchor.
                    deleted = seq[pos : pos + 1 + length]
                    if "N" in deleted:
                        out.append(base)
                        pos += 1
                        donor_pos += 1
                        continue
                    records.append(
                        VcfRecord(
                            contig=contig.name,
                            pos=pos,
                            ref=deleted,
                            alt=base,
                            genotype="1/1",
                            qual=100.0,
                        )
                    )
                    out.append(base)
                    pos += 1 + length
                    donor_pos += 1
                    contig_anchors.append((donor_pos, pos))
            else:
                out.append(base)
                pos += 1
                donor_pos += 1
        donor_contigs.append(Contig(contig.name, "".join(out).encode("ascii")))
        anchors[contig.name] = contig_anchors

    return VariantTruth(
        donor=Reference(donor_contigs),
        records=records,
        coordinate_anchors=anchors,
    )


def generate_known_sites(
    truth: VariantTruth,
    reference: Reference,
    overlap_fraction: float = 0.8,
    extra_sites: int = 100,
    seed: int = 2,
) -> list[VcfRecord]:
    """A dbSNP-like catalog: most truth variants plus unrelated entries.

    ``overlap_fraction`` of the truth set appears in the catalog (dbSNP
    covers most common variation); ``extra_sites`` random SNV entries that
    the donor does *not* carry are added (sites polymorphic in the
    population but reference-allele in this sample).
    """
    rng = np.random.default_rng(seed)
    known: list[VcfRecord] = []
    for rec in truth.records:
        if rng.random() < overlap_fraction:
            known.append(
                VcfRecord(
                    contig=rec.contig,
                    pos=rec.pos,
                    ref=rec.ref,
                    alt=rec.alt,
                    id_=f"rs{rng.integers(1, 10**8)}",
                )
            )
    contigs = reference.contigs
    for _ in range(extra_sites):
        contig = contigs[int(rng.integers(0, len(contigs)))]
        pos = int(rng.integers(0, len(contig)))
        base = chr(contig.sequence[pos])
        if base == "N":
            continue
        alt = _BASES[(rng.integers(1, 4) + _BASES.index(base)) % 4]
        known.append(
            VcfRecord(
                contig=contig.name,
                pos=pos,
                ref=base,
                alt=alt,
                id_=f"rs{rng.integers(1, 10**8)}",
            )
        )
    return known

"""Illumina-like quality-string profiles.

Real base qualities drift slowly along a read (a high score is usually
followed by a similar score), which is exactly why the paper's delta +
Huffman coding wins (Fig. 5).  ``QualityProfile`` models that with a
mean-reverting random walk: per-read scores start near ``start_mean``,
decay toward ``end_mean`` along the read (the familiar 3' quality
drop-off), with small per-step innovations.

Two presets mirror the paper's two samples: ``ILLUMINA_HISEQ``
(SRR622461-like, tight modern quality binning) and ``ILLUMINA_OLD``
(SRR504516-like, wider spread).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Phred+33; minimum real score 2 ('#'), maximum 41 ('J') for HiSeq.
PHRED_OFFSET = 33


@dataclass(frozen=True)
class QualityProfile:
    name: str
    start_mean: float = 37.0
    end_mean: float = 30.0
    step_sigma: float = 1.2
    min_score: int = 2
    max_score: int = 41
    #: Probability a base is a low-quality outlier (spike down).
    spike_rate: float = 0.01
    spike_score: int = 2

    def sample(self, length: int, rng: np.random.Generator) -> str:
        """One quality string of the given length."""
        drift = np.linspace(self.start_mean, self.end_mean, num=length)
        innovations = rng.normal(0.0, self.step_sigma, size=length)
        # Mean-reverting walk around the drift line.
        scores = np.empty(length)
        level = 0.0
        for i in range(length):
            level = 0.7 * level + innovations[i]
            scores[i] = drift[i] + level
        spikes = rng.random(length) < self.spike_rate
        scores[spikes] = self.spike_score
        clipped = np.clip(np.rint(scores), self.min_score, self.max_score)
        return (clipped.astype(np.uint8) + PHRED_OFFSET).tobytes().decode("ascii")

    def sample_many(self, count: int, length: int, seed: int = 0) -> list[str]:
        rng = np.random.default_rng(seed)
        return [self.sample(length, rng) for _ in range(count)]


ILLUMINA_HISEQ = QualityProfile(
    name="SRR622461-like",
    start_mean=37.0,
    end_mean=29.0,
    step_sigma=1.5,
    spike_rate=0.008,
)

ILLUMINA_OLD = QualityProfile(
    name="SRR504516-like",
    start_mean=34.0,
    end_mean=24.0,
    step_sigma=2.2,
    spike_rate=0.02,
)


def error_probability(phred: int) -> float:
    """P(base call wrong) for a Phred score."""
    return 10.0 ** (-phred / 10.0)

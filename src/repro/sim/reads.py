"""wgsim-style paired-end read simulation.

Fragments are drawn from the *donor* genome (reference + planted
variants), mates are read off both fragment ends (forward/reverse
orientation), sequencing errors are injected per-base at the rate implied
by each base's quality score, and two artifacts the Cleaner stage must
handle are modelled:

- **duplicates** — a fraction of fragments is emitted more than once
  (PCR/optical duplicates that MarkDuplicate must find);
- **coverage hot-spots** — configurable genome intervals receive a
  multiplied sampling rate, reproducing the >10,000x pile-ups the paper
  names as the reason static equal-length partitioning load-imbalances
  (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.fmindex import reverse_complement
from repro.formats.fasta import Reference
from repro.formats.fastq import FastqPair, FastqRecord
from repro.sim.qualities import PHRED_OFFSET, ILLUMINA_HISEQ, QualityProfile

_BASES = "ACGT"


@dataclass(frozen=True)
class Hotspot:
    """A genome interval oversampled by ``multiplier``."""

    contig: str
    start: int
    end: int
    multiplier: float


@dataclass
class ReadSimConfig:
    read_length: int = 100
    mean_insert: int = 300
    insert_sigma: int = 30
    #: Mean coverage depth over the donor genome.
    coverage: float = 10.0
    duplicate_fraction: float = 0.05
    quality_profile: QualityProfile = field(default_factory=lambda: ILLUMINA_HISEQ)
    hotspots: list[Hotspot] = field(default_factory=list)
    seed: int = 7


class ReadSimulator:
    """Generates paired-end reads from a donor genome."""

    def __init__(self, donor: Reference, config: ReadSimConfig | None = None):
        self.donor = donor
        self.config = config or ReadSimConfig()

    def simulate(self) -> list[FastqPair]:
        """Draw fragments, emit error-injected mate pairs, shuffle order."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        pairs: list[FastqPair] = []
        serial = 0
        for contig in self.donor.contigs:
            n = len(contig)
            base_fragments = int(
                cfg.coverage * n / (2 * cfg.read_length)
            )  # two mates per fragment
            fragment_starts = self._sample_starts(contig.name, n, base_fragments, rng)
            for start in fragment_starts:
                insert = max(
                    2 * cfg.read_length,
                    int(rng.normal(cfg.mean_insert, cfg.insert_sigma)),
                )
                end = start + insert
                if end > n:
                    continue
                fragment = contig.fetch(start, end)
                if "N" in fragment:
                    continue
                copies = 1
                if rng.random() < cfg.duplicate_fraction:
                    copies = 2 + int(rng.random() < 0.2)  # occasionally triplicate
                for copy in range(copies):
                    name = f"sim_{contig.name}_{start}_{serial}"
                    if copy:
                        name += f"_dup{copy}"
                    pairs.append(self._make_pair(name, fragment, rng))
                serial += 1
        rng.shuffle(pairs)  # type: ignore[arg-type]
        return pairs

    # -- internals ------------------------------------------------------------
    def _sample_starts(
        self, contig_name: str, n: int, count: int, rng: np.random.Generator
    ) -> list[int]:
        """Fragment starts: uniform plus hot-spot oversampling."""
        starts = rng.integers(0, max(1, n - 1), size=count).tolist()
        for hotspot in self.config.hotspots:
            if hotspot.contig != contig_name:
                continue
            span = hotspot.end - hotspot.start
            extra = int(count * (span / n) * (hotspot.multiplier - 1.0))
            if extra > 0:
                starts.extend(
                    rng.integers(hotspot.start, hotspot.end, size=extra).tolist()
                )
        return [int(s) for s in starts]

    def _make_pair(
        self, name: str, fragment: str, rng: np.random.Generator
    ) -> FastqPair:
        cfg = self.config
        read1_seq = fragment[: cfg.read_length]
        read2_seq = reverse_complement(fragment[-cfg.read_length :])
        qual1 = cfg.quality_profile.sample(cfg.read_length, rng)
        qual2 = cfg.quality_profile.sample(cfg.read_length, rng)
        return FastqPair(
            FastqRecord(name + "/1", self._sequencing_errors(read1_seq, qual1, rng), qual1),
            FastqRecord(name + "/2", self._sequencing_errors(read2_seq, qual2, rng), qual2),
        )

    @staticmethod
    def _sequencing_errors(
        seq: str, qual: str, rng: np.random.Generator
    ) -> str:
        """Flip bases with probability 10^(-q/10) at each position."""
        scores = np.frombuffer(qual.encode("ascii"), dtype=np.uint8).astype(
            np.float64
        ) - PHRED_OFFSET
        error_p = 10.0 ** (-scores / 10.0)
        flips = np.flatnonzero(rng.random(len(seq)) < error_p)
        if len(flips) == 0:
            return seq
        out = list(seq)
        for idx in flips:
            base = out[idx]
            if base not in _BASES:
                continue
            out[idx] = _BASES[(rng.integers(1, 4) + _BASES.index(base)) % 4]
        return "".join(out)


def expected_duplicate_rate(config: ReadSimConfig) -> float:
    """Analytic fraction of read pairs that are duplicates.

    With fraction f of fragments duplicated into 2 copies (plus 20% of
    those into 3), the duplicate share of emitted pairs is
    (extra copies) / (total copies).
    """
    f = config.duplicate_fraction
    copies = (1 - f) * 1 + f * (0.8 * 2 + 0.2 * 3)
    extras = f * (0.8 * 1 + 0.2 * 2)
    return extras / copies

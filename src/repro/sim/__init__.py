"""Synthetic genomic data: the reproduction's dataset substitute.

The paper evaluates on NA12878 Platinum Genomes (146.9 Gbases) against
hg19 with dbSNP known sites.  None of that fits this environment, so this
package generates statistically matched stand-ins at configurable scale:

- ``reference``  — multi-contig random genomes with controllable GC content
  and N-runs.
- ``variants``   — truth SNP/indel sets planted in a donor genome, plus
  dbSNP-like known-sites catalogs that overlap the truth set partially.
- ``qualities``  — Illumina-like quality-string profiles whose adjacent-
  delta concentration matches the paper's Fig. 5 observation.
- ``reads``      — wgsim-style paired-end read simulation with sequencing
  errors, optical/PCR duplicates, and coverage hot-spots (the >10,000x
  pile-ups that motivate GPF's dynamic repartitioning, §4.4).

Everything is deterministic given a seed.
"""

from repro.sim.reference import generate_reference
from repro.sim.variants import plant_variants, generate_known_sites, VariantTruth
from repro.sim.qualities import QualityProfile, ILLUMINA_HISEQ, ILLUMINA_OLD
from repro.sim.reads import ReadSimulator, ReadSimConfig
from repro.sim.targets import (
    TargetPanel,
    TargetInterval,
    TargetedReadSimulator,
    generate_targets,
    exome_panel,
    gene_panel,
)

__all__ = [
    "generate_reference",
    "plant_variants",
    "generate_known_sites",
    "VariantTruth",
    "QualityProfile",
    "ILLUMINA_HISEQ",
    "ILLUMINA_OLD",
    "ReadSimulator",
    "ReadSimConfig",
    "TargetPanel",
    "TargetInterval",
    "TargetedReadSimulator",
    "generate_targets",
    "exome_panel",
    "gene_panel",
]

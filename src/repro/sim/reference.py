"""Random reference genome generation."""

from __future__ import annotations

import numpy as np

from repro.formats.fasta import Contig, Reference

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)


def generate_reference(
    contig_lengths: list[int] | dict[str, int],
    gc_content: float = 0.41,
    n_run_rate: float = 0.0,
    n_run_length: int = 50,
    seed: int = 0,
) -> Reference:
    """Generate a multi-contig reference.

    ``gc_content`` sets P(G)+P(C) (the human genome is ~41% GC);
    ``n_run_rate`` plants runs of ``N`` (centromere/telomere gaps) at the
    given per-base start probability.
    """
    if not 0.0 < gc_content < 1.0:
        raise ValueError("gc_content must be in (0, 1)")
    rng = np.random.default_rng(seed)
    if isinstance(contig_lengths, dict):
        named = list(contig_lengths.items())
    else:
        named = [(f"chr{i + 1}", length) for i, length in enumerate(contig_lengths)]
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    probs = np.array([at, gc, gc, at])  # matches _BASES order A, C, G, T
    contigs: list[Contig] = []
    for name, length in named:
        if length <= 0:
            raise ValueError(f"contig {name!r} must have positive length")
        draws = rng.choice(4, size=length, p=probs)
        seq = _BASES[draws].copy()
        if n_run_rate > 0:
            starts = np.flatnonzero(rng.random(length) < n_run_rate)
            for start in starts:
                seq[start : start + n_run_length] = ord("N")
        contigs.append(Contig(name, seq.tobytes()))
    return Reference(contigs)


def gc_fraction(reference: Reference) -> float:
    """Observed GC fraction over non-N bases."""
    gc = 0
    total = 0
    for contig in reference.contigs:
        arr = np.frombuffer(contig.sequence, dtype=np.uint8)
        non_n = arr != ord("N")
        gc += int(np.count_nonzero((arr == ord("G")) | (arr == ord("C"))))
        total += int(np.count_nonzero(non_n))
    return gc / total if total else 0.0

"""Targeted capture panels: WES and gene-panel workload simulation.

The paper's blocked-time analysis instruments three workloads — WGS, WES
(whole-exome) and GenePanel (Fig. 12's dataset dump).  Exome and panel
sequencing only read targeted intervals: the exome is ~2% of the genome
in thousands of small targets; a clinical gene panel is a handful of
genes (~0.1%).  ``TargetPanel`` models the capture design and the read
simulator restricts fragment starts to (padded) targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.fasta import Reference
from repro.sim.reads import ReadSimConfig, ReadSimulator
from repro.formats.fastq import FastqPair


@dataclass(frozen=True, slots=True)
class TargetInterval:
    contig: str
    start: int
    end: int

    @property
    def span(self) -> int:
        return self.end - self.start


@dataclass
class TargetPanel:
    """A capture design: named intervals over the reference."""

    name: str
    targets: list[TargetInterval] = field(default_factory=list)

    def total_span(self) -> int:
        return sum(t.span for t in self.targets)

    def covered_fraction(self, reference: Reference) -> float:
        return self.total_span() / reference.total_length()

    def contains(self, contig: str, pos: int, padding: int = 0) -> bool:
        return any(
            t.contig == contig and t.start - padding <= pos < t.end + padding
            for t in self.targets
        )


def generate_targets(
    reference: Reference,
    fraction: float,
    mean_target_length: int,
    name: str = "panel",
    seed: int = 0,
) -> TargetPanel:
    """Random capture design covering ~``fraction`` of the genome.

    Targets are placed uniformly per contig (proportional to length) with
    exponential-ish length variation around ``mean_target_length`` — the
    shape of real exome kits (many ~150-300 bp exons).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    total = reference.total_length()
    budget = int(total * fraction)
    targets: list[TargetInterval] = []
    guard = 0
    while budget > 0 and guard < 100_000:
        guard += 1
        contig = reference.contigs[
            int(rng.integers(0, len(reference.contigs)))
        ]
        length = max(50, int(rng.exponential(mean_target_length)))
        length = min(length, budget + 50, len(contig) // 2)
        start = int(rng.integers(0, max(1, len(contig) - length)))
        candidate = TargetInterval(contig.name, start, start + length)
        # Skip heavy overlaps so coverage accounting stays honest.
        if any(
            t.contig == candidate.contig
            and t.start < candidate.end
            and candidate.start < t.end
            for t in targets
        ):
            continue
        targets.append(candidate)
        budget -= length
    targets.sort(key=lambda t: (t.contig, t.start))
    return TargetPanel(name=name, targets=targets)


def exome_panel(reference: Reference, seed: int = 0) -> TargetPanel:
    """WES-like design: ~2% of the genome in small targets."""
    return generate_targets(reference, 0.02, 250, name="WES", seed=seed)


def gene_panel(reference: Reference, seed: int = 0) -> TargetPanel:
    """Clinical-panel design: ~0.2% of the genome in a few larger targets."""
    return generate_targets(reference, 0.002, 1_500, name="GenePanel", seed=seed)


class TargetedReadSimulator(ReadSimulator):
    """Read simulation restricted to a capture panel (plus off-target noise).

    ``coverage`` in the config means *on-target* coverage; a small
    ``off_target_rate`` of fragments lands anywhere, as real capture does.
    """

    def __init__(
        self,
        donor: Reference,
        panel: TargetPanel,
        config: ReadSimConfig | None = None,
        capture_padding: int = 150,
        off_target_rate: float = 0.02,
    ):
        super().__init__(donor, config)
        self.panel = panel
        self.capture_padding = capture_padding
        self.off_target_rate = off_target_rate

    def simulate(self) -> list[FastqPair]:
        """On-target fragment sampling with a small off-target fraction."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        pairs: list[FastqPair] = []
        serial = 0
        targets_by_contig: dict[str, list[TargetInterval]] = {}
        for target in self.panel.targets:
            targets_by_contig.setdefault(target.contig, []).append(target)
        for contig in self.donor.contigs:
            targets = targets_by_contig.get(contig.name, [])
            if not targets:
                continue
            n = len(contig)
            for target in targets:
                span = target.span + 2 * self.capture_padding
                fragments = max(
                    1, int(cfg.coverage * span / (2 * cfg.read_length))
                )
                for _ in range(fragments):
                    if rng.random() < self.off_target_rate:
                        start = int(rng.integers(0, max(1, n - 1)))
                    else:
                        start = int(
                            rng.integers(
                                max(0, target.start - self.capture_padding),
                                min(n - 1, target.end + self.capture_padding),
                            )
                        )
                    insert = max(
                        2 * cfg.read_length,
                        int(rng.normal(cfg.mean_insert, cfg.insert_sigma)),
                    )
                    end = start + insert
                    if end > n:
                        continue
                    fragment = contig.fetch(start, end)
                    if "N" in fragment:
                        continue
                    name = f"tgt_{contig.name}_{start}_{serial}"
                    pairs.append(self._make_pair(name, fragment, rng))
                    serial += 1
        rng.shuffle(pairs)  # type: ignore[arg-type]
        return pairs

"""Local indel realignment (GATK IndelRealigner).

Aligners place each read independently, so reads spanning an indel often
end up with mismatches near the indel instead of a consistent gap.  The
two-step GATK procedure:

1. **RealignerTargetCreator** (:func:`find_realignment_intervals`): scan
   the pile-up for indel-containing CIGARs and mismatch clusters; emit
   merged candidate intervals.
2. **IndelRealigner** (:func:`realign_reads`): for each interval, build
   alternate consensus sequences (reference with each observed indel
   applied), score every overlapping read against the original and each
   consensus, and if a consensus lowers the total mismatch cost, rewrite
   the affected reads' positions/CIGARs against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.formats.cigar import Cigar, CigarOp
from repro.formats.fasta import Reference
from repro.formats.sam import SamRecord


@dataclass(frozen=True, slots=True)
class RealignmentInterval:
    contig: str
    start: int
    end: int

    def overlaps(self, rec: SamRecord) -> bool:
        return (
            not rec.is_unmapped
            and rec.rname == self.contig
            and rec.pos < self.end
            and rec.end > self.start
        )


@dataclass(frozen=True, slots=True)
class _ObservedIndel:
    """An indel suggested by a read's CIGAR: at ref position, +ins/-del."""

    pos: int  # reference position where the indel begins
    length: int  # >0 insertion length, <0 deletion length
    inserted: str = ""


def find_realignment_intervals(
    records: Iterable[SamRecord],
    padding: int = 10,
    mismatch_cluster_size: int = 0,
) -> list[RealignmentInterval]:
    """Candidate intervals: around every indel CIGAR, merged when close."""
    raw: list[RealignmentInterval] = []
    for rec in records:
        if rec.is_unmapped or rec.is_duplicate:
            continue
        if rec.cigar.has_indel():
            ref = rec.pos
            for op in rec.cigar:
                if op.op in ("I", "D"):
                    span = op.length if op.op == "D" else 1
                    raw.append(
                        RealignmentInterval(
                            rec.rname,
                            max(0, ref - padding),
                            ref + span + padding,
                        )
                    )
                if op.op in ("M", "D", "N", "=", "X"):
                    ref += op.length
    return merge_intervals(raw)


def merge_intervals(
    intervals: Sequence[RealignmentInterval],
) -> list[RealignmentInterval]:
    """Merge overlapping/adjacent intervals per contig."""
    by_contig: dict[str, list[RealignmentInterval]] = {}
    for iv in intervals:
        by_contig.setdefault(iv.contig, []).append(iv)
    merged: list[RealignmentInterval] = []
    for contig in sorted(by_contig):
        ivs = sorted(by_contig[contig], key=lambda iv: iv.start)
        current = ivs[0]
        for iv in ivs[1:]:
            if iv.start <= current.end:
                current = RealignmentInterval(
                    contig, current.start, max(current.end, iv.end)
                )
            else:
                merged.append(current)
                current = iv
        merged.append(current)
    return merged


def _observed_indels(records: Sequence[SamRecord]) -> list[_ObservedIndel]:
    seen: set[tuple[int, int, str]] = set()
    out: list[_ObservedIndel] = []
    for rec in records:
        if not rec.cigar.has_indel():
            continue
        ref = rec.pos
        query = 0
        for op in rec.cigar:
            if op.op == "I":
                inserted = rec.seq[query : query + op.length]
                key = (ref, op.length, inserted)
                if key not in seen:
                    seen.add(key)
                    out.append(_ObservedIndel(ref, op.length, inserted))
                query += op.length
            elif op.op == "D":
                key = (ref, -op.length, "")
                if key not in seen:
                    seen.add(key)
                    out.append(_ObservedIndel(ref, -op.length))
                ref += op.length
            else:
                if op.op in ("M", "=", "X"):
                    ref += op.length
                    query += op.length
                elif op.op == "S":
                    query += op.length
                elif op.op == "N":
                    ref += op.length
    return out


def _mismatch_cost(read_seq: str, read_quals: list[int], window: str, offset: int) -> int:
    """Sum of base qualities at mismatching positions (GATK's metric)."""
    cost = 0
    for i, base in enumerate(read_seq):
        j = offset + i
        if j < 0 or j >= len(window):
            cost += read_quals[i]
        elif window[j] != base:
            cost += read_quals[i]
    return cost


def realign_reads(
    records: Sequence[SamRecord],
    reference: Reference,
    intervals: Sequence[RealignmentInterval],
    window_pad: int = 60,
) -> int:
    """Realign reads in the given intervals; returns the realigned count.

    Records are modified in place (pos + CIGAR rewritten).  Only reads
    whose CIGAR currently lacks the consensus indel but whose mismatch
    cost drops under the alternate consensus are touched — matching
    GATK's conservative behaviour.
    """
    realigned = 0
    for interval in intervals:
        group = [r for r in records if interval.overlaps(r) and not r.is_duplicate]
        if len(group) < 2:
            continue
        indels = _observed_indels(group)
        if not indels:
            continue
        contig = reference[interval.contig]
        window_start = max(0, interval.start - window_pad)
        window_end = min(len(contig), interval.end + window_pad)
        ref_window = contig.fetch(window_start, window_end)

        for indel in indels:
            consensus, shift_at, shift_by = _apply_indel(
                ref_window, window_start, indel
            )
            for rec in group:
                if rec.cigar.has_indel():
                    continue  # already carries an indel; leave it alone
                quals = rec.phred_scores
                core = _aligned_core(rec)
                if core is None:
                    continue
                core_seq, core_start_ref = core
                old_cost = _mismatch_cost(
                    core_seq, quals, ref_window, core_start_ref - window_start
                )
                new_offset = core_start_ref - window_start
                if core_start_ref > indel.pos:
                    new_offset += shift_by if indel.length < 0 else 0
                new_cost = _best_consensus_cost(
                    core_seq, quals, consensus, new_offset
                )
                if new_cost[0] + 10 < old_cost:
                    _rewrite_record(rec, indel, new_cost[1], window_start, consensus)
                    realigned += 1
    return realigned


def _apply_indel(
    ref_window: str, window_start: int, indel: _ObservedIndel
) -> tuple[str, int, int]:
    """Reference window with the indel applied -> (consensus, at, shift)."""
    at = indel.pos - window_start + 1  # indels act after the anchor base
    at = max(0, min(len(ref_window), at))
    if indel.length > 0:
        return ref_window[:at] + indel.inserted + ref_window[at:], at, indel.length
    deletion = -indel.length
    return ref_window[:at] + ref_window[at + deletion :], at, deletion


def _aligned_core(rec: SamRecord) -> tuple[str, int] | None:
    """The read's M-aligned portion and its reference start (skips clips)."""
    if rec.is_unmapped or not rec.seq:
        return None
    lead = rec.cigar.leading_clip()
    trail = rec.cigar.trailing_clip()
    seq = rec.seq[lead : len(rec.seq) - trail if trail else len(rec.seq)]
    return seq, rec.pos


def _best_consensus_cost(
    seq: str, quals: list[int], consensus: str, around: int, slack: int = 3
) -> tuple[int, int]:
    """Cheapest placement of seq in the consensus near ``around``."""
    best_cost = None
    best_offset = around
    for offset in range(around - slack, around + slack + 1):
        cost = _mismatch_cost(seq, quals, consensus, offset)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_offset = offset
    assert best_cost is not None
    return best_cost, best_offset


def _rewrite_record(
    rec: SamRecord,
    indel: _ObservedIndel,
    consensus_offset: int,
    window_start: int,
    consensus: str,
) -> None:
    """Rewrite pos + CIGAR of a read now aligned against the consensus."""
    lead = rec.cigar.leading_clip()
    trail = rec.cigar.trailing_clip()
    core_len = len(rec.seq) - lead - trail
    indel_at_consensus = indel.pos - window_start + 1
    if indel.length > 0:
        ins_start = indel_at_consensus
        ins_end = indel_at_consensus + indel.length
        # Does the read's core span the insertion?
        if consensus_offset < ins_start and consensus_offset + core_len > ins_end:
            before = ins_start - consensus_offset
            after = core_len - before - indel.length
            ops = []
            if lead:
                ops.append(CigarOp(lead, "S"))
            ops.append(CigarOp(before, "M"))
            ops.append(CigarOp(indel.length, "I"))
            if after > 0:
                ops.append(CigarOp(after, "M"))
            if trail:
                ops.append(CigarOp(trail, "S"))
            rec.pos = window_start + consensus_offset
            rec.cigar = Cigar(ops).normalized()
        else:
            # Entirely on one side: map consensus offset back to reference.
            ref_offset = consensus_offset
            if consensus_offset >= ins_end:
                ref_offset -= indel.length
            rec.pos = window_start + ref_offset
    else:
        deletion = -indel.length
        del_at = indel_at_consensus
        if consensus_offset < del_at and consensus_offset + core_len > del_at:
            before = del_at - consensus_offset
            after = core_len - before
            ops = []
            if lead:
                ops.append(CigarOp(lead, "S"))
            ops.append(CigarOp(before, "M"))
            ops.append(CigarOp(deletion, "D"))
            if after > 0:
                ops.append(CigarOp(after, "M"))
            if trail:
                ops.append(CigarOp(trail, "S"))
            rec.pos = window_start + consensus_offset
            rec.cigar = Cigar(ops).normalized()
        else:
            ref_offset = consensus_offset
            if consensus_offset >= del_at:
                ref_offset += deletion
            rec.pos = window_start + ref_offset

"""Genomic interval index over sorted SAM records (the samtools-index
analogue of the Cleaner stage's "Sort, Index, MarkDuplicate").

A linear bin index: each contig is divided into fixed-width bins; every
record registers in each bin its alignment span touches.  Queries collect
candidate records from the touched bins and post-filter by exact overlap
— O(bins + candidates) instead of a full scan, which is what the caller's
region lookups and the realigner's interval gathering want.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.formats.sam import SamRecord


@dataclass
class SamIndex:
    """Binned index of mapped records."""

    bin_width: int = 1_024
    _bins: dict[tuple[str, int], list[int]] = field(default_factory=dict)
    _records: list[SamRecord] = field(default_factory=list)

    @classmethod
    def build(cls, records: list[SamRecord], bin_width: int = 1_024) -> "SamIndex":
        """Index records into fixed-width bins (unmapped records skipped)."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        index = cls(bin_width=bin_width)
        index._records = list(records)
        for i, rec in enumerate(index._records):
            if rec.is_unmapped:
                continue
            start_bin = rec.pos // bin_width
            end_bin = max(start_bin, (rec.end - 1) // bin_width)
            for b in range(start_bin, end_bin + 1):
                index._bins.setdefault((rec.rname, b), []).append(i)
        return index

    def query(self, contig: str, start: int, end: int) -> list[SamRecord]:
        """Mapped records overlapping [start, end), in input order."""
        if end <= start:
            return []
        seen: set[int] = set()
        out: list[int] = []
        for b in range(start // self.bin_width, max(start // self.bin_width, (end - 1) // self.bin_width) + 1):
            for i in self._bins.get((contig, b), ()):
                if i in seen:
                    continue
                seen.add(i)
                rec = self._records[i]
                if rec.pos < end and rec.end > start:
                    out.append(i)
        out.sort()
        return [self._records[i] for i in out]

    def depth_at(self, contig: str, pos: int) -> int:
        """Number of mapped, non-duplicate records covering ``pos``."""
        return sum(
            1 for rec in self.query(contig, pos, pos + 1) if not rec.is_duplicate
        )

    def __len__(self) -> int:
        return len(self._records)


@dataclass(frozen=True)
class CoordinateIndex:
    """Sparse (contig, pos) -> record-offset map over *sorted* records.

    The text-file analogue of a BAM linear index: records the offset of
    the first record at or after every ``stride``-th position, enabling
    bisect-based slicing of a coordinate-sorted list without touching the
    records in between.
    """

    contig_offsets: dict[str, tuple[tuple[int, ...], tuple[int, ...]]]

    @classmethod
    def build(cls, sorted_records: list[SamRecord], stride: int = 64) -> "CoordinateIndex":
        """Record anchor offsets every ``stride`` records per contig."""
        if stride <= 0:
            raise ValueError("stride must be positive")
        per_contig: dict[str, tuple[list[int], list[int]]] = {}
        for offset, rec in enumerate(sorted_records):
            if rec.is_unmapped:
                continue
            positions, offsets = per_contig.setdefault(rec.rname, ([], []))
            if not offsets or offset - offsets[-1] >= stride:
                positions.append(rec.pos)
                offsets.append(offset)
        return cls(
            contig_offsets={
                contig: (tuple(p), tuple(o)) for contig, (p, o) in per_contig.items()
            }
        )

    def first_offset_at_or_after(self, contig: str, pos: int) -> int | None:
        """A lower bound on the list offset of records at >= pos."""
        entry = self.contig_offsets.get(contig)
        if entry is None:
            return None
        positions, offsets = entry
        i = bisect_right(positions, pos) - 1
        return offsets[max(0, i)]

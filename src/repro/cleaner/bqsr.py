"""Base Quality Score Recalibration (GATK BQSR).

Sequencers' reported quality scores are systematically miscalibrated.
BQSR counts, per covariate bin, how often aligned bases actually mismatch
the reference — skipping known polymorphic sites (dbSNP), where a
mismatch is real variation rather than machine error — and replaces each
reported quality with the empirical quality of its bin.

Covariates (the standard GATK set):

- reported quality score,
- machine cycle (position in the read, negated for reverse strand),
- dinucleotide context (previous base + current base).

The two-pass structure (count covariates -> apply) matches the pipeline
stage layout; the count pass is the "Collect action after BQSR" the paper
calls out as a serial broadcast step (§5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.fasta import Reference
from repro.formats.sam import SamRecord
from repro.formats.vcf import VcfRecord, build_known_sites_index

#: Phred cap after recalibration, matching GATK's practical range.
MAX_RECALIBRATED = 60


def _phred(errors: float, observations: float) -> float:
    """Empirical Phred score with the Bayesian +1/+2 smoothing GATK uses."""
    rate = (errors + 1.0) / (observations + 2.0)
    return float(-10.0 * np.log10(rate))


@dataclass
class RecalibrationTable:
    """Counts of (observations, errors) per covariate bin."""

    #: global
    total_observations: int = 0
    total_errors: int = 0
    #: keyed by reported quality
    by_quality: dict[int, list[int]] = field(default_factory=dict)
    #: keyed by (reported quality, cycle)
    by_cycle: dict[tuple[int, int], list[int]] = field(default_factory=dict)
    #: keyed by (reported quality, dinucleotide)
    by_context: dict[tuple[int, str], list[int]] = field(default_factory=dict)

    def record(self, quality: int, cycle: int, context: str, is_error: bool) -> None:
        self.total_observations += 1
        self.total_errors += int(is_error)
        for table, key in (
            (self.by_quality, quality),
            (self.by_cycle, (quality, cycle)),
            (self.by_context, (quality, context)),
        ):
            cell = table.setdefault(key, [0, 0])  # type: ignore[arg-type]
            cell[0] += 1
            cell[1] += int(is_error)

    def merge(self, other: "RecalibrationTable") -> "RecalibrationTable":
        """Combine two partial tables (the per-partition reduce step)."""
        self.total_observations += other.total_observations
        self.total_errors += other.total_errors
        for mine, theirs in (
            (self.by_quality, other.by_quality),
            (self.by_cycle, other.by_cycle),
            (self.by_context, other.by_context),
        ):
            for key, (obs, err) in theirs.items():  # type: ignore[union-attr]
                cell = mine.setdefault(key, [0, 0])  # type: ignore[union-attr]
                cell[0] += obs
                cell[1] += err
        return self

    # -- recalibration ---------------------------------------------------
    def recalibrate(self, quality: int, cycle: int, context: str) -> int:
        """GATK's hierarchical delta model.

        new Q = global empirical
              + delta(reported quality)
              + delta(cycle | quality)
              + delta(context | quality)
        """
        if self.total_observations == 0:
            return quality
        q_cell = self.by_quality.get(quality)
        if q_cell is None:
            return quality
        q_emp = _phred(q_cell[1], q_cell[0])
        result = q_emp
        # Conditional covariates use raw rates and only fire when the bin
        # has seen real errors: with few observations the smoothing prior
        # would dominate and fabricate large negative deltas.
        q_raw = q_cell[1] / q_cell[0] if q_cell[0] else 0.0
        for table, key in (
            (self.by_cycle, (quality, cycle)),
            (self.by_context, (quality, context)),
        ):
            cell = table.get(key)  # type: ignore[union-attr]
            if cell is None or cell[0] < 100 or cell[1] < 2 or q_raw <= 0:
                continue
            raw_rate = cell[1] / cell[0]
            result += -10.0 * np.log10(raw_rate) - (-10.0 * np.log10(q_raw))
        return int(np.clip(round(result), 1, MAX_RECALIBRATED))


def build_recalibration_table(
    records: list[SamRecord],
    reference: Reference,
    known_sites: list[VcfRecord],
) -> RecalibrationTable:
    """Pass 1: count covariates over aligned, non-duplicate records."""
    mask = build_known_sites_index(known_sites)
    table = RecalibrationTable()
    for rec in records:
        if rec.is_unmapped or rec.is_duplicate or not rec.seq:
            continue
        contig = reference[rec.rname]
        contig_mask = mask.get(rec.rname, frozenset())
        quals = rec.phred_scores
        seq = rec.seq
        read_len = len(seq)
        for ref_pos, query_idx, op in rec.cigar.walk(rec.pos):
            if op not in ("M", "=", "X") or ref_pos is None or query_idx is None:
                continue
            if ref_pos in contig_mask:
                continue
            if ref_pos >= len(contig):
                continue
            ref_base = chr(contig.sequence[ref_pos])
            base = seq[query_idx]
            if ref_base == "N" or base == "N":
                continue
            cycle = read_len - 1 - query_idx if rec.is_reverse else query_idx
            context = seq[query_idx - 1 : query_idx + 1] if query_idx > 0 else "N" + base
            table.record(quals[query_idx], cycle, context, base != ref_base)
    return table


def apply_recalibration(
    records: list[SamRecord], table: RecalibrationTable
) -> int:
    """Pass 2: rewrite quality strings in place; returns bases changed."""
    changed = 0
    for rec in records:
        if rec.is_unmapped or not rec.qual:
            continue
        quals = rec.phred_scores
        seq = rec.seq
        read_len = len(seq)
        new_quals = list(quals)
        for query_idx in range(read_len):
            cycle = read_len - 1 - query_idx if rec.is_reverse else query_idx
            context = (
                seq[query_idx - 1 : query_idx + 1]
                if query_idx > 0
                else "N" + seq[query_idx]
            )
            new_q = table.recalibrate(quals[query_idx], cycle, context)
            if new_q != quals[query_idx]:
                changed += 1
            new_quals[query_idx] = new_q
        rec.qual = "".join(chr(q + 33) for q in new_quals)
    return changed


def quality_calibration_error(
    records: list[SamRecord],
    reference: Reference,
    known_sites: list[VcfRecord],
) -> float:
    """RMS difference between reported and empirical quality per bin.

    The benchmark's figure of merit: after BQSR this should shrink.
    """
    table = build_recalibration_table(records, reference, known_sites)
    if not table.by_quality:
        return 0.0
    total_weight = 0
    acc = 0.0
    for quality, (obs, err) in table.by_quality.items():
        if obs < 20:
            continue
        emp = _phred(err, obs)
        acc += obs * (emp - quality) ** 2
        total_weight += obs
    return float(np.sqrt(acc / total_weight)) if total_weight else 0.0

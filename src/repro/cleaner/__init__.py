"""The Cleaner stage: sort, duplicate marking, indel realignment, BQSR.

Re-implementations of the Picard/Samtools/GATK tools the paper's Cleaner
stage wraps (§2.1):

- ``sort``       — coordinate sort and a contig/position interval index.
- ``duplicates`` — Picard-style MarkDuplicates: fragments sharing an
  unclipped 5' position + orientation (for pairs: both ends) are
  duplicates; the copy with the highest summed base quality survives.
- ``realign``    — GATK-style local indel realignment: find intervals
  around indels/mismatch clusters, build alternate consensuses, shift
  reads whose score improves.
- ``bqsr``       — base quality score recalibration: count empirical
  mismatch rates per (reported quality, machine cycle, dinucleotide
  context) covariate outside known variant sites, then remap qualities.
"""

from repro.cleaner.sort import coordinate_sort, is_coordinate_sorted
from repro.cleaner.index import SamIndex, CoordinateIndex
from repro.cleaner.duplicates import mark_duplicates, DuplicateStats
from repro.cleaner.realign import (
    find_realignment_intervals,
    realign_reads,
    RealignmentInterval,
)
from repro.cleaner.bqsr import (
    RecalibrationTable,
    build_recalibration_table,
    apply_recalibration,
)

__all__ = [
    "coordinate_sort",
    "is_coordinate_sorted",
    "SamIndex",
    "CoordinateIndex",
    "mark_duplicates",
    "DuplicateStats",
    "find_realignment_intervals",
    "realign_reads",
    "RealignmentInterval",
    "RecalibrationTable",
    "build_recalibration_table",
    "apply_recalibration",
]

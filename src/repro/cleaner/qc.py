"""Alignment QC metrics: flagstat, depth, and insert-size statistics.

The samtools/Picard companions every real pipeline runs between stages:

- :func:`flagstat` — the ``samtools flagstat`` counters (total, mapped,
  paired, proper pairs, duplicates, ...),
- :func:`depth_profile` — per-position coverage over an interval
  (``samtools depth``),
- :func:`insert_size_metrics` — fragment-length distribution from proper
  pairs (``Picard CollectInsertSizeMetrics``), which is also how the
  aligner's insert-size window would be re-estimated in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.sam import SamRecord


@dataclass
class FlagStat:
    total: int = 0
    mapped: int = 0
    paired: int = 0
    proper_pairs: int = 0
    duplicates: int = 0
    secondary: int = 0
    supplementary: int = 0
    reverse: int = 0

    @property
    def mapped_fraction(self) -> float:
        return self.mapped / self.total if self.total else 0.0

    @property
    def duplicate_fraction(self) -> float:
        return self.duplicates / self.total if self.total else 0.0

    def merge(self, other: "FlagStat") -> "FlagStat":
        """Combine partial counts (the per-partition reduce)."""
        for name in (
            "total",
            "mapped",
            "paired",
            "proper_pairs",
            "duplicates",
            "secondary",
            "supplementary",
            "reverse",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def report(self) -> str:
        lines = [
            f"{self.total} in total",
            f"{self.secondary} secondary",
            f"{self.supplementary} supplementary",
            f"{self.duplicates} duplicates",
            f"{self.mapped} mapped ({100 * self.mapped_fraction:.2f}%)",
            f"{self.paired} paired in sequencing",
            f"{self.proper_pairs} properly paired",
        ]
        return "\n".join(lines)


def flagstat(records: list[SamRecord]) -> FlagStat:
    """samtools-flagstat counters over one record batch."""
    stats = FlagStat()
    for rec in records:
        stats.total += 1
        if not rec.is_unmapped:
            stats.mapped += 1
        if rec.is_paired:
            stats.paired += 1
        if rec.flag & 0x2:
            stats.proper_pairs += 1
        if rec.is_duplicate:
            stats.duplicates += 1
        if rec.is_secondary:
            stats.secondary += 1
        if rec.is_supplementary:
            stats.supplementary += 1
        if rec.is_reverse:
            stats.reverse += 1
    return stats


def depth_profile(
    records: list[SamRecord],
    contig: str,
    start: int,
    end: int,
    include_duplicates: bool = False,
) -> np.ndarray:
    """Per-position read depth over [start, end) on ``contig``."""
    if end <= start:
        return np.zeros(0, dtype=np.int64)
    depth = np.zeros(end - start, dtype=np.int64)
    for rec in records:
        if rec.is_unmapped or rec.rname != contig:
            continue
        if rec.is_duplicate and not include_duplicates:
            continue
        lo = max(rec.pos, start)
        hi = min(rec.end, end)
        if hi > lo:
            depth[lo - start : hi - start] += 1
    return depth


@dataclass
class InsertSizeMetrics:
    count: int = 0
    mean: float = 0.0
    median: float = 0.0
    std: float = 0.0
    min: int = 0
    max: int = 0
    histogram: dict[int, int] = field(default_factory=dict)


def insert_size_metrics(
    records: list[SamRecord], bin_width: int = 25
) -> InsertSizeMetrics:
    """Fragment-length statistics from proper pairs (positive TLEN only,
    so each fragment counts once)."""
    inserts = [
        rec.tlen
        for rec in records
        if rec.flag & 0x2 and rec.tlen > 0 and not rec.is_duplicate
    ]
    if not inserts:
        return InsertSizeMetrics()
    arr = np.asarray(inserts, dtype=np.int64)
    hist: dict[int, int] = {}
    for value in arr.tolist():
        bucket = (value // bin_width) * bin_width
        hist[bucket] = hist.get(bucket, 0) + 1
    return InsertSizeMetrics(
        count=len(arr),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std()),
        min=int(arr.min()),
        max=int(arr.max()),
        histogram=dict(sorted(hist.items())),
    )


def coverage_summary(
    records: list[SamRecord], contig: str, length: int
) -> dict[str, float]:
    """Mean/median depth and breadth (fraction covered) over one contig."""
    depth = depth_profile(records, contig, 0, length)
    if depth.size == 0:
        return {"mean_depth": 0.0, "median_depth": 0.0, "breadth": 0.0}
    return {
        "mean_depth": float(depth.mean()),
        "median_depth": float(np.median(depth)),
        "breadth": float(np.count_nonzero(depth) / depth.size),
    }

"""Coordinate sorting and interval slicing of SAM records."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.formats.sam import SamHeader, SamRecord, coordinate_key


def coordinate_sort(
    records: Iterable[SamRecord], header: SamHeader
) -> list[SamRecord]:
    """Sort by (contig order, position); unmapped records go last."""
    return sorted(records, key=coordinate_key(header))


def is_coordinate_sorted(records: Sequence[SamRecord], header: SamHeader) -> bool:
    key = coordinate_key(header)
    return all(key(records[i]) <= key(records[i + 1]) for i in range(len(records) - 1))


def records_overlapping(
    records: Iterable[SamRecord], contig: str, start: int, end: int
) -> list[SamRecord]:
    """Mapped records overlapping [start, end) on ``contig``."""
    out = []
    for rec in records:
        if rec.is_unmapped or rec.rname != contig:
            continue
        if rec.pos < end and rec.end > start:
            out.append(rec)
    return out

"""MarkDuplicates: Picard's algorithm.

Reads (or read pairs) produced from the same original DNA fragment share
an unclipped 5' alignment position and orientation; the paper describes
this as marking "reads with identical position and orientation" (§2.1).
Following Picard:

- **paired** records group by the tuple of both mates' (contig, unclipped
  5' position, strand), so the whole pair is marked together;
- **unpaired** records group by their own (contig, unclipped 5', strand);
- within each group the member with the highest
  :meth:`SamRecord.sum_of_base_qualities` survives; every other member
  gets the 0x400 duplicate flag.

Secondary/supplementary/unmapped records are never considered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.formats.sam import SamRecord


@dataclass
class DuplicateStats:
    examined: int = 0
    duplicates_marked: int = 0
    groups: int = 0

    @property
    def duplicate_fraction(self) -> float:
        return self.duplicates_marked / self.examined if self.examined else 0.0


def _five_prime_key(rec: SamRecord) -> tuple[str, int, bool]:
    """(contig, unclipped 5' position, is_reverse) for one record.

    The 5' end of a reverse-strand read is its *rightmost* aligned base,
    extended past clips; for a forward read it is the leftmost.
    """
    if rec.is_reverse:
        return (rec.rname, rec.unclipped_end(), True)
    return (rec.rname, rec.unclipped_start(), False)


def mark_duplicates(
    records: Iterable[SamRecord],
) -> tuple[list[SamRecord], DuplicateStats]:
    """Mark duplicate records in place; returns (records, stats).

    The input records are mutated (duplicate flag set/cleared) and
    returned in their original order.
    """
    records = list(records)
    stats = DuplicateStats()

    eligible: list[SamRecord] = []
    for rec in records:
        rec.set_duplicate(False)
        if rec.is_unmapped or rec.is_secondary or rec.is_supplementary:
            continue
        eligible.append(rec)
        stats.examined += 1

    # Pair up mates by qname; a paired record without its mate present is
    # treated as a fragment (Picard's behaviour for orphans).
    by_name: dict[str, list[SamRecord]] = {}
    for rec in eligible:
        by_name.setdefault(_pair_name(rec.qname), []).append(rec)

    pair_groups: dict[tuple, list[list[SamRecord]]] = {}
    frag_groups: dict[tuple, list[SamRecord]] = {}
    for name, members in by_name.items():
        if len(members) == 2 and members[0].is_paired and members[1].is_paired:
            keys = sorted([_five_prime_key(members[0]), _five_prime_key(members[1])])
            pair_groups.setdefault(tuple(keys), []).append(members)
        else:
            for rec in members:
                frag_groups.setdefault(_five_prime_key(rec), []).append(rec)

    for group in pair_groups.values():
        stats.groups += 1
        if len(group) < 2:
            continue
        # Tie-break on name so survivor choice is deterministic no matter
        # how the group was assembled (local list vs shuffled partitions).
        survivor = max(
            group,
            key=lambda pair: (
                sum(r.sum_of_base_qualities() for r in pair),
                pair[0].qname,
            ),
        )
        for pair in group:
            if pair is not survivor:
                for rec in pair:
                    rec.set_duplicate(True)
                    stats.duplicates_marked += 1

    for group_records in frag_groups.values():
        stats.groups += 1
        if len(group_records) < 2:
            continue
        survivor = max(
            group_records,
            key=lambda r: (r.sum_of_base_qualities(), r.qname),
        )
        for rec in group_records:
            if rec is not survivor:
                rec.set_duplicate(True)
                stats.duplicates_marked += 1

    return records, stats


def remove_duplicates(records: Sequence[SamRecord]) -> list[SamRecord]:
    """Filter out records carrying the duplicate flag."""
    return [rec for rec in records if not rec.is_duplicate]


def _pair_name(qname: str) -> str:
    if qname.endswith("/1") or qname.endswith("/2"):
        return qname[:-2]
    return qname

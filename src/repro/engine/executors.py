"""Executor backends: where task closures actually run.

``serial`` executes tasks in submission order on the calling thread —
deterministic, ideal for tests.  ``threads`` uses a thread pool; the
pipeline's hot kernels (pair-HMM, Smith-Waterman, bit packing) are NumPy
code that releases the GIL, so threads deliver genuine parallel speedup
for the stages that dominate run time.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


class Executor:
    """Runs a batch of task thunks and returns results in order."""

    def run_all(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        raise NotImplementedError

    def shutdown(self) -> None:  # pragma: no cover - trivial default
        pass


class SerialExecutor(Executor):
    def run_all(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        return [task() for task in tasks]


class ThreadExecutor(Executor):
    def __init__(self, num_workers: int):
        if num_workers <= 0:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self._pool = ThreadPoolExecutor(max_workers=num_workers)

    def run_all(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        futures = [self._pool.submit(task) for task in tasks]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(backend: str, num_workers: int = 4) -> Executor:
    """Executor factory: 'serial' or 'threads'."""
    if backend == "serial":
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(num_workers)
    raise ValueError(f"unknown executor backend {backend!r}; options: serial, threads")

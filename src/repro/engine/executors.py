"""Executor backends: where task closures actually run.

``serial`` executes tasks in submission order on the calling thread —
deterministic, ideal for tests.  ``threads`` uses a thread pool; the
pipeline's hot kernels (pair-HMM, Smith-Waterman, bit packing) are NumPy
code that releases the GIL, so threads deliver genuine parallel speedup
for the stages that dominate run time.  ``process`` adds a spawn-safe
process pool for the pure-Python parts the GIL would otherwise serialize:
tasks are pickled in chunks on the driver and shipped to workers; batches
whose closures cannot be pickled (the common case for lineage closures
that capture an RDD context) transparently fall back to the thread pool,
so ``process`` is always safe to select.

All three are *local* transports behind the pluggable
:class:`~repro.dist.transport.Transport` seam; the ``cluster`` backend
(:mod:`repro.dist.cluster`) resolves through the same registry and ships
task bodies to socket-connected worker nodes instead.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

from repro.dist.transport import Transport, create_transport, register_transport

T = TypeVar("T")


class Executor(Transport):
    """Runs a batch of task thunks and returns results in order.

    Kept as the engine-facing name; the interface (``run_all``,
    ``execute``, ``bind``, ``note_slot_failure``, ``shutdown``) lives on
    :class:`~repro.dist.transport.Transport`.
    """


def _drain_in_order(futures: Sequence[Future]) -> list:
    """Collect results in submission order; on the first failure, cancel
    every future that has not started yet so a failed stage stops the
    batch instead of letting queued tasks run to completion."""
    try:
        return [f.result() for f in futures]
    except BaseException:
        for f in futures:
            f.cancel()
        raise


class SerialExecutor(Executor):
    def run_all(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        return [task() for task in tasks]


class ThreadExecutor(Executor):
    def __init__(self, num_workers: int):
        if num_workers <= 0:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self._pool = ThreadPoolExecutor(max_workers=num_workers)

    def run_all(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        futures = [self._pool.submit(task) for task in tasks]
        return _drain_in_order(futures)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def _run_pickled_chunk(blob: bytes) -> bytes:
    """Worker-side body: unpickle a chunk of thunks, run them in order.

    Module-level (not a closure) so it imports cleanly under the spawn
    start method, which re-imports this module in the worker instead of
    inheriting driver state.
    """
    tasks = pickle.loads(blob)
    return pickle.dumps([task() for task in tasks])


def _run_pickled_chunk_profiled(blob: bytes, interval: float) -> bytes:
    """Worker-side body with a child sampling profiler.

    The driver's profiler cannot see into pool workers, so each chunk
    runs under its own :class:`~repro.obs.SamplingProfiler` (no tracer —
    there are no spans in the worker) and the folded stacks travel home
    *with the results* through the existing pickle path.  Stacks are
    rooted at ``worker:<pid>`` so driver and worker samples stay
    distinguishable in the merged flamegraph.
    """
    import os

    from repro.obs.profiler import SamplingProfiler

    tasks = pickle.loads(blob)
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    try:
        results = [task() for task in tasks]
    finally:
        profiler.stop()
    prefix = f"worker:{os.getpid()}"
    folded = {
        f"{prefix};{stack}": count for stack, count in profiler.folded().items()
    }
    return pickle.dumps((results, folded))


class ProcessExecutor(Executor):
    """Process-pool backend for CPU-bound pure-Python stages.

    Submission is *chunked*: tasks are pre-pickled on the driver into
    ``num_workers * chunks_per_worker`` chunks, so per-task IPC overhead
    is amortized and a pickling failure is detected eagerly — before
    anything is submitted — rather than surfacing as a broken pool.  When
    any task in the batch is unpicklable (lineage closures capturing the
    engine context usually are), the whole batch runs on an internal
    :class:`ThreadExecutor` instead, which preserves result order and
    exception behaviour exactly.
    """

    def __init__(
        self,
        num_workers: int,
        chunks_per_worker: int = 4,
        start_method: str = "spawn",
        blacklist_after: int = 3,
    ):
        if num_workers <= 0:
            raise ValueError("need at least one worker")
        if chunks_per_worker <= 0:
            raise ValueError("need at least one chunk per worker")
        self.num_workers = num_workers
        self.chunks_per_worker = chunks_per_worker
        self.blacklist_after = blacklist_after
        self._mp_context = multiprocessing.get_context(start_method)
        self._pool: ProcessPoolExecutor | None = None  # spawned lazily
        self._fallback = ThreadExecutor(num_workers)
        self._pool_broken = False
        #: Batches routed to the thread fallback because of unpicklable
        #: closures or a broken pool (observable by tests and operators).
        self.fallback_batches = 0
        #: Executor-level incidents reported by the scheduler (timeouts,
        #: broken pools); once they reach ``blacklist_after`` the process
        #: pool is blacklisted and every batch runs on the thread fallback.
        self.slot_failures = 0
        self.blacklisted = False

    def note_slot_failure(self, reason: str = "") -> bool:
        self.slot_failures += 1
        if not self.blacklisted and self.slot_failures >= self.blacklist_after:
            self.blacklisted = True
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            return True
        return False

    def _note_fallback(self, reason: str) -> None:
        self.fallback_batches += 1
        # Fallbacks are a capacity signal operators watch: the counter
        # (total + per-reason) lands in /metrics next to the event.
        if self.telemetry is not None:
            self.telemetry.inc("executor.fallbacks")
            self.telemetry.inc(f"executor.fallbacks.{reason}")
        if self.events is not None:
            self.events.publish(
                "executor.incident", incident="fallback_batch", reason=reason
            )

    def run_all(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        if not tasks:
            return []
        if self._pool_broken or self.blacklisted:
            self._note_fallback("blacklisted" if self.blacklisted else "pool_broken")
            return self._fallback.run_all(tasks)
        try:
            blobs = [
                pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
                for chunk in self._chunks(tasks)
            ]
        except Exception:
            self._note_fallback("unpicklable")
            return self._fallback.run_all(tasks)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.num_workers, mp_context=self._mp_context
            )
        # The thread fallback needs no profiled variant: its tasks run in
        # the driver process, where the context's own profiler already
        # samples every thread.
        profiled = self.profile_interval is not None
        if profiled:
            futures = [
                self._pool.submit(
                    _run_pickled_chunk_profiled, blob, self.profile_interval
                )
                for blob in blobs
            ]
        else:
            futures = [
                self._pool.submit(_run_pickled_chunk, blob) for blob in blobs
            ]
        try:
            result_blobs = _drain_in_order(futures)
        except BrokenProcessPool:
            # Spawn-hostile environments (REPL drivers, frozen mains) kill
            # workers at import time; engine tasks are idempotent (they
            # recompute from lineage), so rerun the batch on threads and
            # stop trying processes for this executor's lifetime.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_broken = True
            self._note_fallback("broken_pool")
            return self._fallback.run_all(tasks)
        out: list[T] = []
        for result_blob in result_blobs:
            payload = pickle.loads(result_blob)
            if profiled:
                results, folded = payload
                if folded and self.profile_sink is not None:
                    self.profile_sink(folded)
                out.extend(results)
            else:
                out.extend(payload)
        return out

    def _chunks(
        self, tasks: Sequence[Callable[[], T]]
    ) -> list[Sequence[Callable[[], T]]]:
        target = self.num_workers * self.chunks_per_worker
        size = max(1, -(-len(tasks) // target))
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._fallback.shutdown()


register_transport("serial", lambda **kwargs: SerialExecutor())
register_transport(
    "threads", lambda **kwargs: ThreadExecutor(kwargs.get("num_workers", 4))
)
register_transport(
    "process",
    lambda **kwargs: ProcessExecutor(
        kwargs.get("num_workers", 4),
        blacklist_after=kwargs.get("blacklist_after", 3),
    ),
)


def make_executor(
    backend: str, num_workers: int = 4, blacklist_after: int = 3, config=None
) -> Executor:
    """Executor factory: 'serial', 'threads', 'process', or 'cluster'.

    Resolves through the transport registry, so plugins registered with
    :func:`repro.dist.register_transport` are selectable by name too.
    ``config`` (the owning ``EngineConfig``) is forwarded for transports
    that need more than a worker count — the cluster backend reads its
    listen address and fleet expectations from it.
    """
    return create_transport(
        backend,
        num_workers=num_workers,
        blacklist_after=blacklist_after,
        config=config,
    )

"""Broadcast variables.

GPF broadcasts the reference genome, known-sites masks, and the
PartitionInfo split tables to every executor (paper §4.4 step 2:
``SparkContext.broadcast(x)``).  In this single-process engine a broadcast
is a read-only handle; the engine still accounts its serialized size once
per executor in the cluster cost model, which is how the paper's
"multiple-gigabyte mask table broadcast" serial step after BQSR shows up.
"""

from __future__ import annotations

import pickle
from typing import Generic, TypeVar

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value shared with all tasks."""

    _next_id = 0

    def __init__(self, value: T):
        self._value = value
        self._destroyed = False
        self.id = Broadcast._next_id
        Broadcast._next_id += 1
        self._size: int | None = None

    @property
    def value(self) -> T:
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.id} was destroyed")
        return self._value

    def serialized_size(self) -> int:
        """Bytes this broadcast ships to each executor (computed lazily)."""
        if self._size is None:
            self._size = len(pickle.dumps(self._value, protocol=pickle.HIGHEST_PROTOCOL))
        return self._size

    def destroy(self) -> None:
        self._destroyed = True
        self._value = None  # type: ignore[assignment]

"""Hash shuffle with real spill files.

Spark writes *all* shuffle data to disk, even for in-memory workloads — a
fact the paper leans on ("even in-memory workloads store shuffle data on
disk", §5.3.1).  This shuffle manager does the same: map tasks bucket their
output by the partitioner, serialize each bucket with the RDD's serializer,
and write one spill file per (shuffle, map partition, reduce partition).
Reduce tasks read the files back.

Time spent inside file read/write is recorded as *disk-blocked* time on the
running task.  Network-blocked time is modelled: a reduce task reading
bucket bytes ``b`` from ``m`` map outputs charges ``b * (m-1)/m /
network_bandwidth`` (all but its co-located map output crosses the fabric),
mirroring how Spark's fetch-wait instrumentation attributes remote reads.
"""

from __future__ import annotations

import os
import shutil
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.blockmanager import frame_block, unframe_block
from repro.engine.bundle import PartitionChain, decode_partition, encode_partition
from repro.engine.metrics import TaskMetrics, timed
from repro.engine.serializers import Serializer


@dataclass
class ShuffleWriteInfo:
    """Bookkeeping for one completed shuffle's map side."""

    shuffle_id: int
    num_map_partitions: int
    num_reduce_partitions: int
    bytes_written: int = 0
    map_done: set[int] = field(default_factory=set)

    @property
    def complete(self) -> bool:
        return len(self.map_done) == self.num_map_partitions


class ShuffleManager:
    """Owns the spill directory and all shuffle state for one context."""

    def __init__(
        self,
        spill_dir: str,
        network_bandwidth: float | None = 1.25e9,
        compress: bool = False,
        telemetry=None,
        chaos=None,
    ):
        self._spill_dir = spill_dir
        self._network_bandwidth = network_bandwidth
        #: Optional ChaosInjector: shuffle.write faults surface as task
        #: OSErrors (retried), shuffle.fetch mangles exercise the crc path.
        self._chaos = chaos
        #: Optional TelemetryRegistry mirroring shuffle traffic as named
        #: whole-run counters (the context wires its own registry in).
        self._telemetry = telemetry
        #: Spark's spark.shuffle.compress: zlib over the serialized bucket.
        #: Off by default here because the gpf serializer already entropy-
        #: codes its payload; the ablation benches flip it per run.
        self._compress = compress
        self._lock = threading.Lock()
        self._shuffles: dict[int, ShuffleWriteInfo] = {}
        self._next_id = 0
        os.makedirs(spill_dir, exist_ok=True)

    # -- registration ----------------------------------------------------
    def register(self, num_map: int, num_reduce: int) -> int:
        """Allocate a shuffle id and its spill directory."""
        with self._lock:
            shuffle_id = self._next_id
            self._next_id += 1
            self._shuffles[shuffle_id] = ShuffleWriteInfo(
                shuffle_id, num_map, num_reduce
            )
        os.makedirs(self._shuffle_dir(shuffle_id), exist_ok=True)
        return shuffle_id

    def info(self, shuffle_id: int) -> ShuffleWriteInfo:
        with self._lock:
            return self._shuffles[shuffle_id]

    def is_complete(self, shuffle_id: int) -> bool:
        with self._lock:
            return (
                shuffle_id in self._shuffles and self._shuffles[shuffle_id].complete
            )

    def mark_map_done(
        self, shuffle_id: int, map_partition: int, bytes_written: int = 0
    ) -> None:
        """Record one map partition as written.

        ``write`` does this implicitly for spills through this manager;
        the cluster transport calls it for map outputs that landed in the
        distributed store so the completeness ledger stays authoritative
        no matter where the bytes live.
        """
        with self._lock:
            info = self._shuffles[shuffle_id]
            info.map_done.add(map_partition)
            info.bytes_written += bytes_written

    # -- map side ----------------------------------------------------------
    def write(
        self,
        shuffle_id: int,
        map_partition: int,
        elements: Sequence[tuple],
        partition_func: Callable[[object], int],
        serializer: Serializer,
        task: TaskMetrics,
    ) -> None:
        """Bucket key-value pairs and spill each bucket to disk."""
        with self._lock:
            info = self._shuffles[shuffle_id]
            num_reduce = info.num_reduce_partitions
        buckets: list[list] = [[] for _ in range(num_reduce)]
        records = 0
        for kv in elements:
            buckets[partition_func(kv[0])].append(kv)
            records += 1
        total = 0
        for reduce_partition, bucket in enumerate(buckets):
            # Spill the compressed block form (crc32-framed v2 bundle):
            # spill I/O shrinks by the codec's compression ratio and a
            # torn file is detected on read instead of feeding garbage.
            body, _ = encode_partition(bucket, serializer)
            blob = frame_block(body)
            if self._compress:
                blob = b"z" + zlib.compress(blob, 1)
            else:
                blob = b"r" + blob
            total += len(blob)
            path = self._block_path(shuffle_id, map_partition, reduce_partition)
            if self._chaos is not None:
                # An injected ENOSPC/EIO here kills the map attempt; the
                # scheduler retries it and the rewrite overwrites any
                # partial spill file from the failed attempt.
                self._chaos.hit(
                    "shuffle.write", shuffle=shuffle_id, map=map_partition
                )
            with timed(task, "disk_blocked"):
                with open(path, "wb") as fh:
                    fh.write(blob)
        task.shuffle_bytes_written += total
        task.records_written += records
        if self._telemetry is not None:
            self._telemetry.inc("shuffle.bytes_written", total)
            self._telemetry.inc("shuffle.records_written", records)
        with self._lock:
            info.bytes_written += total
            info.map_done.add(map_partition)

    # -- reduce side --------------------------------------------------------
    def read(
        self,
        shuffle_id: int,
        reduce_partition: int,
        serializer: Serializer,
        task: TaskMetrics,
    ) -> PartitionChain:
        """Read every map output's bucket for this reduce partition.

        Returns a re-iterable :class:`PartitionChain` over the fetched
        blocks in compressed form — the reduce task decodes lazily and
        never holds the whole fetched input as one record list.
        """
        with self._lock:
            info = self._shuffles[shuffle_id]
            num_map = info.num_map_partitions
            map_done = set(info.map_done)
        if len(map_done) != num_map:
            missing = set(range(num_map)) - map_done
            raise RuntimeError(
                f"shuffle {shuffle_id} map side incomplete; missing maps {sorted(missing)}"
            )
        parts: list = []
        total = 0
        for map_partition in range(num_map):
            path = self._block_path(shuffle_id, map_partition, reduce_partition)
            with timed(task, "disk_blocked"):
                with open(path, "rb") as fh:
                    blob = fh.read()
            if self._chaos is not None:
                # Fetch faults: a hit raises (connection-reset-class
                # failure), a mangle damages only this in-memory copy —
                # the crc check below fails the attempt, and the retry
                # re-reads the intact spill file.
                self._chaos.hit(
                    "shuffle.fetch", shuffle=shuffle_id, map=map_partition
                )
                blob = self._chaos.mangle(
                    "shuffle.fetch", blob, shuffle=shuffle_id, map=map_partition
                )
            total += len(blob)
            tag, body = blob[:1], blob[1:]
            if tag == b"z":
                body = zlib.decompress(body)
            # crc check catches torn/corrupt spill files before decode.
            part = decode_partition(unframe_block(body), serializer)
            if part:
                parts.append(part)
        chain = PartitionChain(parts)
        records = len(chain)  # from block headers — no decode needed
        task.shuffle_bytes_read += total
        task.records_read += records
        if self._telemetry is not None:
            self._telemetry.inc("shuffle.bytes_read", total)
            self._telemetry.inc("shuffle.records_read", records)
        if self._network_bandwidth and num_map > 1:
            remote_fraction = (num_map - 1) / num_map
            task.network_blocked += total * remote_fraction / self._network_bandwidth
        return chain

    # -- cleanup ---------------------------------------------------------
    def total_bytes_written(self) -> int:
        with self._lock:
            return sum(s.bytes_written for s in self._shuffles.values())

    def cleanup(self) -> None:
        """Delete every spill file and reset shuffle state."""
        shutil.rmtree(self._spill_dir, ignore_errors=True)
        os.makedirs(self._spill_dir, exist_ok=True)
        with self._lock:
            self._shuffles.clear()

    # -- paths --------------------------------------------------------------
    def _shuffle_dir(self, shuffle_id: int) -> str:
        return os.path.join(self._spill_dir, f"shuffle_{shuffle_id}")

    def _block_path(self, shuffle_id: int, map_p: int, reduce_p: int) -> str:
        return os.path.join(self._shuffle_dir(shuffle_id), f"{map_p}_{reduce_p}.bin")

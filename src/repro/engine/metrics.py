"""Per-task, per-stage and per-job metrics.

This is the instrumentation behind three of the paper's results:

- **Table 4** (redundancy elimination): stage counts, shuffle bytes,
  shuffle time, core-hours, GC time.
- **Figure 12** (blocked-time analysis, after Ousterhout et al. NSDI'15):
  per-task time blocked on disk and network, from which
  ``repro.cluster.blocked_time`` computes the best-case job-completion-time
  improvement if disk/network were infinitely fast.
- **Figure 13** (resource utilization): CPU vs I/O fractions per phase.

GC time is *measured*, not estimated: a ``gc.callbacks`` hook times real
collector pauses attributable to the running task.
"""

from __future__ import annotations

import gc
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TaskMetrics:
    """Wall-clock accounting for one task attempt."""

    stage_id: int = -1
    partition: int = -1
    attempt: int = 0  # retry attempt index (0 = first try)
    run_time: float = 0.0  # total task wall time
    cpu_time: float = 0.0  # run_time minus blocked time
    disk_blocked: float = 0.0  # time in shuffle spill read/write
    network_blocked: float = 0.0  # modelled fabric transfer time
    gc_time: float = 0.0  # real collector pauses during the task
    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0
    records_read: int = 0
    records_written: int = 0
    worker: str = ""  # cluster worker id; empty for local transports

    def finalize(self) -> None:
        self.cpu_time = max(
            0.0, self.run_time - self.disk_blocked - self.network_blocked
        )


@dataclass
class StageMetrics:
    stage_id: int
    name: str = ""
    tasks: list[TaskMetrics] = field(default_factory=list)

    @property
    def run_time(self) -> float:
        return sum(t.run_time for t in self.tasks)

    @property
    def shuffle_bytes_written(self) -> int:
        return sum(t.shuffle_bytes_written for t in self.tasks)

    @property
    def shuffle_bytes_read(self) -> int:
        return sum(t.shuffle_bytes_read for t in self.tasks)

    @property
    def disk_blocked(self) -> float:
        return sum(t.disk_blocked for t in self.tasks)

    @property
    def network_blocked(self) -> float:
        return sum(t.network_blocked for t in self.tasks)

    @property
    def gc_time(self) -> float:
        return sum(t.gc_time for t in self.tasks)


@dataclass
class JobMetrics:
    """Aggregated view of every stage that ran under one context."""

    stages: list[StageMetrics] = field(default_factory=list)

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def core_seconds(self) -> float:
        """Sum of task run times — Spark's "core-hour" in seconds."""
        return sum(s.run_time for s in self.stages)

    @property
    def shuffle_bytes(self) -> int:
        return sum(s.shuffle_bytes_written for s in self.stages)

    @property
    def shuffle_time(self) -> float:
        return sum(s.disk_blocked + s.network_blocked for s in self.stages)

    @property
    def gc_time(self) -> float:
        return sum(s.gc_time for s in self.stages)

    def blocked_fractions(self) -> tuple[float, float]:
        """(disk, network) blocked time as fractions of total task time."""
        total = self.core_seconds
        if total == 0:
            return (0.0, 0.0)
        disk = sum(s.disk_blocked for s in self.stages)
        net = sum(s.network_blocked for s in self.stages)
        return (disk / total, net / total)


@dataclass(frozen=True)
class TaskFailure:
    """One failed task attempt, as recorded by the scheduler's retry loop."""

    stage_kind: str  # "result" | "shuffle-map"
    partition: int
    attempt: int
    error_type: str  # exception class name, e.g. "TaskTimeoutError"
    message: str
    #: backoff delay (seconds) applied before the next attempt; 0 when the
    #: attempt was the last one.
    backoff: float = 0.0


class MetricsRegistry:
    """Collects stage metrics for one context; thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[int, StageMetrics] = {}
        self._next_stage_id = 0
        self._failures: list[TaskFailure] = []
        self._executor_events: dict[str, int] = {}

    def new_stage(self, name: str = "") -> StageMetrics:
        with self._lock:
            stage = StageMetrics(stage_id=self._next_stage_id, name=name)
            self._stages[stage.stage_id] = stage
            self._next_stage_id += 1
            return stage

    def add_task(self, stage: StageMetrics, task: TaskMetrics) -> None:
        task.stage_id = stage.stage_id
        with self._lock:
            stage.tasks.append(task)

    def job(self) -> JobMetrics:
        with self._lock:
            return JobMetrics(stages=[self._stages[i] for i in sorted(self._stages)])

    # -- failure ledger -----------------------------------------------------
    def record_failure(
        self,
        stage_kind: str,
        partition: int,
        attempt: int,
        error: BaseException,
        backoff: float = 0.0,
    ) -> None:
        """Ledger one failed task attempt (successful retries still leave
        their failures visible here — Spark's failed-task accounting)."""
        with self._lock:
            self._failures.append(
                TaskFailure(
                    stage_kind=stage_kind,
                    partition=partition,
                    attempt=attempt,
                    error_type=type(error).__name__,
                    message=str(error),
                    backoff=backoff,
                )
            )

    @property
    def failures(self) -> list[TaskFailure]:
        with self._lock:
            return list(self._failures)

    def failure_counts(self) -> dict[tuple[str, int], int]:
        """Failed attempts per (stage_kind, partition) — the hot spots."""
        counts: dict[tuple[str, int], int] = {}
        for failure in self.failures:
            key = (failure.stage_kind, failure.partition)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- executor events ------------------------------------------------------
    def record_executor_event(self, kind: str) -> None:
        """Count executor-level incidents: timeouts, broken pools,
        slot blacklisting, thread fallbacks."""
        with self._lock:
            self._executor_events[kind] = self._executor_events.get(kind, 0) + 1

    @property
    def executor_events(self) -> dict[str, int]:
        with self._lock:
            return dict(self._executor_events)

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()
            self._next_stage_id = 0
            self._failures.clear()
            self._executor_events.clear()


class _GcTimer:
    """Accumulates real garbage-collector pause time per thread.

    The ``gc.callbacks`` hook is process-global, so installation is
    reference-counted: each live :class:`~repro.engine.context.GPFContext`
    holds one reference (``acquire`` in its constructor, ``release`` in
    ``stop()``), and the callback is removed when the last reference
    drops — a stopped context no longer leaves a global hook firing on
    every collection for the rest of the interpreter's life.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._installed = False
        self._refs = 0
        self._lock = threading.Lock()

    def _callback(self, phase: str, info: dict) -> None:
        now = time.perf_counter()
        state = getattr(self._local, "state", None)
        if state is None:
            return
        if phase == "start":
            state["start"] = now
        elif phase == "stop" and state.get("start") is not None:
            state["total"] += now - state.pop("start")

    @property
    def installed(self) -> bool:
        with self._lock:
            return self._installed

    def install(self) -> None:
        """Ensure the hook is present (idempotent; does not take a ref)."""
        with self._lock:
            self._install_locked()

    def _install_locked(self) -> None:
        if not self._installed:
            gc.callbacks.append(self._callback)
            self._installed = True

    def uninstall(self) -> None:
        """Remove the hook unconditionally and drop all references."""
        with self._lock:
            self._refs = 0
            self._uninstall_locked()

    def _uninstall_locked(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._callback)
            except ValueError:
                pass
            self._installed = False

    # -- reference counting (one ref per live context) ----------------------
    def acquire(self) -> None:
        with self._lock:
            self._refs += 1
            self._install_locked()

    def release(self) -> None:
        with self._lock:
            self._refs = max(0, self._refs - 1)
            if self._refs == 0:
                self._uninstall_locked()

    @contextmanager
    def installed_for(self) -> Iterator[None]:
        """Context-managed acquire/release pairing."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    @contextmanager
    def measure(self) -> Iterator[dict]:
        """Context manager yielding a dict whose 'total' is GC seconds."""
        self.install()
        state = {"total": 0.0, "start": None}
        self._local.state = state
        try:
            yield state
        finally:
            self._local.state = None


GC_TIMER = _GcTimer()


@contextmanager
def timed(task: TaskMetrics, attribute: str) -> Iterator[None]:
    """Add the elapsed time of the block to ``task.<attribute>``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        setattr(task, attribute, getattr(task, attribute) + time.perf_counter() - start)

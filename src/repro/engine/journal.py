"""Pipeline run journal: crash-resumable Process-level checkpointing.

The journal makes ``Pipeline.run(journal_dir=...)`` idempotent at Process
granularity.  After each Process finishes, every output Resource is
materialized to crc32-framed checkpoint files in the journal directory
and one JSON line describing them is appended (and fsynced) to
``journal.jsonl``.  Files are durably written *before* their journal
line, so a crash mid-checkpoint leaves no entry and the Process simply
re-executes on resume.

A later run with the same journal directory and the same *plan
signature* (a hash of the optimized Process graph) restores the journaled
outputs — RDDs come back as :class:`CheckpointFileRDD` sources with no
lineage to replay — and skips the finished Processes.  A journal written
by a different plan is discarded, never partially applied.

Layout::

    <journal_dir>/journal.jsonl           header + one line per Process
    <journal_dir>/data/<process>__<resource>__p<N>.ckpt   RDD partitions
    <journal_dir>/data/<process>__<resource>.val          plain values
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from typing import Sequence, TYPE_CHECKING

from repro.engine.blockmanager import read_block_file, write_block_file
from repro.engine.bundle import decode_partition, encode_partition
from repro.engine.metrics import TaskMetrics
from repro.engine.rdd import RDD

if TYPE_CHECKING:
    from repro.core.process import Process
    from repro.engine.context import GPFContext

JOURNAL_VERSION = 1


def plan_signature(processes: Sequence["Process"]) -> str:
    """Stable hash of the (optimized) plan structure.

    Covers Process class names, Process names, and input/output Resource
    names — enough to reject a journal written by a structurally different
    plan (the optimizer's fused names are deterministic, so optimization
    does not perturb the signature across runs).
    """
    digest = hashlib.blake2b(digest_size=16)
    for process in processes:
        entry = "|".join(
            [
                type(process).__name__,
                process.name,
                ",".join(r.name for r in process.inputs),
                ",".join(r.name for r in process.outputs),
            ]
        )
        digest.update(entry.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


class CheckpointFileRDD(RDD):
    """Source RDD over journaled checkpoint files — one file per partition.

    Has no lineage: a resumed pipeline reads finished Processes' outputs
    straight from these files instead of replaying upstream stages.
    Corruption is not survivable here (there is nothing to recompute
    from), but :meth:`RunJournal.restore` verifies every file before the
    RDD is handed to the plan, so a torn file downgrades to a re-executed
    Process rather than a mid-run crash.
    """

    def __init__(self, ctx: "GPFContext", paths: Sequence[str]):
        super().__init__(ctx, len(paths), name="checkpoint-file")
        self._paths = list(paths)

    def compute(self, split: int, task: TaskMetrics) -> list:
        # Checkpoints are stored as v2 compressed bundles; hand back the
        # lazy view so a restored partition stays compressed until pulled.
        return decode_partition(
            read_block_file(self._paths[split]),
            self.ctx.serializer,
            telemetry=self.ctx.telemetry,
            batch_size=self.ctx.config.decode_batch_size,
        )


def _safe_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


def job_journal_dir(base_dir: str, job_id: str) -> str:
    """Per-job journal namespace: ``<base_dir>/<job_id>/``.

    The plan signature hashes the *structure* of a plan, not its inputs,
    so two jobs running the same pipeline over different samples collide
    on it.  Anything that shares one journal root across jobs (the serve
    worker pool, ``gpf run --job-id``) must namespace by job id or one
    job would happily restore another's checkpoints.  Job ids that
    sanitize to the same filesystem name get a hash suffix so they can
    never alias either.
    """
    if not job_id:
        raise ValueError("job_id must be non-empty")
    safe = _safe_name(job_id)
    if safe != job_id:
        tag = hashlib.blake2b(job_id.encode("utf-8"), digest_size=4).hexdigest()
        safe = f"{safe}-{tag}"
    path = os.path.join(base_dir, safe)
    os.makedirs(path, exist_ok=True)
    return path


class RunJournal:
    """Append-only JSONL journal of completed Processes for one plan."""

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(directory, "journal.jsonl")
        self.data_dir = os.path.join(directory, "data")
        os.makedirs(self.data_dir, exist_ok=True)
        self._entries: dict[str, dict] = {}
        #: True when an existing journal was discarded (plan changed).
        self.discarded_stale = False

    # -- lifecycle ---------------------------------------------------------
    def open(self, plan_sig: str) -> None:
        """Load entries for this plan; discard a stale journal."""
        self._entries = {}
        lines: list[dict] = []
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        lines.append(json.loads(raw))
                    except json.JSONDecodeError:
                        # A torn trailing line is the expected crash
                        # artifact; everything before it is intact.
                        break
        header_ok = (
            bool(lines)
            and lines[0].get("kind") == "header"
            and lines[0].get("plan") == plan_sig
            and lines[0].get("version") == JOURNAL_VERSION
        )
        if header_ok:
            for line in lines[1:]:
                if line.get("kind") == "process":
                    self._entries[line["process"]] = line
            return
        if lines:
            self.discarded_stale = True
        self._write_header(plan_sig)

    def _write_header(self, plan_sig: str) -> None:
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {"kind": "header", "version": JOURNAL_VERSION, "plan": plan_sig}
                )
            )
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())

    @property
    def completed(self) -> set[str]:
        return set(self._entries)

    # -- record ------------------------------------------------------------
    def record(self, process: "Process", ctx: "GPFContext") -> None:
        """Checkpoint every output of a just-finished Process.

        All files are written (atomically, fsynced) before the journal
        line is appended: the line is the commit point.
        """
        chaos = getattr(ctx, "chaos", None)
        outputs: list[dict] = []
        for resource in process.outputs:
            value = resource.value
            spec: dict = {"name": resource.name}
            stem = f"{_safe_name(process.name)}__{_safe_name(resource.name)}"
            if isinstance(value, RDD):
                paths = []
                for split, part in enumerate(ctx.run_job(value)):
                    path = os.path.join(self.data_dir, f"{stem}__p{split}.ckpt")
                    body, _ = encode_partition(part, ctx.serializer)
                    write_block_file(path, body, chaos, site="journal.data.write")
                    paths.append(path)
                spec["type"] = "rdd"
                spec["paths"] = paths
            else:
                path = os.path.join(self.data_dir, f"{stem}.val")
                write_block_file(
                    path,
                    pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
                    chaos,
                    site="journal.data.write",
                )
                spec["type"] = "value"
                spec["path"] = path
            # Bundles carry format metadata (SAM/VCF headers) the Process
            # mutated; persist it or the resumed run would see stale headers.
            header = getattr(resource, "header", None)
            if header is not None:
                spec["header"] = pickle.dumps(
                    header, protocol=pickle.HIGHEST_PROTOCOL
                ).hex()
            outputs.append(spec)
        entry = {"kind": "process", "process": process.name, "outputs": outputs}
        if chaos is not None:
            # The append is the commit point; an injected ENOSPC/EIO here
            # surfaces as an OSError the pipeline degrades on (journal-less
            # execution) rather than a torn journal.
            chaos.hit("journal.append", process=process.name)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._entries[process.name] = entry
        ctx.telemetry.inc("journal.recorded")
        ctx.events.publish("journal.record", process=process.name)

    # -- restore -----------------------------------------------------------
    def restore(self, process: "Process", ctx: "GPFContext") -> bool:
        """Re-define a journaled Process's outputs; True when skipped.

        Every checkpoint file is crc32-verified *before* any Resource is
        touched, so a corrupt or missing file leaves the plan untouched
        and the Process re-executes normally.
        """
        entry = self._entries.get(process.name)
        if entry is None:
            return False
        specs = entry["outputs"]
        by_name = {r.name: r for r in process.outputs}
        if set(s["name"] for s in specs) != set(by_name):
            return False
        chaos = getattr(ctx, "chaos", None)
        restored: list[tuple] = []
        try:
            for spec in specs:
                if spec["type"] == "rdd":
                    blobs = [
                        read_block_file(p, chaos, site="journal.data.read")
                        for p in spec["paths"]
                    ]
                    # Deserialize eagerly too: a blob that passes crc32 but
                    # does not decode must also downgrade to re-execution.
                    # Draining the lazy view walks every record; legacy v1
                    # blobs come back as plain lists and verify the same way.
                    for blob in blobs:
                        for _ in decode_partition(blob, ctx.serializer):
                            pass
                    value: object = CheckpointFileRDD(ctx, spec["paths"])
                else:
                    value = pickle.loads(
                        read_block_file(spec["path"], chaos, site="journal.data.read")
                    )
                header = (
                    pickle.loads(bytes.fromhex(spec["header"]))
                    if "header" in spec
                    else None
                )
                restored.append((by_name[spec["name"]], value, header))
        except Exception:  # noqa: BLE001 - any decode failure => re-execute
            return False
        for resource, value, header in restored:
            if resource.is_defined:
                resource.undefine()
            resource.define(value)
            if header is not None:
                resource.header = header
        process.restore_outputs()
        ctx.telemetry.inc("journal.restored")
        ctx.events.publish("journal.restore", process=process.name)
        return True

"""Stage-cutting DAG scheduler with task retry.

Walks an action RDD's lineage, finds every unsatisfied
:class:`ShuffleDependency` (the wide edges), topologically orders the map
stages those imply, runs each map stage's tasks on the executor, then runs
the result stage.  This mirrors Spark's DAGScheduler: narrow chains fuse
into one stage; every shuffle adds exactly one extra stage — which is what
makes the paper's "38 stages vs 22 stages" redundancy-elimination
comparison (Table 4) measurable here.

Tasks that raise are retried up to ``EngineConfig.max_task_attempts``
times (Spark's ``spark.task.maxFailures``); a retry recomputes the
partition from lineage — the RDD resilience property — and registered
fault injectors (``repro.engine.faults``) can kill attempts to prove it.

Retries are hardened three ways (Spark's speculation/blacklisting,
scaled down):

- **Deadlines** — with ``EngineConfig.task_timeout`` set, each attempt
  runs under a watchdog; a hung attempt is abandoned with
  :class:`~repro.engine.faults.TaskTimeoutError` and retried.
- **Backoff** — failed attempts sleep ``retry_backoff * 2**attempt``
  (capped, plus deterministic jitter) before retrying, so a transiently
  overloaded resource is not hammered.
- **Ledger + blacklisting** — every failed attempt is recorded in the
  metrics failure ledger keyed by ``(stage_kind, partition)``; repeated
  executor-level incidents (timeouts, broken process pools) blacklist
  the process pool, pinning subsequent batches to the thread fallback.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TYPE_CHECKING

from repro.engine.faults import TaskFailedError, TaskTimeoutError
from repro.engine.metrics import GC_TIMER, TaskMetrics

if TYPE_CHECKING:
    from repro.engine.context import GPFContext
    from repro.engine.rdd import RDD, ShuffleDependency


class DAGScheduler:
    def __init__(self, ctx: "GPFContext"):
        self.ctx = ctx

    # -- public ------------------------------------------------------------
    def run_job(self, rdd: "RDD", partitions: Sequence[int] | None = None) -> list[list]:
        """Materialize the given partitions of ``rdd`` (all by default)."""
        for dep in self._pending_shuffles(rdd):
            self._run_map_stage(dep)
        return self._run_result_stage(rdd, partitions)

    # -- planning ------------------------------------------------------------
    def _pending_shuffles(self, rdd: "RDD") -> list["ShuffleDependency"]:
        """Unwritten shuffle deps reachable from ``rdd``, parents first."""
        ordered: list[ShuffleDependency] = []
        seen_rdds: set[int] = set()

        def visit(node: "RDD") -> None:
            if node.id in seen_rdds:
                return
            seen_rdds.add(node.id)
            # If this node is persisted and fully cached we can stop: its
            # partitions will come from the cache, not from re-computation.
            if node._persisted and self.ctx._cache_complete(node):
                return
            for dep in node.shuffle_deps:
                visit(dep.parent)
                if dep.shuffle_id is None and dep not in ordered:
                    ordered.append(dep)
            for parent in node.parents:
                if parent not in [d.parent for d in node.shuffle_deps]:
                    visit(parent)

        visit(rdd)
        return ordered

    # -- task attempt wrapper --------------------------------------------------
    def _attempt_once(
        self,
        stage_kind: str,
        split: int,
        attempt: int,
        body: Callable[[TaskMetrics], object],
    ) -> tuple[TaskMetrics, object]:
        """One measured task attempt: injectors, body, GC accounting."""
        task = TaskMetrics(partition=split, attempt=attempt)
        start = time.perf_counter()
        with GC_TIMER.measure() as gc_state:
            for injector in self.ctx.fault_injectors:
                injector(stage_kind, split, attempt)
            value = body(task)
        task.gc_time = gc_state["total"]
        task.run_time = time.perf_counter() - start
        task.finalize()
        return task, value

    def _attempt_with_deadline(
        self,
        stage_kind: str,
        split: int,
        attempt: int,
        body: Callable[[TaskMetrics], object],
        timeout: float | None,
    ) -> tuple[TaskMetrics, object]:
        """Run one attempt under the watchdog.

        The attempt runs on a daemon thread joined with ``timeout``; a
        still-running attempt is abandoned (Python threads cannot be
        killed, but its writes are idempotent — shuffle/checkpoint files
        are written atomically) and :class:`TaskTimeoutError` is raised so
        the retry loop treats the hang like any other failure.  With no
        timeout configured the attempt runs inline at zero overhead.
        """
        if timeout is None:
            return self._attempt_once(stage_kind, split, attempt, body)
        outcome: list = []
        failure: list = []

        def run_attempt() -> None:
            try:
                outcome.append(self._attempt_once(stage_kind, split, attempt, body))
            except BaseException as exc:  # noqa: BLE001 - reraised below
                failure.append(exc)

        worker = threading.Thread(
            target=run_attempt,
            daemon=True,
            name=f"gpf-task-{stage_kind}-p{split}-a{attempt}",
        )
        worker.start()
        worker.join(timeout)
        if worker.is_alive():
            raise TaskTimeoutError(
                f"{stage_kind} partition {split} attempt {attempt}", timeout
            )
        if failure:
            raise failure[0]
        return outcome[0]

    def _backoff_delay(self, stage_kind: str, split: int, attempt: int) -> float:
        """Exponential backoff with deterministic jitter, capped."""
        base = self.ctx.config.retry_backoff
        if base <= 0:
            return 0.0
        cap = self.ctx.config.retry_backoff_max
        delay = min(base * (2**attempt), cap)
        # Jitter is seeded from the task identity (a string seed hashes
        # identically across interpreters) so reruns back off identically.
        jitter = random.Random(f"{stage_kind}:{split}:{attempt}").uniform(
            0.0, delay / 2
        )
        return min(delay + jitter, cap)

    def _run_with_retries(
        self,
        stage_kind: str,
        split: int,
        body: Callable[[TaskMetrics], object],
        record: Callable[[TaskMetrics], None],
    ) -> object:
        """Run one task body with fault injection + retry; returns its value."""
        max_attempts = max(1, self.ctx.config.max_task_attempts)
        timeout = self.ctx.config.task_timeout
        last_error: Exception | None = None
        for attempt in range(max_attempts):
            try:
                task, value = self._attempt_with_deadline(
                    stage_kind, split, attempt, body, timeout
                )
                record(task)
                return value
            except Exception as exc:  # noqa: BLE001 - retry semantics
                last_error = exc
                if isinstance(exc, (TaskTimeoutError, BrokenProcessPool)):
                    kind = (
                        "timeout"
                        if isinstance(exc, TaskTimeoutError)
                        else "broken_pool"
                    )
                    self.ctx.metrics.record_executor_event(kind)
                    if self.ctx.executor.note_slot_failure(kind):
                        self.ctx.metrics.record_executor_event("blacklisted")
                retries_left = max_attempts - attempt - 1
                delay = (
                    self._backoff_delay(stage_kind, split, attempt)
                    if retries_left
                    else 0.0
                )
                self.ctx.metrics.record_failure(
                    stage_kind, split, attempt, exc, backoff=delay
                )
                if delay:
                    time.sleep(delay)
        assert last_error is not None
        raise TaskFailedError(stage_kind, split, max_attempts, last_error) from last_error

    # -- execution ----------------------------------------------------------
    def _run_map_stage(self, dep: "ShuffleDependency") -> None:
        parent = dep.parent
        stage = self.ctx.metrics.new_stage(name=f"shuffle-map:{parent.name}")
        shuffle_id = self.ctx.shuffle_manager.register(
            parent.num_partitions, dep.partitioner.num_partitions
        )

        def make_task(split: int):
            def body(task: TaskMetrics) -> None:
                elements = parent.iterator(split, task)
                if dep.map_side_combine is not None:
                    elements = dep.map_side_combine(elements)
                self.ctx.shuffle_manager.write(
                    shuffle_id,
                    split,
                    elements,
                    dep.partitioner,
                    parent.serializer,
                    task,
                )

            def run() -> None:
                self._run_with_retries(
                    "shuffle-map",
                    split,
                    body,
                    lambda task: self.ctx.metrics.add_task(stage, task),
                )

            return run

        self.ctx.executor.run_all(
            [make_task(split) for split in range(parent.num_partitions)]
        )
        dep.shuffle_id = shuffle_id

    def _run_result_stage(
        self, rdd: "RDD", partitions: Sequence[int] | None
    ) -> list[list]:
        splits = list(partitions) if partitions is not None else list(
            range(rdd.num_partitions)
        )
        stage = self.ctx.metrics.new_stage(name=f"result:{rdd.name}")

        def make_task(split: int):
            def run() -> list:
                return self._run_with_retries(
                    "result",
                    split,
                    lambda task: rdd.iterator(split, task),
                    lambda task: self.ctx.metrics.add_task(stage, task),
                )

            return run

        return self.ctx.executor.run_all([make_task(split) for split in splits])

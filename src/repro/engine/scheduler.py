"""Stage-cutting DAG scheduler with task retry.

Walks an action RDD's lineage, finds every unsatisfied
:class:`ShuffleDependency` (the wide edges), topologically orders the map
stages those imply, runs each map stage's tasks on the executor, then runs
the result stage.  This mirrors Spark's DAGScheduler: narrow chains fuse
into one stage; every shuffle adds exactly one extra stage — which is what
makes the paper's "38 stages vs 22 stages" redundancy-elimination
comparison (Table 4) measurable here.

Tasks that raise are retried up to ``EngineConfig.max_task_attempts``
times (Spark's ``spark.task.maxFailures``); a retry recomputes the
partition from lineage — the RDD resilience property — and registered
fault injectors (``repro.engine.faults``) can kill attempts to prove it.

Retries are hardened three ways (Spark's speculation/blacklisting,
scaled down):

- **Deadlines** — with ``EngineConfig.task_timeout`` set, each attempt
  runs under a watchdog; a hung attempt is abandoned with
  :class:`~repro.engine.faults.TaskTimeoutError` and retried.
- **Backoff** — failed attempts sleep ``retry_backoff * 2**attempt``
  (capped, plus deterministic jitter) before retrying, so a transiently
  overloaded resource is not hammered.
- **Ledger + blacklisting** — every failed attempt is recorded in the
  metrics failure ledger keyed by ``(stage_kind, partition)``; repeated
  executor-level incidents (timeouts, broken process pools) blacklist
  the process pool, pinning subsequent batches to the thread fallback.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TYPE_CHECKING

from repro.engine.faults import (
    RetryBudgetExhaustedError,
    ShuffleFetchFailedError,
    TaskFailedError,
    TaskTimeoutError,
    WorkerLostError,
)
from repro.engine.metrics import GC_TIMER, TaskMetrics

if TYPE_CHECKING:
    from repro.engine.context import GPFContext
    from repro.engine.rdd import RDD, ShuffleDependency


class _StageProgress:
    """Live progress publisher for one running stage.

    Publishes schema-validated ``progress.stage`` events as tasks
    complete: tasks done/total, bytes moved, and an ETA from an EWMA of
    completion *intervals* (wall time between successive completions on
    any executor slot — which already reflects parallelism, so
    ``ewma * remaining`` is the stage ETA, not a per-task sum).

    Payloads are computed under the lock; the publish happens outside it
    (sinks do I/O).  Consumers must tolerate out-of-order delivery —
    the serve layer's ``JobProgress`` keeps a monotonic guard.
    """

    _ALPHA = 0.3

    def __init__(self, events, stage_id: int, name: str, total: int):
        self._events = events
        self._lock = threading.Lock()
        self.stage_id = stage_id
        self.name = name
        self.total = total
        self._done = 0
        self._bytes = 0
        self._last = time.monotonic()
        self._ewma: float | None = None

    def _payload(self) -> dict:
        remaining = max(0, self.total - self._done)
        eta = self._ewma * remaining if self._ewma is not None else None
        return {
            "stage_id": self.stage_id,
            "name": self.name,
            "tasks_done": self._done,
            "tasks_total": self.total,
            "bytes": self._bytes,
            "eta_seconds": eta,
        }

    def start(self) -> None:
        with self._lock:
            payload = self._payload()
        self._events.publish("progress.stage", **payload)

    def task_done(self, task: TaskMetrics) -> None:
        with self._lock:
            now = time.monotonic()
            interval = now - self._last
            self._last = now
            self._done += 1
            self._bytes += task.shuffle_bytes_read + task.shuffle_bytes_written
            if self._ewma is None:
                self._ewma = interval
            else:
                self._ewma = (
                    self._ALPHA * interval + (1 - self._ALPHA) * self._ewma
                )
            payload = self._payload()
        self._events.publish("progress.stage", **payload)


class DAGScheduler:
    def __init__(self, ctx: "GPFContext"):
        self.ctx = ctx
        #: shuffle_id -> ShuffleDependency, kept after each map stage so
        #: lost map outputs can be regenerated from lineage on a
        #: shuffle-fetch failure (Spark's FetchFailed resubmission).
        self._map_specs: dict[int, "ShuffleDependency"] = {}

    # -- public ------------------------------------------------------------
    def run_job(self, rdd: "RDD", partitions: Sequence[int] | None = None) -> list[list]:
        """Materialize the given partitions of ``rdd`` (all by default)."""
        with self.ctx.tracer.span(f"job:{rdd.name}", kind="job", rdd_id=rdd.id):
            for dep in self._pending_shuffles(rdd):
                self._run_map_stage(dep)
            return self._run_result_stage(rdd, partitions)

    # -- planning ------------------------------------------------------------
    def _pending_shuffles(self, rdd: "RDD") -> list["ShuffleDependency"]:
        """Unwritten shuffle deps reachable from ``rdd``, parents first."""
        ordered: list[ShuffleDependency] = []
        seen_rdds: set[int] = set()

        def visit(node: "RDD") -> None:
            if node.id in seen_rdds:
                return
            seen_rdds.add(node.id)
            # If this node is persisted and fully cached we can stop: its
            # partitions will come from the cache, not from re-computation.
            if node._persisted and self.ctx._cache_complete(node):
                return
            for dep in node.shuffle_deps:
                visit(dep.parent)
                if dep.shuffle_id is None and dep not in ordered:
                    ordered.append(dep)
            for parent in node.parents:
                if parent not in [d.parent for d in node.shuffle_deps]:
                    visit(parent)

        visit(rdd)
        return ordered

    # -- task attempt wrapper --------------------------------------------------
    def _attempt_once(
        self,
        stage_kind: str,
        split: int,
        attempt: int,
        body: Callable[[TaskMetrics], object],
        parent_span=None,
    ) -> tuple[TaskMetrics, object]:
        """One measured task attempt: injectors, body, GC accounting.

        ``parent_span`` is the stage span: task bodies run on executor
        threads with no thread-local span ancestry, so nesting must be
        explicit here.
        """
        task = TaskMetrics(partition=split, attempt=attempt)
        start = time.perf_counter()
        with self.ctx.tracer.span(
            f"{stage_kind}-p{split}",
            kind="task",
            parent=parent_span,
            partition=split,
            attempt=attempt,
        ) as span:
            with GC_TIMER.measure() as gc_state:
                for injector in self.ctx.fault_injectors:
                    injector(stage_kind, split, attempt)
                # The transport seam: local transports run the body
                # inline and hand back the same TaskMetrics; the cluster
                # transport ships it and returns the worker-mutated copy.
                task, value = self.ctx.executor.execute(body, task)
            task.gc_time = gc_state["total"]
            task.run_time = time.perf_counter() - start
            task.finalize()
            span.set_attributes(
                run_time=task.run_time,
                gc_time=task.gc_time,
                shuffle_bytes_read=task.shuffle_bytes_read,
                shuffle_bytes_written=task.shuffle_bytes_written,
                records_read=task.records_read,
                records_written=task.records_written,
            )
            if task.worker:
                span.set_attributes(worker=task.worker)
        return task, value

    def _attempt_with_deadline(
        self,
        stage_kind: str,
        split: int,
        attempt: int,
        body: Callable[[TaskMetrics], object],
        timeout: float | None,
        parent_span=None,
    ) -> tuple[TaskMetrics, object]:
        """Run one attempt under the watchdog.

        The attempt runs on a daemon thread joined with ``timeout``; a
        still-running attempt is abandoned (Python threads cannot be
        killed, but its writes are idempotent — shuffle/checkpoint files
        are written atomically) and :class:`TaskTimeoutError` is raised so
        the retry loop treats the hang like any other failure.  With no
        timeout configured the attempt runs inline at zero overhead.
        """
        if timeout is None:
            return self._attempt_once(stage_kind, split, attempt, body, parent_span)
        outcome: list = []
        failure: list = []

        def run_attempt() -> None:
            try:
                outcome.append(
                    self._attempt_once(stage_kind, split, attempt, body, parent_span)
                )
            except BaseException as exc:  # noqa: BLE001 - reraised below
                failure.append(exc)

        worker = threading.Thread(
            target=run_attempt,
            daemon=True,
            name=f"gpf-task-{stage_kind}-p{split}-a{attempt}",
        )
        worker.start()
        worker.join(timeout)
        if worker.is_alive():
            raise TaskTimeoutError(
                f"{stage_kind} partition {split} attempt {attempt}", timeout
            )
        if failure:
            raise failure[0]
        return outcome[0]

    def _backoff_delay(self, stage_kind: str, split: int, attempt: int) -> float:
        """Exponential backoff with deterministic jitter, capped."""
        base = self.ctx.config.retry_backoff
        if base <= 0:
            return 0.0
        cap = self.ctx.config.retry_backoff_max
        delay = min(base * (2**attempt), cap)
        # Jitter is seeded from the task identity (a string seed hashes
        # identically across interpreters) so reruns back off identically.
        jitter = random.Random(f"{stage_kind}:{split}:{attempt}").uniform(
            0.0, delay / 2
        )
        return min(delay + jitter, cap)

    def _run_with_retries(
        self,
        stage_kind: str,
        split: int,
        body: Callable[[TaskMetrics], object],
        record: Callable[[TaskMetrics], None],
        parent_span=None,
        progress: "_StageProgress | None" = None,
    ) -> object:
        """Run one task body with fault injection + retry; returns its value."""
        max_attempts = max(1, self.ctx.config.max_task_attempts)
        timeout = self.ctx.config.task_timeout
        events = self.ctx.events
        last_error: Exception | None = None
        for attempt in range(max_attempts):
            try:
                task, value = self._attempt_with_deadline(
                    stage_kind, split, attempt, body, timeout, parent_span
                )
                record(task)
                self.ctx.telemetry.observe("task.seconds", task.run_time)
                if progress is not None:
                    progress.task_done(task)
                if events.active:
                    events.publish(
                        "task.end",
                        stage_id=task.stage_id,
                        stage_kind=stage_kind,
                        partition=task.partition,
                        attempt=task.attempt,
                        run_time=task.run_time,
                        cpu_time=task.cpu_time,
                        disk_blocked=task.disk_blocked,
                        network_blocked=task.network_blocked,
                        gc_time=task.gc_time,
                        shuffle_bytes_read=task.shuffle_bytes_read,
                        shuffle_bytes_written=task.shuffle_bytes_written,
                        records_read=task.records_read,
                        records_written=task.records_written,
                    )
                return value
            except RetryBudgetExhaustedError:
                # Raised below on a previous task of this job; a budget
                # breach is terminal for the whole run, never retried.
                raise
            except Exception as exc:  # noqa: BLE001 - retry semantics
                last_error = exc
                if isinstance(
                    exc, (TaskTimeoutError, BrokenProcessPool, WorkerLostError)
                ):
                    if isinstance(exc, TaskTimeoutError):
                        kind = "timeout"
                    elif isinstance(exc, WorkerLostError):
                        kind = "worker_lost"
                    else:
                        kind = "broken_pool"
                    self.ctx.metrics.record_executor_event(kind)
                    events.publish("executor.incident", incident=kind)
                    if self.ctx.executor.note_slot_failure(kind):
                        self.ctx.metrics.record_executor_event("blacklisted")
                        events.publish("executor.incident", incident="blacklisted")
                if isinstance(exc, ShuffleFetchFailedError):
                    # FetchFailed semantics: retrying the reduce against
                    # a dead peer can never succeed — regenerate the lost
                    # map outputs from lineage first, then retry.
                    try:
                        self._recover_shuffle(exc)
                    except Exception:  # noqa: BLE001 - retry surfaces it
                        pass
                retries_left = max_attempts - attempt - 1
                delay = (
                    self._backoff_delay(stage_kind, split, attempt)
                    if retries_left
                    else 0.0
                )
                self.ctx.metrics.record_failure(
                    stage_kind, split, attempt, exc, backoff=delay
                )
                events.publish(
                    "task.failure",
                    stage_kind=stage_kind,
                    partition=split,
                    attempt=attempt,
                    error_type=type(exc).__name__,
                    message=str(exc)[:200],
                    backoff=delay,
                )
                # Consolidated per-job retry budget: total failed
                # attempts across the run, not per task.  A systemic
                # fault fails the job promptly instead of burning
                # max_task_attempts on every partition in turn.
                budget = self.ctx.config.retry_budget
                if budget is not None:
                    spent = len(self.ctx.metrics.failures)
                    if spent >= budget:
                        raise RetryBudgetExhaustedError(
                            budget, spent, exc
                        ) from exc
                if delay:
                    time.sleep(delay)
        assert last_error is not None
        raise TaskFailedError(stage_kind, split, max_attempts, last_error) from last_error

    # -- stage events ---------------------------------------------------------
    def _publish_stage_end(self, stage) -> None:
        events = self.ctx.events
        if not events.active:
            return
        events.publish(
            "stage.end",
            stage_id=stage.stage_id,
            name=stage.name,
            tasks=len(stage.tasks),
            run_time=stage.run_time,
            disk_blocked=stage.disk_blocked,
            network_blocked=stage.network_blocked,
            gc_time=stage.gc_time,
            shuffle_bytes_read=stage.shuffle_bytes_read,
            shuffle_bytes_written=stage.shuffle_bytes_written,
            records_read=sum(t.records_read for t in stage.tasks),
            records_written=sum(t.records_written for t in stage.tasks),
        )

    # -- execution ----------------------------------------------------------
    def _run_map_stage(self, dep: "ShuffleDependency") -> None:
        parent = dep.parent
        stage = self.ctx.metrics.new_stage(name=f"shuffle-map:{parent.name}")
        shuffle_id = self.ctx.shuffle_manager.register(
            parent.num_partitions, dep.partitioner.num_partitions
        )
        self.ctx.events.publish(
            "stage.start", stage_id=stage.stage_id, name=stage.name
        )
        progress = None
        if self.ctx.events.active:
            progress = _StageProgress(
                self.ctx.events, stage.stage_id, stage.name, parent.num_partitions
            )
            progress.start()

        def make_task(split: int, stage_span):
            def body(task: TaskMetrics) -> None:
                elements = parent.iterator(split, task)
                if dep.map_side_combine is not None:
                    elements = dep.map_side_combine(elements)
                self.ctx.shuffle_manager.write(
                    shuffle_id,
                    split,
                    elements,
                    dep.partitioner,
                    parent.serializer,
                    task,
                )

            def run() -> None:
                self._run_with_retries(
                    "shuffle-map",
                    split,
                    body,
                    lambda task: self.ctx.metrics.add_task(stage, task),
                    parent_span=stage_span,
                    progress=progress,
                )

            return run

        with self.ctx.tracer.span(
            stage.name, kind="stage", stage_id=stage.stage_id
        ) as stage_span:
            self.ctx.executor.run_all(
                [
                    make_task(split, stage_span)
                    for split in range(parent.num_partitions)
                ]
            )
        dep.shuffle_id = shuffle_id
        self._map_specs[shuffle_id] = dep
        self._publish_stage_end(stage)

    def _recover_shuffle(self, failure: ShuffleFetchFailedError) -> None:
        """Regenerate lost map outputs of one shuffle from lineage.

        Called between attempts of a reduce task that hit a fetch
        failure.  The transport reports which map partitions live on
        dead nodes; each is recomputed through ``executor.execute`` —
        landing on a surviving worker (or inline on the driver), whose
        write re-registers a fresh location that supersedes the dead
        one.  Failures here propagate to the *retrying* task's loop, so
        the retry budget still bounds total work.
        """
        dep = self._map_specs.get(failure.shuffle_id)
        if dep is None:
            return
        missing = set(self.ctx.executor.missing_map_outputs(failure.shuffle_id))
        if failure.map_partition >= 0:
            missing.add(failure.map_partition)
        if not missing:
            return
        self.ctx.events.publish(
            "executor.incident",
            incident="shuffle_recovery",
            shuffle_id=failure.shuffle_id,
            maps=len(missing),
        )
        parent = dep.parent
        for split in sorted(missing):

            def body(task: TaskMetrics, split: int = split) -> None:
                elements = parent.iterator(split, task)
                if dep.map_side_combine is not None:
                    elements = dep.map_side_combine(elements)
                self.ctx.shuffle_manager.write(
                    failure.shuffle_id,
                    split,
                    elements,
                    dep.partitioner,
                    parent.serializer,
                    task,
                )

            self.ctx.executor.execute(
                body, TaskMetrics(partition=split, attempt=0)
            )

    def _run_result_stage(
        self, rdd: "RDD", partitions: Sequence[int] | None
    ) -> list[list]:
        splits = list(partitions) if partitions is not None else list(
            range(rdd.num_partitions)
        )
        stage = self.ctx.metrics.new_stage(name=f"result:{rdd.name}")
        self.ctx.events.publish(
            "stage.start", stage_id=stage.stage_id, name=stage.name
        )
        progress = None
        if self.ctx.events.active:
            progress = _StageProgress(
                self.ctx.events, stage.stage_id, stage.name, len(splits)
            )
            progress.start()

        def make_task(split: int, stage_span):
            def run() -> list:
                return self._run_with_retries(
                    "result",
                    split,
                    lambda task: rdd.iterator(split, task),
                    lambda task: self.ctx.metrics.add_task(stage, task),
                    parent_span=stage_span,
                    progress=progress,
                )

            return run

        with self.ctx.tracer.span(
            stage.name, kind="stage", stage_id=stage.stage_id
        ) as stage_span:
            results = self.ctx.executor.run_all(
                [make_task(split, stage_span) for split in splits]
            )
        self._publish_stage_end(stage)
        return results

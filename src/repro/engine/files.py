"""Lazy file-backed RDDs: per-task byte-range reads.

``parallelize`` needs the whole dataset in driver memory; the paper's
500 GB FASTQ input obviously never fits.  These source RDDs split a file
into byte ranges at construction (one cheap scan for boundaries) and have
*each task* open the file and read only its own range — the engine
analogue of HDFS input splits.  File read time is charged to the task's
disk-blocked metric, so loading shows up in blocked-time analysis exactly
like the paper's "conversion of the FASTQ file to RDD format" phase.

- :class:`TextFileRDD` — generic line-oriented splits (boundaries snapped
  to newlines).
- :class:`FastqFileRDD` — FASTQ-aware splits (boundaries snapped to
  4-line record starts), yielding :class:`FastqRecord`.
- :func:`load_fastq_pair_lazy` — zip two mate files into FastqPairs with
  matching record splits.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.engine.metrics import TaskMetrics, timed
from repro.engine.rdd import RDD
from repro.formats.fastq import FastqPair, FastqRecord, pair_reads, parse_fastq
from repro.formats.quarantine import QuarantineSink, check_policy

if TYPE_CHECKING:
    from repro.engine.context import GPFContext


def _line_aligned_offsets(path: str, num_splits: int) -> list[tuple[int, int]]:
    """Byte ranges covering the file, boundaries snapped to line starts."""
    size = os.path.getsize(path)
    if size == 0:
        return [(0, 0)] * num_splits
    targets = [size * i // num_splits for i in range(1, num_splits)]
    boundaries = [0]
    with open(path, "rb") as fh:
        for target in targets:
            fh.seek(target)
            fh.readline()  # discard the partial line
            boundaries.append(min(fh.tell(), size))
    boundaries.append(size)
    return [(boundaries[i], boundaries[i + 1]) for i in range(num_splits)]


def _fastq_aligned_offsets(path: str, num_splits: int) -> list[tuple[int, int]]:
    """Byte ranges snapped to FASTQ record starts.

    A line starting with '@' is only a record start if the line two
    before it is a '+' separator or it is preceded by a record boundary —
    quality strings may also start with '@'.  We resolve this by walking
    whole 4-line records from each candidate and checking the '+' line.
    """
    size = os.path.getsize(path)
    if size == 0:
        return [(0, 0)] * num_splits
    targets = [size * i // num_splits for i in range(1, num_splits)]
    boundaries = [0]
    with open(path, "rb") as fh:
        for target in targets:
            fh.seek(target)
            fh.readline()  # partial line
            # Scan forward for a verified record start: an '@' line whose
            # third successor line starts with '+'.
            boundary = None
            for _ in range(8):  # at most two records of lookahead
                pos = fh.tell()
                line = fh.readline()
                if not line:
                    boundary = size
                    break
                if line.startswith(b"@"):
                    probe = fh.tell()
                    fh.readline()  # sequence
                    plus = fh.readline()
                    fh.seek(probe)
                    if plus.startswith(b"+"):
                        boundary = pos
                        break
            boundaries.append(boundary if boundary is not None else size)
    boundaries.append(size)
    # Boundaries must be monotonic even for pathological splits.
    for i in range(1, len(boundaries)):
        boundaries[i] = max(boundaries[i], boundaries[i - 1])
    return [(boundaries[i], boundaries[i + 1]) for i in range(num_splits)]


def _read_range(path: str, start: int, end: int, task: TaskMetrics) -> str:
    with timed(task, "disk_blocked"):
        with open(path, "rb") as fh:
            fh.seek(start)
            return fh.read(end - start).decode("ascii")


class TextFileRDD(RDD):
    """Lines of a text file, read lazily per partition."""

    def __init__(self, ctx: "GPFContext", path: str, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        super().__init__(ctx, num_partitions, name=f"textfile:{os.path.basename(path)}")
        self._path = path
        self._ranges = _line_aligned_offsets(path, num_partitions)

    def compute(self, split: int, task: TaskMetrics) -> list:
        start, end = self._ranges[split]
        if end <= start:
            return []
        text = _read_range(self._path, start, end, task)
        lines = text.splitlines()
        task.records_read += len(lines)
        return lines


class FastqFileRDD(RDD):
    """FASTQ records of a file, read lazily per partition."""

    def __init__(
        self,
        ctx: "GPFContext",
        path: str,
        num_partitions: int,
        malformed: str = "fail",
    ):
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        check_policy(malformed)
        super().__init__(ctx, num_partitions, name=f"fastq:{os.path.basename(path)}")
        self._path = path
        self._malformed = malformed
        self._ranges = _fastq_aligned_offsets(path, num_partitions)

    def compute(self, split: int, task: TaskMetrics) -> list:
        start, end = self._ranges[split]
        if end <= start:
            return []
        text = _read_range(self._path, start, end, task)
        sink = _quarantine_sink(self.ctx, self._malformed)
        records = list(parse_fastq(text.splitlines(), self._malformed, sink))
        task.records_read += len(records)
        return records


class FastqPairFileRDD(RDD):
    """Paired-end FASTQ: mate files zipped lazily per partition.

    Both files must list mates in the same order (the standard _1/_2
    convention); splits are chosen on the *record index*, so partition i
    of both files holds the same fragments.
    """

    def __init__(
        self,
        ctx: "GPFContext",
        path1: str,
        path2: str,
        num_partitions: int,
        malformed: str = "fail",
    ):
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        check_policy(malformed)
        super().__init__(
            ctx, num_partitions, name=f"fastq-pair:{os.path.basename(path1)}"
        )
        self._path1 = path1
        self._path2 = path2
        self._malformed = malformed
        # Index-aligned splits need record counts; count records once per
        # file (a sequential scan, not a load).
        count1 = _count_fastq_records(path1, malformed)
        count2 = _count_fastq_records(path2, malformed)
        if count1 != count2:
            if malformed == "fail":
                raise ValueError(
                    f"paired FASTQ files disagree: {count1} vs {count2} records"
                )
            # Tolerant policies pair up to the shorter file; the unmatched
            # tail is quarantined record-by-record when its split is read.
            count1 = min(count1, count2)
        self._record_ranges = [
            (count1 * i // num_partitions, count1 * (i + 1) // num_partitions)
            for i in range(num_partitions)
        ]
        self._offsets1 = _record_offsets(path1, [r[0] for r in self._record_ranges])
        self._offsets2 = _record_offsets(path2, [r[0] for r in self._record_ranges])

    def compute(self, split: int, task: TaskMetrics) -> list:
        lo, hi = self._record_ranges[split]
        if hi <= lo:
            return []
        count = hi - lo
        sink = _quarantine_sink(self.ctx, self._malformed)
        reads1 = _read_records(
            self._path1, self._offsets1[split], count, task, self._malformed, sink
        )
        reads2 = _read_records(
            self._path2, self._offsets2[split], count, task, self._malformed, sink
        )
        if self._malformed == "fail":
            pairs = [FastqPair(r1, r2) for r1, r2 in zip(reads1, reads2)]
        else:
            pairs = list(pair_reads(reads1, reads2, self._malformed, sink))
        task.records_read += len(pairs)
        return pairs


def _quarantine_sink(ctx: "GPFContext", malformed: str) -> "QuarantineSink | None":
    return ctx.quarantine if malformed == "quarantine" else None


def _count_fastq_records(path: str, malformed: str = "fail") -> int:
    lines = 0
    with open(path, "rb") as fh:
        for _ in fh:
            lines += 1
    if lines % 4:
        if malformed == "fail":
            raise ValueError(
                f"{path}: FASTQ line count {lines} not a multiple of 4"
            )
        # Tolerant policies drop the trailing partial record; the parse
        # step quarantines its lines when the final split is read.
    return lines // 4


def _record_offsets(path: str, record_indices: list[int]) -> list[int]:
    """Byte offset of each requested record index (single forward scan)."""
    wanted = sorted(set(record_indices))
    offsets: dict[int, int] = {}
    record = 0
    position = 0
    with open(path, "rb") as fh:
        pending = [w for w in wanted]
        while pending and pending[0] == record:
            offsets[record] = position
            pending.pop(0)
        for line_number, line in enumerate(fh):
            position += len(line)
            if (line_number + 1) % 4 == 0:
                record += 1
                while pending and pending[0] == record:
                    offsets[record] = position
                    pending.pop(0)
    return [offsets.get(i, position) for i in record_indices]


def _read_records(
    path: str,
    offset: int,
    count: int,
    task: TaskMetrics,
    malformed: str = "fail",
    sink: "QuarantineSink | None" = None,
) -> list[FastqRecord]:
    lines: list[str] = []
    with timed(task, "disk_blocked"):
        with open(path, "rb") as fh:
            fh.seek(offset)
            for _ in range(count * 4):
                line = fh.readline()
                if not line:
                    break
                lines.append(line.decode("ascii"))
    return list(parse_fastq(lines, malformed, sink))


def load_fastq_pair_lazy(
    ctx: "GPFContext",
    path1: str,
    path2: str,
    num_partitions: int | None = None,
    malformed: str = "fail",
) -> FastqPairFileRDD:
    return FastqPairFileRDD(
        ctx,
        path1,
        path2,
        num_partitions or ctx.config.default_parallelism,
        malformed=malformed,
    )

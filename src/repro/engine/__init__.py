"""An in-memory dataflow engine: the reproduction's Spark substitute.

GPF's contributions live *above* the RDD API — its compression plugs in as
a serializer, its DAG optimizer rewrites Process graphs before any RDD
operation is submitted, and its dynamic partitioner is an ordinary
``partition_by``.  This package supplies that API surface with the same
cost structure as Spark:

- **Lazy RDDs** with narrow/wide dependencies; the scheduler cuts stages at
  shuffle boundaries exactly as Spark's DAGScheduler does.
- **Real shuffles**: map tasks hash-partition their output and *write it to
  spill files on disk*; reduce tasks read the files back.  Shuffled bytes,
  disk-blocked time, and (modelled) network-blocked time are recorded per
  task — the instrumentation behind the paper's blocked-time analysis
  (Fig. 12) and shuffle accounting (Table 4).
- **Pluggable serializers** (``pickle`` for Java-serialization,
  ``compact`` for Kryo, ``gpf`` for the paper's genomic codec) used for
  both caching (MEMORY_SER) and shuffle blocks.
- **Executor backends**: ``serial`` (deterministic, for tests) and
  ``threads`` (NumPy kernels release the GIL, so threads give genuine
  overlap on the vectorized stages).
- **Broadcast variables** for the reference genome and PartitionInfo.
"""

from repro.engine.context import GPFContext, EngineConfig
from repro.engine.rdd import RDD
from repro.engine.broadcast import Broadcast
from repro.engine.metrics import TaskMetrics, StageMetrics, JobMetrics, MetricsRegistry
from repro.engine.files import (
    TextFileRDD,
    FastqFileRDD,
    FastqPairFileRDD,
    load_fastq_pair_lazy,
)
from repro.engine.accumulators import Accumulator, counter
from repro.engine.faults import FaultPlan, RandomFaults, InjectedFault, TaskFailedError
from repro.engine.blockmanager import BlockManager
from repro.engine.serializers import (
    Serializer,
    PickleSerializer,
    CompactSerializer,
    GpfSerializer,
    get_serializer,
)

__all__ = [
    "GPFContext",
    "EngineConfig",
    "RDD",
    "Broadcast",
    "TaskMetrics",
    "StageMetrics",
    "JobMetrics",
    "MetricsRegistry",
    "Serializer",
    "PickleSerializer",
    "CompactSerializer",
    "GpfSerializer",
    "get_serializer",
    "TextFileRDD",
    "FastqFileRDD",
    "FastqPairFileRDD",
    "load_fastq_pair_lazy",
    "Accumulator",
    "counter",
    "FaultPlan",
    "RandomFaults",
    "InjectedFault",
    "TaskFailedError",
    "BlockManager",
]

"""Fault injection for resilience testing.

RDDs are *Resilient* Distributed Datasets: a lost task recomputes from
lineage.  The engine's scheduler retries failed tasks; this module
provides the controlled failure sources the resilience tests inject —
deterministic (fail attempt k of task p) and probabilistic (fail with
probability q, seeded).

Injectors are registered on the context and consulted by the scheduler
at task start; they see ``(stage_kind, partition, attempt)`` and raise
:class:`InjectedFault` to kill the attempt.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


class InjectedFault(RuntimeError):
    """Raised inside a task by a fault injector."""


@dataclass
class FaultPlan:
    """Deterministic plan: fail specific (partition, attempt) pairs."""

    #: set of (partition, attempt) attempts to kill; attempts count from 0.
    failures: set[tuple[int, int]] = field(default_factory=set)

    def __call__(self, stage_kind: str, partition: int, attempt: int) -> None:
        if (partition, attempt) in self.failures:
            raise InjectedFault(
                f"injected failure: {stage_kind} partition {partition} "
                f"attempt {attempt}"
            )


@dataclass
class RandomFaults:
    """Probabilistic injector: each attempt fails with probability ``rate``.

    Deterministic given the seed; thread-safe.
    """

    rate: float
    seed: int = 0
    max_failures: int | None = None

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self._injected = 0

    def __call__(self, stage_kind: str, partition: int, attempt: int) -> None:
        with self._lock:
            if self.max_failures is not None and self._injected >= self.max_failures:
                return
            if self._rng.random() < self.rate:
                self._injected += 1
                raise InjectedFault(
                    f"random failure: {stage_kind} partition {partition} "
                    f"attempt {attempt}"
                )

    @property
    def injected(self) -> int:
        return self._injected


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget."""

    def __init__(self, stage_kind: str, partition: int, attempts: int, cause: Exception):
        super().__init__(
            f"{stage_kind} task for partition {partition} failed after "
            f"{attempts} attempts: {cause}"
        )
        self.cause = cause

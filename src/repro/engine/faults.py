"""Fault injection for resilience testing.

RDDs are *Resilient* Distributed Datasets: a lost task recomputes from
lineage.  The engine's scheduler retries failed tasks; this module
provides the controlled failure sources the resilience tests inject —
deterministic (fail attempt k of task p) and probabilistic (fail with
probability q, seeded).

Injectors are registered on the context and consulted by the scheduler
at task start; they see ``(stage_kind, partition, attempt)`` and raise
:class:`InjectedFault` to kill the attempt.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


class InjectedFault(RuntimeError):
    """Raised inside a task by a fault injector.

    Kept picklable (single ``args`` message) so injected failures survive
    the round trip through the ``process`` executor backend.
    """

    def __init__(self, message: str = ""):
        super().__init__(message)


@dataclass
class FaultPlan:
    """Deterministic plan: fail specific (partition, attempt) pairs."""

    #: set of (partition, attempt) attempts to kill; attempts count from 0.
    failures: set[tuple[int, int]] = field(default_factory=set)

    def __call__(self, stage_kind: str, partition: int, attempt: int) -> None:
        if (partition, attempt) in self.failures:
            raise InjectedFault(
                f"injected failure: {stage_kind} partition {partition} "
                f"attempt {attempt}"
            )


@dataclass
class RandomFaults:
    """Probabilistic injector: each attempt fails with probability ``rate``.

    Deterministic given the seed; thread-safe.
    """

    rate: float
    seed: int = 0
    max_failures: int | None = None

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self._injected = 0

    def __call__(self, stage_kind: str, partition: int, attempt: int) -> None:
        with self._lock:
            if self.max_failures is not None and self._injected >= self.max_failures:
                return
            if self._rng.random() < self.rate:
                self._injected += 1
                raise InjectedFault(
                    f"random failure: {stage_kind} partition {partition} "
                    f"attempt {attempt}"
                )

    @property
    def injected(self) -> int:
        with self._lock:
            return self._injected

    # Locks do not pickle; drop the lock so the injector can ship to a
    # process-backend worker (each worker gets an independent lock).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget.

    The last underlying exception is both stored as :attr:`cause` and
    chained as ``__cause__`` so tracebacks show the real failure.
    """

    def __init__(self, stage_kind: str, partition: int, attempts: int, cause: Exception):
        super().__init__(
            f"{stage_kind} task for partition {partition} failed after "
            f"{attempts} attempts: {cause}"
        )
        self.stage_kind = stage_kind
        self.partition = partition
        self.attempts = attempts
        self.cause = cause
        self.__cause__ = cause

    def __reduce__(self):
        return (
            type(self),
            (self.stage_kind, self.partition, self.attempts, self.cause),
        )


class RetryBudgetExhaustedError(RuntimeError):
    """The run spent its consolidated retry budget.

    ``EngineConfig.retry_budget`` caps *total* failed attempts across a
    whole job (all stages, all partitions), so a systemic fault — a full
    disk, a dead dependency — fails the job promptly instead of grinding
    through ``max_task_attempts`` retries on every single task and
    wedging a service worker for minutes.
    """

    def __init__(self, budget: int, failures: int, cause: Exception | None = None):
        super().__init__(
            f"retry budget exhausted: {failures} failed attempts >= "
            f"budget of {budget}"
        )
        self.budget = budget
        self.failures = failures
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause

    def __reduce__(self):
        return (type(self), (self.budget, self.failures, self.cause))


class WorkerLostError(RuntimeError):
    """A cluster worker died (or vanished) while running a task attempt.

    Raised driver-side by the cluster transport when the task channel to
    a worker breaks or its heartbeats stop.  The scheduler treats it
    like a broken pool: the attempt is retried — on another worker, or
    inline on the driver when the fleet is empty — and the incident
    feeds the executor blacklist/telemetry machinery.
    """

    def __init__(self, worker: str, cause: Exception | None = None):
        super().__init__(
            f"worker {worker!r} lost mid-task"
            + (f": {cause}" if cause is not None else "")
        )
        self.worker = worker
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause

    def __reduce__(self):
        return (type(self), (self.worker, self.cause))


class ShuffleFetchFailedError(RuntimeError):
    """A reduce task could not fetch one map output block.

    Carries the (shuffle, map partition) identity so the scheduler can
    regenerate exactly the lost map outputs from lineage — Spark's
    FetchFailed semantics — instead of retrying a fetch that can never
    succeed against a dead worker.
    """

    def __init__(self, shuffle_id: int, map_partition: int, where: str = ""):
        super().__init__(
            f"shuffle {shuffle_id} map output {map_partition} unavailable"
            + (f" ({where})" if where else "")
        )
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition
        self.where = where

    def __reduce__(self):
        return (type(self), (self.shuffle_id, self.map_partition, self.where))


class TaskTimeoutError(RuntimeError):
    """A task attempt overran its deadline (``EngineConfig.task_timeout``)."""

    def __init__(self, where: str, timeout: float):
        super().__init__(f"task {where} exceeded its {timeout:.3f}s deadline")
        self.where = where
        self.timeout = timeout

    def __reduce__(self):
        return (type(self), (self.where, self.timeout))

"""GPFContext — the engine's SparkContext analogue.

Owns the executor, shuffle manager, serializer, block cache and metrics
registry.  One context per pipeline run; ``EngineConfig`` selects the
serializer (the paper's compression ablation) and the executor backend.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence, TypeVar

from contextlib import contextmanager

from repro.engine.accumulators import Accumulator, counter
from repro.engine.blockmanager import BlockManager
from repro.engine.bundle import decode_partition, encode_partition
from repro.engine.broadcast import Broadcast
from repro.engine.executors import make_executor
from repro.engine.metrics import GC_TIMER, MetricsRegistry
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.engine.scheduler import DAGScheduler
from repro.engine.serializers import get_serializer
from repro.engine.shuffle import ShuffleManager
from repro.formats.quarantine import QuarantineSink
from repro.obs import (
    EventBus,
    JsonlEventSink,
    NoopTracer,
    TelemetryRegistry,
    Tracer,
    write_chrome_trace,
)

T = TypeVar("T")


@contextmanager
def _timed_counter(telemetry: TelemetryRegistry, name: str):
    """Charge a block of work's wall time to one telemetry counter."""
    started = time.perf_counter()
    try:
        yield
    finally:
        telemetry.inc(name, time.perf_counter() - started)


@dataclass
class EngineConfig:
    """Tunable knobs of one engine instance."""

    #: Default partition count for ``parallelize`` when not specified.
    default_parallelism: int = 4
    #: 'serial' (deterministic), 'threads' (NumPy kernels release the
    #: GIL), or 'process' (spawn-safe pool for pure-Python stages; batches
    #: with unpicklable closures fall back to threads automatically).
    executor_backend: str = "serial"
    #: Workers for the 'threads' and 'process' backends.
    num_workers: int = 4
    #: 'pickle' (Java-serialization analogue), 'compact' (Kryo), 'gpf', or
    #: a constructed Serializer instance (e.g. GpfRefSerializer).
    serializer: object = "gpf"
    #: Directory for shuffle spill files; a temp dir when None.
    spill_dir: str | None = None
    #: Modelled fabric bandwidth (bytes/s) used to charge network-blocked
    #: time on shuffle reads; None disables the model.
    network_bandwidth: float | None = 1.25e9
    #: Task attempts before a stage fails (Spark's spark.task.maxFailures).
    max_task_attempts: int = 4
    #: Memory cap (bytes) for persisted partitions; least-recently-used
    #: blocks spill to disk beyond it (MEMORY_AND_DISK).  None = unbounded.
    cache_memory_limit: int | None = None
    #: Memory budget (bytes) for the *compressed-resident* block cache —
    #: partitions live in §4.1 codec form and this caps their compressed
    #: footprint, so the effective in-memory capacity is the budget times
    #: the compression ratio.  Takes precedence over ``cache_memory_limit``
    #: (the older alias) when both are set.  None = unbounded.
    memory_budget: int | None = None
    #: Records per chunk when lazily decoding a cached block; also the
    #: batch size fed to the batched kernels.
    decode_batch_size: int = 512
    #: zlib over shuffle blocks (Spark's spark.shuffle.compress).
    shuffle_compression: bool = False
    #: Per-attempt task deadline in seconds; a hung attempt is abandoned
    #: with :class:`~repro.engine.faults.TaskTimeoutError` and retried.
    #: None disables the watchdog entirely (zero overhead).
    task_timeout: float | None = None
    #: Base delay (seconds) of the exponential retry backoff; attempt k
    #: sleeps ~``retry_backoff * 2**k`` plus deterministic jitter.
    retry_backoff: float = 0.05
    #: Ceiling on a single backoff sleep.
    retry_backoff_max: float = 2.0
    #: Executor-level incidents (timeouts, broken pools) tolerated before
    #: the process pool is blacklisted and batches run on threads.
    blacklist_after: int = 3
    #: Directory for durable RDD checkpoints; defaults inside the spill dir.
    checkpoint_dir: str | None = None
    #: Sampling-profiler interval in seconds.  When set, the context runs
    #: a :class:`~repro.obs.SamplingProfiler` that attributes collapsed
    #: stacks to live spans, publishes ``profile.sample`` events, and
    #: writes ``<trace_dir>/profile.folded`` at flush.  Process-backend
    #: workers run their own child profiler and ship folded stacks home
    #: with the task results.  None (the default) = no sampler thread,
    #: zero overhead.
    profile_interval: float | None = None
    #: Trace output directory.  When set, the context runs a real
    #: :class:`~repro.obs.Tracer`, streams every event to
    #: ``<trace_dir>/events.jsonl``, and writes ``<trace_dir>/trace.json``
    #: (Chrome-trace/Perfetto) on ``stop()``.  None (the default) keeps
    #: the no-op tracer and an inert event bus: zero overhead.
    trace_dir: str | None = None
    #: Chaos configuration: a :class:`repro.chaos.ChaosPlan` (or an
    #: already-built injector).  When set, a seeded ChaosInjector is
    #: wired into the block manager, shuffle manager, journal, and the
    #: scheduler's task-attempt hook.  None = no injection, no overhead.
    chaos: object | None = None
    #: Listen address (``"HOST:PORT"``) of the cluster transport's fleet
    #: server; ``"127.0.0.1:0"`` (an ephemeral loopback port) when None.
    #: Only read by ``executor_backend="cluster"``.
    cluster_listen: str | None = None
    #: Workers the cluster transport waits for before shipping its first
    #: task; with zero registered after ``cluster_wait`` seconds, tasks
    #: run inline on the driver (counted as ``executor.fallbacks``).
    cluster_min_workers: int = 1
    #: Seconds to wait for the fleet (registration and slot acquisition).
    cluster_wait: float = 30.0
    #: Seconds without a heartbeat before a worker is declared lost.
    cluster_heartbeat_timeout: float = 10.0
    #: Consolidated per-job retry budget: total task failures tolerated
    #: across the whole run before the job fails with
    #: :class:`~repro.engine.faults.RetryBudgetExhaustedError`, so a
    #: retry storm can't wedge a worker re-attempting forever.  None
    #: leaves only the per-task ``max_task_attempts`` cap.
    retry_budget: int | None = None
    #: Extra key-value settings (reserved for experiments).
    extra: dict = field(default_factory=dict)


class GPFContext:
    """Entry point to the engine."""

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        serializer = self.config.serializer
        # EngineConfig.serializer accepts a registry name or an already
        # constructed Serializer instance (e.g. the reference-based codec,
        # which needs the Reference at construction time).
        self.serializer = (
            get_serializer(serializer) if isinstance(serializer, str) else serializer
        )
        # -- observability (repro.obs) ----------------------------------
        # Every context owns a telemetry registry and an event bus; both
        # are near-free when nothing subscribes.  A configured trace_dir
        # upgrades the tracer from no-op to collecting and attaches the
        # JSONL sink.
        self.telemetry = TelemetryRegistry()
        self.events = EventBus()
        self._event_sink: JsonlEventSink | None = None
        self._trace_dir: str | None = None
        self._started = time.time()  # gpf: wallclock-ok(run.start timestamp shown in reports)
        self._started_mono = time.monotonic()
        self.tracer: Tracer | NoopTracer = NoopTracer()
        if self.config.trace_dir:
            self._attach_trace(self.config.trace_dir)
        # Sampling profiler: the provider closure re-reads self.tracer on
        # every sample because begin_trace()/end_trace() swap the tracer
        # object per job segment.
        self.profiler = None
        if self.config.profile_interval is not None:
            from repro.obs import SamplingProfiler

            self.profiler = SamplingProfiler(
                interval=self.config.profile_interval,
                tracer_provider=lambda: self.tracer,
                events=self.events,
            )
            self.profiler.start()
        # -- chaos plane (repro.chaos) -----------------------------------
        # EngineConfig.chaos accepts a ChaosPlan (the usual case) or a
        # pre-built injector; the injector is threaded through every
        # subsystem that touches disk or runs tasks, and publishes each
        # injection as a chaos.inject event on this context's bus.
        chaos_cfg = self.config.chaos
        if chaos_cfg is None:
            self.chaos = None
        elif hasattr(chaos_cfg, "hit"):
            self.chaos = chaos_cfg
            if getattr(chaos_cfg, "events", None) is None:
                chaos_cfg.events = self.events
        else:
            from repro.chaos.injector import ChaosInjector

            self.chaos = ChaosInjector(chaos_cfg, events=self.events)
        self.executor = make_executor(
            self.config.executor_backend,
            self.config.num_workers,
            blacklist_after=self.config.blacklist_after,
            config=self.config,
        )
        self.executor.events = self.events
        self.executor.telemetry = self.telemetry
        if self.profiler is not None:
            # Process-pool batches run a worker-side profiler at the same
            # interval; folded child stacks come home with the results
            # and fold into the driver profile here.
            self.executor.profile_interval = self.config.profile_interval
            self.executor.profile_sink = self.profiler.merge_counts
        spill = self.config.spill_dir or tempfile.mkdtemp(prefix="gpf_spill_")
        os.makedirs(spill, exist_ok=True)
        self._owns_spill = self.config.spill_dir is None
        self._spill_dir = spill
        self.shuffle_manager = ShuffleManager(
            spill,
            network_bandwidth=self.config.network_bandwidth,
            compress=self.config.shuffle_compression,
            telemetry=self.telemetry,
            chaos=self.chaos,
        )
        self.metrics = MetricsRegistry()
        self._scheduler = DAGScheduler(self)
        self._lock = threading.Lock()
        self._next_rdd_id = 0
        # Persisted partitions live in the block manager as compressed
        # block bundles (MEMORY_SER with disk spill beyond the budget):
        # GPF persists RDDs in compressed serialized form (paper §4.2),
        # and the limit is enforced on *compressed* bytes so the
        # effective capacity grows by the compression ratio.
        budget = (
            self.config.memory_budget
            if self.config.memory_budget is not None
            else self.config.cache_memory_limit
        )
        self.block_manager = BlockManager(
            spill,
            memory_limit=budget,
            checkpoint_dir=self.config.checkpoint_dir,
            events=self.events,
            chaos=self.chaos,
        )
        self._rdd_partitions: dict[int, int] = {}
        self._closed = False
        #: Fault injectors consulted at every task attempt (chaos plane
        #: and resilience tests).
        self.fault_injectors: list = []
        if self.chaos is not None and callable(self.chaos):
            self.fault_injectors.append(self.chaos)
        #: Context-wide sink for malformed input records routed by the
        #: ``malformed="quarantine"`` loader policy.
        self.quarantine = QuarantineSink(events=self.events, chaos=self.chaos)
        # The gc.callbacks hook is refcounted per live context and removed
        # when the last context stops (no global callback left behind).
        GC_TIMER.acquire()
        # Bind the transport last: a remote transport hooks the shuffle
        # manager and opens its fleet listener here, and needs the block
        # manager and spill dir above to exist.
        self.executor.bind(self)
        self.events.publish(
            "run.start",
            backend=self.config.executor_backend,
            workers=self.config.num_workers,
            serializer=str(self.config.serializer),
        )

    # -- construction ---------------------------------------------------
    def parallelize(self, data: Sequence[T], num_partitions: int | None = None) -> RDD:
        return ParallelCollectionRDD(
            self, data, num_partitions or self.config.default_parallelism
        )

    def broadcast(self, value: T) -> Broadcast[T]:
        return Broadcast(value)

    def add_fault_injector(self, injector) -> None:
        """Register a callable (stage_kind, partition, attempt) -> None that
        may raise to kill a task attempt; used by resilience tests."""
        self.fault_injectors.append(injector)

    def accumulator(self, zero=0, op=None, name: str = "") -> Accumulator:
        """Create a write-only shared counter (Spark Accumulator)."""
        if op is None:
            return counter(name)
        return Accumulator(zero, op, name=name)

    # -- execution --------------------------------------------------------
    def run_job(self, rdd: RDD, partitions: Sequence[int] | None = None) -> list[list]:
        if self._closed:
            raise RuntimeError("context is closed")
        return self._scheduler.run_job(rdd, partitions)

    # -- cache ------------------------------------------------------------
    def _cache_get(self, rdd: RDD, split: int):
        """A lazily-decoded view of one cached partition (or None).

        The block stays compressed; the returned partition decodes in
        record batches as the task pulls from it.
        """
        blob = self.block_manager.get((rdd.id, split))
        if blob is None:
            return None
        return decode_partition(
            blob,
            self.serializer,
            telemetry=self.telemetry,
            batch_size=self.config.decode_batch_size,
        )

    def _cache_put(self, rdd: RDD, split: int, data: list) -> None:
        with _timed_counter(self.telemetry, "blockmanager.encode_seconds"):
            blob, bundle = encode_partition(data, self.serializer)
        self.block_manager.put(
            (rdd.id, split), blob, logical_bytes=bundle.logical_bytes
        )

    def _cache_evict(self, rdd: RDD) -> None:
        self.block_manager.evict_rdd(rdd.id)

    def _cache_complete(self, rdd: RDD) -> bool:
        return all(
            self.block_manager.contains((rdd.id, split))
            for split in range(rdd.num_partitions)
        )

    # -- checkpoints -------------------------------------------------------
    def _checkpoint_put(self, rdd: RDD, split: int, data: list) -> str:
        with _timed_counter(self.telemetry, "blockmanager.encode_seconds"):
            blob, _ = encode_partition(data, self.serializer)
        return self.block_manager.put_checkpoint((rdd.id, split), blob)

    def _checkpoint_get(self, rdd: RDD, split: int):
        blob = self.block_manager.get_checkpoint((rdd.id, split))
        if blob is None:
            return None
        # crc32 catches bit flips, but a crc-valid blob can still be
        # undecodable (bad codec tag, short v2 header): the lazy view
        # would surface those mid-task, far from the checkpoint store.
        # Verify by draining a throwaway decode and downgrade failures
        # to a recompute-and-rewrite — checkpoint reads are rare enough
        # (resume paths) that the extra decode pass is cheap insurance.
        try:
            part = decode_partition(
                blob,
                self.serializer,
                telemetry=self.telemetry,
                batch_size=self.config.decode_batch_size,
            )
            if hasattr(part, "batches"):
                for _ in part.batches():
                    pass
        except Exception:  # noqa: BLE001 - any decode failure => recompute
            self.block_manager.discard_checkpoint((rdd.id, split))
            return None
        return part

    def cached_bytes(self) -> int:
        """Total size of the serialized block cache (Table 3 measurements)."""
        return self.block_manager.total_bytes()

    # -- observability -----------------------------------------------------
    def _attach_trace(self, trace_dir: str) -> None:
        """Arm the collecting tracer and the JSONL event sink."""
        os.makedirs(trace_dir, exist_ok=True)
        self._trace_dir = trace_dir
        self.tracer = Tracer()
        self._event_sink = JsonlEventSink(os.path.join(trace_dir, "events.jsonl"))
        self.events.subscribe(self._event_sink)

    def begin_trace(self, trace_dir: str) -> None:
        """Start a fresh trace segment mid-life (context pooling hook).

        A resident service reuses one warm context across many jobs but
        wants per-job ``events.jsonl``/``trace.json`` files.  Any segment
        already open is flushed first; the new segment gets its own
        ``run.start`` so :meth:`~repro.obs.RunReport.from_events` works on
        each per-job log in isolation.
        """
        if self._closed:
            raise RuntimeError("context is closed")
        if self._event_sink is not None:
            self._flush_observability()
        if self.profiler is not None:
            # Per-job isolation: the new segment's profile must not carry
            # the previous job's samples.
            self.profiler.reset()
        self._attach_trace(trace_dir)
        self._started = time.time()  # gpf: wallclock-ok(run.start timestamp shown in reports)
        self._started_mono = time.monotonic()
        self.events.publish(
            "run.start",
            backend=self.config.executor_backend,
            workers=self.config.num_workers,
            serializer=str(self.config.serializer),
        )

    def end_trace(self) -> None:
        """Flush and close the current trace segment; back to no-op tracing."""
        self._flush_observability()
        self.tracer = NoopTracer()
        self._trace_dir = None

    def reset_for_reuse(self) -> None:
        """Clear per-run state, keep the heavy machinery warm (pooling hook).

        Drops every cached RDD partition, per-stage metrics, telemetry
        counters, and quarantined records — everything one job deposited —
        while the executor pool, shuffle manager, block manager, and GC
        hook stay up, which is the whole point of a resident service:
        the next job pays none of the start-up cost.
        """
        if self._closed:
            raise RuntimeError("context is closed")
        if self._event_sink is not None:
            self.end_trace()
        with self._lock:
            rdd_ids = list(self._rdd_partitions)
        for rdd_id in rdd_ids:
            self.block_manager.evict_rdd(rdd_id)
        # Scheduler and report always read these through the context
        # attribute, so swapping in fresh registries is safe mid-life.
        self.metrics = MetricsRegistry()
        self.telemetry.reset()
        self.quarantine = QuarantineSink(events=self.events, chaos=self.chaos)

    def telemetry_snapshot(self) -> dict:
        """Merged view of every subsystem's counters, non-mutating.

        Live-incremented counters (shuffle bytes, journal restores, cache
        statistics) come straight from the registry; subsystems that keep
        their own tallies (block manager, quarantine sink, failure ledger,
        executor events) are folded in read-only, so calling this twice
        never double-counts.
        """
        snapshot = self.telemetry.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        stats = self.block_manager.stats
        for name, value in (
            ("block.hits", stats.hits),
            ("block.misses", stats.misses),
            ("block.evictions", stats.evictions),
            ("block.disk_reads", stats.disk_reads),
            ("block.corrupt_reads", stats.corrupt_reads),
            ("block.spill_errors", stats.spill_errors),
            ("checkpoint.writes", stats.checkpoint_writes),
            ("checkpoint.reads", stats.checkpoint_reads),
        ):
            if value:
                counters[name] = counters.get(name, 0) + value
        gauges["block.memory_bytes"] = stats.memory_bytes
        gauges["block.disk_bytes"] = stats.disk_bytes
        # Compressed-resident gauges: what the cache holds compressed vs.
        # what those same blocks would occupy decoded, and their ratio.
        gauges["blockmanager.compressed_bytes"] = stats.memory_bytes
        gauges["blockmanager.logical_bytes"] = stats.logical_bytes
        if stats.memory_bytes:
            gauges["blockmanager.compression_ratio"] = (
                stats.logical_bytes / stats.memory_bytes
            )
        for kind, count in self.metrics.executor_events.items():
            counters[f"executor.{kind}"] = counters.get(f"executor.{kind}", 0) + count
        for kind, count in self.quarantine.counts.items():
            counters[f"quarantine.{kind}"] = (
                counters.get(f"quarantine.{kind}", 0) + count
            )
        failures = len(self.metrics.failures)
        if failures:
            counters["task.failures"] = counters.get("task.failures", 0) + failures
        if self.chaos is not None:
            injected = getattr(self.chaos, "injected", 0)
            if injected:
                counters["chaos.injected"] = (
                    counters.get("chaos.injected", 0) + injected
                )
        if self.profiler is not None:
            samples = self.profiler.samples
            if samples:
                counters["profiler.samples"] = (
                    counters.get("profiler.samples", 0) + samples
                )
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": snapshot["histograms"],
        }

    def _flush_observability(self) -> None:
        """Final telemetry event, Chrome-trace file, sink close (stop())."""
        if self._event_sink is None:
            return
        if self.profiler is not None:
            # Drain the pending sample delta into the event log first so
            # the folded profile replays fully from events.jsonl.
            self.profiler.flush()
        self.events.publish("telemetry", **self.telemetry_snapshot())
        # elapsed comes from the monotonic clock: an NTP step mid-run
        # must not produce a negative (or inflated) run duration.
        self.events.publish("run.end", elapsed=time.monotonic() - self._started_mono)
        if isinstance(self.tracer, Tracer) and self._trace_dir:
            write_chrome_trace(
                os.path.join(self._trace_dir, "trace.json"),
                self.tracer,
                self.profiler,
            )
            if self.profiler is not None:
                self.profiler.write_folded(
                    os.path.join(self._trace_dir, "profile.folded")
                )
        self.events.unsubscribe(self._event_sink)
        self._event_sink.close()
        self._event_sink = None

    # -- bookkeeping ---------------------------------------------------------
    def _register_rdd(self, rdd: RDD) -> int:
        with self._lock:
            rdd_id = self._next_rdd_id
            self._next_rdd_id += 1
            self._rdd_partitions[rdd_id] = rdd.num_partitions
            return rdd_id

    def stop(self) -> None:
        if not self._closed:
            self._flush_observability()
            if self.profiler is not None:
                self.profiler.stop()
            GC_TIMER.release()
            self.executor.shutdown()
            if self._owns_spill:
                self.shuffle_manager.cleanup()
                self.block_manager.cleanup()
                import shutil

                shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._closed = True

    def __enter__(self) -> "GPFContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

"""Accumulators: write-only shared counters (Spark's Accumulator).

Tasks add; only the driver reads.  Thread-safe, so the 'threads' executor
backend can update them concurrently.  Used by Processes for pipeline
statistics (reads aligned, duplicates marked, variants emitted) without
an extra collect round trip.
"""

from __future__ import annotations

import threading
from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A commutative, associative accumulator."""

    def __init__(self, zero: T, op: Callable[[T, T], T], name: str = ""):
        self._value = zero
        self._op = op
        self._lock = threading.Lock()
        self.name = name

    def add(self, amount: T) -> None:
        with self._lock:
            self._value = self._op(self._value, amount)

    def __iadd__(self, amount: T) -> "Accumulator[T]":
        self.add(amount)
        return self

    @property
    def value(self) -> T:
        with self._lock:
            return self._value

    def reset(self, zero: T) -> None:
        with self._lock:
            self._value = zero

    def __repr__(self) -> str:
        return f"<Accumulator {self.name!r} value={self.value!r}>"


def counter(name: str = "") -> Accumulator[int]:
    return Accumulator(0, lambda a, b: a + b, name=name)

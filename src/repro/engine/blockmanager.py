"""Block manager: the persisted-partition cache with a memory cap.

"Given the considerable volume of genomic dataset, it is usually not
sufficient to fit the data in the memory" (paper §4.1) — which is why
GPF persists RDDs in *serialized* form and why Spark's MEMORY_AND_DISK
level exists.  This block manager stores serialized partition blobs in
memory up to ``memory_limit`` bytes and evicts least-recently-used blocks
to spill files; reads transparently fall back to disk.  Eviction and
disk reads are counted so benches can show the memory/IO trade-off.

Every block that touches disk — spilled cache blocks and the durable
checkpoint store behind :meth:`repro.engine.rdd.RDD.checkpoint` — is
framed with a crc32 checksum.  A corrupt file is *detected*, counted in
:attr:`BlockStats.corrupt_reads`, and treated as a miss, so the engine
recomputes the partition from lineage instead of feeding garbage to the
next stage (or crashing the run).
"""

from __future__ import annotations

import os
import shutil
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

#: Magic prefix of every checksummed block file.
BLOCK_MAGIC = b"GPFB"


class BlockCorruptionError(RuntimeError):
    """A block file failed its crc32 verification."""


def frame_block(blob: bytes) -> bytes:
    """Wrap a blob in the on-disk frame: magic + crc32 + payload."""
    return BLOCK_MAGIC + zlib.crc32(blob).to_bytes(4, "big") + blob


def unframe_block(data: bytes, where: str = "") -> bytes:
    """Verify and strip the frame; raises :class:`BlockCorruptionError`."""
    if len(data) < 8 or data[:4] != BLOCK_MAGIC:
        raise BlockCorruptionError(f"not a GPF block file: {where or '<bytes>'}")
    expected = int.from_bytes(data[4:8], "big")
    blob = data[8:]
    actual = zlib.crc32(blob)
    if actual != expected:
        raise BlockCorruptionError(
            f"crc32 mismatch in {where or '<bytes>'}: "
            f"stored {expected:#010x}, computed {actual:#010x}"
        )
    return blob


def fsync_directory(path: str) -> None:
    """fsync a directory so a just-renamed entry survives a crash.

    POSIX only persists the rename itself once the *directory* is
    synced; fsyncing the file alone leaves a window where the entry
    vanishes on power loss.  Best-effort on platforms whose directory
    handles reject fsync.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_block_file(path: str, blob: bytes, chaos=None, site: str = "block.write") -> None:
    """Atomically and durably write a framed block file (tmp + fsync +
    rename + directory fsync).

    ``chaos`` is an optional :class:`repro.chaos.ChaosInjector`: the
    ``site`` hit models ENOSPC/EIO on open/write, ``site`` mangle rules
    model torn/short and bit-flipped writes (damaging the *framed*
    bytes, so the crc read path catches them), and ``site + ".fsync"``
    models fsync failure.
    """
    framed = frame_block(blob)
    if chaos is not None:
        chaos.hit(site, path=os.path.basename(path))
        framed = chaos.mangle(site, framed, path=os.path.basename(path))
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(framed)
        fh.flush()
        if chaos is not None:
            chaos.hit(site + ".fsync", path=os.path.basename(path))
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(os.path.dirname(path) or ".")


def read_block_file(path: str, chaos=None, site: str = "block.read") -> bytes:
    """Read and verify a framed block file.

    Chaos ``site`` rules model read-side faults: a hit raises EIO, a
    mangle flips bytes of the framed data *before* crc verification —
    exercising exactly the corruption-detection path real bit rot would.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if chaos is not None:
        chaos.hit(site, path=os.path.basename(path))
        data = chaos.mangle(site, data, path=os.path.basename(path))
    return unframe_block(data, where=path)


@dataclass
class BlockStats:
    memory_blocks: int = 0
    disk_blocks: int = 0
    memory_bytes: int = 0
    disk_bytes: int = 0
    evictions: int = 0
    disk_reads: int = 0
    hits: int = 0
    misses: int = 0
    #: Disk blocks (spill or checkpoint) that failed crc32 verification.
    corrupt_reads: int = 0
    #: Spill writes that failed (disk full / I/O error); the block is
    #: dropped instead — eager eviction, recompute-on-demand.
    spill_errors: int = 0
    #: Checkpoint partitions written/read back.
    checkpoint_writes: int = 0
    checkpoint_reads: int = 0
    #: Decoded (logical) size of the memory-resident blocks — what the
    #: same partitions would occupy as Python record lists.  Together
    #: with ``memory_bytes`` (the compressed resident size) this is the
    #: working-set-reduction gauge pair.
    logical_bytes: int = 0


class BlockManager:
    """LRU memory cache with disk spill for serialized partition blobs,
    plus a durable checksummed checkpoint store."""

    def __init__(
        self,
        spill_dir: str,
        memory_limit: int | None = None,
        checkpoint_dir: str | None = None,
        events=None,
        chaos=None,
    ):
        #: Optional EventBus: evictions and corruption detections are rare
        #: and diagnostic, so they are published as events (counters stay
        #: in BlockStats and are folded into the telemetry snapshot).
        self._events = events
        #: Optional ChaosInjector threaded into every disk touch.
        self._chaos = chaos
        self._dir = os.path.join(spill_dir, "blocks")
        os.makedirs(self._dir, exist_ok=True)
        # A caller-supplied checkpoint dir outlives the context (it backs
        # cross-run resume); only the defaulted in-spill dir is cleaned up.
        self._owns_ckpt = checkpoint_dir is None
        self._ckpt_dir = checkpoint_dir or os.path.join(spill_dir, "checkpoints")
        os.makedirs(self._ckpt_dir, exist_ok=True)
        self._limit = memory_limit
        self._lock = threading.Lock()
        #: key -> blob, most-recently-used last.
        self._memory: "OrderedDict[tuple[int, int], bytes]" = OrderedDict()
        self._memory_bytes = 0
        #: key -> decoded (logical) byte estimate, for the ratio gauges.
        self._logical: dict[tuple[int, int], int] = {}
        self._on_disk: set[tuple[int, int]] = set()
        #: Blocks chosen for eviction whose spill write is in flight.
        #: Reads serve these from memory; evict_rdd cancels them by
        #: removing the entry (the writer then discards its stale file).
        self._spilling: dict[tuple[int, int], bytes] = {}
        self.stats = BlockStats()

    # -- public ------------------------------------------------------------
    def put(
        self, key: tuple[int, int], blob: bytes, logical_bytes: int | None = None
    ) -> None:
        """Cache one serialized (compressed) partition blob.

        ``logical_bytes`` is the decoded-footprint estimate used by the
        memory-pressure gauges; the eviction limit itself is enforced on
        ``len(blob)`` — compressed bytes are what occupy RAM.
        """
        with self._lock:
            if key in self._memory:
                self._memory_bytes -= len(self._memory.pop(key))
            self._memory[key] = blob
            self._memory_bytes += len(blob)
            self._logical[key] = (
                logical_bytes if logical_bytes is not None else len(blob)
            )
            victims = self._select_victims()
            self._refresh_stats()
        # Spill writes happen *outside* the lock: a slow disk must not
        # stall every other cache operation (this mirrors the PR-4 fix
        # that moved the eviction publish out of the critical section).
        evicted: list[tuple[int, int]] = []
        degraded: list[tuple[tuple[int, int], str]] = []
        for vkey, vblob in victims:
            path = self._block_path(vkey)
            try:
                write_block_file(path, vblob, self._chaos, site="block.spill")
            except OSError as exc:
                # Disk full (or dying): degrade spill to eager eviction.
                # The block is dropped entirely — a later get() misses and
                # the partition recomputes from lineage, instead of the
                # whole run crashing on a cache write.
                with self._lock:
                    self._spilling.pop(vkey, None)
                    self.stats.spill_errors += 1
                    self._refresh_stats()
                degraded.append((vkey, f"{type(exc).__name__}: {exc}"))
                try:
                    os.unlink(path + ".tmp")
                except OSError:
                    pass
                continue
            with self._lock:
                cancelled = self._spilling.pop(vkey, None) is None
                if not cancelled:
                    self._on_disk.add(vkey)
                    self.stats.evictions += 1
                    evicted.append(vkey)
                    self._refresh_stats()
            if cancelled:
                # evict_rdd() cancelled this spill mid-write; the file
                # we just produced is already garbage.
                try:
                    os.unlink(path)
                except OSError:
                    pass
        if self._events is not None:
            for rdd_id, partition in evicted:
                self._events.publish("block.evict", rdd_id=rdd_id, partition=partition)
            for (rdd_id, partition), reason in degraded:
                self._events.publish(
                    "block.spill_degraded",
                    reason=reason,
                    rdd_id=rdd_id,
                    partition=partition,
                )

    def get(self, key: tuple[int, int]) -> bytes | None:
        with self._lock:
            blob = self._memory.get(key)
            if blob is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return blob
            blob = self._spilling.get(key)
            if blob is not None:
                # Mid-spill: the blob is still authoritative in memory.
                self.stats.hits += 1
                return blob
            on_disk = key in self._on_disk
            if not on_disk:
                self.stats.misses += 1
                return None
            path = self._block_path(key)
        # Disk read outside the lock: other threads keep hitting the
        # memory tier while this one waits on I/O.
        try:
            blob = read_block_file(path, self._chaos, site="block.read")
        except (BlockCorruptionError, OSError):
            # A corrupt spill file is a miss, not a crash: the caller
            # recomputes the partition from lineage.  (A concurrent
            # evict_rdd unlinking the file lands here too — that is a
            # plain miss, counted as corrupt only if the frame was bad.)
            with self._lock:
                self.stats.corrupt_reads += 1
                self.stats.misses += 1
                self._on_disk.discard(key)
            self._publish_corrupt(path)
            return None
        with self._lock:
            self.stats.hits += 1
            self.stats.disk_reads += 1
        return blob

    def _publish_corrupt(self, where: str) -> None:
        if self._events is not None:
            self._events.publish("block.corrupt", where=where)

    def contains(self, key: tuple[int, int]) -> bool:
        with self._lock:
            return (
                key in self._memory
                or key in self._spilling
                or key in self._on_disk
            )

    def evict_rdd(self, rdd_id: int) -> None:
        """Drop every block of one RDD (unpersist)."""
        doomed: list[str] = []
        with self._lock:
            for key in [k for k in self._memory if k[0] == rdd_id]:
                self._memory_bytes -= len(self._memory.pop(key))
            for key in [k for k in self._spilling if k[0] == rdd_id]:
                # Cancel the in-flight spill; the writer unlinks its file.
                del self._spilling[key]
            for key in [k for k in self._on_disk if k[0] == rdd_id]:
                self._on_disk.discard(key)
                doomed.append(self._block_path(key))
            for key in [k for k in self._logical if k[0] == rdd_id]:
                del self._logical[key]
            self._refresh_stats()
        # Unlink outside the lock: directory I/O must not block readers.
        for path in doomed:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    def total_bytes(self) -> int:
        with self._lock:
            return (
                self._memory_bytes
                + sum(len(b) for b in self._spilling.values())
                + sum(self._disk_payload_bytes(k) for k in self._on_disk)
            )

    # -- checkpoint store ----------------------------------------------------
    def put_checkpoint(self, key: tuple[int, int], blob: bytes) -> str:
        """Durably write one checkpointed partition; returns the file path."""
        path = self._checkpoint_path(key)
        write_block_file(path, blob, self._chaos, site="checkpoint.write")
        with self._lock:
            self.stats.checkpoint_writes += 1
        return path

    def get_checkpoint(self, key: tuple[int, int]) -> bytes | None:
        """Read one checkpointed partition; None when missing or corrupt
        (corruption is counted in :attr:`BlockStats.corrupt_reads`)."""
        path = self._checkpoint_path(key)
        if not os.path.exists(path):
            return None
        try:
            blob = read_block_file(path, self._chaos, site="checkpoint.read")
        except (BlockCorruptionError, OSError):
            with self._lock:
                self.stats.corrupt_reads += 1
            self._publish_corrupt(path)
            return None
        with self._lock:
            self.stats.checkpoint_reads += 1
        return blob

    def has_checkpoint(self, key: tuple[int, int]) -> bool:
        return os.path.exists(self._checkpoint_path(key))

    def discard_checkpoint(self, key: tuple[int, int]) -> None:
        """Drop a checkpoint whose payload failed post-crc decode
        verification (counted as a corrupt read); the caller recomputes
        and rewrites it from lineage."""
        path = self._checkpoint_path(key)
        with self._lock:
            self.stats.corrupt_reads += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        self._publish_corrupt(path)

    # -- lifecycle ------------------------------------------------------------
    def cleanup(self) -> None:
        """Remove every on-disk artifact (context shutdown)."""
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0
            self._logical.clear()
            self._on_disk.clear()
            self._spilling.clear()
        shutil.rmtree(self._dir, ignore_errors=True)
        if self._owns_ckpt:
            shutil.rmtree(self._ckpt_dir, ignore_errors=True)

    # -- internals ------------------------------------------------------------
    def _select_victims(self) -> list[tuple[tuple[int, int], bytes]]:
        """Pop LRU blocks past the limit into the in-flight spill set.

        Called under the lock; the actual file writes happen in
        :meth:`put` after release.
        """
        victims: list[tuple[tuple[int, int], bytes]] = []
        if self._limit is None:
            return victims
        while self._memory_bytes > self._limit and len(self._memory) > 1:
            key, blob = self._memory.popitem(last=False)  # LRU
            self._memory_bytes -= len(blob)
            self._spilling[key] = blob
            victims.append((key, blob))
        return victims

    def _refresh_stats(self) -> None:
        self.stats.memory_blocks = len(self._memory)
        self.stats.disk_blocks = len(self._on_disk)
        self.stats.memory_bytes = self._memory_bytes
        self.stats.disk_bytes = sum(
            self._disk_payload_bytes(k) for k in self._on_disk
        )
        self.stats.logical_bytes = sum(
            self._logical.get(k, 0) for k in self._memory
        ) + sum(self._logical.get(k, 0) for k in self._spilling)

    def _disk_payload_bytes(self, key: tuple[int, int]) -> int:
        """Cached payload bytes of a spilled block (frame header excluded,
        so byte accounting matches what was put())."""
        path = self._block_path(key)
        if not os.path.exists(path):
            return 0
        return max(0, os.path.getsize(path) - 8)

    def _block_path(self, key: tuple[int, int]) -> str:
        return os.path.join(self._dir, f"rdd{key[0]}_p{key[1]}.blk")

    def _checkpoint_path(self, key: tuple[int, int]) -> str:
        return os.path.join(self._ckpt_dir, f"rdd{key[0]}_p{key[1]}.ckpt")

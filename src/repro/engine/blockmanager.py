"""Block manager: the persisted-partition cache with a memory cap.

"Given the considerable volume of genomic dataset, it is usually not
sufficient to fit the data in the memory" (paper §4.1) — which is why
GPF persists RDDs in *serialized* form and why Spark's MEMORY_AND_DISK
level exists.  This block manager stores serialized partition blobs in
memory up to ``memory_limit`` bytes and evicts least-recently-used blocks
to spill files; reads transparently fall back to disk.  Eviction and
disk reads are counted so benches can show the memory/IO trade-off.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class BlockStats:
    memory_blocks: int = 0
    disk_blocks: int = 0
    memory_bytes: int = 0
    disk_bytes: int = 0
    evictions: int = 0
    disk_reads: int = 0
    hits: int = 0
    misses: int = 0


class BlockManager:
    """LRU memory cache with disk spill for serialized partition blobs."""

    def __init__(self, spill_dir: str, memory_limit: int | None = None):
        self._dir = os.path.join(spill_dir, "blocks")
        os.makedirs(self._dir, exist_ok=True)
        self._limit = memory_limit
        self._lock = threading.Lock()
        #: key -> blob, most-recently-used last.
        self._memory: "OrderedDict[tuple[int, int], bytes]" = OrderedDict()
        self._memory_bytes = 0
        self._on_disk: set[tuple[int, int]] = set()
        self.stats = BlockStats()

    # -- public ------------------------------------------------------------
    def put(self, key: tuple[int, int], blob: bytes) -> None:
        with self._lock:
            if key in self._memory:
                self._memory_bytes -= len(self._memory.pop(key))
            self._memory[key] = blob
            self._memory_bytes += len(blob)
            self._evict_if_needed()
            self._refresh_stats()

    def get(self, key: tuple[int, int]) -> bytes | None:
        with self._lock:
            blob = self._memory.get(key)
            if blob is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                return blob
            if key in self._on_disk:
                self.stats.hits += 1
                self.stats.disk_reads += 1
                with open(self._block_path(key), "rb") as fh:
                    return fh.read()
            self.stats.misses += 1
            return None

    def contains(self, key: tuple[int, int]) -> bool:
        with self._lock:
            return key in self._memory or key in self._on_disk

    def evict_rdd(self, rdd_id: int) -> None:
        """Drop every block of one RDD (unpersist)."""
        with self._lock:
            for key in [k for k in self._memory if k[0] == rdd_id]:
                self._memory_bytes -= len(self._memory.pop(key))
            for key in [k for k in self._on_disk if k[0] == rdd_id]:
                self._on_disk.discard(key)
                try:
                    os.unlink(self._block_path(key))
                except FileNotFoundError:
                    pass
            self._refresh_stats()

    def total_bytes(self) -> int:
        with self._lock:
            return self._memory_bytes + sum(
                os.path.getsize(self._block_path(k))
                for k in self._on_disk
                if os.path.exists(self._block_path(k))
            )

    # -- internals ------------------------------------------------------------
    def _evict_if_needed(self) -> None:
        if self._limit is None:
            return
        while self._memory_bytes > self._limit and len(self._memory) > 1:
            key, blob = self._memory.popitem(last=False)  # LRU
            self._memory_bytes -= len(blob)
            with open(self._block_path(key), "wb") as fh:
                fh.write(blob)
            self._on_disk.add(key)
            self.stats.evictions += 1

    def _refresh_stats(self) -> None:
        self.stats.memory_blocks = len(self._memory)
        self.stats.disk_blocks = len(self._on_disk)
        self.stats.memory_bytes = self._memory_bytes
        self.stats.disk_bytes = sum(
            os.path.getsize(self._block_path(k))
            for k in self._on_disk
            if os.path.exists(self._block_path(k))
        )

    def _block_path(self, key: tuple[int, int]) -> str:
        return os.path.join(self._dir, f"rdd{key[0]}_p{key[1]}.blk")
